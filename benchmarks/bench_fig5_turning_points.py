"""Fig. 5: node temperature vs P_sys and the turning-point phenomenon.

Sweeps the system pressure and traces upstream/downstream source-layer cells:
every trace decreases monotonically toward an asymptote, and upstream cells
reach their turning point at lower pressure than downstream cells -- the
structure Algorithms 2/3 exploit.  Benchmarks one 2RM solve (a sweep point).
"""

import numpy as np

from repro.analysis import format_table, pressure_sweep, turning_point
from repro.cooling import CoolingSystem
from repro.iccad2015 import load_case
from repro.thermal import RC2Simulator

from conftest import GRID, emit


def test_fig5_turning_points(benchmark):
    case = load_case(1, grid_size=GRID)
    system = CoolingSystem.for_network(
        case.base_stack(), case.baseline_network(), case.coolant, model="2rm"
    )
    mid = case.nrows // 2 - (case.nrows // 2) % 2  # an even (channel) row
    probes = [
        ("upstream", 0, mid, 2),
        ("midstream", 0, mid, case.ncols // 2),
        ("downstream", 0, mid, case.ncols - 2),
    ]
    pressures = np.geomspace(5e2, 1.6e5, 14)
    sweep = pressure_sweep(system, pressures, probe_cells=probes)

    rows = []
    knees = {}
    for label, _, _, _ in probes:
        trace = sweep.node_curves[label]
        knee = turning_point(sweep.pressures, trace, knee_fraction=0.9)
        knees[label] = knee
        rows.append(
            [
                label,
                f"{trace[0]:.2f}",
                f"{trace[-1]:.2f}",
                f"{knee / 1e3:.2f}",
            ]
        )
    table = format_table(
        ["probe cell", "T @0.5 kPa (K)", "T @160 kPa (K)", "turning point (kPa)"],
        rows,
        title="Fig. 5: temperature vs P_sys -- turning points along the flow",
    )
    emit("fig5_turning_points", table)

    # The paper's claim: upstream regions reach turning points earlier.
    assert knees["upstream"] <= knees["downstream"]
    # Every trace is monotone decreasing.
    for label, _, _, _ in probes:
        assert np.all(np.diff(sweep.node_curves[label]) < 1e-9)

    simulator = system.simulator
    benchmark(simulator.solve, 1e4)
