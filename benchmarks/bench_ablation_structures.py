"""Ablation: the tree-like structure vs other network families (Section 4.3).

The paper picked the hierarchical tree structure after manual exploration:
simple (two parameters per tree) and effective for both objectives.  This
ablation evaluates each structural family -- straight, serpentine, ladder,
variable-pitch, uniform tree, SA-tuned tree -- under the Problem 1 metric on
one case.  Benchmarks one structural evaluation.
"""

from repro.analysis import format_table
from repro.cooling import CoolingSystem, evaluate_problem1
from repro.errors import ReproError
from repro.iccad2015 import load_case
from repro.networks import (
    ladder_network,
    serpentine_network,
    variable_pitch_network,
)
from repro.optimize import optimize_problem1

from conftest import GRID, QUICK, emit


def test_ablation_structures(benchmark):
    case = load_case(1, grid_size=GRID)
    n = case.nrows

    def tuned_tree():
        return optimize_problem1(
            case, quick=QUICK, directions=(0, 1), seed=0
        ).network

    families = [
        ("straight p2", lambda: case.baseline_network(pitch=2)),
        ("straight p4", lambda: case.baseline_network(pitch=4)),
        ("serpentine p4", lambda: serpentine_network(n, n, 0, 4)),
        ("ladder p2", lambda: ladder_network(n, n, 0, 2)),
        ("variable pitch", lambda: variable_pitch_network(n, n, 0, 0.5)),
        ("tree (uniform init)", lambda: case.tree_plan().build()),
        ("tree (SA-tuned)", tuned_tree),
    ]

    rows = []
    scores = {}
    for name, builder in families:
        try:
            network = builder()
            system = CoolingSystem.for_network(
                case.base_stack(), network, case.coolant, model="4rm"
            )
            ev = evaluate_problem1(system, case.delta_t_star, case.t_max_star)
        except ReproError:
            ev = None
        if ev is not None and ev.feasible:
            scores[name] = ev.w_pump
            rows.append(
                [
                    name,
                    f"{ev.p_sys / 1e3:.2f}",
                    f"{ev.w_pump * 1e3:.3f}",
                    f"{ev.delta_t:.2f}",
                ]
            )
        else:
            rows.append([name, "N/A", "N/A", "N/A"])
    table = format_table(
        ["structure", "P_sys (kPa)", "W_pump (mW)", "DeltaT (K)"],
        rows,
        title="Ablation: network structures under the Problem 1 metric "
        f"(case 1, grid {GRID}x{GRID})",
    )
    emit("ablation_structures", table)

    # The SA-tuned tree must be the best (or tied-best) feasible family.
    assert "tree (SA-tuned)" in scores
    best = min(scores.values())
    assert scores["tree (SA-tuned)"] <= 1.05 * best

    network = case.baseline_network()
    system = CoolingSystem.for_network(
        case.base_stack(), network, case.coolant, model="2rm"
    )

    def evaluate():
        system.clear_cache()
        return evaluate_problem1(system, case.delta_t_star, case.t_max_star)

    benchmark(evaluate)
