"""Ablation: uniform vs power-aware tree initialization.

The paper initializes all trees uniformly before the SA search.  The
power-aware alternative (an extension) seeds each tree's branch positions
from its band's power density -- Section 3's compensation idea in closed
form.  This ablation compares the two seeds both *before* any search (raw
seed quality under the stage-1 fixed-pressure gradient metric) and *after*
a short Problem 1 flow.  Benchmarks one seeded-plan build.
"""

from repro.analysis import format_table
from repro.cooling import CoolingSystem
from repro.iccad2015 import load_case
from repro.networks import power_aware_initialization
from repro.optimize import optimize_problem1

from conftest import GRID, emit


def test_ablation_initialization(benchmark):
    case = load_case(1, grid_size=GRID)
    plan_uniform = case.tree_plan()
    total_power = sum(case.power_maps)
    plan_seeded = power_aware_initialization(plan_uniform, total_power)

    # Raw seed quality: gradient at a fixed probe pressure.
    def gradient(plan):
        system = CoolingSystem.for_network(
            case.base_stack(), plan.build(), case.coolant, model="2rm"
        )
        return system.delta_t(5e3)

    seed_rows = [
        ["uniform", f"{gradient(plan_uniform):.3f}"],
        ["power-aware", f"{gradient(plan_seeded):.3f}"],
    ]

    # Post-search quality with the same short budget.
    results = {}
    for name, init in (("uniform", "uniform"), ("power-aware", "power_aware")):
        results[name] = optimize_problem1(
            case, quick=True, directions=(0,), seed=5, initialization=init
        )
    search_rows = []
    for name, result in results.items():
        ev = result.evaluation
        search_rows.append(
            [
                name,
                f"{ev.w_pump * 1e3:.3f}" if ev.feasible else "N/A",
                f"{result.total_simulations}",
            ]
        )

    table = (
        format_table(
            ["initialization", "seed DeltaT @5 kPa (K)"],
            seed_rows,
            title="Ablation: tree initialization (case 1, "
            f"grid {GRID}x{GRID})",
        )
        + "\n\n"
        + format_table(
            ["initialization", "post-SA W_pump (mW)", "simulations"],
            search_rows,
        )
    )
    emit("ablation_initialization", table)

    # The seeded start must not be meaningfully worse than uniform, either
    # raw or after the search.
    assert gradient(plan_seeded) <= gradient(plan_uniform) * 1.10
    if (
        results["uniform"].evaluation.feasible
        and results["power-aware"].evaluation.feasible
    ):
        assert (
            results["power-aware"].evaluation.w_pump
            <= 2.0 * results["uniform"].evaluation.w_pump
        )

    benchmark(
        lambda: power_aware_initialization(plan_uniform, total_power).build()
    )
