"""Extension bench: physical-parameter sensitivity of the cooling system.

Not a paper figure -- an extension quantifying how the headline metrics
respond to the designer's physical knobs, as elasticities (% metric change
per % parameter change).  The interesting regime dependence: past the
turning point the Nusselt (film) coefficient dominates `T_max`; in a
flow-starved system the hydraulic knob (channel height) takes over.
Benchmarks one sweep point.
"""

from repro.analysis import elasticities, format_table, sensitivity_sweep
from repro.iccad2015 import load_case

from conftest import GRID, emit


def test_ext_sensitivity(benchmark):
    case = load_case(1, grid_size=GRID)
    stack = case.base_stack()
    network = case.baseline_network()

    blocks = []
    slopes_by_regime = {}
    for label, p_sys in (("flow-rich (10 kPa)", 1e4), ("flow-starved (0.4 kPa)", 4e2)):
        records = sensitivity_sweep(
            stack, network, case.coolant, p_sys, scales=(0.8, 1.0, 1.25)
        )
        slopes_t = elasticities(records, metric="t_max")
        slopes_d = elasticities(records, metric="delta_t")
        slopes_by_regime[label] = slopes_t
        rows = [
            [param, f"{slopes_t.get(param, float('nan')):+.3f}",
             f"{slopes_d.get(param, float('nan')):+.3f}"]
            for param in sorted(slopes_t)
        ]
        blocks.append(
            format_table(
                ["parameter", "d(T_max rise)/d(param)", "d(DeltaT)/d(param)"],
                rows,
                title=f"Elasticities at {label}",
            )
        )
    emit("ext_sensitivity", "\n\n".join(blocks))

    rich = slopes_by_regime["flow-rich (10 kPa)"]
    starved = slopes_by_regime["flow-starved (0.4 kPa)"]
    assert abs(rich["nusselt"]) > abs(rich["channel_height"])
    assert abs(starved["channel_height"]) > abs(starved["nusselt"])

    def sweep_point():
        return sensitivity_sweep(
            stack,
            network,
            case.coolant,
            1e4,
            parameters=("nusselt",),
            scales=(1.0,),
        )

    benchmark(sweep_point)
