"""Table 4: thermal gradient minimization (Problem 2) across all five cases.

For each case: the straight baseline and the staged-SA tree design, both
capped at W_pump* = 0.1% of die power and T_max*.  The paper's shape to
reproduce: flexible-topology networks cut the thermal gradient (up to 37.65%
in the paper, largest on the hard case 5) at equal or lower pumping power.

The benchmark fixture times one complete Problem-2 network evaluation
(pressure-cap mapping + golden-section search).
"""

from repro.cooling import CoolingSystem, evaluate_problem2
from repro.iccad2015 import load_case

from conftest import DIRECTIONS, QUICK, TABLE_GRID, emit
from harness import format_results, run_problem


def test_table4_problem2(benchmark):
    outcomes = run_problem(
        "problem2", TABLE_GRID, QUICK, DIRECTIONS, include_manual=False, seed=0
    )
    text = format_results(
        outcomes,
        objective="delta_t",
        include_manual=False,
        title=(
            f"Table 4: thermal gradient minimization, W_pump* = 0.1% die "
            f"power (grid {TABLE_GRID}x{TABLE_GRID}, quick={QUICK})"
        ),
    )
    emit("table4_problem2", text)

    by_case = {o.case_number: o for o in outcomes}
    # Problem 2 always has feasible points when T_max* is reachable within
    # the power budget; expect ours feasible on at least four cases.
    feasible = [
        n
        for n in by_case
        if by_case[n].ours is not None and by_case[n].ours.feasible
    ]
    assert len(feasible) >= 4
    # Gradient never worse than baseline by more than noise; strictly better
    # somewhere.
    improvements = []
    for n in feasible:
        outcome = by_case[n]
        if outcome.baseline is not None and outcome.baseline.feasible:
            improvements.append(
                outcome.baseline.delta_t - outcome.ours.delta_t
            )
    assert improvements and max(improvements) > 0

    case = load_case(1, grid_size=TABLE_GRID)
    system = CoolingSystem.for_network(
        case.base_stack(), case.baseline_network(), case.coolant, model="2rm"
    )

    def evaluate():
        system.clear_cache()
        return evaluate_problem2(system, case.t_max_star, case.w_pump_star())

    benchmark(evaluate)
