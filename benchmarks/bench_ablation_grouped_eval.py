"""Ablation: Problem 2's grouped evaluation (Section 5, adaptation 2).

Grouping re-uses the optimal pressure found by the group leader for the next
few SA iterations, trading slight pessimism for a large simulation saving.
This ablation measures both sides on real candidate sequences: the per-
candidate score error of the cheap path, and the simulation count of a short
SA run with group sizes 1 (always full) and 5 (the default).  Benchmarks the
cheap-path evaluation.
"""

import numpy as np

from repro.analysis import format_table
from repro.cooling import CoolingSystem, evaluate_problem2
from repro.iccad2015 import load_case
from repro.optimize.moves import perturb_tree_params
from repro.optimize.runner import PROBLEM_THERMAL_GRADIENT, _CandidateEvaluator
from repro.optimize.stages import METRIC_MIN_GRADIENT_CAPPED, StageConfig

from conftest import GRID, emit


def test_ablation_grouped_evaluation(benchmark):
    case = load_case(1, grid_size=GRID)
    plan = case.tree_plan()
    rng = np.random.default_rng(11)
    candidates = [plan.params()]
    for _ in range(9):
        candidates.append(
            plan.clamp_params(perturb_tree_params(candidates[-1], 4, rng))
        )

    # Score accuracy: cheap grouped path vs full evaluation per candidate.
    w_star = case.w_pump_star()
    errors = []
    leader_pressure = None
    for params in candidates:
        system = CoolingSystem.for_network(
            case.base_stack(),
            plan.with_params(params).build(),
            case.coolant,
            model="2rm",
        )
        full = evaluate_problem2(system, case.t_max_star, w_star)
        if leader_pressure is None:
            leader_pressure = full.p_sys
            continue
        p_used = min(leader_pressure, system.p_sys_for_power(w_star))
        cheap = system.evaluate(p_used).delta_t
        if full.feasible:
            errors.append(cheap - full.score)

    # Simulation cost: short SA-like scans with group sizes 1 and 5.
    counts = {}
    for group_size in (1, 5):
        stage = StageConfig(
            "abl", 10, 1, 4, METRIC_MIN_GRADIENT_CAPPED, "2rm",
            group_size=group_size,
        )
        evaluator = _CandidateEvaluator(
            case, plan, stage, PROBLEM_THERMAL_GRADIENT
        )
        for params in candidates:
            evaluator(params)
        counts[group_size] = evaluator.simulations

    rows = [
        ["mean pessimism of cheap path (K)", f"{np.mean(errors):+.4f}"],
        ["max pessimism of cheap path (K)", f"{np.max(errors):+.4f}"],
        ["simulations, group size 1 (always full)", f"{counts[1]}"],
        ["simulations, group size 5 (paper-style)", f"{counts[5]}"],
        ["simulation saving", f"{100 * (1 - counts[5] / counts[1]):.0f}%"],
    ]
    table = format_table(
        ["quantity", "value"],
        rows,
        title="Ablation: grouped Problem-2 evaluation -- pessimism vs "
        "simulation saving (10 neighboring candidates)",
    )
    emit("ablation_grouped_eval", table)

    # The cheap path may only be pessimistic (never reports a better DeltaT
    # than achievable), and grouping must save a large share of simulations.
    assert min(errors) >= -1e-6
    assert counts[5] < counts[1]

    system = CoolingSystem.for_network(
        case.base_stack(), plan.build(), case.coolant, model="2rm"
    )
    p_used = min(leader_pressure, system.p_sys_for_power(w_star))

    def cheap_eval():
        system.clear_cache()
        return system.evaluate(p_used).delta_t

    benchmark(cheap_eval)
