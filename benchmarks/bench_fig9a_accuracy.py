"""Fig. 9(a): 2RM accuracy vs thermal-cell size, by network style.

Sweeps benchmark x network-style x thermal-cell-size x pressure and scores
each 2RM simulation by the average relative error of source-layer nodes
against the 4RM reference.  The paper's findings to reproduce: error grows
with thermal-cell size, straight channels err least, and small cells stay
well under 1%.  Benchmarks the paper's chosen configuration (400 um cells).
"""

from collections import defaultdict

from repro.analysis import compare_models, format_table
from repro.iccad2015 import load_case
from repro.networks import sample_networks
from repro.networks.library import STYLE_MANUAL, STYLE_STRAIGHT, STYLE_TREE
from repro.thermal import RC2Simulator

from conftest import FULL, GRID, emit

TILE_SIZES = (2, 4, 6, 10)
PRESSURES = (5e3, 2e4)


def test_fig9a_accuracy(benchmark):
    case = load_case(1, grid_size=GRID)
    cell_um = case.cell_width * 1e6
    samples = sample_networks(
        case.nrows, case.ncols, n_tree_variants=4 if not FULL else 8
    )
    # Keep a representative subset per style to bound 4RM solves.
    per_style = 2 if not FULL else 6
    chosen = []
    seen = defaultdict(int)
    for name, style, grid in samples:
        if seen[style] < per_style:
            chosen.append((name, style, grid))
            seen[style] += 1

    records = []
    for name, style, network in chosen:
        stack = case.stack_with_network(network)
        records.extend(
            compare_models(
                stack,
                case.coolant,
                TILE_SIZES,
                PRESSURES,
                network_name=name,
                style=style,
            )
        )

    by_style_tile = defaultdict(list)
    for record in records:
        by_style_tile[(record.style, record.tile_size)].append(record)
    styles = (STYLE_STRAIGHT, STYLE_TREE, STYLE_MANUAL)
    rows = []
    for tile in TILE_SIZES:
        row = [f"{tile * cell_um:.0f} um"]
        for style in styles:
            members = by_style_tile[(style, tile)]
            err = sum(m.error_abs for m in members) / len(members)
            row.append(f"{err:.3%}")
        all_members = [r for r in records if r.tile_size == tile]
        row.append(
            f"{sum(m.error_abs for m in all_members) / len(all_members):.3%}"
        )
        rows.append(row)
    table = format_table(
        ["thermal cell"] + list(styles) + ["all"],
        rows,
        title=(
            "Fig. 9(a): mean relative error of source-layer nodes, 2RM vs "
            f"4RM ({len(chosen)} networks x {len(PRESSURES)} pressures)"
        ),
    )
    table += (
        "\n\nnote: the 'manual' column includes dense serpentines whose "
        "neighboring runs counterflow inside one thermal cell; the 2RM "
        "net-flow aggregation cancels them and the error blows up -- the "
        "documented porous-medium limitation (see "
        "tests/thermal/test_model_limitations.py) and the reason the final "
        "SA stage re-scores with 4RM."
    )
    emit("fig9a_accuracy", table)

    # Paper claims (for the styles its flow searches): error grows with
    # cell size and stays ~0.5% at 400 um.
    def style_err(style, tile):
        members = by_style_tile[(style, tile)]
        return sum(m.error_abs for m in members) / len(members)

    for style in (STYLE_STRAIGHT, STYLE_TREE):
        assert style_err(style, TILE_SIZES[0]) <= style_err(
            style, TILE_SIZES[-1]
        ) * 1.05
        assert style_err(style, 4) < 0.01
    # Straight channels err least (the paper's Fig. 9(a) ordering).
    assert style_err(STYLE_STRAIGHT, 4) <= style_err(STYLE_TREE, 4)

    stack = case.stack_with_network(chosen[0][2])
    simulator = RC2Simulator(stack, case.coolant, tile_size=4)
    benchmark(simulator.solve, 1e4)
