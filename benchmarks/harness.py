"""Shared machinery for the Table 3 / Table 4 benches, plus the perf harness.

Runs, for every benchmark case: the straight-channel baseline (best of the
global directions), the manual-design comparator (stand-in for the contest
winner; see DESIGN.md), and the staged-SA tree-like design flow.  Formats the
paper's row layout and improvement percentages.

This module is also executable -- ``python benchmarks/harness.py --bench
parallel_eval --json`` runs the persistent-pool evaluation benchmark and
writes ``benchmarks/out/BENCH_parallel_eval.json`` (timings, speedup,
profiling counters), giving future PRs a machine-readable perf trajectory.
"""

from __future__ import annotations

import argparse
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import profiling, telemetry
from repro.analysis import format_table, result_row
from repro.checkpoint import atomic_write_json
from repro.telemetry.export import write_chrome_trace
from repro.analysis.tables import improvement_percent
from repro.errors import ReproError
from repro.iccad2015 import CASE_NUMBERS, load_case
from repro.optimize import (
    best_manual_design,
    best_straight_baseline,
    optimize_problem1,
    optimize_problem2,
)


@dataclass
class CaseOutcome:
    """Results of one case: baseline / manual / ours evaluations."""

    case_number: int
    baseline: Optional[object]
    manual: Optional[object]
    ours: Optional[object]
    ours_network: Optional[object]
    seconds: float


def run_problem(
    problem: str,
    grid_size: int,
    quick: bool,
    directions,
    cases=CASE_NUMBERS,
    include_manual: bool = True,
    seed: int = 0,
) -> List[CaseOutcome]:
    """Run one problem's full comparison across benchmark cases."""
    outcomes = []
    for number in cases:
        case = load_case(number, grid_size=grid_size)
        start = time.time()
        baseline = _try(lambda: best_straight_baseline(case, problem, model="4rm"))
        manual = (
            _try(lambda: best_manual_design(case, problem, model="4rm"))
            if include_manual
            else None
        )
        if problem == "problem1":
            ours = _try(
                lambda: optimize_problem1(
                    case, quick=quick, directions=directions, seed=seed
                )
            )
        else:
            ours = _try(
                lambda: optimize_problem2(
                    case, quick=quick, directions=directions, seed=seed
                )
            )
        outcomes.append(
            CaseOutcome(
                case_number=number,
                baseline=baseline.evaluation if baseline else None,
                manual=manual.evaluation if manual else None,
                ours=ours.evaluation if ours else None,
                ours_network=ours.network if ours else None,
                seconds=time.time() - start,
            )
        )
    return outcomes


def format_results(
    outcomes: List[CaseOutcome],
    objective: str,
    title: str,
    include_manual: bool = True,
) -> str:
    """Render Table 3/4-style blocks plus the improvement summary."""
    metrics = ["P_sys (kPa)", "T_max (K)", "DeltaT (K)", "W_pump (mW)"]
    blocks = [("Baseline (straight)", "baseline")]
    if include_manual:
        blocks.append(("Manual (comparator)", "manual"))
    blocks.append(("Ours (tree-like SA)", "ours"))

    rows = []
    for block_name, attr in blocks:
        for metric in metrics:
            row = [block_name if metric == metrics[0] else "", metric]
            for outcome in outcomes:
                evaluation = getattr(outcome, attr)
                cells = result_row(
                    evaluation
                    if evaluation is not None and evaluation.feasible
                    else None
                )
                row.append(cells[metric])
            rows.append(row)
    headers = ["design", "metric"] + [f"case {o.case_number}" for o in outcomes]
    table = format_table(headers, rows, title=title)

    summary = []
    for outcome in outcomes:
        if (
            outcome.baseline is not None
            and outcome.ours is not None
            and outcome.baseline.feasible
            and outcome.ours.feasible
        ):
            if objective == "w_pump":
                gain = improvement_percent(
                    outcome.baseline.w_pump, outcome.ours.w_pump
                )
                summary.append(
                    f"case {outcome.case_number}: {gain:.1f}% pumping power "
                    f"saving vs baseline ({outcome.seconds:.0f} s)"
                )
            else:
                gain = improvement_percent(
                    outcome.baseline.delta_t, outcome.ours.delta_t
                )
                summary.append(
                    f"case {outcome.case_number}: {gain:.1f}% thermal gradient "
                    f"reduction vs baseline ({outcome.seconds:.0f} s)"
                )
        else:
            feasible = (
                "ours feasible"
                if outcome.ours is not None and outcome.ours.feasible
                else "ours infeasible"
            )
            summary.append(
                f"case {outcome.case_number}: baseline infeasible (N/A), "
                f"{feasible} ({outcome.seconds:.0f} s)"
            )
    return table + "\n\n" + "\n".join(summary)


def _try(fn):
    try:
        return fn()
    except ReproError:
        return None


# ---------------------------------------------------------------------------
# Persistent-pool evaluation benchmark (BENCH_parallel_eval.json)
# ---------------------------------------------------------------------------


def _score_one_seed(payload):
    """The seed implementation's worker body, kept verbatim as the baseline:
    the full context rides along with *every* candidate, a fresh evaluator is
    built per candidate, and every exception is silently swallowed."""
    case, plan, stage, problem, fixed_pressure, params = payload
    from repro.optimize.runner import _CandidateEvaluator

    evaluator = _CandidateEvaluator(case, plan, stage, problem, fixed_pressure)
    try:
        return float(evaluator(params))
    except Exception:
        return math.inf


def _seed_evaluate_batch(case, plan, stage, problem, fixed_pressure, batch, n_workers):
    """One batch the way the seed ``evaluate_population`` ran it: a brand-new
    process pool per call, full-context payloads per candidate."""
    payloads = [
        (case, plan, stage, problem, fixed_pressure, np.asarray(p, dtype=int))
        for p in batch
    ]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_score_one_seed, payloads))


def make_sa_batches(plan, n_batches, batch_size, seed=0, step=2):
    """SA-shaped candidate batches: each batch perturbs a drifting current
    state, mirroring how ``simulated_annealing_batch`` proposes neighbors."""
    rng = np.random.default_rng(seed)
    batches, current = [], plan.params()
    for _ in range(n_batches):
        batch = [
            plan.clamp_params(
                current + step * rng.integers(-2, 3, size=current.shape)
            )
            for _ in range(batch_size)
        ]
        current = batch[0]
        batches.append(batch)
    return batches


def run_parallel_eval_bench(
    grid_size: int = 21,
    n_batches: int = 16,
    batch_size: int = 4,
    n_workers: int = 4,
    case_number: int = 1,
    seed: int = 0,
) -> dict:
    """Benchmark the persistent pool against the seed per-batch pool.

    The workload is the SA loop's real shape: ``n_batches`` consecutive
    batches of ``batch_size`` neighbor candidates (the runner defaults to
    ``batch_size = n_workers``), scored with the paper's stage-1 metric
    (thermal gradient at a fixed pressure) on the 2RM model.  The seed
    implementation pays pool spin-up and full-context pickling for every
    batch; the persistent pool pays them once.  Also checks all three paths
    (seed / persistent / serial) return identical costs.
    """
    from repro.optimize.parallel import evaluate_population, shutdown_pools
    from repro.optimize.stages import METRIC_FIXED_PRESSURE_GRADIENT, StageConfig

    if n_workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {n_workers}")
    if n_batches < 1 or batch_size < 1:
        raise SystemExit(
            f"need at least one batch and one candidate per batch, got "
            f"--batches {n_batches} --batch-size {batch_size}"
        )
    case = load_case(case_number, grid_size=grid_size)
    plan = case.tree_plan()
    stage = StageConfig(
        "bench-stage1", 4, 1, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"
    )
    fixed_pressure = 2e4
    batches = make_sa_batches(plan, n_batches, batch_size, seed=seed)
    n_candidates = n_batches * batch_size

    shutdown_pools()
    start = time.perf_counter()
    seed_costs = [
        _seed_evaluate_batch(
            case, plan, stage, "problem1", fixed_pressure, batch, n_workers
        )
        for batch in batches
    ]
    seed_seconds = time.perf_counter() - start

    profiling.reset()
    start = time.perf_counter()
    persistent_costs = [
        evaluate_population(
            case,
            plan,
            stage,
            "problem1",
            batch,
            fixed_pressure=fixed_pressure,
            n_workers=n_workers,
        )
        for batch in batches
    ]
    persistent_seconds = time.perf_counter() - start
    counters_snapshot = profiling.snapshot()
    shutdown_pools()

    serial_costs = [
        evaluate_population(
            case,
            plan,
            stage,
            "problem1",
            batch,
            fixed_pressure=fixed_pressure,
            n_workers=1,
        )
        for batch in batches
    ]

    return {
        "benchmark": "parallel_eval",
        "config": {
            "case_number": case_number,
            "grid_size": grid_size,
            "n_batches": n_batches,
            "batch_size": batch_size,
            "n_candidates": n_candidates,
            "n_workers": n_workers,
            "metric": stage.metric,
            "model": stage.model,
            "fixed_pressure": fixed_pressure,
            "seed": seed,
        },
        "seed_seconds": seed_seconds,
        "persistent_seconds": persistent_seconds,
        "speedup": seed_seconds / persistent_seconds,
        "seed_candidates_per_sec": n_candidates / seed_seconds,
        "persistent_candidates_per_sec": n_candidates / persistent_seconds,
        "parity_seed_vs_persistent": seed_costs == persistent_costs,
        "parity_serial_vs_persistent": serial_costs == persistent_costs,
        "counters": counters_snapshot["counters"],
        "timers": counters_snapshot["timers"],
        # p50/p90/p99 summaries (not raw buckets) per latency histogram, so
        # BENCH_*.json generations stay diffable at a glance.
        "histograms": profiling.histogram_summaries(counters_snapshot),
    }


# ---------------------------------------------------------------------------
# Solver-backend benchmark (BENCH_solver_backends.json)
# ---------------------------------------------------------------------------


def _percentile_ms(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples) * 1e3, q))


def _latency_summary(samples: List[float]) -> dict:
    return {
        "p50_ms": _percentile_ms(samples, 50),
        "p90_ms": _percentile_ms(samples, 90),
        "p99_ms": _percentile_ms(samples, 99),
        "n": len(samples),
    }


def run_solver_backends_bench(
    grid_size: int = 21,
    n_batches: int = 16,
    batch_size: int = 4,
    n_workers: int = 4,  # accepted for CLI uniformity; single-process bench
    case_number: int = 1,
    seed: int = 0,
) -> dict:
    """Benchmark the pluggable solver backends and the incremental paths.

    Three sections, all on the bundled medium case (case ``case_number`` at
    ``grid_size``):

    * **backends** -- factorize / solve / multi-RHS latency per available
      registry backend on the 2RM thermal operator, with differential
      parity against a fresh scipy-splu reference.
    * **sa_moves** -- the tentpole's acceptance workload: a drifting
      sequence of local SA moves (a few perturbed cell conductances each)
      solved via :class:`~repro.linalg.IncrementalFactorization` Woodbury
      updates vs a fresh registry factorization per move, on identical
      operators, with per-move parity.  ``n_batches * batch_size`` scales
      the move count.
    * **pressure_sweep** -- the staged flow's inner loop: one
      :class:`~repro.thermal.common.LinearThermalSystem` probed across a
      drifting pressure schedule with the incremental pressure-shift path
      vs ``exact=True`` fresh factorizations.
    """
    from scipy.sparse import coo_matrix

    from repro.linalg import (
        IncrementalFactorization,
        LinalgConfig,
        available_backends,
        factorize,
        get_backend,
        use_config,
    )
    from repro.materials import WATER
    from repro.thermal.rc2 import RC2Simulator

    rng = np.random.default_rng(seed)
    case = load_case(case_number, grid_size=grid_size)
    stack = case.base_stack()
    simulator = RC2Simulator(stack, WATER, tile_size=4)
    base_pressure = 2e4
    matrix = simulator.system.system_matrix(base_pressure).tocsc()
    n = matrix.shape[0]
    rhs = simulator.system.rhs(base_pressure)

    # -- backend sweep --------------------------------------------------
    reference = factorize(matrix, config=None).solve(rhs)
    ref_scale = max(float(np.max(np.abs(reference))), 1.0)
    block = rng.uniform(-1.0, 1.0, size=(n, 8))
    backends = {}
    for name in available_backends():
        backend = get_backend(name)
        if backend.spd_only:
            continue  # the 2RM operator is unsymmetric (advection)
        fact_times, solve_times, many_times = [], [], []
        factor = None
        for _ in range(15):
            start = time.perf_counter()
            factor = backend.factorize(matrix)
            fact_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            solution = factor.solve(rhs)
            solve_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            factor.solve_many(block)
            many_times.append(time.perf_counter() - start)
        backends[name] = {
            "factorize": _latency_summary(fact_times),
            "solve": _latency_summary(solve_times),
            "solve_many": _latency_summary(many_times),
            "parity_max_err": float(np.max(np.abs(solution - reference)))
            / ref_scale,
        }

    # -- SA-move loop: incremental Woodbury vs fresh factorization ------
    n_moves = max(120, n_batches * batch_size)
    coo = matrix.tocoo()
    off_diag = (coo.row < coo.col) & (coo.data != 0.0)
    pair_pool = np.stack([coo.row[off_diag], coo.col[off_diag]], axis=1)
    pair_mags = np.abs(coo.data[off_diag])

    # Rank-threshold tuning (docs/SOLVER_CACHES.md): with rank-4 moves the
    # per-solve correction cost grows with the accumulated rank, so a lower
    # threshold trades infrequent cheap rebuilds for uniformly cheap solves.
    moves_rank_threshold = 32
    inc = IncrementalFactorization(
        matrix, config=LinalgConfig(rank_threshold=moves_rank_threshold)
    )
    current = matrix.copy()
    inc_times, fresh_times, move_parity = [], [], 0.0
    for _ in range(n_moves):
        picks = rng.integers(0, pair_pool.shape[0], size=4)
        pairs = pair_pool[picks]
        deltas = pair_mags[picks] * rng.uniform(-0.1, 0.1, size=4)

        start = time.perf_counter()
        inc.update_pairs(pairs, deltas)
        x_inc = inc.solve(rhs)
        inc_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        i, j = pairs[:, 0], pairs[:, 1]
        delta = coo_matrix(
            (
                np.concatenate([deltas, deltas, -deltas, -deltas]),
                (
                    np.concatenate([i, j, i, j]),
                    np.concatenate([i, j, j, i]),
                ),
            ),
            shape=(n, n),
        )
        current = (current + delta).tocsc()
        x_fresh = factorize(current).solve(rhs)
        fresh_times.append(time.perf_counter() - start)

        scale = max(float(np.max(np.abs(x_fresh))), 1.0)
        move_parity = max(
            move_parity, float(np.max(np.abs(x_inc - x_fresh))) / scale
        )
    sa_moves = {
        "n_moves": n_moves,
        "rank_per_move": 4,
        "rank_threshold": moves_rank_threshold,
        "incremental": _latency_summary(inc_times),
        "fresh": _latency_summary(fresh_times),
        "speedup_p50": _percentile_ms(fresh_times, 50)
        / _percentile_ms(inc_times, 50),
        "rebuilds": inc.n_rebuilds,
        "parity_max_err": move_parity,
    }

    # -- pressure sweep: shift path vs exact refactorization ------------
    n_probes = 60
    pressures = base_pressure * (
        1.0 + 0.3 * np.sin(np.linspace(0.0, 9.0, n_probes))
    )
    # The shift rank equals the advected-row count, which grows with the
    # grid; raise the threshold so the medium case stays on the shift path
    # (the tuning recipe documented in docs/SOLVER_CACHES.md).
    sweep_rank_threshold = 512
    with use_config(rank_threshold=sweep_rank_threshold):
        shift_system = RC2Simulator(stack, WATER, tile_size=4).system
        shift_system.solve(base_pressure, exact=True)  # prime the base factor
        shift_times = []
        shift_results = []
        for p in pressures:
            start = time.perf_counter()
            shift_results.append(shift_system.solve(float(p)))
            shift_times.append(time.perf_counter() - start)

    exact_system = RC2Simulator(stack, WATER, tile_size=4).system
    exact_times = []
    sweep_parity = 0.0
    with use_config(incremental=False):
        # Every probe pressure is distinct, so each exact solve pays a full
        # factorization (the per-pressure LU cache never hits).
        for p, probe in zip(pressures, shift_results):
            start = time.perf_counter()
            exact = exact_system.solve(float(p))
            exact_times.append(time.perf_counter() - start)
            scale = max(float(np.max(np.abs(exact))), 1.0)
            sweep_parity = max(
                sweep_parity, float(np.max(np.abs(probe - exact))) / scale
            )
    pressure_sweep = {
        "n_probes": n_probes,
        "rank_threshold": sweep_rank_threshold,
        "incremental": _latency_summary(shift_times),
        "exact": _latency_summary(exact_times),
        "speedup_p50": _percentile_ms(exact_times, 50)
        / _percentile_ms(shift_times, 50),
        "parity_max_err": sweep_parity,
    }

    return {
        "benchmark": "solver_backends",
        "config": {
            "case_number": case_number,
            "grid_size": grid_size,
            "n_nodes": n,
            "n_moves": n_moves,
            "n_probes": n_probes,
            "base_pressure": base_pressure,
            "seed": seed,
            "available_backends": available_backends(),
        },
        "backends": backends,
        "sa_moves": sa_moves,
        "pressure_sweep": pressure_sweep,
        "summary": (
            f"{n} nodes; SA moves p50 incremental "
            f"{sa_moves['incremental']['p50_ms']:.3f} ms vs fresh "
            f"{sa_moves['fresh']['p50_ms']:.3f} ms "
            f"({sa_moves['speedup_p50']:.1f}x); pressure sweep "
            f"{pressure_sweep['speedup_p50']:.1f}x; parity "
            f"{max(sa_moves['parity_max_err'], pressure_sweep['parity_max_err']):.2e}"
        ),
    }


# ---------------------------------------------------------------------------
# Multi-fidelity portfolio benchmark (BENCH_portfolio.json)
# ---------------------------------------------------------------------------


def run_portfolio_bench(
    grid_size: int = 0,  # 0: let each generated case draw its own footprint
    n_batches: int = 2,
    batch_size: int = 3,
    n_workers: int = 1,  # accepted for CLI uniformity; cases are tiny
    n_cases: int = 100,
    seed: int = 0,
) -> dict:
    """Benchmark ``multi_fidelity`` against the pure-4RM comparator.

    Runs both strategies -- identical annealer, identical seeds, identical
    candidate budget -- on ``n_cases`` procedurally generated cases
    (:mod:`repro.cases`, per-case seeds ``0..n_cases-1``) and records, per
    case, the verified 4RM scores and how many *distinct* 4RM evaluations
    each strategy paid.  ``n_batches`` maps to portfolio rounds and
    ``batch_size`` to SA batch width.

    Acceptance (gated by ``tests/optimize/test_bench_portfolio.py`` on the
    committed artifact):

    * aggregate 4RM-evaluation ratio (comparator / multi-fidelity) >= 2x;
    * per-case, the multi-fidelity score is within the case's calibrated
      offset-model envelope of the comparator's score (or strictly
      better) on at least 90% of cases.
    """
    import math

    from repro.cases import generate_case
    from repro.optimize.portfolio import PortfolioConfig, run_portfolio

    cases = []
    mf_high_total = ref_high_total = 0
    within = wins = infeasible = 0
    start_all = time.time()
    for case_seed in range(n_cases):
        case = generate_case(
            case_seed, grid_size=grid_size if grid_size else None
        )
        config = PortfolioConfig(
            rounds=max(n_batches, 1),
            iterations=3,
            batch_size=batch_size,
            seed=case_seed,
        )
        start = time.time()
        result = run_portfolio(case, ("multi_fidelity", "sa_4rm"), config)
        seconds = time.time() - start
        mf = result.outcomes["multi_fidelity"]
        ref = result.outcomes["sa_4rm"]
        envelope = mf.envelope if mf.envelope is not None else 0.5
        if math.isinf(mf.score) or math.isinf(ref.score):
            case_within = math.isinf(mf.score) == math.isinf(ref.score)
            infeasible += 1
        else:
            # One-sided: better-than-reference is never a violation.
            case_within = math.log(mf.score / ref.score) <= envelope
        within += case_within
        wins += mf.score < ref.score
        mf_high_total += mf.high_evals
        ref_high_total += ref.high_evals
        cases.append(
            {
                "case_seed": case_seed,
                "grid_size": case.nrows,
                "mf_score": mf.score,
                "ref_score": ref.score,
                "mf_high_evals": mf.high_evals,
                "ref_high_evals": ref.high_evals,
                "mf_low_evals": mf.low_evals,
                "envelope": envelope,
                "within_envelope": bool(case_within),
                "seconds": round(seconds, 3),
            }
        )
    ratio = ref_high_total / max(mf_high_total, 1)
    payload = {
        "benchmark": "portfolio",
        "config": {
            "n_cases": n_cases,
            "rounds": max(n_batches, 1),
            "iterations": 3,
            "batch_size": batch_size,
            "comparator": "sa_4rm",
            "seed_policy": "config.seed = case_seed",
        },
        "high_eval_ratio": ratio,
        "within_envelope_fraction": within / n_cases,
        "mf_wins_fraction": wins / n_cases,
        "mf_high_evals_total": mf_high_total,
        "ref_high_evals_total": ref_high_total,
        "infeasible_cases": infeasible,
        "seconds_total": round(time.time() - start_all, 2),
        "cases": cases,
        "summary": (
            f"{n_cases} generated cases: {ratio:.2f}x fewer 4RM evals "
            f"({mf_high_total} vs {ref_high_total}), "
            f"{within}/{n_cases} within envelope, "
            f"{wins}/{n_cases} outright wins"
        ),
    }
    return payload


# ---------------------------------------------------------------------------
# Service observability overhead benchmark (BENCH_service_overhead.json)
# ---------------------------------------------------------------------------


def run_service_overhead_bench(
    grid_size: int = 9,
    n_batches: int = 2,
    batch_size: int = 1,
    n_workers: int = 1,  # accepted for CLI uniformity; single-worker service
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Measure what the service and its observability surface cost a job.

    Three legs, identical deterministic spec (a tiny generated case so the
    orchestration term is visible next to the compute term), median wall
    time over ``repeats``:

    * **baseline** -- ``SimulationExecutor.execute`` called directly: no
      queue, no HTTP, no telemetry consumers.
    * **disabled** -- the same spec as a job through a full
      :class:`DesignService` with every observability feature at its
      default (tracing off, nobody scraping): submit -> terminal state.
    * **enabled** -- the works: ``trace_jobs=True``, a live ``follow=1``
      event stream consumed end to end, and a parsed ``/metrics`` scrape
      per round event.

    The committed artifact is gated by
    ``tests/server/test_bench_service_overhead.py`` on machine-independent
    *ratios*: the service leg must track the direct leg within queue-poll
    noise, and the fully-observed leg must stay close to the unobserved
    one -- "observability is near-free unless armed, and cheap when armed".
    """
    import statistics
    import tempfile

    from repro.server import (
        DesignService,
        ServiceClient,
        SimulationExecutor,
        validate_submission,
    )
    from repro.telemetry.promexpo import parse_prometheus_text

    payload = {
        "case_seed": 7,
        "grid": grid_size,
        "rounds": max(n_batches, 1),
        "iterations": 1,
        "batch_size": batch_size,
        "seed": seed,
        "optimizers": ["multi_fidelity"],
    }
    spec = validate_submission(dict(payload))

    def run_direct() -> float:
        executor = SimulationExecutor()
        with tempfile.TemporaryDirectory() as ckpt:
            start = time.perf_counter()
            executor.execute(dict(spec), ckpt)
            return time.perf_counter() - start

    def run_service_leg(trace_jobs: bool, observe: bool) -> List[float]:
        times: List[float] = []
        with tempfile.TemporaryDirectory() as root:
            service = DesignService(
                root,
                n_workers=1,
                lease_ttl=30.0,
                trace_jobs=trace_jobs,
                stream_heartbeat=1.0,
            )
            service.start()
            try:
                client = ServiceClient(
                    f"http://127.0.0.1:{service.port}", timeout=30.0
                )
                for _ in range(repeats):
                    start = time.perf_counter()
                    job_id = client.submit(dict(payload))["job_id"]
                    if observe:
                        for event in client.follow_events(job_id):
                            if event["type"] == "portfolio.round":
                                parse_prometheus_text(client.metrics())
                    else:
                        client.wait(
                            job_id, timeout=600.0, poll_interval=0.05
                        )
                    times.append(time.perf_counter() - start)
                    if observe:
                        client.trace(job_id)  # must exist; not timed above
            finally:
                service.stop()
        return times

    baseline = [run_direct() for _ in range(repeats)]
    disabled = run_service_leg(trace_jobs=False, observe=False)
    enabled = run_service_leg(trace_jobs=True, observe=True)

    baseline_s = statistics.median(baseline)
    disabled_s = statistics.median(disabled)
    enabled_s = statistics.median(enabled)
    return {
        "benchmark": "service_overhead",
        "config": {
            "spec": payload,
            "repeats": repeats,
            "legs": ["baseline", "disabled", "enabled"],
        },
        "baseline_seconds": baseline_s,
        "disabled_seconds": disabled_s,
        "enabled_seconds": enabled_s,
        "baseline_runs": [round(t, 4) for t in baseline],
        "disabled_runs": [round(t, 4) for t in disabled],
        "enabled_runs": [round(t, 4) for t in enabled],
        "disabled_over_baseline": disabled_s / baseline_s,
        "enabled_over_disabled": enabled_s / disabled_s,
        "summary": (
            f"direct {baseline_s:.2f}s, service(quiet) {disabled_s:.2f}s "
            f"({disabled_s / baseline_s:.2f}x), service(observed) "
            f"{enabled_s:.2f}s ({enabled_s / disabled_s:.2f}x over quiet)"
        ),
    }


def write_bench_json(name: str, payload: dict, out_dir: Optional[Path] = None) -> Path:
    """Persist a benchmark payload as ``benchmarks/out/BENCH_<name>.json``.

    Written atomically (temp file + ``os.replace``) so a benchmark killed
    mid-write never leaves a torn artifact for trend tooling to half-parse.
    """
    out_dir = Path(__file__).parent / "out" if out_dir is None else Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    atomic_write_json(path, payload)
    return path


_BENCHES = {
    "parallel_eval": run_parallel_eval_bench,
    "portfolio": run_portfolio_bench,
    "service_overhead": run_service_overhead_bench,
    "solver_backends": run_solver_backends_bench,
}


def main(argv=None) -> int:
    """CLI: run a named perf benchmark, optionally writing BENCH_*.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench", choices=sorted(_BENCHES), default="parallel_eval",
        help="which perf benchmark to run",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="write benchmarks/out/BENCH_<name>.json",
    )
    parser.add_argument("--grid", type=int, default=21, help="grid size")
    parser.add_argument("--batches", type=int, default=16, help="batch count")
    parser.add_argument("--batch-size", type=int, default=4, help="candidates per batch")
    parser.add_argument("--workers", type=int, default=4, help="worker processes")
    parser.add_argument(
        "--cases", type=int, default=None,
        help="generated-case count (portfolio bench only; default 100)",
    )
    parser.add_argument("--out", type=Path, default=None, help="output directory")
    parser.add_argument(
        "--trace-out", type=Path, default=None, metavar="TRACE.json",
        help="also record spans and export a Chrome trace-event JSON here",
    )
    args = parser.parse_args(argv)

    if args.trace_out is not None:
        telemetry.set_tracing(True)
    kwargs = dict(
        grid_size=args.grid,
        n_batches=args.batches,
        batch_size=args.batch_size,
        n_workers=args.workers,
    )
    if args.bench == "portfolio":
        # Generated cases draw their own footprints; --grid stays with the
        # single-case benches.  --batches maps to portfolio rounds.
        kwargs["grid_size"] = 0
        kwargs["n_batches"] = min(args.batches, 4)
        if args.cases is not None:
            kwargs["n_cases"] = args.cases
    elif args.bench == "service_overhead":
        # Orchestration overhead, not solve time: a tiny job keeps the
        # compute term small so the overhead term is visible.
        kwargs["grid_size"] = 9 if args.grid == 21 else args.grid
        kwargs["n_batches"] = min(args.batches, 4)
    result = _BENCHES[args.bench](**kwargs)
    if args.trace_out is not None:
        write_chrome_trace(args.trace_out)
        telemetry.set_tracing(False)
        telemetry.clear_spans()
        print(f"[trace: {args.trace_out}]")
    if "summary" in result:
        print(f"{args.bench}: {result['summary']}")
    else:
        print(
            f"{args.bench}: seed {result['seed_seconds']:.2f}s, persistent "
            f"{result['persistent_seconds']:.2f}s, speedup "
            f"{result['speedup']:.2f}x, parity="
            f"{result['parity_seed_vs_persistent']}"
        )
    if "counters" in result:
        print(profiling.format_snapshot(
            {"counters": result["counters"], "timers": result["timers"]}
        ))
    if args.json:
        path = write_bench_json(args.bench, result, out_dir=args.out)
        print(f"[artifact: {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
