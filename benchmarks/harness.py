"""Shared machinery for the Table 3 / Table 4 benches.

Runs, for every benchmark case: the straight-channel baseline (best of the
global directions), the manual-design comparator (stand-in for the contest
winner; see DESIGN.md), and the staged-SA tree-like design flow.  Formats the
paper's row layout and improvement percentages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import format_table, result_row
from repro.analysis.tables import improvement_percent
from repro.errors import ReproError
from repro.iccad2015 import CASE_NUMBERS, load_case
from repro.optimize import (
    best_manual_design,
    best_straight_baseline,
    optimize_problem1,
    optimize_problem2,
)


@dataclass
class CaseOutcome:
    """Results of one case: baseline / manual / ours evaluations."""

    case_number: int
    baseline: Optional[object]
    manual: Optional[object]
    ours: Optional[object]
    ours_network: Optional[object]
    seconds: float


def run_problem(
    problem: str,
    grid_size: int,
    quick: bool,
    directions,
    cases=CASE_NUMBERS,
    include_manual: bool = True,
    seed: int = 0,
) -> List[CaseOutcome]:
    """Run one problem's full comparison across benchmark cases."""
    outcomes = []
    for number in cases:
        case = load_case(number, grid_size=grid_size)
        start = time.time()
        baseline = _try(lambda: best_straight_baseline(case, problem, model="4rm"))
        manual = (
            _try(lambda: best_manual_design(case, problem, model="4rm"))
            if include_manual
            else None
        )
        if problem == "problem1":
            ours = _try(
                lambda: optimize_problem1(
                    case, quick=quick, directions=directions, seed=seed
                )
            )
        else:
            ours = _try(
                lambda: optimize_problem2(
                    case, quick=quick, directions=directions, seed=seed
                )
            )
        outcomes.append(
            CaseOutcome(
                case_number=number,
                baseline=baseline.evaluation if baseline else None,
                manual=manual.evaluation if manual else None,
                ours=ours.evaluation if ours else None,
                ours_network=ours.network if ours else None,
                seconds=time.time() - start,
            )
        )
    return outcomes


def format_results(
    outcomes: List[CaseOutcome],
    objective: str,
    title: str,
    include_manual: bool = True,
) -> str:
    """Render Table 3/4-style blocks plus the improvement summary."""
    metrics = ["P_sys (kPa)", "T_max (K)", "DeltaT (K)", "W_pump (mW)"]
    blocks = [("Baseline (straight)", "baseline")]
    if include_manual:
        blocks.append(("Manual (comparator)", "manual"))
    blocks.append(("Ours (tree-like SA)", "ours"))

    rows = []
    for block_name, attr in blocks:
        for metric in metrics:
            row = [block_name if metric == metrics[0] else "", metric]
            for outcome in outcomes:
                evaluation = getattr(outcome, attr)
                cells = result_row(
                    evaluation
                    if evaluation is not None and evaluation.feasible
                    else None
                )
                row.append(cells[metric])
            rows.append(row)
    headers = ["design", "metric"] + [f"case {o.case_number}" for o in outcomes]
    table = format_table(headers, rows, title=title)

    summary = []
    for outcome in outcomes:
        if (
            outcome.baseline is not None
            and outcome.ours is not None
            and outcome.baseline.feasible
            and outcome.ours.feasible
        ):
            if objective == "w_pump":
                gain = improvement_percent(
                    outcome.baseline.w_pump, outcome.ours.w_pump
                )
                summary.append(
                    f"case {outcome.case_number}: {gain:.1f}% pumping power "
                    f"saving vs baseline ({outcome.seconds:.0f} s)"
                )
            else:
                gain = improvement_percent(
                    outcome.baseline.delta_t, outcome.ours.delta_t
                )
                summary.append(
                    f"case {outcome.case_number}: {gain:.1f}% thermal gradient "
                    f"reduction vs baseline ({outcome.seconds:.0f} s)"
                )
        else:
            feasible = (
                "ours feasible"
                if outcome.ours is not None and outcome.ours.feasible
                else "ours infeasible"
            )
            summary.append(
                f"case {outcome.case_number}: baseline infeasible (N/A), "
                f"{feasible} ({outcome.seconds:.0f} s)"
            )
    return table + "\n\n" + "\n".join(summary)


def _try(fn):
    try:
        return fn()
    except ReproError:
        return None
