"""Ablation: TSV-aware vertical conduction (the paper's future-work hook).

Channel layers are shared by TSVs and microchannels; the paper's future work
proposes co-optimizing them.  This ablation quantifies the thermal effect of
modeling the copper TSVs explicitly (vs treating reserved cells as silicon)
on both simulators.  Benchmarks the TSV-aware 4RM solve.
"""

from repro.analysis import format_table
from repro.iccad2015 import load_case
from repro.materials import COPPER
from repro.thermal import RC2Simulator, RC4Simulator

from conftest import GRID, emit


def test_ablation_tsv_modeling(benchmark):
    case = load_case(1, grid_size=GRID)
    stack = case.base_stack()
    p_sys = 1e4

    rows = []
    drops = {}
    for model_name, factory in (
        ("4RM", lambda tsv: RC4Simulator(stack, case.coolant, tsv_material=tsv)),
        (
            "2RM (400um)",
            lambda tsv: RC2Simulator(
                stack, case.coolant, tile_size=4, tsv_material=tsv
            ),
        ),
    ):
        plain = factory(None).solve(p_sys)
        tsv = factory(COPPER).solve(p_sys)
        drops[model_name] = plain.t_max - tsv.t_max
        rows.append(
            [
                model_name,
                f"{plain.t_max:.3f}",
                f"{tsv.t_max:.3f}",
                f"{plain.t_max - tsv.t_max:+.3f}",
                f"{plain.delta_t - tsv.delta_t:+.3f}",
            ]
        )
    table = format_table(
        [
            "model",
            "T_max plain (K)",
            "T_max w/ Cu TSVs (K)",
            "T_max drop (K)",
            "DeltaT drop (K)",
        ],
        rows,
        title="Ablation: modeling copper TSVs in channel layers "
        f"(case 1, grid {GRID}x{GRID}, P_sys = 10 kPa)",
    )
    emit("ablation_tsv", table)

    # Copper TSVs cool the stack in both models; the effect is a small
    # correction, not a game changer -- coolant still removes the heat.
    assert all(d > 0 for d in drops.values())
    assert all(d < 5.0 for d in drops.values())

    simulator = RC4Simulator(stack, case.coolant, tsv_material=COPPER)
    benchmark(simulator.solve, p_sys)
