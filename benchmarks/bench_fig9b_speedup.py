"""Fig. 9(b): 2RM speed-up over 4RM vs thermal-cell size.

Times steady solves of both models across thermal-cell sizes.  The paper's
findings to reproduce: speed-up grows with cell size (more than m^2 while
the linear solve dominates) and saturates once fixed overhead takes over.
Benchmark groups time the 4RM reference and the paper's 400 um 2RM setting
head to head.
"""

import time

import pytest

from repro.analysis import format_table
from repro.iccad2015 import load_case
from repro.thermal import RC2Simulator, RC4Simulator

from conftest import GRID, emit

TILE_SIZES = (2, 4, 6, 10, 16)


def _stack():
    case = load_case(1, grid_size=GRID)
    return case, case.base_stack()


def test_fig9b_speedup_curve(benchmark):
    case, stack = _stack()
    cell_um = case.cell_width * 1e6
    sim4 = RC4Simulator(stack, case.coolant)
    start = time.perf_counter()
    sim4.solve(1e4)
    t4 = time.perf_counter() - start

    rows = []
    speedups = {}
    for tile in TILE_SIZES:
        sim2 = RC2Simulator(stack, case.coolant, tile_size=tile)
        start = time.perf_counter()
        sim2.solve(1e4)
        t2 = time.perf_counter() - start
        speedups[tile] = t4 / t2
        rows.append(
            [
                f"{tile * cell_um:.0f} um",
                f"{sim2.n_nodes}",
                f"{t2 * 1e3:.2f} ms",
                f"{t4 / t2:.1f}x",
            ]
        )
    table = format_table(
        ["thermal cell", "2RM nodes", "2RM solve", "speed-up vs 4RM"],
        rows,
        title=(
            f"Fig. 9(b): 2RM speed-up over 4RM "
            f"({sim4.n_nodes} nodes, {t4 * 1e3:.1f} ms per solve)"
        ),
    )
    emit("fig9b_speedup", table)

    # Speed-up grows with thermal-cell size (allowing timer noise).
    assert speedups[TILE_SIZES[-1]] > speedups[TILE_SIZES[0]]
    # The paper's 400 um setting: an order of magnitude or more.
    assert speedups[4] > 5

    sim2 = RC2Simulator(stack, case.coolant, tile_size=4)
    benchmark(sim2.solve, 1e4)


def test_fig9b_reference_4rm(benchmark):
    case, stack = _stack()
    sim4 = RC4Simulator(stack, case.coolant)
    benchmark(sim4.solve, 1e4)
