"""Ablation: the inlet/outlet edge-conductance factor.

The paper only says the port conductance is "smaller" than a cell-to-cell
conductance; we default to 0.5 and expose the knob.  This ablation sweeps it
and reports how the baseline evaluation responds -- the factor shifts the
absolute pressure scale but must not change who wins or the shape of the
gradient curve.  Benchmarks a flow-field construction.
"""

from repro.analysis import format_table
from repro.cooling import CoolingSystem, evaluate_problem1
from repro.flow import FlowField
from repro.iccad2015 import load_case

from conftest import GRID, emit

FACTORS = (0.25, 0.5, 1.0, 2.0)


def test_ablation_edge_factor(benchmark):
    case = load_case(1, grid_size=GRID)
    straight = case.baseline_network()
    tree = case.tree_plan().build()

    rows = []
    winners = []
    for factor in FACTORS:
        evaluations = {}
        for name, network in (("straight", straight), ("tree", tree)):
            system = CoolingSystem.for_network(
                case.base_stack(),
                network,
                case.coolant,
                model="2rm",
                edge_factor=factor,
            )
            evaluations[name] = evaluate_problem1(
                system, case.delta_t_star, case.t_max_star
            )
        s = evaluations["straight"]
        t = evaluations["tree"]
        winners.append(
            "straight" if s.score <= t.score else "tree"
        )
        rows.append(
            [
                f"{factor:.2f}",
                f"{s.p_sys / 1e3:.2f}" if s.feasible else "N/A",
                f"{s.w_pump * 1e3:.3f}" if s.feasible else "N/A",
                f"{t.p_sys / 1e3:.2f}" if t.feasible else "N/A",
                f"{t.w_pump * 1e3:.3f}" if t.feasible else "N/A",
            ]
        )
    table = format_table(
        [
            "edge factor",
            "straight P_sys (kPa)",
            "straight W (mW)",
            "tree P_sys (kPa)",
            "tree W (mW)",
        ],
        rows,
        title="Ablation: inlet/outlet conductance factor (Problem 1 "
        "evaluation, uniform-init tree vs straight)",
    )
    emit("ablation_edge_factor", table + f"\nwinner per factor: {winners}")

    # The knob must not flip the comparison across the sweep.
    assert len(set(winners)) == 1

    benchmark(
        FlowField, straight, case.channel_height, case.coolant, 0.5
    )
