"""Fig. 10: case-1 bottom-source-layer temperature maps, P1 vs P2 designs.

Optimizes case 1 under both problem formulations and contrasts the resulting
temperature maps: the Problem 1 map is hotter overall (it buys the lowest
pumping power) with the full allowed spread; the Problem 2 map is flatter at
higher pumping power.  Benchmarks the 4RM map extraction solve.
"""

from repro.analysis import map_statistics, render_field, source_layer_map
from repro.cooling import CoolingSystem
from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1, optimize_problem2

from conftest import DIRECTIONS, QUICK, TABLE_GRID, emit


def test_fig10_thermal_maps(benchmark):
    case = load_case(1, grid_size=TABLE_GRID)
    p1 = optimize_problem1(case, quick=QUICK, directions=DIRECTIONS, seed=0)
    p2 = optimize_problem2(case, quick=QUICK, directions=DIRECTIONS, seed=0)

    maps = {}
    stats = {}
    systems = {}
    for label, result in (("P1", p1), ("P2", p2)):
        system = CoolingSystem.for_network(
            case.base_stack(), result.network, case.coolant, model="4rm"
        )
        systems[label] = (system, result.evaluation.p_sys)
        field = source_layer_map(system.evaluate(result.evaluation.p_sys))
        maps[label] = field
        stats[label] = map_statistics(field)

    lo = min(stats["P1"].t_min, stats["P2"].t_min)
    hi = max(stats["P1"].t_max, stats["P2"].t_max)
    sections = [
        "Fig. 10: bottom source layer of case 1 "
        f"(grid {TABLE_GRID}x{TABLE_GRID}; shared scale [{lo:.1f}, {hi:.1f}] K)",
    ]
    for label, result in (("P1", p1), ("P2", p2)):
        ev = result.evaluation
        sections.append(
            f"\n(a) {label}: P_sys={ev.p_sys / 1e3:.2f} kPa  "
            f"W_pump={ev.w_pump * 1e3:.2f} mW  DeltaT={ev.delta_t:.2f} K\n"
            f"    {stats[label]}\n"
            + render_field(maps[label], max_width=64, t_min=lo, t_max=hi)
        )
    emit("fig10_thermal_maps", "\n".join(sections))

    # The paper's contrast: P1 hotter + cheaper, P2 flatter + costlier.
    assert stats["P1"].t_mean > stats["P2"].t_mean
    assert p1.evaluation.w_pump < p2.evaluation.w_pump
    assert p2.evaluation.delta_t < p1.evaluation.delta_t

    system, p_sys = systems["P1"]

    def solve_map():
        system.clear_cache()
        return source_layer_map(system.evaluate(p_sys))

    benchmark(solve_map)
