"""Extension bench: run-time flow-rate control under dynamic power.

Not a paper figure -- the paper's stated future work ("combining cooling
networks with run-time thermal management ... adjustable flow rates"),
implemented and measured: a PI pressure controller tracking a peak-
temperature setpoint under a 2x DVFS power square wave, versus constant
worst-case pumping and no reaction.  Benchmarks one controlled period.
"""

from repro.analysis import format_table
from repro.iccad2015 import load_case
from repro.thermal import PIController, RC2Simulator, run_controlled

from conftest import GRID, emit


def test_ext_runtime_control(benchmark):
    case = load_case(1, grid_size=GRID)
    stack = case.stack_with_network(case.baseline_network())
    steady = RC2Simulator(stack, case.coolant, tile_size=4)

    def boost(t: float) -> float:
        return 2.0 if (t % 2.0) > 1.0 else 1.0

    setpoint = steady.solve(2e4).t_max + 4.0
    controller = PIController(
        setpoint=setpoint, kp=60.0, ki=30.0, p_min=2e3, p_max=1e5, period=0.1
    )
    controlled = run_controlled(
        steady, controller, duration=8.0, control_period=0.1, dt=0.02,
        p_initial=2e3, power_profile=boost,
    )
    p_worst = max(controlled.pressures)
    constant = run_controlled(
        steady, lambda t, p: p_worst, duration=8.0, control_period=0.1,
        dt=0.02, p_initial=p_worst, power_profile=boost,
    )
    passive = run_controlled(
        steady, lambda t, p: 2e3, duration=8.0, control_period=0.1,
        dt=0.02, p_initial=2e3, power_profile=boost,
    )

    def late_peak(trace):
        return max(
            t for time, t in zip(trace.times, trace.t_max) if time > 4.0
        )

    rows = [
        [
            name,
            f"{trace.mean_pumping_power * 1e3:.3f}",
            f"{late_peak(trace):.2f}",
        ]
        for name, trace in (
            ("PI control", controlled),
            ("constant worst-case", constant),
            ("no reaction", passive),
        )
    ]
    table = format_table(
        ["policy", "mean W_pump (mW)", "settled peak T_max (K)"],
        rows,
        title=(
            f"Extension: runtime flow control under 2x DVFS bursts "
            f"(case 1, grid {GRID}x{GRID}, setpoint {setpoint:.1f} K)"
        ),
    )
    emit("ext_runtime_control", table)

    assert controlled.mean_pumping_power < constant.mean_pumping_power
    assert late_peak(controlled) < late_peak(passive)

    def one_period():
        return run_controlled(
            steady, lambda t, p: 1e4, duration=0.1, control_period=0.1,
            dt=0.02, p_initial=1e4,
        )

    benchmark(one_period)
