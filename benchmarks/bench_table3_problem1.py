"""Table 3: pumping power minimization (Problem 1) across all five cases.

For each case: the best straight-channel baseline, the manual comparator
(contest-winner stand-in) and the staged-SA tree design, each scored by the
lowest feasible pumping power under DeltaT* and T_max*.  The paper's shape to
reproduce: the tree-like networks meet the same constraints at substantially
lower pumping power, and case 5 has no feasible straight baseline.

The benchmark fixture times one complete Algorithm-2 network evaluation (the
inner loop the whole SA flow is built from).
"""

from repro.cooling import CoolingSystem, evaluate_problem1
from repro.iccad2015 import load_case

from conftest import DIRECTIONS, QUICK, TABLE_GRID, emit
from harness import format_results, run_problem


def test_table3_problem1(benchmark):
    outcomes = run_problem(
        "problem1", TABLE_GRID, QUICK, DIRECTIONS, seed=0
    )
    text = format_results(
        outcomes,
        objective="w_pump",
        title=(
            f"Table 3: pumping power minimization "
            f"(grid {TABLE_GRID}x{TABLE_GRID}, quick={QUICK}, directions={DIRECTIONS})"
        ),
    )
    emit("table3_problem1", text)

    # Paper shape: cases 1-4 solvable by the SA flow; the straight baseline
    # fails on case 5 (high, highly varied power + tight T_max*).
    by_case = {o.case_number: o for o in outcomes}
    feasible_ours = [
        n for n in (1, 2, 3, 4) if by_case[n].ours and by_case[n].ours.feasible
    ]
    assert len(feasible_ours) >= 3
    assert by_case[5].baseline is None or not by_case[5].baseline.feasible
    # The tree design beats the straight baseline on most feasible cases.
    wins = sum(
        1
        for n in feasible_ours
        if by_case[n].baseline
        and by_case[n].baseline.feasible
        and by_case[n].ours.w_pump < by_case[n].baseline.w_pump
    )
    comparable = sum(
        1
        for n in feasible_ours
        if by_case[n].baseline and by_case[n].baseline.feasible
    )
    assert wins >= comparable / 2

    case = load_case(1, grid_size=TABLE_GRID)
    system = CoolingSystem.for_network(
        case.base_stack(), case.baseline_network(), case.coolant, model="2rm"
    )

    def evaluate():
        system.clear_cache()
        return evaluate_problem1(system, case.delta_t_star, case.t_max_star)

    benchmark(evaluate)
