"""Shared configuration of the benchmark harness.

Every bench regenerates one table or figure of the paper and writes its
artifact (the printed rows/series) to ``benchmarks/out/``.  Scale knobs:

* ``REPRO_GRID``   -- grid size in basic cells (default 31; the paper's
  contest grid is 101).
* ``REPRO_FULL=1`` -- paper-scale run: 101-cell grids, full SA schedules,
  all eight flow directions.  Expect hours, like the paper's 40-240 min
  per case.

Defaults keep the whole harness laptop-sized while preserving the shape of
every comparison (who wins, roughly by how much, where crossovers fall).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Paper-scale switch.
FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Benchmark grid size (basic cells per side).
GRID = int(os.environ.get("REPRO_GRID", "101" if FULL else "31"))

#: Grid size of the optimization benches (Tables 3/4, Fig. 10).  Below ~51
#: cells the chip is so short that coolant heating is negligible and straight
#: channels win trivially; the paper's trade-off regime needs longer
#: channels, so these benches never go below 51.
TABLE_GRID = max(GRID, 51)

#: Whether optimizers use the reduced stage schedules.
QUICK = not FULL

#: Global flow directions the optimizers attempt.
DIRECTIONS = tuple(range(8)) if FULL else (0, 1)

#: Artifact directory.
OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[artifact: {path}]")


@pytest.fixture(scope="session")
def bench_grid() -> int:
    return GRID


@pytest.fixture(scope="session")
def bench_quick() -> bool:
    return QUICK


@pytest.fixture(scope="session")
def bench_directions() -> tuple:
    return DIRECTIONS
