"""Fig. 7: a tree-like cooling network on 23 x 51 basic cells.

Rebuilds the figure's instance -- trees of four leaves whose trunks enter on
the west side and whose leaves exit east -- and renders it.  Benchmarks
network construction (the move-evaluation hot path of the SA search).
"""

from repro.analysis import render_network
from repro.geometry import check_design_rules
from repro.networks import plan_tree_bands

from conftest import emit


def test_fig7_tree_network(benchmark):
    plan = plan_tree_bands(23, 51)
    grid = plan.build()
    check_design_rules(grid).raise_if_failed()

    art = render_network(grid, max_width=150)
    header = (
        f"Fig. 7: tree-like cooling network on 23x51 basic cells\n"
        f"{plan.n_trees} trees, {grid.liquid_count} liquid cells, "
        f"{len(grid.inlets())} inlet / {len(grid.outlets())} outlet surfaces\n"
    )
    emit("fig7_tree_render", header + art)

    # The figure's structure: fewer roots than leaves, both sides ported.
    assert len(grid.inlets()) < len(grid.outlets())

    benchmark(plan.build)
