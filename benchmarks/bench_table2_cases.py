"""Table 2: ICCAD 2015 benchmark statistics.

Regenerates the paper's benchmark summary table from the case definitions
and times case instantiation (stack + synthetic floorplans).
"""

from repro.analysis import format_table
from repro.iccad2015 import CASE_NUMBERS, load_case

from conftest import GRID, emit


def test_table2_statistics(benchmark):
    cases = [load_case(n, grid_size=GRID) for n in CASE_NUMBERS]
    rows = []
    for case in cases:
        extras = []
        if case.restricted:
            extras.append("no channel in a restricted area")
        if case.matched_ports:
            extras.append("matched inlets/outlets across layers")
        rows.append(
            [
                case.number,
                case.n_dies,
                f"{case.channel_height * 1e6:.0f}",
                f"{case.die_power:.3f}",
                f"{case.delta_t_star:.0f}",
                f"{case.t_max_star:.2f}",
                "; ".join(extras) or "-",
            ]
        )
    table = format_table(
        [
            "#",
            "Die Num",
            "h_c (um)",
            "Die Power (W)",
            "DeltaT* (K)",
            "T_max* (K)",
            "Other Constraint",
        ],
        rows,
        title=f"Table 2: benchmark statistics (grid {GRID}x{GRID}, "
        "power scaled with die area)",
    )
    emit("table2_cases", table)

    benchmark(load_case, 4, grid_size=GRID)
