"""Persistent-pool candidate evaluation: speedup, parity, and counters.

Runs the SA-shaped batch-evaluation workload from ``harness.py`` twice --
once with the seed implementation (a fresh process pool and full-context
pickling per batch) and once with the persistent worker pool -- then pins
the PR's acceptance criteria: identical costs on every path and at least a
2x speedup on a >= 32-candidate workload with 4 workers.  Writes the
machine-readable artifact ``benchmarks/out/BENCH_parallel_eval.json`` so
future PRs have a perf trajectory to compare against.

The benchmark fixture times one persistent-pool batch (the steady-state
cost of an SA iteration's neighbor evaluation).
"""

import numpy as np

from repro.optimize.parallel import evaluate_population, shutdown_pools
from repro.optimize.stages import METRIC_FIXED_PRESSURE_GRADIENT, StageConfig
from repro.iccad2015 import load_case

from harness import make_sa_batches, run_parallel_eval_bench, write_bench_json

#: The acceptance workload: >= 32 candidates, 4 workers, SA-shaped batches.
N_BATCHES = 16
BATCH_SIZE = 4
N_WORKERS = 4


def test_parallel_eval_speedup(benchmark):
    result = run_parallel_eval_bench(
        grid_size=21,
        n_batches=N_BATCHES,
        batch_size=BATCH_SIZE,
        n_workers=N_WORKERS,
    )
    path = write_bench_json("parallel_eval", result)
    print(
        f"\nseed {result['seed_seconds']:.2f}s vs persistent "
        f"{result['persistent_seconds']:.2f}s: "
        f"{result['speedup']:.2f}x speedup over "
        f"{result['config']['n_candidates']} candidates"
        f"\n[artifact: {path}]"
    )

    # Parity: persistent-pool costs match both the seed implementation and
    # the serial path bit for bit.
    assert result["parity_seed_vs_persistent"]
    assert result["parity_serial_vs_persistent"]

    # Acceptance: >= 2x faster than the seed implementation on >= 32
    # candidates (measured 2.8-3.2x on an idle 4-core box; 2x leaves slack
    # for noisy CI machines).
    assert result["config"]["n_candidates"] >= 32
    assert result["speedup"] >= 2.0

    # The counters prove the mechanism: one pool start for all batches, and
    # every candidate's solver work visible across the process boundary.
    assert result["counters"]["parallel.pool_starts"] == 1
    assert result["counters"]["parallel.batches"] == N_BATCHES
    assert result["counters"]["parallel.candidates"] == N_BATCHES * BATCH_SIZE
    assert result["counters"]["cooling.simulations"] > 0

    # Steady-state cost of one SA iteration's neighbor batch.
    case = load_case(1, grid_size=21)
    plan = case.tree_plan()
    stage = StageConfig(
        "bench-stage1", 4, 1, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"
    )
    batch = make_sa_batches(plan, 1, BATCH_SIZE, seed=1)[0]

    def one_batch():
        return evaluate_population(
            case,
            plan,
            stage,
            "problem1",
            batch,
            fixed_pressure=2e4,
            n_workers=N_WORKERS,
        )

    try:
        benchmark(one_batch)
    finally:
        shutdown_pools()
