"""Ablation: the staged SA schedule vs a single flat stage (Table 1).

The paper stages its search "rougher and much quicker" first so more rounds
can explore the space.  This ablation gives a flat single-stage SA the same
total simulation budget order and compares final pumping power: the staged
schedule should match or beat the flat one.  Benchmarks one SA stage.
"""

from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1
from repro.optimize.stages import (
    METRIC_LOWEST_FEASIBLE_POWER,
    StageConfig,
    problem1_stages,
)
from repro.analysis import format_table

from conftest import GRID, QUICK, emit


def test_ablation_staged_vs_flat(benchmark):
    case = load_case(1, grid_size=GRID)
    staged = problem1_stages(quick=QUICK)
    flat_iterations = sum(s.iterations * s.rounds for s in staged) // 2
    flat = [
        StageConfig(
            "flat",
            flat_iterations,
            1,
            4,
            METRIC_LOWEST_FEASIBLE_POWER,
            "2rm",
        )
    ]

    result_staged = optimize_problem1(
        case, stages=staged, directions=(0,), seed=3
    )
    result_flat = optimize_problem1(case, stages=flat, directions=(0,), seed=3)

    rows = []
    for name, result in (("staged (Table 1)", result_staged), ("flat", result_flat)):
        ev = result.evaluation
        rows.append(
            [
                name,
                f"{ev.w_pump * 1e3:.3f}" if ev.feasible else "N/A",
                f"{ev.delta_t:.2f}" if ev.feasible else "N/A",
                f"{result.total_simulations}",
            ]
        )
    table = format_table(
        ["schedule", "W_pump (mW)", "DeltaT (K)", "simulations"],
        rows,
        title="Ablation: staged SA schedule vs flat single stage (Problem 1, "
        "case 1)",
    )
    emit("ablation_stages", table)

    assert result_staged.evaluation.feasible
    if result_flat.evaluation.feasible:
        assert (
            result_staged.evaluation.w_pump
            <= 1.5 * result_flat.evaluation.w_pump
        )

    single_stage = [
        StageConfig("bench", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")
    ]
    benchmark.pedantic(
        optimize_problem1,
        args=(case,),
        kwargs={"stages": single_stage, "directions": (0,), "seed": 1},
        rounds=1,
        iterations=1,
    )
