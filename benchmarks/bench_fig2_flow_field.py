"""Fig. 2(c): pressure and flow-rate distribution of a cooling network.

Solves the laminar flow network of a tree-like design and reports the
pressure/flow field statistics (the paper visualizes arrows and shading; we
report the distributions plus a rendered network).  Benchmarks the pressure
solve, the kernel every thermal simulation depends on.
"""

import numpy as np

from repro.analysis import format_table, render_network
from repro.flow import FlowField
from repro.iccad2015 import load_case

from conftest import GRID, emit


def test_fig2_flow_field(benchmark):
    case = load_case(1, grid_size=GRID)
    grid = case.tree_plan().build()
    field = FlowField(grid, case.channel_height, case.coolant)
    solution = field.at_pressure(10e3)

    speeds = np.abs(solution.edge_flows)
    rows = [
        ["liquid cells", f"{solution.n_cells}"],
        ["system flow rate", f"{solution.q_sys * 1e9:.2f} uL/s"],
        ["system resistance", f"{solution.r_sys:.3e} Pa s/m^3"],
        ["pumping power @10 kPa", f"{solution.w_pump * 1e3:.3f} mW"],
        ["cell pressure range", f"[{solution.pressures.min():.0f}, "
                                f"{solution.pressures.max():.0f}] Pa"],
        ["max |edge flow|", f"{speeds.max() * 1e9:.3f} uL/s"],
        ["median |edge flow|", f"{np.median(speeds) * 1e9:.3f} uL/s"],
        ["volume conservation residual",
         f"{np.abs(solution.conservation_residual()).max():.2e} m^3/s"],
    ]
    table = format_table(
        ["quantity", "value"],
        rows,
        title="Fig. 2(c): flow field of a tree-like network at P_sys = 10 kPa",
    )
    if GRID <= 61:
        table += "\n\n" + render_network(grid, max_width=150)
    emit("fig2_flow_field", table)

    # Trunk segments must carry more flow than leaf segments (conservation).
    assert speeds.max() > 3 * np.median(speeds)

    def solve():
        return FlowField(
            grid, case.channel_height, case.coolant
        ).at_pressure(10e3)

    benchmark(solve)
