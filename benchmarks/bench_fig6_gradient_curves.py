"""Fig. 6: the shape of DeltaT = f(P_sys) -- uni-modal or decreasing.

Sweeps the gradient curve of several networks and classifies each curve:
Section 4.1 argues f is either uni-modal (cells with later turning points end
up cooler, so the gradient eventually rises again) or monotone decreasing.
Algorithm 3's correctness rests on this dichotomy.  Benchmarks a full
ten-point gradient sweep.
"""

import numpy as np

from repro.analysis import classify_gradient_curve, format_table, pressure_sweep
from repro.cooling import CoolingSystem
from repro.iccad2015 import load_case
from repro.networks import serpentine_network

from conftest import GRID, emit


def _sweep(case, network):
    system = CoolingSystem.for_network(
        case.base_stack(), network, case.coolant, model="2rm"
    )
    return pressure_sweep(system, np.geomspace(5e2, 1.6e5, 10))


def test_fig6_gradient_curve_shapes(benchmark):
    case = load_case(1, grid_size=GRID)
    networks = [
        ("straight", case.baseline_network()),
        ("tree", case.tree_plan().build()),
        ("serpentine", serpentine_network(case.nrows, case.ncols, 0, 4)),
    ]
    rows = []
    shapes = {}
    series_lines = []
    for name, network in networks:
        sweep = _sweep(case, network)
        shape = sweep.gradient_shape()
        shapes[name] = shape
        rows.append(
            [
                name,
                shape,
                f"{sweep.delta_t.max():.2f}",
                f"{sweep.delta_t.min():.2f}",
                f"{sweep.delta_t[-1]:.2f}",
                "yes" if sweep.peak_is_monotone(rtol=1e-4) else "no",
            ]
        )
        series = "  ".join(
            f"{p / 1e3:.1f}:{dt:.2f}"
            for p, dt in zip(sweep.pressures, sweep.delta_t)
        )
        series_lines.append(f"{name:>10}  {series}")
    table = format_table(
        ["network", "f shape", "max dT (K)", "min dT (K)", "dT @160 kPa (K)",
         "h monotone"],
        rows,
        title="Fig. 6: gradient-curve shapes (kPa:K series below)",
    )
    emit("fig6_gradient_curves", table + "\n\n" + "\n".join(series_lines))

    # Section 4.1's dichotomy: every curve is uni-modal or decreasing, and
    # the peak-temperature curve is always monotone.
    assert set(shapes.values()) <= {"unimodal", "decreasing"}

    system = CoolingSystem.for_network(
        case.base_stack(), networks[0][1], case.coolant, model="2rm"
    )

    def gradient_sweep():
        system.clear_cache()
        return pressure_sweep(system, np.geomspace(5e2, 1.6e5, 10))

    benchmark(gradient_sweep)
