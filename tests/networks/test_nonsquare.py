"""Non-square footprints: generators must honor the requested final shape."""

import numpy as np
import pytest

from repro.geometry import Rect, check_design_rules
from repro.networks import plan_tree_bands, straight_network, tree_network
from repro.networks.base import canonical_cell, canonical_dims


class TestCanonicalFrame:
    def test_dims_swap_on_odd_rotations(self):
        assert canonical_dims(11, 21, 0) == (11, 21)
        assert canonical_dims(11, 21, 1) == (21, 11)
        assert canonical_dims(11, 21, 2) == (11, 21)
        assert canonical_dims(11, 21, 3) == (21, 11)

    @pytest.mark.parametrize("direction", range(8))
    def test_cell_map_inverts_grid_transform(self, direction):
        """canonical_cell must invert the array transform exactly."""
        from repro.geometry import ChannelGrid
        from repro.networks.base import GLOBAL_DIRECTIONS

        c_rows, c_cols = canonical_dims(9, 13, direction)
        grid = ChannelGrid(c_rows, c_cols, tsv_mask=None)
        marker = (min(3, c_rows - 1), min(5, c_cols - 1))
        grid.liquid[marker] = True
        rotations, flip = GLOBAL_DIRECTIONS[direction]
        final = grid.transformed(rotations, flip)
        (fr,), (fc,) = np.nonzero(final.liquid)
        back = canonical_cell((int(fr), int(fc)), final.nrows, final.ncols, direction)
        assert back == marker


class TestNonSquareGenerators:
    @pytest.mark.parametrize("direction", range(8))
    def test_straight_output_shape(self, direction):
        grid = straight_network(11, 21, direction=direction)
        assert grid.shape == (11, 21)
        assert check_design_rules(grid).ok

    @pytest.mark.parametrize("direction", range(8))
    def test_tree_output_shape(self, direction):
        plan = plan_tree_bands(11, 21, direction=direction)
        grid = plan.build()
        assert grid.shape == (11, 21)
        assert check_design_rules(grid).ok

    def test_restricted_respected_in_rotated_frame(self):
        rect = Rect(2, 6, 6, 12)
        for direction in range(8):
            grid = straight_network(15, 21, direction=direction, restricted=[rect])
            mask = rect.mask(15, 21)
            assert not (grid.liquid & mask).any(), direction

    def test_tree_restricted_respected_in_rotated_frame(self):
        rect = Rect(4, 8, 8, 14)
        for direction in range(8):
            plan = plan_tree_bands(21, 21, direction=direction, restricted=(rect,))
            grid = plan.build()
            mask = rect.mask(21, 21)
            assert not (grid.liquid & mask).any(), direction
