"""Unit tests for network-generator building blocks."""

import numpy as np
import pytest

from repro.errors import DesignRuleError, GeometryError
from repro.geometry import Rect
from repro.networks import carve_path, carve_ring_around, channel_tracks, empty_grid
from repro.networks.base import (
    GLOBAL_DIRECTIONS,
    apply_direction,
    connector_columns,
    row_is_clear,
)
from repro.networks import straight_network


class TestTrackHelpers:
    def test_channel_tracks_are_even(self):
        tracks = channel_tracks(11)
        assert tracks == [0, 2, 4, 6, 8, 10]

    def test_connector_columns_are_even(self):
        assert connector_columns(7) == [0, 2, 4, 6]

    def test_tracks_avoid_tsvs(self):
        grid = empty_grid(11, 11)
        for row in channel_tracks(11):
            assert not grid.tsv_mask[row].any()

    def test_row_is_clear(self):
        grid = empty_grid(11, 11, restricted=[Rect(0, 4, 2, 8)])
        assert row_is_clear(grid, 0, 0, 3)
        assert not row_is_clear(grid, 0, 0, 5)
        assert not row_is_clear(grid, 1, 0, 10)  # TSV row


class TestCarvePath:
    def test_straight_route(self):
        grid = empty_grid(11, 11)
        path = carve_path(grid, (0, 0), (0, 10))
        assert len(path) == 11
        assert grid.liquid[0].all()

    def test_detours_around_restricted(self):
        grid = empty_grid(11, 11, restricted=[Rect(0, 4, 3, 7)])
        path = carve_path(grid, (0, 0), (0, 10))
        assert grid.liquid[0, 0] and grid.liquid[0, 10]
        # Path avoids the forbidden cells.
        assert not (grid.liquid & grid.restricted_mask).any()
        assert not (grid.liquid & grid.tsv_mask).any()

    def test_no_route_raises(self):
        # A full-height restricted wall splits the grid.
        grid = empty_grid(11, 11, restricted=[Rect(0, 5, 11, 6)])
        with pytest.raises(DesignRuleError, match="no carvable route"):
            carve_path(grid, (0, 0), (0, 10))

    def test_blocked_endpoint_raises(self):
        grid = empty_grid(11, 11)
        with pytest.raises(DesignRuleError, match="not carvable"):
            carve_path(grid, (1, 1), (0, 10))  # TSV cell

    def test_out_of_bounds_endpoint(self):
        grid = empty_grid(11, 11)
        with pytest.raises(GeometryError, match="outside"):
            carve_path(grid, (0, 0), (0, 99))

    def test_trivial_path(self):
        grid = empty_grid(11, 11)
        path = carve_path(grid, (0, 0), (0, 0))
        assert path == [(0, 0)]
        assert grid.liquid[0, 0]


class TestRing:
    def test_ring_surrounds_rect(self):
        rect = Rect(4, 4, 7, 8)
        grid = empty_grid(15, 15, restricted=[rect])
        carve_ring_around(grid, rect)
        # The ring connects around on even tracks.
        assert grid.liquid[2, 2:9].all()  # top ring row (row 2 < 4, even)
        assert not (grid.liquid & grid.restricted_mask).any()

    def test_ring_at_boundary_raises(self):
        rect = Rect(0, 4, 3, 8)
        grid = empty_grid(15, 15, restricted=[rect])
        with pytest.raises(DesignRuleError, match="no room"):
            carve_ring_around(grid, rect)


class TestDirections:
    def test_eight_directions_defined(self):
        assert len(GLOBAL_DIRECTIONS) == 8
        assert len(set(GLOBAL_DIRECTIONS)) == 8

    def test_direction_zero_is_identity(self):
        grid = straight_network(11, 11)
        out = apply_direction(grid, 0)
        assert np.array_equal(out.liquid, grid.liquid)

    def test_all_directions_distinct_for_asymmetric_design(self):
        from repro.networks import serpentine_network

        base = serpentine_network(11, 11, direction=0, pitch=4)
        patterns = set()
        for d in range(8):
            out = apply_direction(base, d)
            patterns.add(out.liquid.tobytes() + str(sorted(
                (p.kind.value, p.side.value, p.index) for p in out.ports
            )).encode())
        assert len(patterns) == 8

    def test_invalid_direction(self):
        grid = straight_network(11, 11)
        with pytest.raises(GeometryError, match="direction"):
            apply_direction(grid, 8)
