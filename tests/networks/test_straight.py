"""Unit tests for straight-channel networks."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import PortKind, Rect, Side, check_design_rules
from repro.networks import straight_network


class TestCanonical:
    def test_channels_on_even_rows(self):
        grid = straight_network(11, 11)
        assert grid.liquid[::2].all()
        assert not grid.liquid[1::2].any()

    def test_ports_west_in_east_out(self):
        grid = straight_network(11, 11)
        assert all(p.side is Side.WEST for p in grid.inlets())
        assert all(p.side is Side.EAST for p in grid.outlets())
        assert len(grid.inlets()) == 6  # rows 0,2,...,10

    def test_pitch_reduces_channel_count(self):
        dense = straight_network(21, 21, pitch=2)
        sparse = straight_network(21, 21, pitch=4)
        assert sparse.liquid_count < dense.liquid_count
        assert len(sparse.inlets()) == 6

    def test_odd_pitch_rejected(self):
        with pytest.raises(GeometryError, match="pitch"):
            straight_network(11, 11, pitch=3)

    def test_legal(self):
        assert check_design_rules(straight_network(21, 21)).ok


class TestDirections:
    def test_north_south_direction(self):
        grid = straight_network(11, 11, direction=1)
        # 90-degree rotation: channels run vertically.
        assert grid.liquid[:, ::2].all()
        sides = {p.side for p in grid.ports}
        assert sides == {Side.NORTH, Side.SOUTH}

    @pytest.mark.parametrize("direction", range(8))
    def test_all_directions_legal(self, direction):
        grid = straight_network(21, 21, direction=direction)
        assert check_design_rules(grid).ok
        assert grid.liquid_count == straight_network(21, 21).liquid_count


class TestRestricted:
    def test_channels_avoid_restricted(self):
        rect = Rect(8, 8, 14, 14)
        grid = straight_network(21, 21, restricted=[rect])
        assert not (grid.liquid & grid.restricted_mask).any()

    def test_ring_reconnects_interrupted_channels(self):
        rect = Rect(8, 8, 14, 14)
        grid = straight_network(21, 21, restricted=[rect])
        # Connectivity rule passes: every liquid cell reaches inlet + outlet.
        assert check_design_rules(grid).ok

    def test_restricted_changes_resistance(self):
        from repro.flow import FlowField
        from repro.materials import WATER

        free = straight_network(21, 21)
        blocked = straight_network(21, 21, restricted=[Rect(8, 8, 14, 14)])
        r_free = FlowField(free, 2e-4, WATER).r_sys
        r_blocked = FlowField(blocked, 2e-4, WATER).r_sys
        assert r_blocked > r_free
