"""Unit tests for the hierarchical tree-like networks (Section 4.3)."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import PortKind, Rect, Side, check_design_rules
from repro.networks import TreePlan, TreeSpec, plan_tree_bands, tree_network


class TestTreeSpec:
    def test_valid_spec(self):
        spec = TreeSpec((0, 2, 4, 6), 2, 2, 6, 12)
        assert spec.n_leaves == 4
        assert spec.trunk_row == 2

    def test_leaf_count_must_match_arities(self):
        with pytest.raises(GeometryError, match="needs 4 leaf tracks"):
            TreeSpec((0, 2, 4), 2, 2, 6, 12)

    def test_tracks_must_be_even(self):
        with pytest.raises(GeometryError, match="even rows"):
            TreeSpec((1, 3), 2, 1, 6, 12)

    def test_tracks_must_ascend(self):
        with pytest.raises(GeometryError, match="ascending"):
            TreeSpec((4, 0), 2, 1, 6, 12)

    def test_branch_columns_must_be_even(self):
        with pytest.raises(GeometryError, match="even"):
            TreeSpec((0, 2), 2, 1, 5, 12)

    def test_branch_order(self):
        with pytest.raises(GeometryError, match="b1 <= b2"):
            TreeSpec((0, 2), 2, 1, 12, 6)

    def test_child_groups(self):
        spec = TreeSpec((0, 2, 4, 6, 8, 10), 2, 3, 6, 12)
        groups = spec.child_groups()
        assert groups == [(0, 2, 4), (6, 8, 10)]

    def test_with_branches(self):
        spec = TreeSpec((0, 2), 2, 1, 6, 12)
        moved = spec.with_branches(4, 10)
        assert (moved.b1, moved.b2) == (4, 10)
        assert moved.tracks == spec.tracks


class TestTreeNetwork:
    def test_basic_tree_carves_trunk_and_leaves(self):
        spec = TreeSpec((0, 2, 4, 6), 2, 2, 8, 14)
        grid = tree_network(9, 21, [spec])
        # Trunk on track 2 from west edge.
        assert grid.liquid[2, :9].all()
        # Leaves reach the east edge.
        for leaf in (0, 2, 4, 6):
            assert grid.liquid[leaf, 14:].all()
        assert check_design_rules(grid).ok

    def test_overlapping_tracks_rejected(self):
        specs = [
            TreeSpec((0, 2), 2, 1, 6, 12),
            TreeSpec((2, 4), 2, 1, 6, 12),
        ]
        with pytest.raises(GeometryError, match="multiple trees"):
            tree_network(9, 21, specs)

    def test_single_track_tree_is_straight_channel(self):
        spec = TreeSpec((0,), 1, 1, 6, 12)
        grid = tree_network(3, 21, [spec])
        assert grid.liquid[0].all()
        assert grid.liquid_count == 21

    def test_ternary_split(self):
        spec = TreeSpec((0, 2, 4), 3, 1, 10, 10)
        grid = tree_network(5, 21, [spec])
        assert check_design_rules(grid).ok
        # Three leaves at the east edge.
        assert sum(grid.liquid[r, -1] for r in (0, 2, 4)) == 3

    def test_more_leaves_than_trunks(self):
        grid = plan_tree_bands(21, 21).build()
        inlets = len(grid.inlets())
        outlets = len(grid.outlets())
        assert outlets > inlets


class TestTreePlan:
    def test_band_partition_covers_all_tracks(self):
        plan = plan_tree_bands(21, 21)
        covered = sorted(t for spec in plan.specs for t in spec.tracks)
        assert covered == list(range(0, 21, 2))

    def test_remainder_bands(self):
        # 26 tracks with 4-leaf trees leaves remainder 2.
        plan = plan_tree_bands(51, 51)
        sizes = [spec.n_leaves for spec in plan.specs]
        assert sum(sizes) == 26
        assert sizes[:-1] == [4] * 6 or sum(sizes[:-1]) + sizes[-1] == 26

    def test_params_round_trip(self):
        plan = plan_tree_bands(21, 21)
        params = plan.params()
        assert params.shape == (plan.n_trees, 2)
        same = plan.with_params(params)
        assert np.array_equal(same.params(), params)

    def test_clamp_snaps_even_and_orders(self):
        plan = plan_tree_bands(21, 21)
        raw = np.array([[15, 3]] * plan.n_trees)
        clamped = plan.clamp_params(raw)
        assert (clamped % 2 == 0).all()
        assert (clamped[:, 0] <= clamped[:, 1]).all()
        assert clamped.min() >= 0
        assert clamped.max() <= 20

    def test_clamp_bounds(self):
        plan = plan_tree_bands(21, 21)
        raw = np.array([[-10, 999]] * plan.n_trees)
        clamped = plan.clamp_params(raw)
        assert clamped.min() >= 0 and clamped.max() <= 20

    def test_wrong_shape_rejected(self):
        plan = plan_tree_bands(21, 21)
        with pytest.raises(GeometryError, match="parameter array"):
            plan.with_params(np.zeros((1, 2)))

    def test_direction_changes_build(self):
        plan = plan_tree_bands(21, 21)
        east = plan.build()
        south = plan.with_direction(1).build()
        assert not np.array_equal(east.liquid, south.liquid)
        assert check_design_rules(south).ok

    def test_invalid_leaves_per_tree(self):
        with pytest.raises(GeometryError, match="leaves_per_tree"):
            plan_tree_bands(21, 21, leaves_per_tree=5)

    @pytest.mark.parametrize("leaves", [2, 3, 4, 6, 9])
    def test_all_band_sizes_build_legal(self, leaves):
        plan = plan_tree_bands(41, 41, leaves_per_tree=leaves)
        assert check_design_rules(plan.build()).ok

    def test_params_affect_resistance(self):
        from repro.flow import FlowField
        from repro.materials import WATER

        plan = plan_tree_bands(21, 21)
        early = plan.with_params(
            plan.clamp_params(np.full((plan.n_trees, 2), [2, 4]))
        )
        late = plan.with_params(
            plan.clamp_params(np.full((plan.n_trees, 2), [16, 18]))
        )
        r_early = FlowField(early.build(), 2e-4, WATER).r_sys
        r_late = FlowField(late.build(), 2e-4, WATER).r_sys
        # Splitting early puts more of the length in parallel -> lower R.
        assert r_early < r_late


class TestRestrictedAreas:
    def test_tree_detours_around_restricted(self):
        rect = Rect(8, 8, 12, 14)
        plan = plan_tree_bands(21, 21, restricted=(rect,))
        grid = plan.build()
        assert not (grid.liquid & grid.restricted_mask).any()
        assert check_design_rules(grid).ok
