"""Unit tests for the Fig. 9 network sample set."""

import pytest

from repro.geometry import check_design_rules
from repro.networks import sample_networks
from repro.networks.library import STYLE_MANUAL, STYLE_STRAIGHT, STYLE_TREE


class TestSampleSet:
    @pytest.fixture(scope="class")
    def samples(self):
        return sample_networks(21, 21)

    def test_covers_all_styles(self, samples):
        styles = {style for _, style, _ in samples}
        assert styles == {STYLE_STRAIGHT, STYLE_TREE, STYLE_MANUAL}

    def test_names_unique(self, samples):
        names = [name for name, _, _ in samples]
        assert len(set(names)) == len(names)

    def test_all_samples_legal(self, samples):
        for name, _, grid in samples:
            result = check_design_rules(grid)
            assert result.ok, (name, result.violations)

    def test_deterministic(self):
        a = sample_networks(21, 21, seed=5)
        b = sample_networks(21, 21, seed=5)
        for (name_a, _, grid_a), (name_b, _, grid_b) in zip(a, b):
            assert name_a == name_b
            assert (grid_a.liquid == grid_b.liquid).all()

    def test_tree_variant_count(self):
        samples = sample_networks(21, 21, n_tree_variants=3)
        trees = [s for s in samples if s[1] == STYLE_TREE]
        assert len(trees) == 3

    def test_reasonable_total(self, samples):
        assert len(samples) >= 20
