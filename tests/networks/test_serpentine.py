"""Unit tests for the manual design styles."""

import pytest

from repro.errors import GeometryError
from repro.flow import FlowField
from repro.geometry import PortKind, check_design_rules
from repro.materials import WATER
from repro.networks import (
    coiled_network,
    ladder_network,
    serpentine_network,
    straight_network,
    variable_pitch_network,
)


class TestSerpentine:
    def test_single_inlet_single_outlet(self):
        grid = serpentine_network(21, 21)
        assert len(grid.inlets()) == 1
        assert len(grid.outlets()) == 1

    def test_legal(self):
        assert check_design_rules(serpentine_network(21, 21)).ok

    def test_much_higher_resistance_than_straight(self):
        """One long snake has far more fluid resistance than parallel rows."""
        straight = straight_network(21, 21)
        serp = serpentine_network(21, 21)
        r_straight = FlowField(straight, 2e-4, WATER).r_sys
        r_serp = FlowField(serp, 2e-4, WATER).r_sys
        assert r_serp > 10 * r_straight

    def test_pitch_variants_legal(self):
        for pitch in (2, 4, 6):
            assert check_design_rules(serpentine_network(21, 21, pitch=pitch)).ok

    def test_odd_pitch_rejected(self):
        with pytest.raises(GeometryError):
            serpentine_network(21, 21, pitch=5)


class TestLadder:
    def test_manifolds_carved(self):
        grid = ladder_network(21, 21)
        assert grid.liquid[:, 0].all()
        assert grid.liquid[:, 20].all()

    def test_legal(self):
        assert check_design_rules(ladder_network(21, 21)).ok

    def test_directions_legal(self):
        for d in range(4):
            assert check_design_rules(ladder_network(21, 21, direction=d)).ok


class TestCoiled:
    def test_two_inlets_one_outlet_opening(self):
        grid = coiled_network(21, 21)
        assert len(grid.inlets()) == 2
        assert len(grid.outlets()) >= 1

    def test_legal(self):
        assert check_design_rules(coiled_network(21, 21)).ok

    def test_too_small_rejected(self):
        with pytest.raises(GeometryError, match="8x8"):
            coiled_network(5, 5)


class TestVariablePitch:
    def test_denser_center(self):
        grid = variable_pitch_network(21, 21, dense_fraction=0.5)
        center_band = grid.liquid[8:13]
        edge_band = grid.liquid[0:5]
        assert center_band.sum() >= edge_band.sum()

    def test_legal(self):
        assert check_design_rules(variable_pitch_network(21, 21)).ok

    def test_invalid_fraction(self):
        with pytest.raises(GeometryError, match="dense_fraction"):
            variable_pitch_network(21, 21, dense_fraction=0.0)

    def test_full_fraction_equals_straight(self):
        grid = variable_pitch_network(21, 21, dense_fraction=1.0)
        straight = straight_network(21, 21)
        assert grid.liquid_count == straight.liquid_count
