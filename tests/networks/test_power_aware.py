"""Tests for the power-aware tree initialization."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import check_design_rules
from repro.iccad2015 import load_case
from repro.networks import plan_tree_bands, power_aware_initialization
from repro.networks.base import canonical_cell


class TestPowerAwareInitialization:
    def test_uniform_power_keeps_uniform_init(self):
        plan = plan_tree_bands(21, 21)
        power = np.full((21, 21), 1.0)
        seeded = power_aware_initialization(plan, power)
        params = seeded.params()
        assert (params[:, 0] == params[0, 0]).all()
        assert (params[:, 1] == params[0, 1]).all()

    def test_hot_band_splits_earlier(self):
        plan = plan_tree_bands(21, 21)
        power = np.full((21, 21), 0.1)
        hot_band = plan.specs[1]
        power[min(hot_band.tracks) : max(hot_band.tracks) + 1, :] = 2.0
        seeded = power_aware_initialization(plan, power)
        params = seeded.params()
        # The hot band's first branch moves toward the inlet.
        assert params[1, 0] < params[0, 0]
        assert params[1, 0] < params[2, 0]

    def test_all_configurations_legal(self):
        rng = np.random.default_rng(3)
        plan = plan_tree_bands(21, 21)
        for _ in range(5):
            power = rng.random((21, 21))
            grid = power_aware_initialization(plan, power).build()
            assert check_design_rules(grid).ok

    @pytest.mark.parametrize("direction", range(8))
    def test_direction_frames_align(self, direction):
        """The hottest band in the final frame must split earliest even
        when the plan is rotated."""
        plan = plan_tree_bands(21, 21, direction=direction)
        # Heat the final-frame region that maps to the canonical band of
        # spec 0 (tracks 0..6): pick the canonical cell (3, 10) and place
        # the hotspot at its final-frame image.
        power = np.full((21, 21), 0.1)
        # Find which final cell maps back to canonical (3, 10).
        target = None
        for r in range(21):
            for c in range(21):
                if canonical_cell((r, c), 21, 21, direction) == (3, 10):
                    target = (r, c)
                    break
            if target:
                break
        power[target] = 50.0
        seeded = power_aware_initialization(plan, power)
        params = seeded.params()
        assert params[0, 0] == params[:, 0].min()

    def test_shape_mismatch_rejected(self):
        plan = plan_tree_bands(21, 21)
        with pytest.raises(GeometryError, match="does not match"):
            power_aware_initialization(plan, np.ones((5, 5)))

    def test_zero_power_is_identity(self):
        plan = plan_tree_bands(21, 21)
        seeded = power_aware_initialization(plan, np.zeros((21, 21)))
        assert np.array_equal(seeded.params(), plan.params())

    def test_seed_at_least_as_good_for_gradient(self):
        """On a hot-band case the seeded network's fixed-pressure gradient
        should not be worse than the uniform tree's."""
        case = load_case(1, grid_size=31)
        from repro.cooling import CoolingSystem

        plan = case.tree_plan()
        total_power = sum(case.power_maps)
        seeded = power_aware_initialization(plan, total_power)

        def gradient(p):
            system = CoolingSystem.for_network(
                case.base_stack(), p.build(), case.coolant, model="2rm"
            )
            return system.delta_t(5e3)

        assert gradient(seeded) <= gradient(plan) * 1.10
