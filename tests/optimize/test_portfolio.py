"""The multi-fidelity optimizer portfolio (ISSUE tentpole + satellite 3/4).

Three layers under test:

* the registry seam (names resolve, collisions and typos are loud);
* the offset model and multi-fidelity evaluator (log-space correction,
  memoization, fidelity eval accounting, corrected-2RM/4RM top-k
  agreement within the calibrated tolerance);
* the round-based orchestrator (seeded determinism, bitwise
  checkpoint/resume, worker-count invariance, per-optimizer run logs).
"""

import math

import numpy as np
import pytest

from repro.cases import generate_case
from repro.checkpoint import CheckpointError
from repro.cooling.evaluation import EvaluationResult
from repro.errors import SearchError
from repro.optimize.portfolio import (
    DEFAULT_PORTFOLIO,
    MultiFidelityEvaluator,
    OffsetModel,
    PortfolioConfig,
    run_portfolio,
)
from repro.optimize.registry import (
    get_optimizer,
    optimizer_names,
    register_optimizer,
)
from repro.optimize.runner import PROBLEM_PUMPING_POWER
from repro.telemetry.runlog import read_run_log

QUICK = PortfolioConfig(rounds=2, iterations=2, batch_size=2, seed=3)


@pytest.fixture(scope="module")
def case():
    return generate_case(7)


def outcomes_equal(a, b) -> bool:
    return (
        np.array_equal(a.params, b.params)
        and a.score == b.score
        and a.low_evals == b.low_evals
        and a.high_evals == b.high_evals
        and a.rounds == b.rounds
        and a.offset_state == b.offset_state
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = optimizer_names()
        for expected in (
            "multi_fidelity", "tempering", "random_restart", "sa_4rm",
            "staged_sa",
        ):
            assert expected in names
        assert set(DEFAULT_PORTFOLIO) <= set(names)

    def test_lookup_returns_entry(self):
        entry = get_optimizer("multi_fidelity")
        assert entry.name == "multi_fidelity"
        assert entry.description
        assert entry.factory().name == "multi_fidelity"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SearchError, match="multi_fidelity"):
            get_optimizer("gradient_descent")

    def test_collision_is_loud(self):
        with pytest.raises(SearchError, match="already registered"):
            register_optimizer("multi_fidelity", "imposter")(object)


class TestOffsetModel:
    def test_recovers_multiplicative_factor(self):
        model = OffsetModel(scale=1.0)
        for low in (0.1, 0.5, 2.0, 7.0):
            model.observe(low, 3.0 * low)
        assert model.log_offset == pytest.approx(math.log(3.0))
        assert model.correct(1.0) == pytest.approx(3.0)
        # A clean multiplicative relationship calibrates a tight envelope
        # (the floor), and corrected scores agree with references under it.
        assert model.tolerance() == model.min_tolerance
        assert model.agrees(model.correct(0.9), 3.0 * 0.9)

    def test_identity_before_any_pair(self):
        model = OffsetModel(scale=1.0)
        assert model.log_offset == 0.0
        assert model.correct(5.0) == 5.0
        assert model.tolerance() >= 0.5  # undersampled: wide envelope

    def test_ignores_nonfinite_and_nonpositive_pairs(self):
        model = OffsetModel(scale=1.0)
        model.observe(math.inf, 2.0)
        model.observe(1.0, math.inf)
        model.observe(0.0, 1.0)
        model.observe(-1.0, 1.0)
        assert model.n_pairs == 0

    def test_tolerance_tracks_dispersion(self):
        tight = OffsetModel(scale=1.0)
        loose = OffsetModel(scale=1.0)
        for low in (0.1, 1.0, 4.0):
            tight.observe(low, 2.0 * low)
        for low, factor in ((0.1, 1.2), (1.0, 4.0), (4.0, 0.7)):
            loose.observe(low, factor * low)
        assert loose.tolerance() > tight.tolerance()

    def test_infinite_scores_agree_only_with_infinite(self):
        model = OffsetModel(scale=1.0)
        assert model.agrees(math.inf, math.inf)
        assert not model.agrees(math.inf, 1.0)
        assert not model.agrees(1.0, math.inf)

    def test_state_round_trip(self):
        model = OffsetModel(scale=2.0)
        model.observe(1.0, 3.0)
        clone = OffsetModel(scale=1.0)
        clone.restore(model.state())
        assert clone.pairs == model.pairs
        assert clone.scale == model.scale
        assert clone.correct(1.0) == model.correct(1.0)


class TestMultiFidelityEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self, case):
        return MultiFidelityEvaluator(
            case, case.tree_plan(), PROBLEM_PUMPING_POWER
        )

    def test_low_is_memoized(self, evaluator):
        params = evaluator.plan.params()
        before = evaluator.low_evals
        first = evaluator.low(params)
        mid = evaluator.low_evals
        second = evaluator.low(params)
        assert first == second
        assert mid == before + 1 and evaluator.low_evals == mid

    def test_batch_dedupes_repeats(self, evaluator):
        params = evaluator.plan.params()
        shifted = evaluator.plan.clamp_params(params + 1)
        before = evaluator.low_evals
        costs = evaluator.low_batch([params, shifted, params, shifted])
        assert costs[0] == costs[2] and costs[1] == costs[3]
        assert evaluator.low_evals <= before + 2

    def test_promotion_calibrates_offset(self, evaluator):
        params = evaluator.plan.params()
        pairs_before = evaluator.offset.n_pairs
        evaluation = evaluator.promote(params)
        assert evaluation.fidelity == "high"
        assert evaluation.feasible
        assert evaluator.offset.n_pairs == pairs_before + 1
        # Memoized: a second promotion is free and observes nothing new.
        evaluator.promote(params)
        assert evaluator.offset.n_pairs == pairs_before + 1

    def test_state_round_trip(self, evaluator, case):
        fresh = MultiFidelityEvaluator(
            case, case.tree_plan(), PROBLEM_PUMPING_POWER
        )
        fresh.restore(evaluator.state())
        params = evaluator.plan.params()
        before = fresh.low_evals
        assert fresh.low(params) == evaluator.low(params)
        assert fresh.low_evals == before  # cache hit, not a re-evaluation

    def test_unknown_problem_rejected(self, case):
        with pytest.raises(SearchError, match="unknown problem"):
            MultiFidelityEvaluator(case, case.tree_plan(), "problem9")


class TestTopKAgreement:
    """Satellite 3: corrected-2RM promotion agrees with the 4RM oracle."""

    def test_topk_promotion_within_calibrated_envelope(self, case):
        """Promoting the top-k by (corrected) surrogate score finds a
        candidate whose reference score is within the calibrated envelope
        of the true reference optimum over the whole pool."""
        evaluator = MultiFidelityEvaluator(
            case, case.tree_plan(), PROBLEM_PUMPING_POWER
        )
        plan = evaluator.plan
        rng = np.random.default_rng(42)
        pool = [plan.params()]
        for _ in range(7):
            pool.append(
                plan.clamp_params(
                    pool[-1] + rng.integers(-4, 5, size=np.shape(pool[-1]))
                )
            )
        low = evaluator.low_batch(pool)
        high = [evaluator.high_evaluation(p).score for p in pool]
        for l, h in zip(low, high):
            evaluator.offset.observe(l, h)
        finite = [i for i in range(len(pool)) if math.isfinite(high[i])]
        assert finite, "pool degenerated to all-infeasible"
        k = 2
        topk = sorted(finite, key=lambda i: evaluator.corrected(low[i]))[:k]
        best_promoted = min(high[i] for i in topk)
        best_true = min(high[i] for i in finite)
        assert (
            math.log(best_promoted / best_true) <= evaluator.offset.tolerance()
        )

    def test_correction_preserves_ranking(self):
        model = OffsetModel(scale=1.0)
        model.observe(1.0, 2.5)
        scores = [0.3, 1.7, 0.9, 5.0]
        assert sorted(range(4), key=lambda i: scores[i]) == sorted(
            range(4), key=lambda i: model.correct(scores[i])
        )


class TestRunPortfolio:
    def test_seeded_determinism(self, case):
        a = run_portfolio(case, ("multi_fidelity",), QUICK)
        b = run_portfolio(case, ("multi_fidelity",), QUICK)
        assert outcomes_equal(
            a.outcomes["multi_fidelity"], b.outcomes["multi_fidelity"]
        )

    def test_outcomes_are_verified_at_high_fidelity(self, case):
        result = run_portfolio(case, ("multi_fidelity", "tempering"), QUICK)
        for outcome in result.outcomes.values():
            assert isinstance(outcome.evaluation, EvaluationResult)
            assert outcome.evaluation.fidelity == "high"
            assert outcome.score == outcome.evaluation.score
            assert outcome.high_evals >= 1
            assert len(outcome.rounds) == QUICK.rounds
        assert result.best.name in result.outcomes

    def test_worker_count_invariance(self, case):
        serial = run_portfolio(case, ("tempering",), QUICK)
        cfg = PortfolioConfig(
            rounds=QUICK.rounds,
            iterations=QUICK.iterations,
            batch_size=QUICK.batch_size,
            seed=QUICK.seed,
            n_workers=2,
        )
        pooled = run_portfolio(case, ("tempering",), cfg)
        a, b = serial.outcomes["tempering"], pooled.outcomes["tempering"]
        assert np.array_equal(a.params, b.params)
        assert a.score == b.score
        assert a.low_evals == b.low_evals

    def test_empty_portfolio_rejected(self, case):
        with pytest.raises(SearchError, match="at least one"):
            run_portfolio(case, ())

    def test_resume_without_dir_rejected(self, case):
        with pytest.raises(CheckpointError, match="checkpoint_dir"):
            run_portfolio(case, ("multi_fidelity",), QUICK, resume=True)

    def test_run_logs_compare_ready(self, case, tmp_path):
        run_portfolio(
            case,
            ("multi_fidelity", "sa_4rm"),
            QUICK,
            run_log_dir=str(tmp_path),
        )
        for name in ("multi_fidelity", "sa_4rm"):
            records = read_run_log(tmp_path / f"{name}.jsonl")
            types = [r["type"] for r in records]
            assert types[0] == "run.start"
            assert types[-1] == "run.end"
            assert types.count("round.end") == QUICK.rounds
            assert types.count("portfolio.round") == QUICK.rounds
        mf = read_run_log(tmp_path / "multi_fidelity.jsonl")
        promotions = [r for r in mf if r["type"] == "portfolio.promotion"]
        assert promotions and all("offset" in r for r in promotions)


class TestCheckpointResume:
    def test_interrupted_resume_is_bitwise(self, case, tmp_path, monkeypatch):
        import repro.optimize.portfolio as pf

        opts = ("multi_fidelity", "tempering")
        reference = run_portfolio(case, opts, QUICK)

        calls = {"n": 0}
        original = pf.MultiFidelityOptimizer.run_round

        def interrupted(self, ctx, state, round_i):
            original(self, ctx, state, round_i)
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt

        monkeypatch.setattr(pf.MultiFidelityOptimizer, "run_round", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_portfolio(case, opts, QUICK, checkpoint_dir=str(tmp_path))
        monkeypatch.setattr(pf.MultiFidelityOptimizer, "run_round", original)

        resumed = run_portfolio(
            case, opts, QUICK, checkpoint_dir=str(tmp_path), resume=True
        )
        for name in opts:
            assert outcomes_equal(
                reference.outcomes[name], resumed.outcomes[name]
            )

    def test_resume_with_missing_checkpoint_starts_fresh(self, case, tmp_path):
        result = run_portfolio(
            case,
            ("multi_fidelity",),
            QUICK,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert "multi_fidelity" in result.outcomes

    def test_config_change_invalidates_checkpoint(self, case, tmp_path):
        with pytest.raises(KeyboardInterrupt):
            import repro.optimize.portfolio as pf

            original = pf.MultiFidelityOptimizer.run_round

            def bomb(self, ctx, state, round_i):
                original(self, ctx, state, round_i)
                raise KeyboardInterrupt

            pf.MultiFidelityOptimizer.run_round = bomb
            try:
                run_portfolio(
                    case, ("multi_fidelity",), QUICK,
                    checkpoint_dir=str(tmp_path),
                )
            finally:
                pf.MultiFidelityOptimizer.run_round = original
        other = PortfolioConfig(
            rounds=QUICK.rounds,
            iterations=QUICK.iterations,
            batch_size=QUICK.batch_size,
            seed=QUICK.seed + 1,
        )
        with pytest.raises(CheckpointError):
            run_portfolio(
                case, ("multi_fidelity",), other,
                checkpoint_dir=str(tmp_path), resume=True,
            )


class TestConfigValidation:
    def test_rejects_unknown_problem(self):
        with pytest.raises(SearchError, match="unknown problem"):
            PortfolioConfig(problem="problem3")

    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(SearchError):
            PortfolioConfig(rounds=0)

    def test_rejects_flat_ladder(self):
        with pytest.raises(SearchError, match="replica_spacing"):
            PortfolioConfig(replica_spacing=1.0)
