"""Integration tests for the staged SA design flows.

Tiny schedules on tiny grids: the goal is to exercise every code path
(stage hand-off, re-scoring, grouped evaluation, final 4RM evaluation), not
to reach publication-quality optima -- the benchmark harness does that.
"""

import math

import numpy as np
import pytest

from repro.errors import SearchError
from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1, optimize_problem2
from repro.optimize.runner import (
    PROBLEM_PUMPING_POWER,
    _CandidateEvaluator,
    run_staged_flow,
)
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    StageConfig,
)

TINY = [
    StageConfig("s1", 4, 1, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"),
    StageConfig("s2", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm"),
]


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


class TestProblem1Flow:
    @pytest.fixture(scope="class")
    def result(self):
        return optimize_problem1(
            load_case(1, grid_size=21),
            stages=TINY,
            directions=(0,),
            seed=0,
        )

    def test_produces_feasible_design(self, result):
        assert result.evaluation.feasible
        assert math.isfinite(result.evaluation.score)

    def test_constraints_hold(self, result):
        case = load_case(1, grid_size=21)
        assert result.evaluation.delta_t <= case.delta_t_star * 1.02
        assert result.evaluation.t_max <= case.t_max_star * 1.02

    def test_network_is_legal(self, result):
        from repro.geometry import check_design_rules

        assert check_design_rules(result.network).ok

    def test_stage_reports(self, result):
        assert [r.stage for r in result.stage_reports] == ["s1", "s2"]
        assert all(r.simulations > 0 for r in result.stage_reports)

    def test_plan_rebuilds_network(self, result):
        rebuilt = result.plan.build()
        assert (rebuilt.liquid == result.network.liquid).all()


class TestProblem2Flow:
    def test_quick_flow(self, case):
        result = optimize_problem2(case, quick=True, directions=(0,), seed=1)
        assert result.evaluation.feasible
        assert result.evaluation.w_pump <= case.w_pump_star() * 1.01
        assert result.evaluation.t_max <= case.t_max_star


class TestDirections:
    def test_multiple_directions_picks_best(self, case):
        single = run_staged_flow(
            case, TINY, PROBLEM_PUMPING_POWER, directions=(0,), seed=0
        )
        multi = run_staged_flow(
            case, TINY, PROBLEM_PUMPING_POWER, directions=(0, 2), seed=0
        )
        assert multi.evaluation.score <= single.evaluation.score * 1.001
        assert multi.total_simulations > single.total_simulations

    def test_empty_directions_rejected(self, case):
        with pytest.raises(SearchError, match="direction"):
            run_staged_flow(case, TINY, PROBLEM_PUMPING_POWER, directions=())

    def test_unknown_problem_rejected(self, case):
        with pytest.raises(SearchError, match="unknown problem"):
            run_staged_flow(case, TINY, "problem3", directions=(0,))


class TestCandidateEvaluator:
    def test_caches_by_params(self, case):
        stage = TINY[1]
        plan = case.tree_plan()
        evaluator = _CandidateEvaluator(case, plan, stage, PROBLEM_PUMPING_POWER)
        params = plan.params()
        first = evaluator(params)
        sims = evaluator.simulations
        second = evaluator(params)
        assert first == second
        assert evaluator.simulations == sims

    def test_fixed_pressure_metric_needs_reference(self, case):
        stage = TINY[0]
        plan = case.tree_plan()
        evaluator = _CandidateEvaluator(
            case, plan, stage, PROBLEM_PUMPING_POWER, fixed_pressure=None
        )
        assert math.isinf(evaluator(plan.params()))

    def test_fixed_pressure_metric_scores_gradient(self, case):
        stage = TINY[0]
        plan = case.tree_plan()
        evaluator = _CandidateEvaluator(
            case, plan, stage, PROBLEM_PUMPING_POWER, fixed_pressure=1e4
        )
        cost = evaluator(plan.params())
        assert 0 < cost < 100  # a gradient in kelvin
