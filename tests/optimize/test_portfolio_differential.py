"""Distribution-level 2RM-vs-4RM differential suite (ISSUE satellite 3).

Every test here runs per generated-case seed, so a failure names the exact
case that broke the surrogate contract (reproduce with
``repro.cases.generate_case(seed)``).  The seed count scales with the
``REPRO_DIFFERENTIAL_CASES`` environment variable: tier-1 runs a small
deterministic slice, the CI chaos job runs the full ~50-case sweep.

The contract under test: per case, the 2RM surrogate relates to the 4RM
reference *multiplicatively* with small dispersion, so after calibrating
the log-space offset model on half of a candidate pool,

* held-out candidates' corrected surrogate scores agree with their
  reference scores within the calibrated envelope, and
* promoting the surrogate's top-k finds a candidate whose reference score
  is within the envelope of the pool's true reference optimum.
"""

import math
import os

import numpy as np
import pytest

from repro.cases import generate_case
from repro.optimize.portfolio import MultiFidelityEvaluator, OffsetModel
from repro.optimize.runner import PROBLEM_PUMPING_POWER

#: Chaos CI exports REPRO_DIFFERENTIAL_CASES=50; tier-1 runs a fast slice.
N_CASES = int(os.environ.get("REPRO_DIFFERENTIAL_CASES", "4"))
POOL_SIZE = 8
TOP_K = 2


def candidate_pool(evaluator, seed):
    plan = evaluator.plan
    rng = np.random.default_rng(seed)
    pool = [plan.params()]
    for _ in range(POOL_SIZE - 1):
        pool.append(
            plan.clamp_params(
                pool[-1] + rng.integers(-4, 5, size=np.shape(pool[-1]))
            )
        )
    return pool


@pytest.mark.parametrize("seed", range(N_CASES))
def test_surrogate_contract_on_generated_case(seed):
    case = generate_case(seed)
    evaluator = MultiFidelityEvaluator(
        case, case.tree_plan(), PROBLEM_PUMPING_POWER
    )
    pool = candidate_pool(evaluator, seed)
    low = evaluator.low_batch(pool)
    high = [evaluator.high_evaluation(p).score for p in pool]
    finite = [
        i for i in range(POOL_SIZE)
        if math.isfinite(low[i]) and math.isfinite(high[i])
    ]
    assert len(finite) >= 4, f"case seed {seed}: pool mostly infeasible"

    # Calibrate on the even-index half, hold the odd-index half out.
    train = [i for k, i in enumerate(finite) if k % 2 == 0]
    held_out = [i for k, i in enumerate(finite) if k % 2 == 1]
    model = OffsetModel(scale=evaluator.offset.scale)
    for i in train:
        model.observe(low[i], high[i])

    disagreements = [
        i for i in held_out if not model.agrees(model.correct(low[i]), high[i])
    ]
    assert len(disagreements) <= len(held_out) // 4, (
        f"case seed {seed}: corrected 2RM disagreed with 4RM beyond the "
        f"calibrated envelope ({model.tolerance():.3f} in log space) on "
        f"candidates {disagreements}"
    )

    # Top-k promotion by corrected surrogate score bounds the regret.
    topk = sorted(finite, key=lambda i: model.correct(low[i]))[:TOP_K]
    best_promoted = min(high[i] for i in topk)
    best_true = min(high[i] for i in finite)
    regret = math.log(best_promoted / best_true)
    assert regret <= model.tolerance(), (
        f"case seed {seed}: promoting the surrogate top-{TOP_K} missed the "
        f"reference optimum by {regret:.3f} in log space "
        f"(envelope {model.tolerance():.3f})"
    )
