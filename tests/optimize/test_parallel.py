"""Tests for batched/parallel neighbor evaluation."""

import math

import numpy as np
import pytest

from repro import profiling
from repro.errors import SearchError
from repro.iccad2015 import load_case
from repro.optimize import SAConfig, optimize_problem1
from repro.optimize.annealing import simulated_annealing_batch
from repro.optimize.parallel import (
    CandidateCrashError,
    PersistentEvaluationPool,
    _score_candidate,
    evaluate_population,
    shutdown_pools,
)
from repro.optimize.runner import PROBLEM_PUMPING_POWER
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
    StageConfig,
)

STAGE = StageConfig("s", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")

#: One-solve-per-candidate stage for the cheap parity/pool tests.
FIXED_STAGE = StageConfig("f", 4, 1, 4, METRIC_FIXED_PRESSURE_GRADIENT, "2rm")
FIXED_PRESSURE = 2e4


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


@pytest.fixture(autouse=True)
def _clean_pools():
    """Leave no warm worker pools behind any of these tests."""
    yield
    shutdown_pools()


class TestEvaluatePopulation:
    def test_serial_matches_single_evaluator(self, case):
        plan = case.tree_plan()
        rng = np.random.default_rng(0)
        candidates = [plan.params()]
        for _ in range(3):
            jitter = 2 * rng.integers(-3, 4, size=candidates[-1].shape)
            candidates.append(plan.clamp_params(candidates[-1] + jitter))
        costs = evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, candidates, n_workers=1
        )
        assert len(costs) == len(candidates)
        assert all(math.isfinite(c) or math.isinf(c) for c in costs)

    def test_parallel_matches_serial(self, case):
        plan = case.tree_plan()
        candidates = [plan.params(), plan.params() + 2]
        candidates[1] = plan.clamp_params(candidates[1])
        serial = evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, candidates, n_workers=1
        )
        parallel = evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, candidates, n_workers=2
        )
        assert serial == pytest.approx(parallel, rel=1e-9)

    def test_grouped_metric_stays_serial(self, case):
        plan = case.tree_plan()
        stage = StageConfig(
            "g", 4, 1, 4, METRIC_MIN_GRADIENT_CAPPED, "2rm", group_size=3
        )
        costs = evaluate_population(
            case,
            plan,
            stage,
            "problem2",
            [plan.params()] * 2,
            n_workers=4,  # must silently fall back to serial
        )
        assert len(costs) == 2

    def test_empty_population(self, case):
        plan = case.tree_plan()
        assert evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, [], n_workers=1
        ) == []

    def test_bad_workers(self, case):
        plan = case.tree_plan()
        with pytest.raises(SearchError):
            evaluate_population(
                case, plan, STAGE, PROBLEM_PUMPING_POWER, [plan.params()],
                n_workers=0,
            )

    def test_parallel_bitwise_identical_with_infeasible(self, case):
        """The parity criterion: n_workers=2 returns the exact floats the
        serial path returns -- including ``inf`` for an illegal candidate --
        not approximately-equal ones."""
        plan = case.tree_plan()
        rng = np.random.default_rng(3)
        candidates = [plan.params()]
        for _ in range(4):
            jitter = 2 * rng.integers(-2, 3, size=candidates[-1].shape)
            candidates.append(plan.clamp_params(candidates[-1] + jitter))
        # A wrong-shaped candidate is illegal geometry (out-of-range values
        # get clamped, but the tree count is structural): scores ``inf``.
        candidates.append(np.zeros((plan.params().shape[0] + 1, 2), dtype=int))
        serial = evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, candidates,
            fixed_pressure=FIXED_PRESSURE, n_workers=1,
        )
        parallel = evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, candidates,
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        )
        assert serial == parallel  # bitwise, no tolerance
        assert math.isinf(serial[-1])
        assert all(math.isfinite(c) for c in serial[:-1])


class TestErrorDiscipline:
    """ReproError means infeasible (inf); anything else must surface."""

    class _InfeasibleEvaluator:
        def __call__(self, params):
            raise SearchError("constraint unachievable")

    class _CrashingEvaluator:
        def __call__(self, params):
            raise ValueError("negative conductance")

    def test_repro_error_scores_inf(self):
        params = np.array([[3, 5]])
        assert math.isinf(_score_candidate(self._InfeasibleEvaluator(), params))

    def test_unexpected_error_surfaces_with_params(self):
        params = np.array([[3, 5]])
        with pytest.raises(CandidateCrashError) as excinfo:
            _score_candidate(self._CrashingEvaluator(), params)
        message = str(excinfo.value)
        assert "[[3, 5]]" in message
        assert "ValueError" in message
        assert "negative conductance" in message
        # The SA loop's ReproError handlers must not swallow it.
        assert not isinstance(excinfo.value, (SearchError,))

    def test_crash_propagates_from_worker(self, case, monkeypatch):
        """A bug inside a worker process reaches the parent as
        CandidateCrashError, not as a silent ``inf``."""
        from repro.optimize import runner

        class _Broken:
            def __init__(self, *args, **kwargs):
                pass

            def __call__(self, params):
                raise ValueError("boom in worker")

        # Workers are forked, so they inherit the patched symbol the pool
        # initializer imports.
        monkeypatch.setattr(runner, "_CandidateEvaluator", _Broken)
        plan = case.tree_plan()
        with PersistentEvaluationPool(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER,
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        ) as pool:
            with pytest.raises(CandidateCrashError, match="boom in worker"):
                pool.evaluate([plan.params()])

    def test_infeasible_does_not_crash_worker(self, case):
        """An illegal candidate in a worker is just ``inf``, no exception."""
        plan = case.tree_plan()
        bad = np.zeros((plan.params().shape[0] + 1, 2), dtype=int)
        with PersistentEvaluationPool(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER,
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        ) as pool:
            costs = pool.evaluate([plan.params(), bad])
        assert math.isfinite(costs[0])
        assert math.isinf(costs[1])


class TestPersistentPool:
    def test_pool_reused_across_batches(self, case):
        """Consecutive evaluate_population calls with one context share one
        pool: a single spin-up, counters accumulating per batch."""
        plan = case.tree_plan()
        shutdown_pools()
        profiling.reset()
        batch = [plan.params(), plan.clamp_params(plan.params() + 2)]
        for _ in range(3):
            evaluate_population(
                case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, batch,
                fixed_pressure=FIXED_PRESSURE, n_workers=2,
            )
        assert profiling.counter("parallel.pool_starts") == 1
        assert profiling.counter("parallel.batches") == 3
        assert profiling.counter("parallel.candidates") == 6

    def test_explicit_pool_and_close(self, case):
        plan = case.tree_plan()
        pool = PersistentEvaluationPool(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER,
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        )
        costs = evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, [plan.params()],
            fixed_pressure=FIXED_PRESSURE, n_workers=2, pool=pool,
        )
        assert len(costs) == 1 and math.isfinite(costs[0])
        pool.close()
        assert pool.closed
        pool.close()  # idempotent
        with pytest.raises(SearchError):
            pool.evaluate([plan.params()])

    def test_worker_counters_reach_parent(self, case):
        """Solver activity inside workers shows up in the parent profiler."""
        plan = case.tree_plan()
        shutdown_pools()
        profiling.reset()
        evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER,
            [plan.params(), plan.clamp_params(plan.params() + 2)],
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        )
        assert profiling.counter("cooling.simulations") == 2
        assert profiling.counter("thermal.solves") == 2

    def test_bad_pool_workers(self, case):
        plan = case.tree_plan()
        with pytest.raises(SearchError):
            PersistentEvaluationPool(
                case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, n_workers=0
            )

    def test_shutdown_pools_closes_cached(self, case):
        from repro.optimize import parallel

        plan = case.tree_plan()
        shutdown_pools()
        evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, [plan.params()],
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        )
        cached = list(parallel._pool_cache.values())
        assert cached and all(not p.closed for p in cached)
        shutdown_pools()
        assert not parallel._pool_cache
        assert all(p.closed for p in cached)

    def test_closed_cached_pool_is_replaced(self, case):
        """Closing a cached pool out from under the cache must not poison
        later calls: the next evaluation builds a fresh pool."""
        from repro.optimize import parallel

        plan = case.tree_plan()
        shutdown_pools()
        profiling.reset()
        batch = [plan.params()]
        kwargs = dict(fixed_pressure=FIXED_PRESSURE, n_workers=2)
        first = evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, batch, **kwargs
        )
        for pool in parallel._pool_cache.values():
            pool.close()
        second = evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, batch, **kwargs
        )
        assert second == first
        assert profiling.counter("parallel.pool_starts") == 2

    def test_cache_eviction_closes_oldest(self, case):
        """The cache is bounded: overflowing it closes (not leaks) the
        least-recently-used pool's workers."""
        from repro.optimize import parallel

        plan = case.tree_plan()
        shutdown_pools()
        pools = []
        for pressure in (1e4, 2e4, 3e4):
            evaluate_population(
                case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER,
                [plan.params()], fixed_pressure=pressure, n_workers=2,
            )
            pools.append(next(reversed(parallel._pool_cache.values())))
        assert len(parallel._pool_cache) == parallel._POOL_CACHE_SIZE
        assert pools[0].closed
        assert not pools[1].closed and not pools[2].closed


class TestBatchSA:
    def test_optimizes_quadratic(self):
        def batch_cost(states):
            return [float((s - 7) ** 2) for s in states]

        def neighbor(state, rng):
            return state + int(rng.choice((-1, 1)))

        config = SAConfig(iterations=60, seed=1)
        best, cost, history = simulated_annealing_batch(
            0, batch_cost, neighbor, config, batch_size=4
        )
        assert best == 7 and cost == 0.0
        assert history.proposed == pytest.approx(60 * 4, abs=4 * 60)

    def test_batch_size_one_equivalent_semantics(self):
        def batch_cost(states):
            return [float((s - 3) ** 2) for s in states]

        def neighbor(state, rng):
            return state + int(rng.choice((-1, 1)))

        config = SAConfig(iterations=80, seed=2)
        best, cost, _ = simulated_annealing_batch(
            0, batch_cost, neighbor, config, batch_size=1
        )
        assert cost == 0.0

    def test_invalid_batch_size(self):
        config = SAConfig(iterations=5, seed=0)
        with pytest.raises(SearchError):
            simulated_annealing_batch(
                0, lambda s: [0.0] * len(s), lambda s, r: s, config, 0
            )


class TestEndToEndBatchFlow:
    def test_problem1_with_batches(self, case):
        stages = [
            StageConfig("b", 3, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")
        ]
        result = optimize_problem1(
            case, stages=stages, directions=(0,), seed=0, batch_size=3
        )
        assert result.evaluation is not None
        assert result.total_simulations > 0
