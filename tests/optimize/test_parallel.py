"""Tests for batched/parallel neighbor evaluation."""

import math

import numpy as np
import pytest

from repro.errors import SearchError
from repro.iccad2015 import load_case
from repro.optimize import SAConfig, optimize_problem1
from repro.optimize.annealing import simulated_annealing_batch
from repro.optimize.parallel import evaluate_population
from repro.optimize.runner import PROBLEM_PUMPING_POWER
from repro.optimize.stages import (
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
    StageConfig,
)

STAGE = StageConfig("s", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


class TestEvaluatePopulation:
    def test_serial_matches_single_evaluator(self, case):
        plan = case.tree_plan()
        rng = np.random.default_rng(0)
        candidates = [plan.params()]
        for _ in range(3):
            jitter = 2 * rng.integers(-3, 4, size=candidates[-1].shape)
            candidates.append(plan.clamp_params(candidates[-1] + jitter))
        costs = evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, candidates, n_workers=1
        )
        assert len(costs) == len(candidates)
        assert all(math.isfinite(c) or math.isinf(c) for c in costs)

    def test_parallel_matches_serial(self, case):
        plan = case.tree_plan()
        candidates = [plan.params(), plan.params() + 2]
        candidates[1] = plan.clamp_params(candidates[1])
        serial = evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, candidates, n_workers=1
        )
        parallel = evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, candidates, n_workers=2
        )
        assert serial == pytest.approx(parallel, rel=1e-9)

    def test_grouped_metric_stays_serial(self, case):
        plan = case.tree_plan()
        stage = StageConfig(
            "g", 4, 1, 4, METRIC_MIN_GRADIENT_CAPPED, "2rm", group_size=3
        )
        costs = evaluate_population(
            case,
            plan,
            stage,
            "problem2",
            [plan.params()] * 2,
            n_workers=4,  # must silently fall back to serial
        )
        assert len(costs) == 2

    def test_empty_population(self, case):
        plan = case.tree_plan()
        assert evaluate_population(
            case, plan, STAGE, PROBLEM_PUMPING_POWER, [], n_workers=1
        ) == []

    def test_bad_workers(self, case):
        plan = case.tree_plan()
        with pytest.raises(SearchError):
            evaluate_population(
                case, plan, STAGE, PROBLEM_PUMPING_POWER, [plan.params()],
                n_workers=0,
            )


class TestBatchSA:
    def test_optimizes_quadratic(self):
        def batch_cost(states):
            return [float((s - 7) ** 2) for s in states]

        def neighbor(state, rng):
            return state + int(rng.choice((-1, 1)))

        config = SAConfig(iterations=60, seed=1)
        best, cost, history = simulated_annealing_batch(
            0, batch_cost, neighbor, config, batch_size=4
        )
        assert best == 7 and cost == 0.0
        assert history.proposed == pytest.approx(60 * 4, abs=4 * 60)

    def test_batch_size_one_equivalent_semantics(self):
        def batch_cost(states):
            return [float((s - 3) ** 2) for s in states]

        def neighbor(state, rng):
            return state + int(rng.choice((-1, 1)))

        config = SAConfig(iterations=80, seed=2)
        best, cost, _ = simulated_annealing_batch(
            0, batch_cost, neighbor, config, batch_size=1
        )
        assert cost == 0.0

    def test_invalid_batch_size(self):
        config = SAConfig(iterations=5, seed=0)
        with pytest.raises(SearchError):
            simulated_annealing_batch(
                0, lambda s: [0.0] * len(s), lambda s, r: s, config, 0
            )


class TestEndToEndBatchFlow:
    def test_problem1_with_batches(self, case):
        stages = [
            StageConfig("b", 3, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")
        ]
        result = optimize_problem1(
            case, stages=stages, directions=(0,), seed=0, batch_size=3
        )
        assert result.evaluation is not None
        assert result.total_simulations > 0
