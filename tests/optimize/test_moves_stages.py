"""Unit tests for SA moves and stage schedules."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.optimize import perturb_tree_params, problem1_stages, problem2_stages
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
    StageConfig,
)


class TestMoves:
    def test_changes_at_least_one_param(self):
        rng = np.random.default_rng(0)
        params = np.full((5, 2), 10)
        for _ in range(50):
            moved = perturb_tree_params(params, 4, rng)
            assert (moved != params).any()

    def test_step_magnitude(self):
        rng = np.random.default_rng(1)
        params = np.full((5, 2), 10)
        moved = perturb_tree_params(params, 4, rng)
        deltas = np.unique(np.abs(moved - params))
        assert set(deltas.tolist()) <= {0, 4}

    def test_roughly_half_move(self):
        rng = np.random.default_rng(2)
        params = np.zeros((100, 2), dtype=int)
        moved = perturb_tree_params(params, 2, rng)
        frac = (moved != 0).mean()
        assert 0.35 < frac < 0.65

    def test_bad_step(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SearchError):
            perturb_tree_params(np.zeros((2, 2)), 0, rng)


class TestSchedules:
    def test_problem1_matches_paper(self):
        stages = problem1_stages()
        assert [s.iterations for s in stages] == [60, 40, 40, 30]
        assert [s.rounds for s in stages] == [8, 4, 2, 1]
        assert stages[0].metric == METRIC_FIXED_PRESSURE_GRADIENT
        assert stages[1].metric == METRIC_LOWEST_FEASIBLE_POWER
        assert stages[-1].model == "4rm"
        assert all(s.model == "2rm" for s in stages[:-1])

    def test_problem1_steps_decay(self):
        stages = problem1_stages()
        steps = [s.step for s in stages]
        assert steps == sorted(steps, reverse=True)

    def test_problem2_matches_paper(self):
        stages = problem2_stages()
        assert [s.iterations for s in stages] == [80, 20, 20]
        assert [s.rounds for s in stages] == [8, 2, 1]
        assert all(s.metric == METRIC_MIN_GRADIENT_CAPPED for s in stages)
        assert stages[-1].model == "4rm"
        assert all(s.group_size > 1 for s in stages)

    def test_quick_variants_smaller(self):
        full = problem1_stages()
        quick = problem1_stages(quick=True)
        assert sum(s.iterations * s.rounds for s in quick) < sum(
            s.iterations * s.rounds for s in full
        )
        # Shape preserved.
        assert [s.metric for s in quick] == [s.metric for s in full]
        assert [s.model for s in quick] == [s.model for s in full]


class TestStageValidation:
    def test_unknown_metric(self):
        with pytest.raises(SearchError, match="metric"):
            StageConfig("s", 10, 1, 2, "mystery", "2rm")

    def test_unknown_model(self):
        with pytest.raises(SearchError, match="model"):
            StageConfig("s", 10, 1, 2, METRIC_LOWEST_FEASIBLE_POWER, "fem")

    def test_nonpositive_counts(self):
        with pytest.raises(SearchError):
            StageConfig("s", 0, 1, 2, METRIC_LOWEST_FEASIBLE_POWER, "2rm")

    def test_bad_group_size(self):
        with pytest.raises(SearchError, match="group_size"):
            StageConfig(
                "s", 10, 1, 2, METRIC_MIN_GRADIENT_CAPPED, "2rm", group_size=0
            )
