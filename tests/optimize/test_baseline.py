"""Tests for the straight-channel baseline and manual comparator."""

import pytest

from repro.iccad2015 import load_case
from repro.optimize import best_manual_design, best_straight_baseline
from repro.optimize.runner import PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


class TestStraightBaseline:
    def test_problem1_baseline_feasible(self, case):
        result = best_straight_baseline(case, PROBLEM_PUMPING_POWER, model="2rm")
        assert result.feasible
        assert result.evaluation.delta_t <= case.delta_t_star * 1.01
        assert result.name.startswith("straight")

    def test_problem2_baseline_feasible(self, case):
        result = best_straight_baseline(
            case, PROBLEM_THERMAL_GRADIENT, model="2rm"
        )
        assert result.feasible
        assert result.evaluation.w_pump <= case.w_pump_star() * 1.01

    def test_multiple_pitches_considered(self, case):
        narrow = best_straight_baseline(
            case, PROBLEM_PUMPING_POWER, directions=(0,), pitches=(2,), model="2rm"
        )
        wide = best_straight_baseline(
            case,
            PROBLEM_PUMPING_POWER,
            directions=(0,),
            pitches=(2, 4),
            model="2rm",
        )
        assert wide.evaluation.score <= narrow.evaluation.score * 1.001

    def test_restricted_case_baseline(self):
        case3 = load_case(3, grid_size=31)
        result = best_straight_baseline(
            case3, PROBLEM_PUMPING_POWER, directions=(0,), model="2rm"
        )
        # Channels must avoid the forbidden region.
        import numpy as np

        forbidden = np.zeros((31, 31), dtype=bool)
        for rect in case3.restricted:
            forbidden |= rect.mask(31, 31)
        assert not (result.network.liquid & forbidden).any()


class TestManualComparator:
    def test_manual_design_evaluates(self, case):
        result = best_manual_design(case, PROBLEM_PUMPING_POWER, model="2rm")
        assert result.evaluation is not None
        assert result.name

    def test_manual_skips_restricted_conflicts(self):
        case3 = load_case(3, grid_size=31)
        result = best_manual_design(case3, PROBLEM_PUMPING_POWER, model="2rm")
        import numpy as np

        forbidden = np.zeros((31, 31), dtype=bool)
        for rect in case3.restricted:
            forbidden |= rect.mask(31, 31)
        assert not (result.network.liquid & forbidden).any()
