"""Unit tests for the generic SA engine."""

import math

import numpy as np
import pytest

from repro.errors import SearchError
from repro.optimize import SAConfig, simulated_annealing


def quadratic_cost(state):
    return float((state - 7) ** 2)


def int_neighbor(state, rng):
    return state + int(rng.choice((-1, 1)))


class TestOptimization:
    def test_finds_quadratic_minimum(self):
        config = SAConfig(iterations=300, seed=1)
        best, cost, _ = simulated_annealing(0, quadratic_cost, int_neighbor, config)
        assert best == 7
        assert cost == 0.0

    def test_deterministic_given_seed(self):
        config = SAConfig(iterations=50, seed=42)
        a = simulated_annealing(0, quadratic_cost, int_neighbor, config)
        b = simulated_annealing(0, quadratic_cost, int_neighbor, config)
        assert a[0] == b[0] and a[1] == b[1]

    def test_different_seeds_explore_differently(self):
        results = set()
        for seed in range(6):
            config = SAConfig(iterations=5, seed=seed)
            best, _, history = simulated_annealing(
                0, quadratic_cost, int_neighbor, config
            )
            results.add(tuple(history.costs))
        assert len(results) > 1

    def test_best_never_worse_than_initial(self):
        config = SAConfig(iterations=20, seed=3)
        _, cost, _ = simulated_annealing(3, quadratic_cost, int_neighbor, config)
        assert cost <= quadratic_cost(3)

    def test_history_tracks_best(self):
        config = SAConfig(iterations=30, seed=5)
        _, cost, history = simulated_annealing(
            0, quadratic_cost, int_neighbor, config
        )
        assert history.best_costs[-1] == cost
        assert all(
            b <= c + 1e-12 for b, c in zip(history.best_costs, history.costs)
        )
        # best_costs is non-increasing.
        assert all(
            a >= b for a, b in zip(history.best_costs, history.best_costs[1:])
        )


class TestInfeasibleHandling:
    def test_never_accepts_inf_from_finite(self):
        def cost(state):
            return math.inf if state > 5 else float(state)

        config = SAConfig(iterations=100, seed=2)
        best, best_cost, history = simulated_annealing(
            5, cost, int_neighbor, config
        )
        assert math.isfinite(best_cost)
        assert all(math.isfinite(c) for c in history.costs)

    def test_escapes_infeasible_region(self):
        def cost(state):
            return math.inf if state < 10 else float(abs(state - 12))

        config = SAConfig(iterations=200, seed=4)
        best, best_cost, _ = simulated_annealing(0, cost, int_neighbor, config)
        assert math.isfinite(best_cost)


class TestConvergence:
    def test_stall_limit_stops_early(self):
        config = SAConfig(iterations=500, seed=1, stall_limit=10)
        _, _, history = simulated_annealing(
            7, quadratic_cost, int_neighbor, config
        )
        assert history.proposed < 500

    def test_acceptance_rate_bounded(self):
        config = SAConfig(iterations=50, seed=9)
        _, _, history = simulated_annealing(
            0, quadratic_cost, int_neighbor, config
        )
        assert 0.0 <= history.acceptance_rate <= 1.0


class TestValidation:
    def test_bad_iterations(self):
        with pytest.raises(SearchError):
            SAConfig(iterations=0)

    def test_bad_cooling_rate(self):
        with pytest.raises(SearchError):
            SAConfig(cooling_rate=0.0)
        with pytest.raises(SearchError):
            SAConfig(cooling_rate=1.5)

    def test_explicit_temperature(self):
        config = SAConfig(iterations=50, seed=1, initial_temperature=100.0)
        best, cost, _ = simulated_annealing(0, quadratic_cost, int_neighbor, config)
        assert cost <= quadratic_cost(0)
