"""Unit tests for the material library."""

import pytest

from repro.errors import GeometryError
from repro.materials import (
    BEOL,
    COOLANTS,
    COPPER,
    SILICON,
    SOLIDS,
    WATER,
    Coolant,
    Solid,
    coolant_by_name,
    solid_by_name,
)


class TestSolid:
    def test_silicon_properties(self):
        assert SILICON.thermal_conductivity == pytest.approx(130.0)
        assert SILICON.volumetric_heat_capacity > 1e6

    def test_copper_conducts_better_than_silicon(self):
        assert COPPER.thermal_conductivity > SILICON.thermal_conductivity

    def test_beol_is_poor_conductor(self):
        assert BEOL.thermal_conductivity < 10.0

    def test_rejects_nonpositive_conductivity(self):
        with pytest.raises(GeometryError, match="thermal conductivity"):
            Solid("bad", thermal_conductivity=0.0, volumetric_heat_capacity=1.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(GeometryError, match="heat capacity"):
            Solid("bad", thermal_conductivity=1.0, volumetric_heat_capacity=-5.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SILICON.thermal_conductivity = 1.0


class TestCoolant:
    def test_water_properties(self):
        assert WATER.dynamic_viscosity == pytest.approx(6.53e-4)
        assert WATER.volumetric_heat_capacity == pytest.approx(4.172e6)

    def test_rejects_nonpositive_viscosity(self):
        with pytest.raises(GeometryError, match="dynamic_viscosity"):
            Coolant(
                "bad",
                thermal_conductivity=0.6,
                volumetric_heat_capacity=4e6,
                dynamic_viscosity=0.0,
            )


class TestLookups:
    def test_solid_by_name(self):
        assert solid_by_name("silicon") is SILICON

    def test_solid_by_name_unknown(self):
        with pytest.raises(GeometryError, match="unknown solid"):
            solid_by_name("adamantium")

    def test_coolant_by_name(self):
        assert coolant_by_name("water") is WATER

    def test_coolant_by_name_unknown(self):
        with pytest.raises(GeometryError, match="unknown coolant"):
            coolant_by_name("mercury")

    def test_registries_consistent(self):
        assert all(SOLIDS[name].name == name for name in SOLIDS)
        assert all(COOLANTS[name].name == name for name in COOLANTS)
