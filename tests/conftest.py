"""Shared fixtures: small grids, stacks and benchmark cases.

Tests run on reduced footprints (21x21 or smaller) so the whole suite stays
fast; physics invariants (conservation laws, monotonicity, model agreement)
are scale-free and hold at any size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import CELL_WIDTH
from repro.geometry import build_contest_stack
from repro.iccad2015 import load_case
from repro.materials import WATER
from repro.networks import plan_tree_bands, straight_network


@pytest.fixture
def straight_grid():
    """A 21x21 straight-channel network (west to east)."""
    return straight_network(21, 21)


@pytest.fixture
def tree_grid():
    """A 21x21 tree-like network."""
    return plan_tree_bands(21, 21).build()


@pytest.fixture
def uniform_power():
    """A 2 W uniform power map on the 21x21 footprint."""
    return np.full((21, 21), 2.0 / (21 * 21))


@pytest.fixture
def small_stack(straight_grid, uniform_power):
    """A 2-die stack with straight channels and uniform power."""
    return build_contest_stack(
        n_dies=2,
        channel_height=200e-6,
        power_maps=[uniform_power, uniform_power],
        grid_factory=lambda die: straight_grid.copy(),
        nrows=21,
        ncols=21,
        cell_width=CELL_WIDTH,
    )


@pytest.fixture
def tree_stack(tree_grid, uniform_power):
    """A 2-die stack with a tree network and uniform power."""
    return build_contest_stack(
        n_dies=2,
        channel_height=200e-6,
        power_maps=[uniform_power, uniform_power],
        grid_factory=lambda die: tree_grid.copy(),
        nrows=21,
        ncols=21,
        cell_width=CELL_WIDTH,
    )


@pytest.fixture
def coolant():
    return WATER


@pytest.fixture
def case1_small():
    """Benchmark case 1 at a 21x21 footprint."""
    return load_case(1, grid_size=21)


@pytest.fixture
def case3_small():
    """Benchmark case 3 (restricted area) at a 31x31 footprint."""
    return load_case(3, grid_size=31)
