"""Each lint rule flags its bad fixture and passes its good one."""

from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import Analyzer

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule_id, filename):
    return Analyzer(select=[rule_id]).run([str(FIXTURES / filename)])


BAD_FIXTURES = [
    ("R1", "r1_bad.py", 3),
    ("R2", "r2_bad.py", 4),
    ("R3", "r3_bad.py", 4),
    ("R4", "r4_bad.py", 3),
    ("R5", "r5_bad.py", 6),
    ("R6", "r6_bad.py", 4),
    ("R7", "r7_bad.py", 7),
    ("R8", "r8_bad.py", 4),
    ("R9", "r9_bad.py", 7),
]

GOOD_FIXTURES = [
    ("R1", "r1_good.py"),
    ("R2", "r2_good.py"),
    ("R3", "r3_good.py"),
    ("R4", "r4_good.py"),
    ("R5", "r5_good.py"),
    ("R6", "r6_good.py"),
    ("R7", "r7_good.py"),
    ("R8", "r8_good.py"),
    ("R9", "r9_good.py"),
]


@pytest.mark.parametrize("rule_id,filename,expected", BAD_FIXTURES)
def test_bad_fixture_is_flagged(rule_id, filename, expected):
    report = run_rule(rule_id, filename)
    assert len(report.findings) == expected
    assert all(f.rule == rule_id for f in report.findings)
    assert all(f.severity == "error" for f in report.findings)


@pytest.mark.parametrize("rule_id,filename", GOOD_FIXTURES)
def test_good_fixture_is_clean(rule_id, filename):
    report = run_rule(rule_id, filename)
    assert report.findings == []
    assert report.suppressed == []


def test_r1_distinguishes_coverage_from_mixing():
    report = run_rule("R1", "r1_bad.py")
    messages = [f.message for f in report.findings]
    assert any("no [unit: ...] tag" in m for m in messages)
    assert any("incompatible units in arithmetic" in m for m in messages)
    assert any("incompatible units in comparison" in m for m in messages)


def test_r2_names_the_sanctioned_helper():
    report = run_rule("R2", "r2_bad.py")
    assert any("quantize_key" in f.message for f in report.findings)


def test_r4_covers_all_three_shapes():
    report = run_rule("R4", "r4_bad.py")
    messages = " | ".join(f.message for f in report.findings)
    assert "bare except" in messages
    assert "except Exception" in messages
    assert "raise ValueError" in messages


def test_r7_covers_every_hygiene_shape():
    report = run_rule("R7", "r7_bad.py")
    messages = " | ".join(f.message for f in report.findings)
    assert "not declared in repro.telemetry.names" in messages
    assert "dot-namespaced" in messages
    assert "dynamic expression" in messages
    assert "wildcard boundary" in messages
    assert "first positional argument" in messages


def test_r7_wildcard_accepts_boundary_fstrings_only():
    good = run_rule("R7", "r7_good.py")
    assert good.findings == []
    bad = run_rule("R7", "r7_bad.py")
    assert any("f\"thermal." in f.message for f in bad.findings)


def test_r6_covers_every_persistence_shape():
    report = run_rule("R6", "r6_bad.py")
    messages = " | ".join(f.message for f in report.findings)
    assert "json.dump()" in messages
    assert "pickle.dump()" in messages
    assert ".write_text(json.dumps(...))" in messages
    assert ".write(pickle.dumps(...))" in messages


def test_r6_names_the_sanctioned_helpers():
    report = run_rule("R6", "r6_bad.py")
    assert all("repro.checkpoint" in f.message for f in report.findings)


def test_r5_flags_every_anti_pattern_kind():
    report = run_rule("R5", "r5_bad.py")
    messages = " | ".join(f.message for f in report.findings)
    assert ".toarray()" in messages
    assert "spsolve" in messages
    assert "factorized() outside repro.linalg" in messages
    assert "splu() outside repro.linalg" in messages
    assert "csr_matrix() inside a loop" in messages
    assert ".tocsc() format conversion inside a loop" in messages


def test_r8_covers_all_three_checks():
    report = run_rule("R8", "r8_bad.py")
    messages = " | ".join(f.message for f in report.findings)
    assert "missing [unit: ...] docstring tags" in messages
    assert "but the parameter is declared" in messages
    assert "but the function declares [unit-return:" in messages


def test_r8_call_mismatch_names_the_callee():
    report = run_rule("R8", "r8_bad.py")
    assert any("r8_bad.resistance" in f.message for f in report.findings)


def test_r9_covers_every_sink_shape():
    report = run_rule("R9", "r9_bad.py")
    messages = " | ".join(f.message for f in report.findings)
    assert "the key of cache '_result_cache'" in messages
    assert "a hash()-based key" in messages
    assert "checkpoint state (RunState.seed)" in messages
    assert "a telemetry run event" in messages
    assert "scoring function 'score_candidate'" in messages


def test_r9_covers_every_source_tag():
    report = run_rule("R9", "r9_bad.py")
    messages = " | ".join(f.message for f in report.findings)
    for tag in (
        "wall-clock",
        "process-id",
        "object-identity",
        "unseeded-rng",
        "set-order",
    ):
        assert tag in messages


def test_r9_taint_crosses_local_call_edge():
    # cache_lookup never touches a clock itself; the taint arrives through
    # wall_clock()'s function summary.
    report = run_rule("R9", "r9_bad.py")
    finding = next(f for f in report.findings if f.line == 20)
    assert "wall-clock" in finding.message


def test_findings_are_sorted_and_deduplicated():
    report = Analyzer().run([str(FIXTURES)])
    keys = [(f.path, f.line, f.col, f.rule, f.message) for f in report.findings]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


def test_unknown_rule_id_rejected():
    with pytest.raises(LintError):
        Analyzer(select=["R99"])


def test_missing_path_rejected():
    with pytest.raises(LintError):
        Analyzer(select=["R4"]).run([str(FIXTURES / "does_not_exist.py")])


class TestR4BoundaryModules:
    """R4 sanctions the error-boundary packages by *module path*.

    ``repro.errors`` and ``repro.faults`` deliberately raise builtin
    exceptions (the crash boundary, the ``raise-crash`` fault kind); any
    sibling module with the same code must still be flagged.  Module names
    are resolved by walking up through ``__init__.py`` parents, so the test
    builds a real package tree.
    """

    BODY = 'def f():\n    raise RuntimeError("deliberate")\n'

    def _make_tree(self, root, package):
        path = root
        for part in package.split("."):
            path = path / part
            path.mkdir()
            (path / "__init__.py").write_text("")
        mod = path / "mod.py"
        mod.write_text(self.BODY)
        return mod

    @pytest.mark.parametrize(
        "package", ["repro.faults", "repro.errors", "repro.checkpoint"]
    )
    def test_boundary_package_is_sanctioned(self, tmp_path, package):
        mod = self._make_tree(tmp_path, package)
        report = Analyzer(select=["R4"]).run([str(mod)])
        assert report.findings == []

    def test_non_boundary_sibling_is_flagged(self, tmp_path):
        mod = self._make_tree(tmp_path, "repro.chaos")
        report = Analyzer(select=["R4"]).run([str(mod)])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "R4"

    def test_prefix_lookalike_is_flagged(self, tmp_path):
        # "repro.faultsextra" must not ride on the "repro.faults" sanction.
        mod = self._make_tree(tmp_path, "repro.faultsextra")
        report = Analyzer(select=["R4"]).run([str(mod)])
        assert len(report.findings) == 1


class TestR6BoundaryModule:
    """R6 sanctions ``repro.checkpoint`` (and submodules) by module path."""

    BODY = (
        "import json\n"
        "def save(payload, fh):\n"
        "    json.dump(payload, fh)\n"
    )

    def _make_module(self, root, package):
        path = root
        for part in package.split("."):
            path = path / part
            path.mkdir()
            (path / "__init__.py").write_text("")
        mod = path / "mod.py"
        mod.write_text(self.BODY)
        return mod

    def test_checkpoint_package_is_sanctioned(self, tmp_path):
        mod = self._make_module(tmp_path, "repro.checkpoint")
        report = Analyzer(select=["R6"]).run([str(mod)])
        assert report.findings == []

    def test_lookalike_package_is_flagged(self, tmp_path):
        mod = self._make_module(tmp_path, "repro.checkpointing")
        report = Analyzer(select=["R6"]).run([str(mod)])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "R6"

    def test_atomic_io_scope_is_sanctioned(self, tmp_path):
        mod = tmp_path / "scoped.py"
        mod.write_text(
            '"""Scoped fixture.\n\nrepro-lint-scope: atomic-io\n"""\n'
            + self.BODY
        )
        report = Analyzer(select=["R6"]).run([str(mod)])
        assert report.findings == []


class TestR5BackendModule:
    """R5 sanctions raw factorizers only inside ``repro.linalg``."""

    BODY = (
        "from scipy.sparse.linalg import splu\n"
        "def factorize(matrix):\n"
        "    return splu(matrix)\n"
    )

    LOOP_BODY = (
        "from scipy.sparse.linalg import splu\n"
        "def solve_all(matrices, rhs):\n"
        "    out = []\n"
        "    for matrix in matrices:\n"
        "        out.append(splu(matrix).solve(rhs))\n"
        "    return out\n"
    )

    def _make_module(self, root, package, body):
        path = root
        for part in package.split("."):
            path = path / part
            path.mkdir()
            (path / "__init__.py").write_text("")
        mod = path / "mod.py"
        mod.write_text(body)
        return mod

    def test_backend_package_is_sanctioned(self, tmp_path):
        mod = self._make_module(tmp_path, "repro.linalg", self.BODY)
        report = Analyzer(select=["R5"]).run([str(mod)])
        assert report.findings == []

    def test_lookalike_package_is_flagged(self, tmp_path):
        # "repro.linalgx" must not ride on the "repro.linalg" sanction.
        mod = self._make_module(tmp_path, "repro.linalgx", self.BODY)
        report = Analyzer(select=["R5"]).run([str(mod)])
        assert len(report.findings) == 1
        assert "outside repro.linalg" in report.findings[0].message

    def test_sparse_backend_scope_is_sanctioned(self, tmp_path):
        mod = tmp_path / "scoped.py"
        mod.write_text(
            '"""Scoped fixture.\n\nrepro-lint-scope: sparse-backend\n"""\n'
            + self.BODY
        )
        report = Analyzer(select=["R5"]).run([str(mod)])
        assert report.findings == []

    def test_in_loop_factorization_flagged_even_when_sanctioned(
        self, tmp_path
    ):
        mod = self._make_module(tmp_path, "repro.linalg", self.LOOP_BODY)
        report = Analyzer(select=["R5"]).run([str(mod)])
        assert len(report.findings) == 1
        assert "inside a loop" in report.findings[0].message
