"""Whole-program behavior: cross-module dataflow, cache, baseline, SARIF.

The R8/R9 fixtures in ``fixtures/`` exercise single-file shapes; the tests
here build real mini-packages under ``tmp_path`` so units and taint must
flow across module boundaries through the project symbol table and call
graph, and so the incremental cache's invalidation can be observed against
a genuine import structure.
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro.lint import Analyzer
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import ResultCache
from repro.lint.core import Finding
from repro.lint.sarif import to_sarif

FIXTURES = Path(__file__).parent / "fixtures"


def _write_package(root, package, modules):
    """Create ``package`` under ``root`` with the given ``name -> source``."""
    path = root
    for part in package.split("."):
        path = path / part
        path.mkdir(exist_ok=True)
        (path / "__init__.py").write_text("")
    for name, source in modules.items():
        (path / f"{name}.py").write_text(source)
    return path


class TestR8AcrossModules:
    """Unit mismatches are caught at call sites in *other* modules.

    ``fixtures/unitpkg/`` is a real package: ``phys.py`` declares parameter
    units in its docstring, ``use_bad.py`` passes a tagged length constant
    where a pressure is declared, ``use_good.py`` matches the declaration.
    """

    def test_mismatch_across_modules_is_flagged(self):
        report = Analyzer(select=["R8"]).run([str(FIXTURES / "unitpkg")])
        assert len(report.findings) == 2
        assert all(
            "unitpkg.phys.resistance" in f.message for f in report.findings
        )
        assert all(f.path.endswith("use_bad.py") for f in report.findings)

    def test_mismatch_names_both_units(self):
        report = Analyzer(select=["R8"]).run([str(FIXTURES / "unitpkg")])
        messages = " | ".join(f.message for f in report.findings)
        assert "has unit [m]" in messages
        assert "'pressure'" in messages and "'flow'" in messages


class TestR9AcrossModules:
    """Taint crosses call/return edges; boundary modules launder it.

    ``fixtures/detpkg/`` pairs two helpers that both return ``time.time()``
    -- one plain, one declaring ``repro-lint-scope: determinism-boundary``
    -- with callers keying a cache off each.
    """

    def test_taint_crosses_module_call_edge_boundary_does_not(self):
        report = Analyzer(select=["R9"]).run([str(FIXTURES / "detpkg")])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path.endswith("use_bad.py")
        assert "wall-clock" in finding.message
        # use_boundary.py keys the same cache off the sanctioned helper
        # and must stay clean.


class TestIncrementalCache:
    """Edits re-analyze the edited file plus its call-graph dependents."""

    A = (
        '"""Leaf module."""\n'
        "\n"
        "\n"
        "def f(x):\n"
        "    return x\n"
    )

    B = (
        '"""Depends on cp.a."""\n'
        "\n"
        "from cp.a import f\n"
        "\n"
        "\n"
        "def g(x):\n"
        "    return f(x)\n"
    )

    C = (
        '"""Independent module."""\n'
        "\n"
        "\n"
        "def h(x):\n"
        "    return x\n"
    )

    def _run(self, pkg, cache_dir):
        analyzer = Analyzer()
        cache = ResultCache(
            cache_dir, rule_ids=[rule.id for rule in analyzer.rules]
        )
        return analyzer.run([str(pkg)], cache=cache)

    def test_invalidation_follows_the_import_graph(self, tmp_path):
        pkg = _write_package(
            tmp_path, "cp", {"a": self.A, "b": self.B, "c": self.C}
        )
        cache_dir = tmp_path / "cache"

        cold = self._run(pkg, cache_dir)
        assert cold.cache_hits == 0
        assert len(cold.reanalyzed) == 4  # __init__, a, b, c

        warm = self._run(pkg, cache_dir)
        assert warm.reanalyzed == []
        assert warm.cache_hits == 4

        (pkg / "a.py").write_text(self.A + "\n# touched\n")
        edited = self._run(pkg, cache_dir)
        names = sorted(Path(p).name for p in edited.reanalyzed)
        assert names == ["a.py", "b.py"]  # c.py and __init__ stay cached
        assert edited.cache_hits == 2

    def test_cached_findings_match_a_cold_run(self, tmp_path):
        fixture = FIXTURES / "r9_bad.py"
        cache_dir = tmp_path / "cache"
        analyzer = Analyzer(select=["R9"])
        cache = ResultCache(cache_dir, rule_ids=["R9"])
        cold = analyzer.run([str(fixture)], cache=cache)

        cache = ResultCache(cache_dir, rule_ids=["R9"])
        warm = Analyzer(select=["R9"]).run([str(fixture)], cache=cache)
        assert warm.cache_hits == 1
        assert [f.__dict__ for f in warm.findings] == [
            f.__dict__ for f in cold.findings
        ]


class TestBaseline:
    def test_roundtrip_moves_findings_out_of_failure_set(self, tmp_path):
        report = Analyzer(select=["R8"]).run([str(FIXTURES / "r8_bad.py")])
        assert len(report.findings) == 4
        path = tmp_path / "baseline.json"
        write_baseline(report.findings, path)

        fresh = Analyzer(select=["R8"]).run([str(FIXTURES / "r8_bad.py")])
        apply_baseline(fresh, load_baseline(path))
        assert fresh.findings == []
        assert len(fresh.baselined) == 4
        assert fresh.stale_baseline == []
        assert fresh.exit_code() == 0

    def test_growth_beyond_recorded_count_still_fails(self, tmp_path):
        report = Analyzer(select=["R8"]).run([str(FIXTURES / "r8_bad.py")])
        path = tmp_path / "baseline.json"
        write_baseline(report.findings, path)

        fresh = Analyzer(select=["R8"]).run([str(FIXTURES / "r8_bad.py")])
        fresh.findings.append(
            Finding(**dict(fresh.findings[0].__dict__, line=99))
        )
        apply_baseline(fresh, load_baseline(path))
        assert len(fresh.findings) == 1  # the extra occurrence
        assert fresh.exit_code() == 1

    def test_unmatched_entries_are_reported_stale(self, tmp_path):
        report = Analyzer(select=["R8"]).run([str(FIXTURES / "r8_bad.py")])
        path = tmp_path / "baseline.json"
        write_baseline(report.findings, path)

        clean = Analyzer(select=["R8"]).run([str(FIXTURES / "r8_good.py")])
        apply_baseline(clean, load_baseline(path))
        assert clean.findings == []
        assert len(clean.stale_baseline) == 4

    def test_line_numbers_do_not_churn_the_baseline(self, tmp_path):
        report = Analyzer(select=["R8"]).run([str(FIXTURES / "r8_bad.py")])
        path = tmp_path / "baseline.json"
        write_baseline(report.findings, path)
        payload = json.loads(path.read_text())
        assert all("line" not in entry for entry in payload["entries"])


#: Trimmed SARIF 2.1.0 schema covering exactly the subset repro.lint emits.
#: ``additionalProperties: false`` on the emitted objects makes the test
#: strict: a property outside the standard subset fails validation.
SARIF_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"enum": ["2.1.0"]},
        "runs": {"type": "array", "items": {"$ref": "#/definitions/run"}},
    },
    "additionalProperties": False,
    "definitions": {
        "run": {
            "type": "object",
            "required": ["tool"],
            "properties": {
                "tool": {
                    "type": "object",
                    "required": ["driver"],
                    "properties": {
                        "driver": {"$ref": "#/definitions/toolComponent"}
                    },
                    "additionalProperties": False,
                },
                "results": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/result"},
                },
            },
            "additionalProperties": False,
        },
        "toolComponent": {
            "type": "object",
            "required": ["name"],
            "properties": {
                "name": {"type": "string"},
                "informationUri": {"type": "string"},
                "rules": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/reportingDescriptor"},
                },
            },
            "additionalProperties": False,
        },
        "reportingDescriptor": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "name": {"type": "string"},
                "shortDescription": {"$ref": "#/definitions/message"},
                "defaultConfiguration": {
                    "type": "object",
                    "properties": {
                        "level": {"$ref": "#/definitions/level"}
                    },
                    "additionalProperties": False,
                },
            },
            "additionalProperties": False,
        },
        "result": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "ruleId": {"type": "string"},
                "level": {"$ref": "#/definitions/level"},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/location"},
                },
                "baselineState": {
                    "enum": ["new", "unchanged", "updated", "absent"]
                },
                "suppressions": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["kind"],
                        "properties": {
                            "kind": {"enum": ["inSource", "external"]}
                        },
                        "additionalProperties": False,
                    },
                },
            },
            "additionalProperties": False,
        },
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "type": "object",
                    "properties": {
                        "artifactLocation": {
                            "type": "object",
                            "properties": {"uri": {"type": "string"}},
                            "additionalProperties": False,
                        },
                        "region": {
                            "type": "object",
                            "properties": {
                                "startLine": {
                                    "type": "integer",
                                    "minimum": 1,
                                },
                                "startColumn": {
                                    "type": "integer",
                                    "minimum": 1,
                                },
                            },
                            "additionalProperties": False,
                        },
                    },
                    "additionalProperties": False,
                }
            },
            "additionalProperties": False,
        },
        "message": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
            "additionalProperties": False,
        },
        "level": {"enum": ["none", "note", "warning", "error"]},
    },
}


class TestSarif:
    def _document(self, tmp_path, with_baseline=False):
        analyzer = Analyzer(select=["R8", "R9"])
        report = analyzer.run(
            [str(FIXTURES / "r8_bad.py"), str(FIXTURES / "r9_bad.py")]
        )
        if with_baseline:
            path = tmp_path / "baseline.json"
            write_baseline(report.findings[:2], path)
            apply_baseline(report, load_baseline(path))
        return report, to_sarif(report, analyzer.rules)

    def test_document_validates_against_the_2_1_0_schema(self, tmp_path):
        _, document = self._document(tmp_path, with_baseline=True)
        jsonschema.validate(document, SARIF_SCHEMA)

    def test_every_finding_becomes_a_result(self, tmp_path):
        report, document = self._document(tmp_path)
        results = document["runs"][0]["results"]
        assert len(results) == len(report.findings)
        assert {r["ruleId"] for r in results} == {"R8", "R9"}

    def test_driver_lists_the_selected_rules(self, tmp_path):
        _, document = self._document(tmp_path)
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["R8", "R9"]

    def test_baselined_results_are_marked_unchanged(self, tmp_path):
        _, document = self._document(tmp_path, with_baseline=True)
        states = [
            r.get("baselineState")
            for r in document["runs"][0]["results"]
        ]
        assert states.count("unchanged") == 2

    def test_suppressed_findings_carry_in_source_suppressions(self, tmp_path):
        source = (
            "import time\n"
            "_cache = {}\n"
            "\n"
            "\n"
            "def lookup():\n"
            "    return _cache[time.time()]  # repro-lint: disable=R9\n"
        )
        mod = tmp_path / "mod.py"
        mod.write_text(source)
        analyzer = Analyzer(select=["R9"])
        report = analyzer.run([str(mod)])
        assert len(report.suppressed) == 1
        document = to_sarif(report, analyzer.rules)
        jsonschema.validate(document, SARIF_SCHEMA)
        results = document["runs"][0]["results"]
        assert results[-1]["suppressions"] == [{"kind": "inSource"}]
