"""The repository's own source tree must be lint-clean, suppression-free.

This is the acceptance gate CI enforces: ``python -m repro.lint src`` exits
0 with zero findings and zero suppressions.
"""

from pathlib import Path

from repro.lint import Analyzer
from repro.lint.__main__ import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_cli_exits_zero_on_repo_source(capsys):
    assert main([str(REPO_SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 errors, 0 warnings, 0 suppressed" in out


def test_repo_source_has_no_suppressions_at_all():
    report = Analyzer().run([str(REPO_SRC)])
    assert report.findings == []
    assert report.suppressed == []
    assert report.unused_suppressions == []
    # Sanity: the run actually covered the tree.
    assert report.files_checked > 50
