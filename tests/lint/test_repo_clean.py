"""The repository's own source tree must be lint-clean, suppression-free.

This is the acceptance gate CI enforces: ``python -m repro.lint src
--baseline lint-baseline.json`` exits 0 with zero findings and zero
suppressions.  The committed baseline carries only the known R8 coverage
debt in ``repro.thermal``; it may shrink, never grow.
"""

from pathlib import Path

from repro.lint import Analyzer
from repro.lint.__main__ import main
from repro.lint.baseline import apply_baseline, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_cli_exits_zero_on_repo_source(tmp_path, capsys):
    argv = [
        str(REPO_SRC),
        "--baseline",
        str(BASELINE),
        "--cache-dir",
        str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 errors, 0 warnings, 0 suppressed" in out


def test_repo_source_has_no_suppressions_at_all():
    report = Analyzer().run([str(REPO_SRC)])
    apply_baseline(report, load_baseline(BASELINE))
    assert report.findings == []
    assert report.suppressed == []
    assert report.unused_suppressions == []
    # Sanity: the run actually covered the tree.
    assert report.files_checked > 50


def test_baseline_is_exactly_consumed():
    """Every committed baseline entry still matches a real finding.

    A stale entry means debt was paid down without shrinking the file --
    the ratchet only works if the baseline tracks reality.
    """
    report = Analyzer().run([str(REPO_SRC)])
    apply_baseline(report, load_baseline(BASELINE))
    assert report.stale_baseline == []
    # The baseline is R8 coverage debt only: no other rule may hide in it.
    assert {f.rule for f in report.baselined} <= {"R8"}
