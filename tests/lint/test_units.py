"""Unit-expression algebra of the R1 lint rule."""

import pytest

from repro.errors import LintError
from repro.lint.units import (
    DIMENSIONLESS,
    Unit,
    compatible,
    format_unit,
    parse_unit,
)


class TestParsing:
    def test_base_symbol(self):
        assert parse_unit("m") == Unit({"m": 1})

    def test_dimensionless(self):
        assert parse_unit("1").dimensionless
        assert parse_unit("1") == DIMENSIONLESS

    def test_implicit_multiplication(self):
        assert parse_unit("Pa s") == parse_unit("Pa * s")

    def test_division_binds_single_factor(self):
        # W/(m K) needs the parens; W/m K means (W/m) * K.
        assert parse_unit("W/m K") == parse_unit("W K / m")
        assert parse_unit("W/(m K)") != parse_unit("W/m K")

    def test_powers(self):
        assert parse_unit("m^3") == Unit({"m": 3})
        assert parse_unit("m**3") == Unit({"m": 3})
        assert parse_unit("s^-2") == Unit({"s": -2})

    def test_unknown_symbol_is_opaque_dimension(self):
        cells = parse_unit("cell/s")
        assert cells == Unit({"cell": 1, "s": -1})
        assert not compatible(cells, parse_unit("1/s"))

    @pytest.mark.parametrize(
        "bad", ["", "m^x", "2 m", "(m", "m)", "m^", "m/"]
    )
    def test_malformed_expressions_raise(self, bad):
        with pytest.raises(LintError):
            parse_unit(bad)


class TestDerivedUnits:
    def test_watt_expands_to_base_dimensions(self):
        assert parse_unit("W") == parse_unit("kg m^2 s^-3")

    def test_thermal_conductivity_equivalence(self):
        assert compatible(parse_unit("W/(m K)"), parse_unit("kg m s^-3 K^-1"))

    def test_pascal_second_is_kg_per_m_s(self):
        assert parse_unit("Pa s") == parse_unit("kg/(m s)")

    def test_joule_is_newton_meter(self):
        assert parse_unit("J") == parse_unit("N m")


class TestAlgebra:
    def test_multiplication_cancels(self):
        q = parse_unit("m^3/s")
        per_pressure = parse_unit("1/Pa")
        assert q * per_pressure == parse_unit("m^3/(s Pa)")

    def test_division_and_power_round_trip(self):
        u = parse_unit("W/K")
        assert (u / u).dimensionless
        assert u ** 2 / u == u
        assert u ** 0 == DIMENSIONLESS

    def test_hash_consistency(self):
        assert hash(parse_unit("Pa")) == hash(parse_unit("kg m^-1 s^-2"))

    def test_format_round_trips_through_parse(self):
        for text in ("W/(m K)", "m^3/(s Pa)", "J/(m^3 K)", "1"):
            unit = parse_unit(text)
            assert parse_unit(format_unit(unit)) == unit
