"""Fixture: R1 violations -- untagged constant, mixed units.

repro-lint-scope: units
"""

SPEED = 3.0  # untagged ALL-CAPS numeric constant -> tag-coverage finding

LENGTH = 2.0  #: [unit: m]
DURATION = 4.0  #: [unit: s]

TOTAL = LENGTH + DURATION  # [m] + [s] -> mixing finding


def too_short(width: float = LENGTH) -> bool:
    return width < DURATION  # [m] vs [s] -> comparison finding
