"""Fixture: R3 violations -- undisciplined module state in worker scope.

repro-lint-scope: worker
"""

import repro.profiling as prof
from repro.materials import SOLIDS

TABLE = {"a": 1}  # public mutable module state


def bump(value):
    global TABLE  # global write outside the lifecycle pattern
    TABLE = value


def poke():
    prof.counters = {}  # assigning another module's attribute
    SOLIDS.update({})  # mutating an imported object in place
