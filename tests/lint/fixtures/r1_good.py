"""Fixture: R1-clean module -- everything tagged and dimensionally sound.

repro-lint-scope: units
"""

LENGTH = 2.0  #: [unit: m]
WIDTH = 3.0  #: [unit: m]
PRESSURE = 1.5e4  #: [unit: Pa]
SAFETY_FACTOR = 1.2  #: [unit: 1]

PERIMETER = LENGTH + WIDTH


def area(length: float = LENGTH, width: float = WIDTH) -> float:
    """Rectangle area.  [unit-return: m^2]"""
    return length * width


def force(pressure: float = PRESSURE) -> float:
    """Force on the default area.  [unit-return: N]"""
    return pressure * area()


def wide_enough(width: float = WIDTH) -> bool:
    return width > SAFETY_FACTOR * LENGTH
