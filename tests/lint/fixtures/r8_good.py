"""Fixture: R8-clean -- tagged signatures, matching calls and returns.

repro-lint-scope: units
"""

PRESSURE = 10.0  #: [unit: Pa]
FLOW = 2.0  #: [unit: m^3/s]


def resistance(pressure: float, flow: float) -> float:
    """Hydraulic resistance from a drop and a rate.

    Args:
        pressure: Pressure drop.  [unit: Pa]
        flow: Volumetric flow rate.  [unit: m^3/s]

    Returns:
        Resistance.  [unit-return: Pa s/m^3]
    """
    return pressure / flow


def usage() -> None:
    resistance(PRESSURE, FLOW)
    resistance(PRESSURE, flow=FLOW)


def quantize(value: float) -> float:
    """Round a float in whatever unit it arrives in.

    Args:
        value: Any float.  [unit: any]

    Returns:
        The rounded value.  [unit-return: any]
    """
    return round(value)
