"""Mini-package fixture: the declaring side of a cross-module unit edge."""


def resistance(pressure: float, flow: float) -> float:
    """Hydraulic resistance from a drop and a rate.

    Args:
        pressure: Pressure drop.  [unit: Pa]
        flow: Volumetric flow rate.  [unit: m^3/s]

    Returns:
        Resistance.  [unit-return: Pa s/m^3]
    """
    return pressure / flow
