"""Mini-package fixture: matching units across the module boundary."""

from unitpkg.phys import resistance

PRESSURE = 10.0  #: [unit: Pa]
FLOW = 2.0  #: [unit: m^3/s]


def right():
    return resistance(PRESSURE, FLOW)
