"""Mini-package fixture: passes a length where a pressure is declared."""

from unitpkg.phys import resistance

LENGTH = 2.0  #: [unit: m]


def wrong():
    return resistance(LENGTH, LENGTH)  # two cross-module unit mismatches
