"""Fixture: R5-clean module -- registry factorization, hoisted assembly."""

from scipy.sparse import csr_matrix

from repro.linalg import factorize

_lu_cache = {}


def _factorize(matrix, key):
    lu = _lu_cache.get(key)
    if lu is None:
        lu = factorize(matrix)
        _lu_cache[key] = lu
    return lu


def solve_all(blocks, keys, rhs):
    matrix = csr_matrix(blocks).tocsc()
    return [_factorize(matrix, key).solve(rhs) for key in keys]
