"""Fixture: R5 violations -- dense conversions, unsanctioned factorization."""

from scipy.sparse import csr_matrix
from scipy.sparse.linalg import factorized, splu, spsolve


def densify(matrix):
    return matrix.toarray()  # O(n^2) densification


def solve_naive(matrix, rhs):
    return spsolve(matrix, rhs)  # throws the factorization away


def factorize_here(matrix):
    return factorized(matrix)  # raw factorizer outside repro.linalg


def loop_assembly(blocks, rhs):
    out = []
    for block in blocks:
        mat = csr_matrix(block)  # constructor inside the loop
        lu = splu(mat.tocsc())  # factorization + conversion inside the loop
        out.append(lu.solve(rhs))
    return out
