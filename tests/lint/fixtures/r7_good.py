"""Fixture: R7-clean telemetry -- registered dot-namespaced literals."""

from repro import profiling, telemetry
from repro.telemetry import runlog, span


def emit_registered_metrics(seconds, kind):
    profiling.increment("thermal.solves")
    profiling.add_time("flow.unit_solve", seconds)
    with profiling.timer("parallel.batch"):
        pass
    profiling.observe("optimize.candidate", seconds)
    # Wildcard family: literal prefix ends exactly at the boundary.
    profiling.increment(f"faults.injected.{kind}")


def emit_registered_spans(n):
    with telemetry.span("thermal.rc2.solve", cells=n):
        telemetry.instant("parallel.retry", attempt=1)
    with span("checkpoint.save"):
        pass


def emit_registered_event(score):
    runlog.emit_event("round.end", best_cost=score)


def untracked_receivers(log, name):
    # Receivers outside the tracked set are someone else's API.
    log.emit(name, value=1)
