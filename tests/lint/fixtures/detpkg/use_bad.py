"""Mini-package fixture: keys a cache off the tainted helper."""

from detpkg.clock import now

_cache = {}


def lookup():
    return _cache[now()]  # wall-clock taint arrives through the summary
