"""Mini-package fixture: same cache key, but the helper is sanctioned."""

from detpkg.clock_boundary import now

_cache = {}


def lookup():
    return _cache[now()]  # boundary returns are treated clean
