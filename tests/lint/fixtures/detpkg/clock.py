"""Mini-package fixture: a helper whose return carries wall-clock taint."""

import time


def now():
    return time.time()
