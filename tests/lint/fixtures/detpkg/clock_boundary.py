"""Mini-package fixture: the same helper, sanctioned as a boundary.

repro-lint-scope: determinism-boundary
"""

import time


def now():
    return time.time()
