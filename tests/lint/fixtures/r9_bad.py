"""Fixture: R9 violations -- nondeterminism reaching determinism sinks.

repro-lint-scope: sa-scoring
"""

import os
import random
import time

_result_cache = {}
_memo = {}


def wall_clock():
    # Not itself a finding: taint travels through the summary to callers.
    return time.time()


def cache_lookup():
    return _result_cache[wall_clock()]  # wall clock into a cache key


def pid_lookup():
    return _result_cache.get(os.getpid())  # pid into a cache key


def identity_hash(config):
    return hash(id(config))  # object identity into hash()


def save_state():
    return RunState(seed=random.random())  # unseeded RNG into checkpoint


def report(emit_event):
    emit_event("run.end", elapsed=time.perf_counter())  # clock into event


def set_key():
    return _memo.get(tuple({"a", "b"}))  # set iteration order into a key


def score_candidate():
    return time.perf_counter()  # wall clock out of an SA scoring function
