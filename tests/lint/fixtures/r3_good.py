"""Fixture: R3-clean module -- sanctioned worker-state lifecycle.

repro-lint-scope: worker
"""

from types import MappingProxyType

TABLE = MappingProxyType({"a": 1})
NAMES = ("a", "b")

_state = None
_registry = {}


def _init_worker(value):
    global _state
    _state = value


def reset_state():
    global _state
    _state = None


def current():
    return _state
