"""Fixture: R6-clean persistence -- atomic writes and non-file serializing."""

import json

from repro.checkpoint import atomic_write_json, write_checkpoint


def save_results(payload, path):
    atomic_write_json(path, payload)


def save_state(state, path, fingerprint):
    write_checkpoint(path, state, fingerprint)


def render(payload):
    # Serializing to a string for stdout/logs is not persistence.
    return json.dumps(payload, indent=2)


def announce(payload):
    print(json.dumps(payload))
