"""Fixture: R8 violations -- missing tags, mismatched call, bad return.

repro-lint-scope: units
"""

PRESSURE = 10.0  #: [unit: Pa]
LENGTH = 2.0  #: [unit: m]


def untagged(width: float, height: float) -> float:
    # Public float signature with no unit tags -> coverage finding.
    return width * height


def resistance(pressure: float, flow: float) -> float:
    """Hydraulic resistance from a drop and a rate.

    Args:
        pressure: Pressure drop.  [unit: Pa]
        flow: Volumetric flow rate.  [unit: m^3/s]

    Returns:
        Resistance.  [unit-return: Pa s/m^3]
    """
    return pressure / flow


def misuse() -> None:
    # [m] where [Pa] is declared, [Pa] where [m^3/s] is declared -> two
    # call-site findings.
    resistance(LENGTH, PRESSURE)


def bad_return(pressure: float) -> float:
    """Pretends to produce power but returns the pressure unchanged.

    Args:
        pressure: Pressure drop.  [unit: Pa]

    Returns:
        Power.  [unit-return: W]
    """
    return pressure  # infers [Pa], declared [W] -> return finding
