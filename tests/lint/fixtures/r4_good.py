"""Fixture: R4-clean module -- ReproError discipline."""

from repro.errors import FlowError, ReproError, crash_boundary


def careful():
    try:
        return 1
    except ReproError:
        return 2


def translate():
    with crash_boundary("fixture evaluation"):
        return 1


def shout(value):
    if value < 0:
        raise FlowError("domain error with a domain type")
    return value


def unfinished():
    raise NotImplementedError  # explicitly allowed
