"""Fixture: R9-clean -- seeded RNGs, sorted sets, clean cache keys.

repro-lint-scope: sa-scoring
"""

import random

_result_cache = {}


def seeded_rng(seed):
    return random.Random(seed)  # seeded construction is deterministic


def stable_key(items):
    return tuple(sorted(set(items)))  # sorted() erases set-order taint


def cache_lookup(key):
    return _result_cache.get(key)  # untainted key


def score_fold(items):
    return sum(set(items))  # order-insensitive fold sanitizes
