"""Fixture: R4 violations -- broad excepts and builtin raises."""


def swallow_everything():
    try:
        return 1
    except Exception:  # broad catch
        return 2


def swallow_harder():
    try:
        return 1
    except:  # bare except
        return 2


def shout(value):
    if value < 0:
        raise ValueError("builtin exception from library code")
    return value
