"""Fixture: R2-clean module -- every float key goes through quantize_key."""

from repro.constants import quantize_key

_cache = {}


def lookup(p: float):
    key = quantize_key(p)
    if key not in _cache:
        _cache[key] = p
    return _cache[key]


def exact(n: int, name: str):
    return _cache.get((n, name))
