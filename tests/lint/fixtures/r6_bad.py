"""Fixture: non-atomic persistence of run artifacts (R6 violations)."""

import json
import pickle
from pathlib import Path


def dump_results(payload, path):
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def dump_state(state, path):
    with open(path, "wb") as fh:
        pickle.dump(state, fh)


def write_bench(payload, path):
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def write_blob(state, fh):
    fh.write(pickle.dumps(state))
