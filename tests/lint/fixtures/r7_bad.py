"""Fixture: unregistered / dynamic telemetry names (R7 violations)."""

from repro import profiling, telemetry
from repro.telemetry import runlog, span


def emit_typo_counter():
    # Not declared in repro.telemetry.names.
    profiling.increment("thermal.sovles")


def emit_flat_name():
    # Not dot-namespaced.
    profiling.timer("solve")


def emit_dynamic_name(kind):
    # Dynamic expression instead of a literal.
    telemetry.instant("parallel." + kind)


def emit_variable_name(name):
    with telemetry.span(name):
        pass


def emit_bad_fstring(kind):
    # Literal prefix does not end at a registered wildcard boundary.
    profiling.increment(f"thermal.{kind}.solves")


def emit_unregistered_event():
    runlog.emit_event("round.started", best_cost=1.0)


def emit_nameless():
    with span():
        pass
