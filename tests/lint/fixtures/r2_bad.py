"""Fixture: R2 violations -- raw floats keying a cache."""

_cache = {}


def lookup(p: float):
    key = round(p, 6)  # ad-hoc round() quantization
    if p in _cache:  # raw float membership test
        return _cache[p]  # raw float subscript key
    _cache[key] = p
    return p


def hashed(p: float):
    return hash(float(p))  # float(...) feeding hash()
