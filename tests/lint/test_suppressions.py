"""Suppression comments, the suppression budget, and stale reporting."""

import textwrap

from repro.lint import Analyzer
from repro.lint.__main__ import main

SUPPRESSED_SRC = textwrap.dedent(
    """\
    def swallow():
        try:
            return 1
        except Exception:  # repro-lint: disable=R4
            return 2
    """
)

BLOCK_SUPPRESSED_SRC = textwrap.dedent(
    """\
    def swallow():
        try:
            return 1
        # repro-lint: disable=R4
        except Exception:
            return 2
    """
)

STALE_SRC = textwrap.dedent(
    """\
    # repro-lint: disable=R2,R5
    VALUE = 3
    """
)


def test_same_line_suppression_moves_finding(tmp_path):
    path = tmp_path / "suppressed.py"
    path.write_text(SUPPRESSED_SRC)
    report = Analyzer(select=["R4"]).run([str(path)])
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == "R4"
    assert report.unused_suppressions == []


def test_line_above_suppression_also_matches(tmp_path):
    path = tmp_path / "block.py"
    path.write_text(BLOCK_SUPPRESSED_SRC)
    report = Analyzer(select=["R4"]).run([str(path)])
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_suppression_budget_defaults_to_zero(tmp_path):
    path = tmp_path / "suppressed.py"
    path.write_text(SUPPRESSED_SRC)
    report = Analyzer(select=["R4"]).run([str(path)])
    # One suppression in use: over the default budget, within a budget of 1.
    assert report.exit_code(max_suppressions=0) == 1
    assert report.exit_code(max_suppressions=1) == 0


def test_stale_suppression_is_reported_but_not_fatal(tmp_path):
    path = tmp_path / "stale.py"
    path.write_text(STALE_SRC)
    report = Analyzer().run([str(path)])
    assert report.findings == []
    assert len(report.unused_suppressions) == 1
    assert report.unused_suppressions[0].rules == ("R2", "R5")
    assert report.exit_code() == 0


def test_unsuppressed_finding_fails_regardless_of_budget(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text("def f():\n    raise ValueError('x')\n")
    report = Analyzer(select=["R4"]).run([str(path)])
    assert len(report.findings) == 1
    assert report.exit_code(max_suppressions=100) == 1


class TestCli:
    def test_budget_flag_controls_exit_code(self, tmp_path, capsys):
        path = tmp_path / "suppressed.py"
        path.write_text(SUPPRESSED_SRC)
        assert main([str(path), "--select", "R4"]) == 1
        assert (
            main([str(path), "--select", "R4", "--max-suppressions", "1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "suppressions in use: 1" in out

    def test_stale_suppressions_are_printed(self, tmp_path, capsys):
        path = tmp_path / "stale.py"
        path.write_text(STALE_SRC)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "stale suppression" in out

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "empty.py"
        path.write_text("")
        assert main([str(path), "--select", "R99"]) == 2

    def test_json_format(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.py"
        path.write_text("def f():\n    raise ValueError('x')\n")
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "R4"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5"):
            assert rule_id in out
