"""Resume equivalence: an interrupted-and-resumed run replays *bitwise*.

The core guarantee of the checkpoint tentpole, property-tested: interrupt a
staged SA run at an arbitrary checkpoint write (hypothesis picks which one),
resume from disk in a fresh profiler state, and the final score, selected
plan, simulation count, and winning direction must equal the uninterrupted
golden run exactly -- the RNG bit-generator state, evaluator memo caches,
and batch caches all survive the crash.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import profiling
from repro.errors import CheckpointError, RunInterrupted
from repro.iccad2015 import load_case
from repro.optimize.problem1 import optimize_problem1
from repro.optimize.problem2 import optimize_problem2
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
    StageConfig,
)

P1_STAGES = [
    StageConfig("coarse", 5, 2, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"),
    StageConfig("fine", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm"),
]
P2_STAGES = [
    StageConfig(
        "gradient", 5, 2, 4, METRIC_MIN_GRADIENT_CAPPED, "2rm", group_size=3
    )
]

SCENARIOS = {
    "p1-serial": lambda case, **kw: optimize_problem1(
        case, stages=P1_STAGES, directions=(0, 1), seed=3, **kw
    ),
    "p1-batch": lambda case, **kw: optimize_problem1(
        case, stages=P1_STAGES, directions=(0,), seed=7, batch_size=3, **kw
    ),
    "p2-grouped": lambda case, **kw: optimize_problem2(
        case, stages=P2_STAGES, directions=(0,), seed=5, **kw
    ),
}

_golden_cache = {}


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


def golden(name, case):
    """The uninterrupted run of a scenario (computed once per module)."""
    if name not in _golden_cache:
        profiling.reset()
        _golden_cache[name] = summarize(SCENARIOS[name](case))
    return _golden_cache[name]


def summarize(result):
    return {
        "score": result.evaluation.score,
        "simulations": result.total_simulations,
        "params": result.plan.params().tolist(),
        "direction": result.direction,
    }


def interrupt_and_resume(name, case, tmp_path, stop_after):
    """Interrupt at the ``stop_after``-th interrupt poll, then resume."""
    calls = [0]

    def interrupt():
        calls[0] += 1
        return calls[0] >= stop_after

    profiling.reset()
    try:
        result = SCENARIOS[name](
            case,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=2,
            interrupt_check=interrupt,
        )
        return summarize(result), False
    except RunInterrupted:
        pass
    profiling.reset()  # a resumed process starts with fresh counters
    result = SCENARIOS[name](
        case, checkpoint_dir=str(tmp_path), checkpoint_every=2, resume=True
    )
    return summarize(result), True


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(stop_after=st.integers(min_value=1, max_value=60))
def test_p1_interrupted_resume_is_bitwise(case, tmp_path_factory, stop_after):
    tmp_path = tmp_path_factory.mktemp("ckpt")
    summary, _ = interrupt_and_resume("p1-serial", case, tmp_path, stop_after)
    assert summary == golden("p1-serial", case)


@pytest.mark.parametrize("stop_after", [2, 5, 11])
def test_batch_mode_resume_is_bitwise(case, tmp_path, stop_after):
    summary, _ = interrupt_and_resume("p1-batch", case, tmp_path, stop_after)
    assert summary == golden("p1-batch", case)


@pytest.mark.parametrize("stop_after", [2, 6])
def test_problem2_grouped_resume_is_bitwise(case, tmp_path, stop_after):
    summary, _ = interrupt_and_resume("p2-grouped", case, tmp_path, stop_after)
    assert summary == golden("p2-grouped", case)


def test_checkpointing_alone_changes_nothing(case, tmp_path):
    profiling.reset()
    result = SCENARIOS["p1-serial"](
        case, checkpoint_dir=str(tmp_path), checkpoint_every=3
    )
    assert summarize(result) == golden("p1-serial", case)
    counters = profiling.snapshot()["counters"]
    assert counters["checkpoint.saves"] > 0


def test_double_interrupt_then_resume(case, tmp_path):
    """Two successive crashes still converge to the golden result."""
    first, resumed = interrupt_and_resume_twice(case, tmp_path)
    assert resumed
    assert first == golden("p1-serial", case)


def interrupt_and_resume_twice(case, tmp_path):
    for stop_after in (3, 4):
        calls = [0]

        def interrupt():
            calls[0] += 1
            return calls[0] >= stop_after

        profiling.reset()
        try:
            result = SCENARIOS["p1-serial"](
                case,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=2,
                resume=True,
                interrupt_check=interrupt,
            )
            return summarize(result), True
        except RunInterrupted:
            continue
    profiling.reset()
    result = SCENARIOS["p1-serial"](
        case, checkpoint_dir=str(tmp_path), checkpoint_every=2, resume=True
    )
    return summarize(result), True


def test_resume_after_completion_returns_same_result(case, tmp_path):
    profiling.reset()
    first = SCENARIOS["p1-serial"](case, checkpoint_dir=str(tmp_path))
    first_sims = profiling.counter("cooling.simulations")
    profiling.reset()
    again = SCENARIOS["p1-serial"](
        case, checkpoint_dir=str(tmp_path), resume=True
    )
    assert summarize(again) == summarize(first)
    # The resumed profiler holds exactly the merged run-level history: every
    # direction was already recorded, so no new simulation ran on top of it.
    assert profiling.counter("cooling.simulations") == first_sims


def test_resume_counter_increments(case, tmp_path):
    calls = [0]

    def interrupt():
        calls[0] += 1
        return calls[0] >= 2

    profiling.reset()
    with pytest.raises(RunInterrupted):
        SCENARIOS["p1-serial"](
            case,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=2,
            interrupt_check=interrupt,
        )
    profiling.reset()
    SCENARIOS["p1-serial"](
        case, checkpoint_dir=str(tmp_path), checkpoint_every=2, resume=True
    )
    counters = profiling.snapshot()["counters"]
    assert counters["checkpoint.resumes"] == 1
    assert counters["checkpoint.loads"] == 1


def test_mismatched_setup_refuses_to_resume(case, tmp_path):
    calls = [0]

    def interrupt():
        calls[0] += 1
        return calls[0] >= 2

    with pytest.raises(RunInterrupted):
        optimize_problem1(
            case,
            stages=P1_STAGES,
            directions=(0,),
            seed=3,
            checkpoint_dir=str(tmp_path),
            interrupt_check=interrupt,
        )
    # Same directory, different seed: the fingerprint must reject it.
    with pytest.raises(CheckpointError, match="different run setup"):
        optimize_problem1(
            case,
            stages=P1_STAGES,
            directions=(0,),
            seed=4,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
