"""CheckpointManager policy: cadence, boundaries, interrupt flushing."""

import pytest

from repro.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointManager,
    RunState,
    write_checkpoint,
)
from repro.errors import CheckpointError, RunInterrupted

FP = "f" * 64


def test_load_missing_is_fresh_run(tmp_path):
    manager = CheckpointManager(tmp_path, FP)
    assert manager.load() is None


def test_save_load_roundtrip(tmp_path):
    manager = CheckpointManager(tmp_path, FP)
    state = RunState(profiling={"counters": {"x": 1}})
    manager.save(state)
    assert (tmp_path / CHECKPOINT_FILENAME).exists()
    loaded = manager.load()
    assert isinstance(loaded, RunState)
    assert loaded.profiling == {"counters": {"x": 1}}
    assert loaded.completed == []


def test_non_runstate_payload_rejected(tmp_path):
    write_checkpoint(tmp_path / CHECKPOINT_FILENAME, {"not": "a RunState"}, FP)
    manager = CheckpointManager(tmp_path, FP)
    with pytest.raises(CheckpointError, match="expected RunState"):
        manager.load()


def test_invalid_cadence_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="cadence"):
        CheckpointManager(tmp_path, FP, every_iterations=0)


def test_maybe_save_obeys_cadence_and_is_lazy(tmp_path):
    manager = CheckpointManager(tmp_path, FP, every_iterations=3)
    built = []

    def factory():
        built.append(True)
        return RunState()

    for _ in range(2):
        manager.maybe_save(factory)
    assert built == []  # below cadence: the snapshot is never built
    assert not (tmp_path / CHECKPOINT_FILENAME).exists()
    manager.maybe_save(factory)
    assert built == [True]
    assert (tmp_path / CHECKPOINT_FILENAME).exists()


def test_boundary_save_resets_cadence_counter(tmp_path):
    manager = CheckpointManager(tmp_path, FP, every_iterations=2)
    manager.maybe_save(RunState)  # 1 of 2
    manager.save(RunState())  # boundary: counter back to zero
    built = []
    manager.maybe_save(lambda: built.append(True) or RunState())  # 1 of 2
    assert built == []


def test_interrupt_flushes_then_raises(tmp_path):
    manager = CheckpointManager(
        tmp_path, FP, interrupt_check=lambda: True
    )
    with pytest.raises(RunInterrupted) as excinfo:
        manager.save(RunState())
    # The state reached disk before the stop surfaced, and the exception
    # carries the path so supervisors can tell the user where to resume.
    assert excinfo.value.checkpoint_path == str(tmp_path / CHECKPOINT_FILENAME)
    assert isinstance(manager.load(), RunState)


def test_interrupt_overrides_cadence(tmp_path):
    stop = [False]
    manager = CheckpointManager(
        tmp_path, FP, every_iterations=1000, interrupt_check=lambda: stop[0]
    )
    manager.maybe_save(RunState)
    assert not (tmp_path / CHECKPOINT_FILENAME).exists()
    stop[0] = True
    with pytest.raises(RunInterrupted):
        manager.maybe_save(RunState)
    assert (tmp_path / CHECKPOINT_FILENAME).exists()
