"""Atomic-write primitives: whole-file-or-nothing semantics."""

import json

import pytest

from repro.checkpoint import (
    append_jsonl,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


def test_bytes_roundtrip(tmp_path):
    path = tmp_path / "artifact.bin"
    returned = atomic_write_bytes(path, b"\x00\x01payload")
    assert returned == path
    assert path.read_bytes() == b"\x00\x01payload"


def test_overwrite_replaces_whole_file(tmp_path):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "a much longer first version\n")
    atomic_write_text(path, "v2\n")
    assert path.read_text() == "v2\n"


def test_no_temp_files_left_behind(tmp_path):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "one")
    atomic_write_text(path, "two")
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]


def test_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "artifact.json"
    atomic_write_json(path, {"ok": True})
    assert json.loads(path.read_text()) == {"ok": True}


def test_json_is_sorted_and_newline_terminated(tmp_path):
    path = tmp_path / "payload.json"
    atomic_write_json(path, {"b": 2, "a": 1})
    text = path.read_text()
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"b"')
    assert json.loads(text) == {"a": 1, "b": 2}


def test_append_jsonl_one_line_per_record(tmp_path):
    path = tmp_path / "log.jsonl"
    append_jsonl(path, {"b": 2, "a": 1})
    append_jsonl(path, {"seq": 1}, fsync=False)
    lines = path.read_text().splitlines()
    assert [json.loads(line) for line in lines] == [
        {"a": 1, "b": 2}, {"seq": 1},
    ]
    # Compact separators and sorted keys: stable, diff-friendly records.
    assert lines[0] == '{"a":1,"b":2}'


def test_append_jsonl_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "log.jsonl"
    append_jsonl(path, {"ok": True})
    assert json.loads(path.read_text()) == {"ok": True}


def test_append_jsonl_failed_serialization_appends_nothing(tmp_path):
    path = tmp_path / "log.jsonl"
    append_jsonl(path, {"seq": 0})
    with pytest.raises(TypeError):
        append_jsonl(path, {"bad": object()})
    # Serialization happens before the file is touched: no partial line.
    assert path.read_text() == '{"seq":0}\n'


def test_failed_serialization_never_touches_destination(tmp_path):
    path = tmp_path / "payload.json"
    atomic_write_json(path, {"ok": True})
    with pytest.raises(TypeError):
        atomic_write_json(path, {"bad": object()})
    # The old artifact survives intact and no temp litter appears.
    assert json.loads(path.read_text()) == {"ok": True}
    assert [p.name for p in tmp_path.iterdir()] == ["payload.json"]
