"""Checkpoint format: roundtrip plus every typed rejection path.

The acceptance bar of the checkpoint tentpole's validation half: corrupt,
truncated, mismatched, or alien files handed to ``--resume`` must fail with
a :class:`~repro.errors.CheckpointError` -- never resume from silently wrong
state.
"""

import json
import pickle
import zlib

import pytest

from repro import profiling
from repro.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    fingerprint_of,
    read_checkpoint,
    write_checkpoint,
)
from repro.errors import CheckpointError, ReproError

FP = fingerprint_of(case=1, seed=0)


@pytest.fixture
def ckpt(tmp_path):
    path = tmp_path / "run.ckpt"
    write_checkpoint(path, {"stage": 2, "rounds": [1.5, 2.5]}, FP)
    return path


def _rewrite_header(path, **overrides):
    """Rewrite the header line with ``overrides``, keeping the payload."""
    header_line, _, blob = path.read_bytes().partition(b"\n")
    header = json.loads(header_line)
    header.update(overrides)
    path.write_bytes(json.dumps(header).encode() + b"\n" + blob)


def test_roundtrip(ckpt):
    assert read_checkpoint(ckpt, FP) == {"stage": 2, "rounds": [1.5, 2.5]}


def test_save_and_load_counters(tmp_path):
    profiling.reset()
    path = tmp_path / "run.ckpt"
    write_checkpoint(path, [1, 2], FP)
    read_checkpoint(path, FP)
    counters = profiling.snapshot()["counters"]
    assert counters["checkpoint.saves"] == 1
    assert counters["checkpoint.loads"] == 1


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(tmp_path / "absent.ckpt", FP)


def test_error_is_a_repro_error(ckpt):
    # Callers catching the library-wide base must see checkpoint rejections.
    with pytest.raises(ReproError):
        read_checkpoint(ckpt, "wrong-fingerprint")


def test_fingerprint_mismatch_rejected(ckpt):
    other = fingerprint_of(case=2, seed=0)
    with pytest.raises(CheckpointError, match="different run setup"):
        read_checkpoint(ckpt, other)


def test_version_skew_rejected(ckpt):
    _rewrite_header(ckpt, version=CHECKPOINT_VERSION + 1)
    with pytest.raises(CheckpointError, match="schema version"):
        read_checkpoint(ckpt, FP)


def test_bad_magic_rejected(ckpt):
    _rewrite_header(ckpt, magic="not-a-checkpoint")
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        read_checkpoint(ckpt, FP)


def test_crc_corruption_rejected(ckpt):
    raw = bytearray(ckpt.read_bytes())
    raw[-1] ^= 0xFF  # flip bits in the last payload byte
    ckpt.write_bytes(bytes(raw))
    with pytest.raises(CheckpointError, match="CRC mismatch"):
        read_checkpoint(ckpt, FP)


def test_partial_file_rejected(ckpt):
    raw = ckpt.read_bytes()
    ckpt.write_bytes(raw[: len(raw) - 7])  # simulate a torn write
    with pytest.raises(CheckpointError, match="partial or truncated"):
        read_checkpoint(ckpt, FP)


def test_headerless_file_rejected(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(b"no newline separator at all")
    with pytest.raises(CheckpointError, match="no header/payload separator"):
        read_checkpoint(path, FP)


def test_unparsable_header_rejected(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(b"{truncated json\n" + pickle.dumps({}))
    with pytest.raises(CheckpointError, match="unparsable header"):
        read_checkpoint(path, FP)


def test_valid_crc_bad_pickle_rejected(tmp_path):
    # A payload that passes every integrity check but is not a pickle:
    # the deserialization boundary must still produce a typed error.
    blob = b"definitely not a pickle stream"
    header = json.dumps(
        {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "fingerprint": FP,
            "payload_bytes": len(blob),
            "crc32": zlib.crc32(blob),
        }
    )
    path = tmp_path / "run.ckpt"
    path.write_bytes(header.encode() + b"\n" + blob)
    with pytest.raises(CheckpointError, match="failed to deserialize"):
        read_checkpoint(path, FP)


def test_fingerprint_is_order_insensitive_and_value_sensitive():
    assert fingerprint_of(a=1, b="x") == fingerprint_of(b="x", a=1)
    assert fingerprint_of(a=1) != fingerprint_of(a=2)
    assert fingerprint_of(a=1) != fingerprint_of(b=1)
