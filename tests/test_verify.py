"""Tests for the public verification utilities."""

import numpy as np
import pytest

from repro.cooling import CoolingSystem
from repro.flow import FlowField
from repro.iccad2015 import load_case
from repro.materials import WATER
from repro.networks import serpentine_network, straight_network
from repro.verify import (
    VerificationError,
    VerificationReport,
    verify_flow_solution,
    verify_model_agreement,
    verify_thermal_result,
)


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


class TestReport:
    def test_record_and_ok(self):
        report = VerificationReport()
        report.record("a", True)
        assert report.ok
        report.record("b", False, "oops")
        assert not report.ok
        assert "b: oops" in report.violations

    def test_raise_if_failed(self):
        report = VerificationReport()
        report.record("x", False)
        with pytest.raises(VerificationError, match="1 invariant"):
            report.raise_if_failed()

    def test_merge(self):
        a = VerificationReport(checks=["a"], violations=[])
        b = VerificationReport(checks=["b"], violations=["b: bad"])
        merged = a.merged_with(b)
        assert merged.checks == ["a", "b"]
        assert not merged.ok


class TestFlowVerification:
    def test_valid_solution_passes(self, case):
        field = FlowField(
            case.baseline_network(), case.channel_height, case.coolant
        )
        report = verify_flow_solution(field.at_pressure(1e4))
        assert report.ok, report.violations

    def test_tampered_solution_fails(self, case):
        field = FlowField(
            case.baseline_network(), case.channel_height, case.coolant
        )
        solution = field.at_pressure(1e4)
        solution.edge_flows = solution.edge_flows * 1.5  # break conservation
        report = verify_flow_solution(solution)
        assert not report.ok
        assert any("conservation" in v for v in report.violations)

    def test_pressure_bound_check(self, case):
        field = FlowField(
            case.baseline_network(), case.channel_height, case.coolant
        )
        solution = field.at_pressure(1e4)
        solution.pressures = solution.pressures + 2e4  # above P_sys
        report = verify_flow_solution(solution)
        assert any("maximum principle" in v for v in report.violations)


class TestThermalVerification:
    def test_valid_result_passes(self, case):
        system = CoolingSystem.for_network(
            case.base_stack(), case.baseline_network(), case.coolant
        )
        report = verify_thermal_result(system.evaluate(1e4))
        assert report.ok, report.violations

    def test_4rm_result_passes(self, case):
        system = CoolingSystem.for_network(
            case.base_stack(), case.baseline_network(), case.coolant,
            model="4rm",
        )
        report = verify_thermal_result(system.evaluate(1e4))
        assert report.ok, report.violations

    def test_tampered_energy_fails(self, case):
        system = CoolingSystem.for_network(
            case.base_stack(), case.baseline_network(), case.coolant
        )
        result = system.evaluate(1e4)
        result.coolant_heat_removed = result.total_power * 0.5
        report = verify_thermal_result(result)
        assert any("energy" in v for v in report.violations)

    def test_cold_node_fails(self, case):
        system = CoolingSystem.for_network(
            case.base_stack(), case.baseline_network(), case.coolant
        )
        result = system.evaluate(1e4)
        result.layer_fields[0] = result.layer_fields[0].copy()
        result.layer_fields[0][0, 0] = 250.0  # below any sane floor
        report = verify_thermal_result(result)
        assert any("minimum principle" in v for v in report.violations)


class TestModelAgreement:
    def test_straight_network_agrees(self, case):
        stack = case.base_stack()
        report = verify_model_agreement(
            stack, case.coolant, [1e4], tile_size=4, tolerance=0.02
        )
        assert report.ok, report.violations

    def test_dense_serpentine_fails_as_documented(self, case):
        """The counterflow limitation shows up as an agreement failure."""
        net = serpentine_network(case.nrows, case.ncols, 0, pitch=2)
        stack = case.stack_with_network(net)
        report = verify_model_agreement(
            stack, case.coolant, [2e4], tile_size=4, tolerance=0.02
        )
        assert not report.ok
