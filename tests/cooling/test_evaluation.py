"""Integration tests for network evaluation (Algorithm 2 and its P2 twin)."""

import math

import pytest

from repro.cooling import CoolingSystem, evaluate_problem1, evaluate_problem2


@pytest.fixture(scope="module")
def system():
    from repro.iccad2015 import load_case

    case = load_case(1, grid_size=21)
    return case, CoolingSystem.for_network(
        case.base_stack(),
        case.baseline_network(),
        case.coolant,
        model="2rm",
        tile_size=4,
    )


class TestProblem1Evaluation:
    def test_feasible_case(self, system):
        case, sysm = system
        result = evaluate_problem1(sysm, case.delta_t_star, case.t_max_star)
        assert result.feasible
        assert result.score == pytest.approx(result.w_pump)
        assert result.delta_t <= case.delta_t_star * 1.01
        assert result.t_max <= case.t_max_star * 1.01

    def test_score_uses_eq10(self, system):
        case, sysm = system
        result = evaluate_problem1(sysm, case.delta_t_star, case.t_max_star)
        assert result.w_pump == pytest.approx(
            result.p_sys**2 / sysm.r_sys, rel=1e-9
        )

    def test_gradient_constraint_binds(self, system):
        """At the optimum the gradient constraint is active (or T_max is)."""
        case, sysm = system
        result = evaluate_problem1(sysm, case.delta_t_star, case.t_max_star)
        gradient_active = result.delta_t >= case.delta_t_star * 0.97
        peak_active = result.t_max >= case.t_max_star * 0.97
        assert gradient_active or peak_active

    def test_impossible_gradient_infeasible(self, system):
        case, sysm = system
        result = evaluate_problem1(sysm, delta_t_star=0.001, t_max_star=case.t_max_star)
        assert not result.feasible
        assert math.isinf(result.score)

    def test_impossible_peak_infeasible(self, system):
        case, sysm = system
        result = evaluate_problem1(
            sysm, delta_t_star=case.delta_t_star, t_max_star=300.5
        )
        assert not result.feasible

    def test_tighter_gradient_costs_more_power(self, system):
        case, sysm = system
        loose = evaluate_problem1(sysm, 15.0, case.t_max_star)
        tight = evaluate_problem1(sysm, 8.0, case.t_max_star)
        if tight.feasible:
            assert tight.w_pump >= loose.w_pump

    def test_peak_constraint_raises_pressure(self, system):
        """A tight T_max* forces more pressure than the gradient alone."""
        case, sysm = system
        loose = evaluate_problem1(sysm, case.delta_t_star, case.t_max_star)
        tight_t = loose.t_max - 2.0  # force the peak step to engage
        tight = evaluate_problem1(sysm, case.delta_t_star, tight_t)
        if tight.feasible:
            assert tight.p_sys > loose.p_sys


class TestProblem2Evaluation:
    def test_feasible_case(self, system):
        case, sysm = system
        result = evaluate_problem2(sysm, case.t_max_star, case.w_pump_star())
        assert result.feasible
        assert result.score == pytest.approx(result.delta_t)
        assert result.w_pump <= case.w_pump_star() * 1.01

    def test_power_cap_respected(self, system):
        case, sysm = system
        w_star = case.w_pump_star()
        result = evaluate_problem2(sysm, case.t_max_star, w_star)
        assert result.w_pump <= w_star * (1 + 1e-9)

    def test_larger_budget_never_worse(self, system):
        case, sysm = system
        small = evaluate_problem2(sysm, case.t_max_star, case.w_pump_star())
        large = evaluate_problem2(sysm, case.t_max_star, 10 * case.w_pump_star())
        assert large.score <= small.score * 1.001

    def test_impossible_peak_infeasible(self, system):
        case, sysm = system
        result = evaluate_problem2(sysm, 300.5, case.w_pump_star())
        assert not result.feasible
        assert math.isinf(result.score)

    def test_tiny_power_budget_infeasible_or_hot(self, system):
        case, sysm = system
        result = evaluate_problem2(sysm, case.t_max_star, 1e-12)
        assert not result.feasible or result.delta_t > 0

    def test_simulation_counts_recorded(self, system):
        case, sysm = system
        result = evaluate_problem2(sysm, case.t_max_star, case.w_pump_star())
        assert result.simulations >= 0


class TestRaiseIfInfeasible:
    def test_feasible_chains(self, system):
        case, sysm = system
        from repro.cooling import evaluate_problem1

        result = evaluate_problem1(sysm, case.delta_t_star, case.t_max_star)
        assert result.raise_if_infeasible() is result

    def test_infeasible_raises(self, system):
        case, sysm = system
        from repro.cooling import evaluate_problem1
        from repro.errors import InfeasibleError

        result = evaluate_problem1(sysm, 0.001, case.t_max_star)
        with pytest.raises(InfeasibleError, match="cannot meet"):
            result.raise_if_infeasible()
