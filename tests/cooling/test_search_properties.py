"""Property-based tests of the pressure searches on random curves.

Hypothesis draws random curves with the Section 4.1 shapes (uni-modal or
monotone decreasing) and checks Algorithm 3's contract on each: when a
feasible pressure exists it returns (approximately) the smallest one; when
none exists it returns a certificate near the curve's minimum.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cooling import (
    golden_section_minimize,
    min_pressure_for_peak,
    minimize_pressure_for_gradient,
)


@st.composite
def unimodal_curves(draw):
    """Uni-modal f with a known minimum inside the search range."""
    p_opt = draw(st.floats(2e3, 8e4))
    f_min = draw(st.floats(1.0, 20.0))
    width = draw(st.floats(0.5, 4.0))

    def f(p):
        return f_min + width * math.log(p / p_opt) ** 2

    return f, p_opt, f_min, width


@st.composite
def decreasing_curves(draw):
    """Monotone decreasing f saturating at f_inf."""
    scale = draw(st.floats(1e3, 1e6))
    f_inf = draw(st.floats(0.5, 20.0))

    def f(p):
        return f_inf + scale / p

    return f, scale, f_inf


class TestAlgorithm3Properties:
    @given(unimodal_curves(), st.floats(0.2, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_unimodal_contract(self, curve, margin):
        f, p_opt, f_min, width = curve
        target = f_min + margin
        result = minimize_pressure_for_gradient(
            f, target, p_init=5e3, p_max=1e7
        )
        # Analytic crossing below the optimum.
        expected = p_opt * math.exp(-math.sqrt(margin / width))
        assume(expected > 1.0)  # keep away from the p_min floor
        assert result.feasible
        assert f(result.p_sys) <= target * (1 + 2e-3)
        assert result.p_sys == pytest.approx(expected, rel=2e-2)

    @given(unimodal_curves(), st.floats(0.05, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_unimodal_infeasible_certificate(self, curve, gap):
        f, p_opt, f_min, width = curve
        target = f_min - gap  # below the minimum: unreachable
        result = minimize_pressure_for_gradient(
            f, target, p_init=5e3, p_max=1e7
        )
        assert not result.feasible
        assert result.at_minimum
        # The certificate value is close to the true minimum.
        assert result.value <= f_min + 0.25 * (gap + width)

    @given(decreasing_curves(), st.floats(0.3, 15.0))
    @settings(max_examples=60, deadline=None)
    def test_decreasing_contract(self, curve, margin):
        f, scale, f_inf = curve
        target = f_inf + margin
        expected = scale / margin
        assume(1.0 < expected < 1e6)
        result = minimize_pressure_for_gradient(
            f, target, p_init=5e3, p_max=1e7
        )
        assert result.feasible
        assert result.p_sys == pytest.approx(expected, rel=2e-2)


class TestGoldenSectionProperties:
    @given(unimodal_curves())
    @settings(max_examples=40, deadline=None)
    def test_finds_interior_minimum(self, curve):
        f, p_opt, f_min, _ = curve
        lo, hi = p_opt / 50.0, p_opt * 50.0
        result = golden_section_minimize(f, lo, hi, rtol=1e-4)
        assert result.value == pytest.approx(f_min, abs=1e-2)
        assert result.p_sys == pytest.approx(p_opt, rel=3e-2)


class TestPeakSearchProperties:
    @given(decreasing_curves(), st.floats(0.3, 15.0))
    @settings(max_examples=60, deadline=None)
    def test_minimal_feasible_pressure(self, curve, margin):
        h, scale, t_inf = curve
        t_star = t_inf + margin
        expected = scale / margin
        assume(10.0 < expected < 1e5)
        result = min_pressure_for_peak(h, t_star, p_lo=5.0, p_max=1e7)
        assert result.feasible
        assert h(result.p_sys) <= t_star * (1 + 1e-9)
        # Minimality: a slightly lower pressure violates the constraint.
        assert h(result.p_sys * 0.98) > t_star
