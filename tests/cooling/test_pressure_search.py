"""Unit tests for Algorithm 3 and the auxiliary searches.

Synthetic curves with the Section 4.1 shapes (uni-modal or monotone
decreasing) make the searches cheap to exercise exhaustively; integration
with real simulations is covered in tests/cooling/test_evaluation.py.
"""

import math

import numpy as np
import pytest

from repro.cooling import (
    golden_section_minimize,
    min_pressure_for_peak,
    minimize_pressure_for_gradient,
)
from repro.errors import SearchError


def unimodal(p_opt=2e4, f_min=4.0, width=1.0):
    """A uni-modal gradient curve with minimum f_min at p_opt (Fig. 6a)."""

    def f(p):
        return f_min + width * math.log(p / p_opt) ** 2

    return f


def decreasing(scale=1e4, f_inf=3.0):
    """A monotone decreasing curve saturating at f_inf (Fig. 6b)."""

    def f(p):
        return f_inf + scale / p

    return f


class TestAlgorithm3Feasible:
    def test_unimodal_crossing_found(self):
        f = unimodal(p_opt=2e4, f_min=4.0)
        result = minimize_pressure_for_gradient(f, target=6.0, p_init=1e3)
        assert result.feasible
        # Analytic crossing: p = p_opt * exp(-sqrt(2)).
        expected = 2e4 * math.exp(-math.sqrt(2.0))
        assert result.p_sys == pytest.approx(expected, rel=5e-3)
        # We must find the *smaller* of the two crossings.
        assert result.p_sys < 2e4

    def test_decreasing_crossing_found(self):
        f = decreasing(scale=1e4, f_inf=3.0)
        result = minimize_pressure_for_gradient(f, target=5.0, p_init=1e3)
        assert result.feasible
        # f(p) = 3 + 1e4/p = 5  =>  p = 5e3.
        assert result.p_sys == pytest.approx(5e3, rel=5e-3)

    def test_feasible_at_initial_probe(self):
        f = decreasing(scale=1e2, f_inf=0.0)
        result = minimize_pressure_for_gradient(f, target=50.0, p_init=1e4)
        assert result.feasible
        assert f(result.p_sys) <= 50.0 * (1 + 1e-6)

    def test_returned_pressure_is_minimal(self):
        """No pressure meaningfully below the answer satisfies the target."""
        f = unimodal(p_opt=5e4, f_min=2.0)
        target = 4.0
        result = minimize_pressure_for_gradient(f, target=target, p_init=1e3)
        assert f(result.p_sys) <= target * (1 + 1e-3)
        assert f(result.p_sys * 0.98) > target


class TestAlgorithm3Infeasible:
    def test_unimodal_unreachable_returns_minimum(self):
        f = unimodal(p_opt=3e4, f_min=8.0)
        result = minimize_pressure_for_gradient(f, target=5.0, p_init=1e3)
        assert not result.feasible
        assert result.at_minimum
        # The returned point certifies infeasibility: it is (near) the min.
        assert result.value == pytest.approx(8.0, abs=0.2)
        assert result.p_sys == pytest.approx(3e4, rel=0.3)

    def test_decreasing_asymptote_above_target(self):
        f = decreasing(scale=1e4, f_inf=6.0)
        result = minimize_pressure_for_gradient(
            f, target=5.0, p_init=1e3, p_max=1e7
        )
        assert not result.feasible
        assert result.value < 6.5  # ran far enough right to certify

    def test_pressure_cap_respected(self):
        f = decreasing(scale=1e8, f_inf=0.0)
        result = minimize_pressure_for_gradient(
            f, target=1.0, p_init=1e3, p_max=1e5
        )
        # Crossing would be at 1e8 Pa; the cap forbids it.
        assert not result.feasible
        assert result.p_sys <= 1e5

    def test_budget_enforced(self):
        calls = []

        def pathological(p):
            calls.append(p)
            return 10.0 + math.sin(math.log(p)) * 0.0 + 1e4 / p

        with pytest.raises(SearchError, match="exceeded"):
            minimize_pressure_for_gradient(
                pathological, target=9.0, p_init=1e3, max_evaluations=3
            )


class TestGoldenSection:
    def test_finds_minimum(self):
        f = unimodal(p_opt=2e4, f_min=4.0)
        result = golden_section_minimize(f, 1e3, 1e6, rtol=1e-4)
        assert result.p_sys == pytest.approx(2e4, rel=1e-2)
        assert result.value == pytest.approx(4.0, abs=1e-3)

    def test_minimum_at_edge(self):
        f = decreasing()
        result = golden_section_minimize(f, 1e3, 1e5, rtol=1e-4)
        # Monotone decreasing: the minimum sits at the right edge.
        assert result.p_sys == pytest.approx(1e5, rel=1e-2)

    def test_bad_interval(self):
        with pytest.raises(SearchError, match="lo < hi"):
            golden_section_minimize(unimodal(), 1e4, 1e3)

    def test_evaluation_budget(self):
        with pytest.raises(SearchError, match="exceeded"):
            golden_section_minimize(
                unimodal(), 1.0, 1e12, rtol=1e-12, max_evaluations=5
            )


class TestPeakSearch:
    def _h(self, t_inf=310.0, scale=1e6):
        return lambda p: t_inf + scale / p

    def test_finds_crossing(self):
        h = self._h()
        result = min_pressure_for_peak(h, t_max_star=320.0, p_lo=1e2)
        # h(p) = 310 + 1e6/p = 320  =>  p = 1e5 (inside the pressure cap).
        assert result.feasible
        assert result.p_sys == pytest.approx(1e5, rel=5e-3)

    def test_already_feasible(self):
        h = self._h()
        result = min_pressure_for_peak(h, t_max_star=400.0, p_lo=5e5)
        assert result.feasible
        assert result.p_sys == pytest.approx(5e5)

    def test_infeasible_saturating_curve(self):
        h = self._h(t_inf=350.0)
        result = min_pressure_for_peak(
            h, t_max_star=340.0, p_lo=1e3, p_max=1e8
        )
        assert not result.feasible

    def test_evaluations_counted(self):
        h = self._h()
        result = min_pressure_for_peak(h, t_max_star=320.0, p_lo=1e2)
        assert result.evaluations > 2


class TestErrorPaths:
    """Violated shape assumptions surface as typed SearchError, never hangs.

    The searches assume the Section 4.1 curve shapes (uni-modal gradient,
    monotone decreasing peak).  When a caller hands them something else --
    a degenerate bracket, a curve that rises with pressure -- the contract
    is a :class:`~repro.errors.SearchError` or an honest infeasible result
    within the probe budget, never an unbounded loop or a bare exception.
    """

    @pytest.mark.parametrize(
        "lo,hi",
        [(0.0, 1e4), (-1e3, 1e4), (1e4, 1e4), (1e5, 1e3)],
        ids=["zero-lo", "negative-lo", "empty", "inverted"],
    )
    def test_golden_section_rejects_degenerate_bracket(self, lo, hi):
        with pytest.raises(SearchError, match="lo < hi"):
            golden_section_minimize(unimodal(), lo, hi)

    def test_peak_search_monotonicity_violation_hits_budget(self):
        # h *rises* with pressure, violating the monotone-decreasing
        # assumption: the doubling phase can never bracket a crossing and
        # must die on the probe budget instead of doubling forever.
        def rising(p):
            return 300.0 + p / 1e3

        with pytest.raises(SearchError, match="peak-temperature"):
            min_pressure_for_peak(
                rising,
                t_max_star=250.0,
                p_lo=1e3,
                p_max=1e12,
                max_evaluations=10,
            )

    def test_algorithm3_nonmonotone_curve_never_lies(self):
        # An oscillating gradient curve breaks uni-modality outright.  The
        # search may spend its budget (typed error) or conclude the target
        # is unreachable -- but it must never hang or report feasibility
        # the curve does not support.
        def oscillating(p):
            return 9.0 + math.sin(math.log(p) * 7.0)

        try:
            result = minimize_pressure_for_gradient(
                oscillating, target=7.0, p_init=1e3, max_evaluations=50
            )
        except SearchError:
            return
        assert not result.feasible
