"""Unit tests for the CoolingSystem evaluation wrapper."""

import numpy as np
import pytest

from repro.cooling import CoolingSystem
from repro.errors import ThermalError
from repro.thermal import RC2Simulator, RC4Simulator


class TestConstruction:
    def test_2rm_model(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
            model="2rm",
        )
        assert isinstance(system.simulator, RC2Simulator)

    def test_4rm_model(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
            model="4rm",
        )
        assert isinstance(system.simulator, RC4Simulator)

    def test_unknown_model(self, case1_small):
        with pytest.raises(ThermalError, match="unknown model"):
            CoolingSystem(case1_small.base_stack(), case1_small.coolant, model="8rm")

    def test_network_replicated_across_layers(self, case1_small):
        grid = case1_small.baseline_network()
        system = CoolingSystem.for_network(
            case1_small.base_stack(), grid, case1_small.coolant
        )
        layers = system.stack.channel_layers()
        assert len(layers) == case1_small.n_dies
        for layer in layers:
            assert layer.grid.liquid_count == grid.liquid_count
            assert layer.grid is not grid


class TestEvaluationCache:
    def test_cache_hit_skips_simulation(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        system.evaluate(1e4)
        count = system.n_simulations
        system.evaluate(1e4)
        assert system.n_simulations == count

    def test_distinct_pressures_simulate(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        system.evaluate(1e4)
        system.evaluate(2e4)
        assert system.n_simulations == 2

    def test_clear_cache(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        system.evaluate(1e4)
        system.clear_cache()
        system.evaluate(1e4)
        assert system.n_simulations == 2

    def test_epsilon_perturbed_pressure_is_cache_hit(self, case1_small):
        """Pressures are quantized before keying: a float-noise re-probe of
        a visited pressure must not pay a fresh simulation.  The seed keyed
        the cache on the raw float, so ``1e4`` and ``1e4 + 1e-9`` simulated
        twice."""
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        first = system.evaluate(1e4)
        again = system.evaluate(1e4 + 1e-9)
        assert system.n_simulations == 1
        assert again is first

    def test_quantization_preserves_meaningful_distinctions(self, case1_small):
        """Pressures that differ by more than the 1e-6 Pa quantum (far below
        the search rtol) still key distinct simulations."""
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        system.evaluate(1e4)
        system.evaluate(1e4 + 1e-5)
        assert system.n_simulations == 2

    def test_cache_hit_counter(self, case1_small):
        from repro import profiling

        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        profiling.reset()
        system.evaluate(2e4)
        system.evaluate(2e4 + 1e-8)
        assert profiling.counter("cooling.simulations") == 1
        assert profiling.counter("cooling.cache_hits") == 1


class TestHydraulicShortcuts:
    def test_w_pump_needs_no_simulation(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        w = system.w_pump(1e4)
        assert w > 0
        assert system.n_simulations == 0

    def test_w_pump_matches_simulation(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        result = system.evaluate(1e4)
        assert system.w_pump(1e4) == pytest.approx(result.w_pump, rel=1e-12)

    def test_p_sys_for_power_round_trip(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        p = system.p_sys_for_power(system.w_pump(7e3))
        assert p == pytest.approx(7e3)

    def test_r_sys_combines_layers_in_parallel(self, case1_small):
        """Two identical channel layers halve the single-layer resistance."""
        from repro.flow import FlowField

        grid = case1_small.baseline_network()
        single = FlowField(
            grid, case1_small.channel_height, case1_small.coolant
        ).r_sys
        system = CoolingSystem.for_network(
            case1_small.base_stack(), grid, case1_small.coolant
        )
        assert system.r_sys == pytest.approx(single / case1_small.n_dies, rel=1e-9)


class TestCurves:
    def test_delta_t_and_t_max_accessors(self, case1_small):
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        result = system.evaluate(1e4)
        assert system.delta_t(1e4) == pytest.approx(result.delta_t)
        assert system.t_max(1e4) == pytest.approx(result.t_max)

    def test_t_max_monotone_decreasing(self, case1_small):
        """Section 4.1: h(P_sys) decreases monotonically."""
        system = CoolingSystem.for_network(
            case1_small.base_stack(),
            case1_small.baseline_network(),
            case1_small.coolant,
        )
        pressures = [1e3, 3e3, 1e4, 3e4, 1e5]
        t = [system.t_max(p) for p in pressures]
        assert all(a >= b for a, b in zip(t, t[1:]))
