"""Differential parity: every registered backend vs a fresh-splu reference.

The solver registry is only trustworthy if every backend -- whatever
SuiteSparse libraries happen to be installed -- returns the *same* answer.
Each property test draws a randomized well-conditioned conductance system
(graph Laplacian plus positive grounding, the shape every matrix in this
repo has), solves it through each available backend, and demands agreement
with a freshly computed ``scipy.sparse.linalg.splu`` reference to 1e-10
relative.  Degenerate (exactly singular) systems must raise the typed
:class:`~repro.errors.LinalgError` on every backend, never return garbage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse import coo_matrix, csc_matrix
from scipy.sparse.linalg import splu

from repro.errors import LinalgError
from repro.linalg import (
    BACKEND_ENV_VAR,
    LinalgConfig,
    UMFPACK_MIN_NODES,
    available_backends,
    factorize,
    get_backend,
    registered_backends,
    select_backend,
    use_config,
)

PARITY_RTOL = 1e-10


def random_conductance_system(seed: int, n: int):
    """A nonsingular conductance matrix plus RHS, like the repo's systems.

    A random connected graph Laplacian (chain backbone plus random chords)
    with positive per-node grounding: symmetric, strictly diagonally
    dominant, positive definite -- the exact shape of the flow and thermal
    conduction operators.
    """
    rng = np.random.default_rng(seed)
    chain = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    n_extra = int(rng.integers(0, 2 * n))
    extra = rng.integers(0, n, size=(n_extra, 2))
    extra = extra[extra[:, 0] != extra[:, 1]]
    edges = np.vstack([chain, extra])
    g = rng.uniform(0.1, 10.0, size=edges.shape[0])
    i, j = edges[:, 0], edges[:, 1]
    rows = np.concatenate([i, j, i, j])
    cols = np.concatenate([i, j, j, i])
    vals = np.concatenate([g, g, -g, -g])
    ground = rng.uniform(0.01, 1.0, size=n)
    rows = np.concatenate([rows, np.arange(n)])
    cols = np.concatenate([cols, np.arange(n)])
    vals = np.concatenate([vals, ground])
    matrix = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
    rhs = rng.uniform(-1.0, 1.0, size=n)
    return matrix, rhs


def reference_solution(matrix: csc_matrix, rhs: np.ndarray) -> np.ndarray:
    return splu(matrix.tocsc()).solve(rhs)


def assert_parity(x: np.ndarray, ref: np.ndarray) -> None:
    scale = max(float(np.max(np.abs(ref))), 1.0)
    assert float(np.max(np.abs(x - ref))) <= PARITY_RTOL * scale


# ---------------------------------------------------------------------------
# Per-backend differential parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", available_backends())
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 60))
def test_backend_matches_fresh_splu(name, seed, n):
    matrix, rhs = random_conductance_system(seed, n)
    # These systems are SPD by construction, so spd_only backends are fine.
    factor = get_backend(name).factorize(matrix)
    assert_parity(factor.solve(rhs), reference_solution(matrix, rhs))


@pytest.mark.parametrize("name", available_backends())
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 40), k=st.integers(1, 6))
def test_backend_multi_rhs_matches_columnwise(name, seed, n, k):
    matrix, _ = random_conductance_system(seed, n)
    rng = np.random.default_rng(seed ^ 0xA5A5A5)
    block = rng.uniform(-1.0, 1.0, size=(n, k))
    factor = get_backend(name).factorize(matrix)
    got = factor.solve_many(block)
    assert got.shape == (n, k)
    lu = splu(matrix.tocsc())
    for col in range(k):
        assert_parity(got[:, col], lu.solve(block[:, col]))


@pytest.mark.parametrize("name", available_backends())
def test_backend_rejects_singular_system(name):
    # A pure Laplacian (no grounding) has the constant vector in its null
    # space: exactly singular.
    n = 12
    i = np.arange(n - 1)
    rows = np.concatenate([i, i + 1, i, i + 1])
    cols = np.concatenate([i, i + 1, i + 1, i])
    ones = np.ones(n - 1)
    vals = np.concatenate([ones, ones, -ones, -ones])
    singular = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
    backend = get_backend(name)
    with pytest.raises(LinalgError):
        factor = backend.factorize(singular)
        # Some factorizations only notice singularity at solve time.
        result = factor.solve(np.ones(n))
        if not np.all(np.isfinite(result)):
            raise LinalgError("singular solve returned non-finite values")


@pytest.mark.parametrize("name", available_backends())
def test_backend_one_dimensional_rhs_passthrough(name):
    matrix, rhs = random_conductance_system(7, 15)
    factor = get_backend(name).factorize(matrix)
    via_many = factor.solve_many(rhs)
    assert via_many.shape == (15,)
    assert_parity(via_many, factor.solve(rhs))


# ---------------------------------------------------------------------------
# Registry selection and the factorize() front door
# ---------------------------------------------------------------------------


def test_registry_registers_all_three_backends():
    assert registered_backends() == ["scipy-splu", "umfpack", "cholmod"]
    assert "scipy-splu" in available_backends()


def test_auto_selection_small_general_system_is_superlu():
    assert select_backend(10).name == "scipy-splu"


def test_auto_selection_prefers_umfpack_for_large_systems():
    selected = select_backend(UMFPACK_MIN_NODES)
    if "umfpack" in available_backends():
        assert selected.name == "umfpack"
    else:
        assert selected.name == "scipy-splu"


def test_auto_selection_prefers_cholmod_for_spd_systems():
    selected = select_backend(10, spd=True)
    if "cholmod" in available_backends():
        assert selected.name == "cholmod"
    else:
        assert selected.name == "scipy-splu"


def test_forced_unknown_backend_is_hard_error():
    with use_config(backend="no-such-backend"):
        with pytest.raises(LinalgError, match="unknown solver backend"):
            select_backend(10)


def test_forced_unavailable_backend_is_hard_error():
    unavailable = [
        name for name in registered_backends()
        if name not in available_backends()
    ]
    if not unavailable:
        pytest.skip("every optional backend is installed here")
    with use_config(backend=unavailable[0]):
        with pytest.raises(LinalgError, match="not installed"):
            select_backend(10)


def test_env_var_forces_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "scipy-splu")
    assert select_backend(UMFPACK_MIN_NODES).name == "scipy-splu"


def test_env_var_unknown_backend_is_hard_error(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
    with pytest.raises(LinalgError, match="unknown solver backend"):
        select_backend(10)


def test_config_backend_beats_env_var(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
    with use_config(backend="scipy-splu"):
        assert select_backend(10).name == "scipy-splu"


def test_factorize_front_door_parity():
    matrix, rhs = random_conductance_system(3, 30)
    factor = factorize(matrix, spd=True)
    assert_parity(factor.solve(rhs), reference_solution(matrix, rhs))


def test_factorize_rejects_non_sparse_input():
    with pytest.raises(LinalgError, match="sparse"):
        factorize(np.eye(4))


def test_factorize_rejects_non_square_input():
    matrix = csc_matrix(np.ones((3, 4)))
    with pytest.raises(LinalgError, match="square"):
        factorize(matrix)


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------


def test_config_validation_rejects_bad_knobs():
    with pytest.raises(LinalgError):
        LinalgConfig(rank_threshold=0)
    with pytest.raises(LinalgError):
        LinalgConfig(update_budget=0)
    with pytest.raises(LinalgError):
        LinalgConfig(residual_rtol=0.0)


def test_use_config_restores_previous_state():
    before = LinalgConfig.current()
    with use_config(incremental=False, rank_threshold=7) as active:
        assert LinalgConfig.current() is active
        assert not active.incremental
        assert active.rank_threshold == 7
    assert LinalgConfig.current() is before


def test_config_is_hashable_and_picklable():
    import pickle

    config = LinalgConfig(backend="scipy-splu", rank_threshold=8)
    assert hash(config) == hash(LinalgConfig(backend="scipy-splu", rank_threshold=8))
    assert pickle.loads(pickle.dumps(config)) == config
