"""Differential parity of the Woodbury incremental-update path.

Every test pits :class:`~repro.linalg.IncrementalFactorization` against a
fresh ``splu`` factorization of the *same* current operator (base matrix
plus every applied update) and demands 1e-10 agreement -- through arbitrary
randomized update sequences, across the rank-threshold handoff, past the
accumulated-update budget, and on degenerate updates that drive the system
singular (which must raise the typed error, not return NaNs).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse import identity
from scipy.sparse.linalg import splu

from repro.errors import LinalgError
from repro.linalg import IncrementalFactorization, LinalgConfig

from .test_backends import assert_parity, random_conductance_system


@st.composite
def update_sequences(draw):
    """A random system plus a random mixed pair/diagonal update sequence."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(4, 40))
    n_updates = draw(st.integers(1, 8))
    rng = np.random.default_rng(seed ^ 0x5EED)
    updates = []
    for _ in range(n_updates):
        kind = rng.integers(0, 2)
        r = int(rng.integers(1, 4))
        if kind == 0:
            pairs = rng.integers(0, n, size=(r, 2))
            pairs = pairs[pairs[:, 0] != pairs[:, 1]]
            deltas = rng.uniform(0.05, 2.0, size=pairs.shape[0])
            updates.append(("pairs", pairs, deltas))
        else:
            nodes = rng.integers(0, n, size=r)
            deltas = rng.uniform(0.05, 2.0, size=r)
            updates.append(("diag", nodes, deltas))
    return seed, n, updates


def apply_updates(inc: IncrementalFactorization, updates) -> None:
    for kind, where, deltas in updates:
        if kind == "pairs":
            inc.update_pairs(where, deltas)
        else:
            inc.update_diagonal(where, deltas)


@settings(max_examples=40, deadline=None)
@given(data=update_sequences())
def test_incremental_matches_fresh_factorization(data):
    seed, n, updates = data
    matrix, rhs = random_conductance_system(seed, n)
    inc = IncrementalFactorization(matrix)
    apply_updates(inc, updates)
    reference = splu(inc.matrix().tocsc()).solve(rhs)
    assert_parity(inc.solve(rhs), reference)


@settings(max_examples=20, deadline=None)
@given(data=update_sequences(), k=st.integers(1, 5))
def test_incremental_multi_rhs_parity(data, k):
    seed, n, updates = data
    matrix, _ = random_conductance_system(seed, n)
    rng = np.random.default_rng(seed ^ 0xB10C)
    block = rng.uniform(-1.0, 1.0, size=(n, k))
    inc = IncrementalFactorization(matrix)
    apply_updates(inc, updates)
    lu = splu(inc.matrix().tocsc())
    got = inc.solve_many(block)
    for col in range(k):
        assert_parity(got[:, col], lu.solve(block[:, col]))


@settings(max_examples=25, deadline=None)
@given(data=update_sequences())
def test_rank_threshold_handoff_keeps_parity(data):
    """A tiny rank threshold forces mid-sequence exact rebuilds; parity must
    hold straight across the handoff."""
    seed, n, updates = data
    matrix, rhs = random_conductance_system(seed, n)
    config = LinalgConfig(rank_threshold=2)
    inc = IncrementalFactorization(matrix, config=config)
    apply_updates(inc, updates)
    assert inc.rank <= 2
    reference = splu(inc.matrix().tocsc()).solve(rhs)
    assert_parity(inc.solve(rhs), reference)


def test_rank_threshold_triggers_rebuild_counter():
    matrix, rhs = random_conductance_system(11, 20)
    inc = IncrementalFactorization(matrix, config=LinalgConfig(rank_threshold=1))
    inc.update_pairs(np.array([[0, 1]]), np.array([0.5]))
    assert inc.n_rebuilds == 0  # rank 1 fits exactly
    inc.update_pairs(np.array([[2, 3]]), np.array([0.5]))
    assert inc.n_rebuilds == 1  # would be rank 2: folded and refactorized
    assert inc.rank == 0
    reference = splu(inc.matrix().tocsc()).solve(rhs)
    assert_parity(inc.solve(rhs), reference)


def test_update_budget_triggers_rebuild():
    matrix, rhs = random_conductance_system(13, 25)
    inc = IncrementalFactorization(
        matrix, config=LinalgConfig(update_budget=2, rank_threshold=96)
    )
    for step in range(3):
        inc.update_diagonal(np.array([step]), np.array([0.25]))
    assert inc.n_rebuilds == 1
    reference = splu(inc.matrix().tocsc()).solve(rhs)
    assert_parity(inc.solve(rhs), reference)


def test_forced_refactorize_folds_updates():
    matrix, rhs = random_conductance_system(17, 18)
    inc = IncrementalFactorization(matrix)
    inc.update_pairs(np.array([[1, 2], [3, 4]]), np.array([1.0, -0.05]))
    assert inc.rank == 2
    inc.refactorize()
    assert inc.rank == 0
    assert inc.n_rebuilds == 1
    reference = splu(inc.matrix().tocsc()).solve(rhs)
    assert_parity(inc.solve(rhs), reference)


def test_negative_deltas_are_exact_too():
    """Weakening a conductance (the other half of every SA move)."""
    matrix, rhs = random_conductance_system(19, 22)
    inc = IncrementalFactorization(matrix)
    inc.update_pairs(np.array([[0, 1], [5, 6]]), np.array([-0.05, -0.01]))
    reference = splu(inc.matrix().tocsc()).solve(rhs)
    assert_parity(inc.solve(rhs), reference)


def test_zero_deltas_are_no_ops():
    matrix, _ = random_conductance_system(23, 12)
    inc = IncrementalFactorization(matrix)
    inc.update_pairs(np.array([[0, 1]]), np.array([0.0]))
    inc.update_diagonal(np.array([2]), np.array([0.0]))
    assert inc.rank == 0
    assert inc.n_rebuilds == 0


# ---------------------------------------------------------------------------
# Degenerate systems
# ---------------------------------------------------------------------------


def test_singular_base_matrix_is_typed_error():
    n = 8
    i = np.arange(n - 1)
    from scipy.sparse import coo_matrix

    ones = np.ones(n - 1)
    singular = coo_matrix(
        (
            np.concatenate([ones, ones, -ones, -ones]),
            (
                np.concatenate([i, i + 1, i, i + 1]),
                np.concatenate([i, i + 1, i + 1, i]),
            ),
        ),
        shape=(n, n),
    ).tocsc()
    with pytest.raises(LinalgError):
        IncrementalFactorization(singular)


def test_update_driving_system_singular_is_typed_error():
    # Identity base; removing node 0's only conductance makes A singular.
    inc = IncrementalFactorization(identity(6, format="csc"))
    inc.update_diagonal(np.array([0]), np.array([-1.0]))
    with pytest.raises(LinalgError):
        inc.solve(np.ones(6))


def test_near_singular_update_still_meets_parity():
    matrix, rhs = random_conductance_system(29, 16)
    inc = IncrementalFactorization(matrix)
    # Cancel most of a grounding term: legal but poorly conditioned.
    diag0 = float(inc.matrix().diagonal()[0])
    inc.update_diagonal(np.array([0]), np.array([-0.9 * diag0]))
    reference = splu(inc.matrix().tocsc()).solve(rhs)
    scale = max(float(np.max(np.abs(reference))), 1.0)
    assert float(np.max(np.abs(inc.solve(rhs) - reference))) <= 1e-8 * scale


# ---------------------------------------------------------------------------
# Input validation
# ---------------------------------------------------------------------------


def test_mismatched_delta_count_rejected():
    inc = IncrementalFactorization(identity(5, format="csc"))
    with pytest.raises(LinalgError, match="deltas"):
        inc.update_pairs(np.array([[0, 1]]), np.array([1.0, 2.0]))


def test_out_of_range_nodes_rejected():
    inc = IncrementalFactorization(identity(5, format="csc"))
    with pytest.raises(LinalgError, match="out of range"):
        inc.update_diagonal(np.array([9]), np.array([1.0]))


def test_non_finite_deltas_rejected():
    inc = IncrementalFactorization(identity(5, format="csc"))
    with pytest.raises(LinalgError, match="finite"):
        inc.update_pairs(np.array([[0, 1]]), np.array([np.nan]))


def test_non_square_matrix_rejected():
    from scipy.sparse import csc_matrix

    with pytest.raises(LinalgError, match="square"):
        IncrementalFactorization(csc_matrix(np.ones((2, 3))))
