"""Parity of the thermal pressure-shift (Woodbury) path against exact solves.

The thermal operator is ``K + P A``: between two pressures it differs by
``(P - P0) A``, a low-rank term over the advected rows.  The incremental
path answers search probes from the base factorization plus that
correction; these tests pin it against ``exact=True`` solves on a real
stack, prove the fallback ladder (tight residual tolerance, oversized row
rank) degrades to exact solves rather than wrong answers, and check the
exact-recompute bookkeeping that keeps SA trajectories bitwise identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import profiling
from repro.constants import CELL_WIDTH
from repro.cooling.system import CoolingSystem
from repro.geometry import build_contest_stack
from repro.linalg import use_config
from repro.materials import WATER
from repro.networks import serpentine_network
from repro.thermal.rc2 import RC2Simulator

PARITY_RTOL = 1e-10

PRESSURES = [800.0, 1200.0, 2000.0, 3500.0, 5000.0]


def small_stack():
    grid = serpentine_network(9, 9)
    power = np.full((9, 9), 0.01)
    return build_contest_stack(
        2, 2e-4, [power, power], lambda d: grid.copy(), 9, 9, CELL_WIDTH
    )


@pytest.fixture()
def simulator():
    return RC2Simulator(small_stack(), WATER, tile_size=4)


def test_incremental_probe_matches_exact_solve(simulator):
    profiling.reset()
    system = simulator.system
    exact = {p: system.solve(p, exact=True) for p in PRESSURES}
    fresh = RC2Simulator(small_stack(), WATER, tile_size=4).system
    # Prime one base factorization, then probe the rest incrementally.
    fresh.solve(PRESSURES[0], exact=True)
    for p in PRESSURES[1:]:
        probe = fresh.solve(p)
        scale = max(float(np.max(np.abs(exact[p]))), 1.0)
        assert float(np.max(np.abs(probe - exact[p]))) <= PARITY_RTOL * scale
    counters = profiling.snapshot()["counters"]
    assert counters.get("linalg.incremental_solves", 0) >= len(PRESSURES) - 1
    assert counters.get("linalg.shift_bases", 0) >= 1


def test_incremental_disabled_never_builds_shift(simulator):
    profiling.reset()
    with use_config(incremental=False):
        for p in PRESSURES:
            simulator.system.solve(p)
    counters = profiling.snapshot()["counters"]
    assert counters.get("linalg.incremental_solves", 0) == 0
    assert counters.get("linalg.shift_bases", 0) == 0


def test_tight_residual_tolerance_falls_back_to_exact(simulator):
    """An unmeetable residual bound must reject every incremental answer."""
    profiling.reset()
    reference = {p: simulator.system.solve(p, exact=True) for p in PRESSURES}
    fresh = RC2Simulator(small_stack(), WATER, tile_size=4).system
    with use_config(residual_rtol=1e-300):
        for p in PRESSURES:
            result = fresh.solve(p)
            np.testing.assert_array_equal(result, reference[p])
    counters = profiling.snapshot()["counters"]
    assert counters.get("linalg.incremental_solves", 0) == 0
    assert counters.get("linalg.incremental_fallbacks", 0) >= 1


def test_oversized_row_rank_disables_shift(simulator):
    """When the advected-row count exceeds the threshold the shift path is
    disabled outright and every solve is exact."""
    profiling.reset()
    with use_config(rank_threshold=1):
        for p in PRESSURES:
            simulator.system.solve(p)
    counters = profiling.snapshot()["counters"]
    assert counters.get("linalg.incremental_solves", 0) == 0
    assert counters.get("linalg.shift_bases", 0) == 0


def test_exact_solves_identical_with_and_without_incremental():
    """exact=True must return bit-identical vectors either way."""
    with use_config(incremental=False):
        baseline = RC2Simulator(small_stack(), WATER, tile_size=4)
        expected = {p: baseline.system.solve(p, exact=True) for p in PRESSURES}
    mixed = RC2Simulator(small_stack(), WATER, tile_size=4)
    for p in PRESSURES:
        mixed.system.solve(p)  # warm the incremental machinery
    for p in PRESSURES:
        np.testing.assert_array_equal(
            mixed.system.solve(p, exact=True), expected[p]
        )


def test_cooling_system_exact_recompute_bookkeeping():
    profiling.reset()
    system = CoolingSystem(small_stack(), WATER, model="2rm")
    for p in PRESSURES:
        system.evaluate(p)
    sims = system.n_simulations
    assert sims == len(PRESSURES)
    result = system.evaluate(PRESSURES[-1], exact=True)
    # The exact recompute replaced the cached probe without counting as a
    # new simulation -- SA bookkeeping stays identical across modes.
    assert system.n_simulations == sims
    assert np.isfinite(result.t_max) and np.isfinite(result.delta_t)
    again = system.evaluate(PRESSURES[-1], exact=True)
    assert again is result  # now cached as exact: a plain hit
    counters = profiling.snapshot()["counters"]
    assert counters.get("cooling.exact_recomputes", 0) == 1


def test_transient_and_steady_agree_after_incremental_probes():
    """The incremental path must not leak approximate state into the LU
    caches the transient integrator reuses."""
    sim = RC2Simulator(small_stack(), WATER, tile_size=4)
    for p in PRESSURES:
        sim.system.solve(p)  # populate shift machinery
    exact = sim.system.solve(2000.0, exact=True)
    fresh = RC2Simulator(small_stack(), WATER, tile_size=4)
    np.testing.assert_array_equal(exact, fresh.system.solve(2000.0, exact=True))
