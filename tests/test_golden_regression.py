"""Seeded verification sweeps and golden physics pins.

Two safety nets under the solver-reuse layers (the flow unit-solution cache,
the thermal factorization reuse, the quantized result caches):

* property tests run the independent checkers in :mod:`repro.verify` over
  the deterministic network library at randomized pressures -- conservation
  and bound violations catch a *wrong* cached solve wherever it hides;
* golden tests pin quick-mode Table 2 statistics and concrete thermal
  metrics to six significant digits -- a *drifted* cached solve cannot pass
  even if it stays self-consistent.

The golden values were computed at the commit that introduced the caches and
must only ever change with an intentional physics change.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cooling import CoolingSystem
from repro.flow import FlowField
from repro.geometry import build_contest_stack
from repro.iccad2015 import CASE_NUMBERS, load_case
from repro.materials import WATER
from repro.networks import sample_networks
from repro.thermal import RC2Simulator
from repro.verify import verify_flow_solution, verify_thermal_result

#: The deterministic model-comparison library (straight / tree / manual).
LIBRARY = sample_networks(21, 21, n_tree_variants=4, seed=2015)

#: Six significant digits.
GOLDEN_RTOL = 1e-6


# ---------------------------------------------------------------------------
# Seeded verification properties
# ---------------------------------------------------------------------------


class TestVerifiedLibraryNetworks:
    @given(
        st.integers(0, len(LIBRARY) - 1),
        st.floats(1e2, 1e6),
    )
    @settings(max_examples=30, deadline=None)
    def test_flow_solutions_verify(self, index, p_sys):
        """Every library network's flow solution passes the independent
        checker at any pressure -- including solutions built from the
        topology-cached unit solve."""
        name, _, grid = LIBRARY[index]
        solution = FlowField(grid, 2e-4, WATER).at_pressure(p_sys)
        report = verify_flow_solution(solution)
        assert report.ok, f"{name}: {report.violations}"

    @given(
        st.integers(0, len(LIBRARY) - 1),
        st.floats(2e3, 2e5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_thermal_results_verify(self, index, p_sys, seed):
        """2RM results on library networks with randomized power maps pass
        the energy-balance and temperature-bound checks -- including solves
        that reused a cached factorization."""
        import numpy as np

        name, _, grid = LIBRARY[index]
        rng = np.random.default_rng(seed)
        nrows, ncols = grid.shape
        power = rng.random((nrows, ncols))
        power *= 2.0 / power.sum()
        stack = build_contest_stack(
            2, 2e-4, [power, power], lambda d: grid.copy(), nrows, ncols,
            grid.cell_width,
        )
        result = RC2Simulator(stack, WATER, tile_size=3).solve(p_sys)
        report = verify_thermal_result(result)
        assert report.ok, f"{name}: {report.violations}"

    @given(st.integers(0, len(LIBRARY) - 1), st.floats(1e3, 1e5))
    @settings(max_examples=10, deadline=None)
    def test_repeat_evaluation_verifies_and_matches(self, index, p_sys):
        """Two independently-built systems agree bit for bit at the same
        pressure: the caches return the same physics as a cold build."""
        name, _, grid = LIBRARY[index]
        a = FlowField(grid, 2e-4, WATER).at_pressure(p_sys)
        b = FlowField(grid, 2e-4, WATER).at_pressure(p_sys)
        assert a.q_sys == b.q_sys, name
        assert (a.pressures == b.pressures).all(), name


# ---------------------------------------------------------------------------
# Golden pins
# ---------------------------------------------------------------------------

#: Quick-mode Table 2 statistics (grid 31), six significant digits:
#: case -> (n_dies, channel_height, die_power, delta_t_star, t_max_star).
TABLE2_GOLDEN = {
    1: (2, 0.0002, 3.96025076, 15.0, 358.15),
    2: (2, 0.0004, 3.48921851, 10.0, 358.15),
    3: (2, 0.0004, 4.05445721, 15.0, 358.15),
    4: (3, 0.0002, 4.09213979, 10.0, 358.15),
    5: (2, 0.0004, 13.9589466, 10.0, 338.15),
}

#: Case 1 baseline network at P_sys = 20 kPa (grid 21), six significant
#: digits per model: (delta_t, t_max, w_pump).
#:
#: Intentional physics change: re-pinned when the default advection scheme
#: switched from the paper's central differencing (Eq. 6) to the monotone
#: upwind scheme (sub-inlet temperature fix, ROADMAP item 6).  The central
#: values at this operating point were (6.91695261, 309.626868) / 2RM and
#: (7.71083499, 310.102979) / 4RM -- the schemes agree to ~0.15% on this
#: high-flow baseline network; they diverge only on low-flow connectors.
PHYSICS_GOLDEN = {
    "2rm": (6.92738301, 309.644356, 0.0623901083),
    "4rm": (7.7127919, 310.107129, 0.0623901083),
}


class TestGoldenTable2:
    @pytest.mark.parametrize("number", CASE_NUMBERS)
    def test_case_statistics_pinned(self, number):
        case = load_case(number, grid_size=31)
        n_dies, h_c, die_power, dts, tms = TABLE2_GOLDEN[number]
        assert case.n_dies == n_dies
        assert case.channel_height == pytest.approx(h_c, rel=GOLDEN_RTOL)
        assert case.die_power == pytest.approx(die_power, rel=GOLDEN_RTOL)
        assert case.delta_t_star == pytest.approx(dts, rel=GOLDEN_RTOL)
        assert case.t_max_star == pytest.approx(tms, rel=GOLDEN_RTOL)

    def test_special_constraints_pinned(self):
        assert load_case(3, grid_size=31).restricted
        assert load_case(4, grid_size=31).matched_ports


class TestGoldenPhysics:
    @pytest.mark.parametrize("model", sorted(PHYSICS_GOLDEN))
    def test_case1_baseline_metrics_pinned(self, model):
        case = load_case(1, grid_size=21)
        system = CoolingSystem.for_network(
            case.base_stack(),
            case.baseline_network(),
            case.coolant,
            model=model,
        )
        result = system.evaluate(2e4)
        delta_t, t_max, w_pump = PHYSICS_GOLDEN[model]
        assert result.delta_t == pytest.approx(delta_t, rel=GOLDEN_RTOL)
        assert result.t_max == pytest.approx(t_max, rel=GOLDEN_RTOL)
        assert result.w_pump == pytest.approx(w_pump, rel=GOLDEN_RTOL)

    def test_r_sys_pinned(self):
        case = load_case(1, grid_size=21)
        system = CoolingSystem.for_network(
            case.base_stack(),
            case.baseline_network(),
            case.coolant,
            model="2rm",
        )
        assert system.r_sys == pytest.approx(6.41127273e9, rel=GOLDEN_RTOL)
