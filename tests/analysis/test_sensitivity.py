"""Tests for the sensitivity analysis utilities."""

import pytest

from repro.analysis.sensitivity import (
    PARAMETERS,
    elasticities,
    sensitivity_sweep,
)
from repro.errors import ThermalError
from repro.iccad2015 import load_case


@pytest.fixture(scope="module")
def sweep():
    case = load_case(1, grid_size=21)
    records = sensitivity_sweep(
        case.base_stack(),
        case.baseline_network(),
        case.coolant,
        p_sys=1e4,
        scales=(0.8, 1.0, 1.25),
    )
    return case, records


class TestSweep:
    def test_record_count(self, sweep):
        _, records = sweep
        assert len(records) == len(PARAMETERS) * 3

    def test_unknown_parameter_rejected(self, sweep):
        case, _ = sweep
        with pytest.raises(ThermalError, match="unknown"):
            sensitivity_sweep(
                case.base_stack(),
                case.baseline_network(),
                case.coolant,
                1e4,
                parameters=("gravity",),
            )

    def test_taller_channels_cool_more(self, sweep):
        """Raising h_c cuts fluid resistance -> more flow -> cooler."""
        _, records = sweep
        group = {
            r.scale: r for r in records if r.parameter == "channel_height"
        }
        assert group[1.25].t_max < group[0.8].t_max
        assert group[1.25].q_sys > group[0.8].q_sys

    def test_viscosity_throttles_flow(self, sweep):
        _, records = sweep
        group = {r.scale: r for r in records if r.parameter == "viscosity"}
        assert group[1.25].q_sys < group[0.8].q_sys
        assert group[1.25].t_max > group[0.8].t_max

    def test_heat_capacity_cools_downstream(self, sweep):
        """A stronger coolant lowers the downstream rise (gradient)."""
        _, records = sweep
        group = {
            r.scale: r
            for r in records
            if r.parameter == "coolant_heat_capacity"
        }
        assert group[1.25].delta_t <= group[0.8].delta_t
        # Flow itself is unaffected (viscosity unchanged).
        assert group[1.25].q_sys == pytest.approx(group[0.8].q_sys, rel=1e-9)

    def test_nusselt_improves_film(self, sweep):
        _, records = sweep
        group = {r.scale: r for r in records if r.parameter == "nusselt"}
        assert group[1.25].t_max < group[0.8].t_max


class TestElasticities:
    def test_signs(self, sweep):
        _, records = sweep
        slopes = elasticities(records, metric="t_max")
        assert slopes["channel_height"] < 0  # taller -> cooler
        assert slopes["viscosity"] > 0  # thicker -> hotter
        assert slopes["nusselt"] < 0

    def test_dominant_knob_depends_on_regime(self, sweep):
        """Past the turning point the film coefficient dominates; when the
        system is flow-starved the hydraulic knob (h_c) takes over."""
        case, records = sweep
        rich = elasticities(records, metric="t_max")
        assert abs(rich["nusselt"]) > abs(rich["channel_height"])
        starved_records = sensitivity_sweep(
            case.base_stack(),
            case.baseline_network(),
            case.coolant,
            p_sys=4e2,
            scales=(0.8, 1.0, 1.25),
        )
        starved = elasticities(starved_records, metric="t_max")
        assert abs(starved["channel_height"]) > abs(starved["nusselt"])

    def test_metric_selection(self, sweep):
        _, records = sweep
        slopes = elasticities(records, metric="w_pump")
        # W_pump = P^2/R: taller channels lower R -> more power at fixed P.
        assert slopes["channel_height"] > 0
