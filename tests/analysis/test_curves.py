"""Tests for pressure-curve analysis (Figs. 5 and 6)."""

import numpy as np
import pytest

from repro.analysis import classify_gradient_curve, pressure_sweep, turning_point
from repro.analysis.curves import SHAPE_DECREASING, SHAPE_UNIMODAL
from repro.cooling import CoolingSystem
from repro.errors import SearchError


class TestClassification:
    def test_decreasing(self):
        ps = np.array([1e3, 1e4, 1e5])
        dt = np.array([10.0, 6.0, 5.0])
        assert classify_gradient_curve(ps, dt) == SHAPE_DECREASING

    def test_unimodal(self):
        ps = np.array([1e3, 1e4, 1e5])
        dt = np.array([10.0, 4.0, 7.0])
        assert classify_gradient_curve(ps, dt) == SHAPE_UNIMODAL

    def test_tiny_noise_ignored(self):
        ps = np.array([1e3, 1e4, 1e5])
        dt = np.array([10.0, 5.0, 5.0000001])
        assert classify_gradient_curve(ps, dt) == SHAPE_DECREASING

    def test_needs_two_samples(self):
        with pytest.raises(SearchError):
            classify_gradient_curve(np.array([1.0]), np.array([1.0]))


class TestTurningPoint:
    def test_knee_detection(self):
        ps = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        ts = np.array([400.0, 350.0, 320.0, 305.0, 301.0, 300.0])
        knee = turning_point(ps, ts, knee_fraction=0.9)
        # 90% of the 100 K drop is covered at T <= 310 K: first at p=8.
        assert knee == pytest.approx(8.0)

    def test_flat_curve(self):
        ps = np.array([1.0, 2.0, 4.0])
        ts = np.array([300.0, 300.0, 300.0])
        assert turning_point(ps, ts) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(SearchError):
            turning_point(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(SearchError):
            turning_point(
                np.array([1.0, 2.0, 3.0]),
                np.array([3.0, 2.0, 1.0]),
                knee_fraction=1.5,
            )


class TestSweep:
    @pytest.fixture(scope="class")
    def system(self):
        from repro.iccad2015 import load_case

        case = load_case(1, grid_size=21)
        return CoolingSystem.for_network(
            case.base_stack(),
            case.baseline_network(),
            case.coolant,
            model="2rm",
        )

    def test_sweep_outputs(self, system):
        sweep = pressure_sweep(system, [1e3, 5e3, 2e4, 8e4])
        assert sweep.pressures.shape == (4,)
        assert sweep.peak_is_monotone()
        assert np.all(np.diff(sweep.w_pump) > 0)

    def test_probe_traces_decrease(self, system):
        probes = [("upstream", 0, 10, 1), ("downstream", 0, 10, 19)]
        sweep = pressure_sweep(system, [1e3, 5e3, 2e4, 8e4], probe_cells=probes)
        for label in ("upstream", "downstream"):
            trace = sweep.node_curves[label]
            assert np.all(np.diff(trace) < 1e-9)

    def test_upstream_turns_before_downstream(self, system):
        """Fig. 5: upstream cells reach their turning point earlier."""
        pressures = np.geomspace(5e2, 2e5, 14)
        probes = [("up", 0, 10, 1), ("down", 0, 10, 19)]
        sweep = pressure_sweep(system, pressures, probe_cells=probes)
        knee_up = turning_point(sweep.pressures, sweep.node_curves["up"], 0.9)
        knee_down = turning_point(sweep.pressures, sweep.node_curves["down"], 0.9)
        assert knee_up <= knee_down

    def test_needs_positive_pressures(self, system):
        with pytest.raises(SearchError):
            pressure_sweep(system, [0.0, 1e3])

    def test_needs_two_pressures(self, system):
        with pytest.raises(SearchError):
            pressure_sweep(system, [1e3])
