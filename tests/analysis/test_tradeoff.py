"""Tests for trade-off curves and Pareto dominance."""

import numpy as np
import pytest

from repro.analysis.tradeoff import (
    TradeoffPoint,
    front_dominates,
    pareto_front,
    tradeoff_curve,
)
from repro.cooling import CoolingSystem
from repro.errors import SearchError
from repro.iccad2015 import load_case


@pytest.fixture(scope="module")
def systems():
    case = load_case(1, grid_size=21)
    straight = CoolingSystem.for_network(
        case.base_stack(), case.baseline_network(), case.coolant
    )
    tree = CoolingSystem.for_network(
        case.base_stack(), case.tree_plan().build(), case.coolant
    )
    return case, straight, tree


class TestTradeoffPoint:
    def test_dominance(self):
        a = TradeoffPoint(1.0, 1.0, 5.0, 310.0)
        b = TradeoffPoint(2.0, 2.0, 6.0, 312.0)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable(self):
        a = TradeoffPoint(1.0, 1.0, 8.0, 310.0)
        b = TradeoffPoint(2.0, 2.0, 6.0, 312.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = TradeoffPoint(1.0, 1.0, 5.0, 310.0)
        b = TradeoffPoint(2.0, 1.0, 5.0, 310.0)
        assert not a.dominates(b)


class TestTradeoffCurve:
    def test_power_increases_along_curve(self, systems):
        _, straight, _ = systems
        curve = tradeoff_curve(straight, np.geomspace(1e3, 5e4, 8))
        w = [pt.w_pump for pt in curve]
        assert w == sorted(w)

    def test_t_max_filter(self, systems):
        _, straight, _ = systems
        full = tradeoff_curve(straight, np.geomspace(1e3, 5e4, 8))
        hottest = max(pt.t_max for pt in full)
        coldest = min(pt.t_max for pt in full)
        cut = (hottest + coldest) / 2
        filtered = tradeoff_curve(
            straight, np.geomspace(1e3, 5e4, 8), t_max_star=cut
        )
        assert 0 < len(filtered) < len(full)
        assert all(pt.t_max <= cut for pt in filtered)

    def test_validation(self, systems):
        _, straight, _ = systems
        with pytest.raises(SearchError):
            tradeoff_curve(straight, [1e4])
        with pytest.raises(SearchError):
            tradeoff_curve(straight, [0.0, 1e4])


class TestParetoFront:
    def test_front_is_subset_and_sorted(self, systems):
        _, straight, _ = systems
        curve = tradeoff_curve(straight, np.geomspace(1e3, 5e4, 8))
        front = pareto_front(curve)
        assert set(front) <= set(curve)
        w = [pt.w_pump for pt in front]
        assert w == sorted(w)
        # Along the front DeltaT must be non-increasing.
        dts = [pt.delta_t for pt in front]
        assert all(a >= b - 1e-12 for a, b in zip(dts, dts[1:]))

    def test_front_nondominated(self, systems):
        _, straight, _ = systems
        curve = tradeoff_curve(straight, np.geomspace(1e3, 5e4, 8))
        front = pareto_front(curve)
        for pt in front:
            assert not any(o.dominates(pt) for o in curve)

    def test_monotone_curve_is_its_own_front(self, systems):
        """For a monotone-decreasing f every sampled point is efficient."""
        _, straight, _ = systems
        curve = tradeoff_curve(straight, np.geomspace(1e3, 5e4, 8))
        front = pareto_front(curve)
        dts = [pt.delta_t for pt in curve]
        if all(a >= b for a, b in zip(dts, dts[1:])):
            assert len(front) == len(curve)


class TestFrontDominance:
    def test_self_not_dominating(self, systems):
        _, straight, _ = systems
        front = pareto_front(
            tradeoff_curve(straight, np.geomspace(1e3, 5e4, 6))
        )
        # A front never dominates itself (no strict improvement).
        assert not front_dominates(front, front)

    def test_empty_front_rejected(self):
        with pytest.raises(SearchError):
            front_dominates([], [])
