"""Tests for the sparkline renderer and SA convergence traces."""

import math

from repro.analysis.render import sparkline


class TestSparkline:
    def test_ramp(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_infinite_marks(self):
        line = sparkline([math.inf, 1.0, 2.0])
        assert line[0] == "!"

    def test_all_infinite(self):
        assert sparkline([math.inf, math.inf]) == "!!"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_resampling_caps_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40


class TestStageHistories:
    def test_runner_records_histories(self):
        from repro.iccad2015 import load_case
        from repro.optimize import optimize_problem1
        from repro.optimize.stages import (
            METRIC_LOWEST_FEASIBLE_POWER,
            StageConfig,
        )

        case = load_case(1, grid_size=21)
        stages = [
            StageConfig("s", 3, 2, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")
        ]
        result = optimize_problem1(case, stages=stages, directions=(0,))
        report = result.stage_reports[0]
        assert len(report.histories) == 2
        history = report.histories[0]
        assert len(history.best_costs) <= 3
        # Best-so-far is non-increasing; it sparklines cleanly.
        line = sparkline(history.best_costs)
        assert isinstance(line, str) and line
