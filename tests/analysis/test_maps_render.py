"""Tests for map statistics, downsampling and ASCII rendering."""

import numpy as np
import pytest

from repro.analysis import map_statistics, render_field, render_network, source_layer_map
from repro.analysis.maps import downsample
from repro.errors import GeometryError, ThermalError
from repro.networks import straight_network


class TestSourceLayerMap:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.cooling import CoolingSystem
        from repro.iccad2015 import load_case

        case = load_case(1, grid_size=21)
        system = CoolingSystem.for_network(
            case.base_stack(), case.baseline_network(), case.coolant
        )
        return system.evaluate(1e4)

    def test_bottom_layer_default(self, result):
        field = source_layer_map(result)
        assert field.shape == (21, 21)
        assert (field > 299.0).all()

    def test_ordinal_selection(self, result):
        bottom = source_layer_map(result, 0)
        top = source_layer_map(result, 1)
        assert not np.array_equal(bottom, top)

    def test_out_of_range(self, result):
        with pytest.raises(ThermalError, match="out of range"):
            source_layer_map(result, 5)


class TestStatistics:
    def test_values(self):
        field = np.array([[300.0, 310.0], [305.0, np.nan]])
        stats = map_statistics(field)
        assert stats.t_min == 300.0
        assert stats.t_max == 310.0
        assert stats.t_range == 10.0
        assert stats.t_mean == pytest.approx(305.0)

    def test_all_nan_rejected(self):
        with pytest.raises(ThermalError, match="no finite"):
            map_statistics(np.full((2, 2), np.nan))

    def test_str(self):
        text = str(map_statistics(np.array([[300.0, 301.0]])))
        assert "range" in text and "K" in text


class TestDownsample:
    def test_block_mean(self):
        arr = np.arange(16, dtype=float).reshape(4, 4)
        out = downsample(arr, 2)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_ragged(self):
        arr = np.ones((5, 5))
        out = downsample(arr, 2)
        assert out.shape == (3, 3)
        assert np.allclose(out, 1.0)

    def test_factor_one_identity(self):
        arr = np.random.default_rng(0).random((3, 3))
        assert np.allclose(downsample(arr, 1), arr)

    def test_bad_factor(self):
        with pytest.raises(ThermalError):
            downsample(np.ones((3, 3)), 0)


class TestRenderNetwork:
    def test_contains_all_glyphs(self):
        grid = straight_network(11, 11)
        art = render_network(grid)
        assert "=" in art  # liquid
        assert "o" in art  # TSV
        assert "." in art  # solid
        assert ">" in art  # inlet
        assert "x" in art  # outlet

    def test_line_count(self):
        grid = straight_network(11, 11)
        art = render_network(grid)
        assert len(art.splitlines()) == 13  # 11 rows + 2 margins

    def test_too_wide_rejected(self):
        grid = straight_network(11, 201)
        with pytest.raises(GeometryError, match="does not fit"):
            render_network(grid, max_width=80)


class TestRenderField:
    def test_shading_spans_range(self):
        field = np.linspace(300, 340, 64).reshape(8, 8)
        art = render_field(field)
        assert " " not in art.splitlines()[0][:1] or True
        assert "@" in art  # hottest glyph present
        assert "K" in art  # legend

    def test_nan_rendered_blank(self):
        field = np.full((4, 4), 300.0)
        field[0, 0] = np.nan
        field[3, 3] = 310.0
        art = render_field(field)
        assert art.splitlines()[0][0] == " "

    def test_downsamples_wide_fields(self):
        field = np.tile(np.linspace(300, 320, 200), (4, 1))
        art = render_field(field, max_width=50)
        assert len(art.splitlines()[0]) <= 50


class TestGradientDecomposition:
    @pytest.fixture(scope="class")
    def system(self):
        from repro.cooling import CoolingSystem
        from repro.iccad2015 import load_case

        case = load_case(1, grid_size=21)
        return CoolingSystem.for_network(
            case.base_stack(), case.baseline_network(), case.coolant
        )

    def test_parts_sum(self, system):
        from repro.analysis import gradient_decomposition

        decomp = gradient_decomposition(system.evaluate(5e3))
        assert decomp["coolant_range"] + decomp["residual"] == pytest.approx(
            decomp["delta_t"], abs=1e-9
        )
        assert 0.0 <= decomp["coolant_share"] <= 1.0

    def test_more_flow_shrinks_coolant_share(self, system):
        from repro.analysis import gradient_decomposition

        low = gradient_decomposition(system.evaluate(2e3))
        high = gradient_decomposition(system.evaluate(5e4))
        assert high["coolant_range"] < low["coolant_range"]

    def test_requires_channel_layers(self):
        from repro.analysis import gradient_decomposition
        from repro.thermal import ThermalResult

        bare = ThermalResult(
            p_sys=1.0,
            q_sys=1.0,
            w_pump=1.0,
            layer_fields=[np.full((2, 2), 300.0)],
            layer_names=["solid"],
            source_layer_indices=[0],
            inlet_temperature=300.0,
            total_power=1.0,
        )
        with pytest.raises(ThermalError, match="no channel layers"):
            gradient_decomposition(bare)
