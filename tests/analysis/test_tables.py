"""Tests for text table formatting."""

import math

import pytest

from repro.analysis import format_table, result_row
from repro.analysis.tables import improvement_percent
from repro.cooling.evaluation import EvaluationResult


def _evaluation(feasible=True):
    return EvaluationResult(
        score=1.66e-3 if feasible else math.inf,
        feasible=feasible,
        p_sys=8720.0,
        w_pump=1.66e-3,
        t_max=358.0,
        delta_t=15.0,
        simulations=12,
    )


class TestResultRow:
    def test_feasible_row(self):
        row = result_row(_evaluation())
        assert row["P_sys (kPa)"] == "8.72"
        assert row["W_pump (mW)"] == "1.660"
        assert row["DeltaT (K)"] == "15.00"

    def test_infeasible_row_is_na(self):
        row = result_row(_evaluation(feasible=False))
        assert set(row.values()) == {"N/A"}

    def test_none_row_is_na(self):
        row = result_row(None)
        assert set(row.values()) == {"N/A"}


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["case", "value"], [[1, 3.14159], [2, 100.0]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "case" in lines[1]
        assert "3.142" in text

    def test_handles_nan_inf(self):
        text = format_table(["x"], [[float("nan")], [float("inf")]])
        assert "N/A" in text and "inf" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestImprovement:
    def test_reduction(self):
        assert improvement_percent(10.41, 1.66) == pytest.approx(84.05, abs=0.1)

    def test_nan_for_infeasible(self):
        assert math.isnan(improvement_percent(float("inf"), 1.0))
        assert math.isnan(improvement_percent(0.0, 1.0))
