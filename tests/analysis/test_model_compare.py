"""Tests for the 2RM vs 4RM comparison machinery (Fig. 9)."""

import numpy as np
import pytest

from repro.analysis import compare_models
from repro.analysis.model_compare import aggregate_by
from repro.materials import WATER


@pytest.fixture(scope="module")
def records():
    from repro.iccad2015 import load_case

    case = load_case(1, grid_size=21)
    stack = case.base_stack()
    return compare_models(
        stack,
        WATER,
        tile_sizes=[2, 4, 7],
        pressures=[5e3, 2e4],
        network_name="straight",
        style="straight",
    )


class TestComparisonRecords:
    def test_record_count(self, records):
        assert len(records) == 6  # 3 tile sizes x 2 pressures

    def test_errors_small_for_fine_tiles(self, records):
        fine = [r for r in records if r.tile_size == 2]
        assert all(r.error_abs < 0.02 for r in fine)

    def test_error_grows_with_tile_size(self, records):
        by_tile = aggregate_by(records, "tile_size")
        assert by_tile[2]["error_rise"] <= by_tile[7]["error_rise"] * 1.05

    def test_speedup_positive(self, records):
        assert all(r.speedup > 0 for r in records)

    def test_timings_recorded(self, records):
        assert all(r.time_4rm > 0 and r.time_2rm > 0 for r in records)


class TestAggregation:
    def test_group_by_pressure(self, records):
        by_p = aggregate_by(records, "p_sys")
        assert set(by_p) == {5e3, 2e4}
        assert all(v["count"] == 3 for v in by_p.values())

    def test_means_are_finite(self, records):
        by_tile = aggregate_by(records, "tile_size")
        for stats in by_tile.values():
            assert np.isfinite(stats["error_abs"])
            assert np.isfinite(stats["speedup"])
