"""Unit tests for the design rule checker (Section 3's rules)."""

import numpy as np
import pytest

from repro.errors import DesignRuleError
from repro.geometry import (
    ChannelGrid,
    DesignRules,
    PortKind,
    Rect,
    Side,
    check_design_rules,
)
from repro.networks import plan_tree_bands, straight_network


def _channel(n=9):
    grid = ChannelGrid(n, n)
    grid.carve_horizontal(0, 0, n - 1)
    grid.add_port(PortKind.INLET, Side.WEST, 0)
    grid.add_port(PortKind.OUTLET, Side.EAST, 0)
    return grid


class TestBasicRules:
    def test_legal_network_passes(self):
        assert check_design_rules(_channel()).ok

    def test_liquid_on_tsv_flagged(self):
        grid = _channel()
        grid.liquid[1, 1] = True  # bypass carve checks
        grid.liquid[0, 1] = True
        result = check_design_rules(grid)
        assert any("TSV" in v for v in result.violations)

    def test_liquid_in_restricted_flagged(self):
        grid = ChannelGrid(9, 9, restricted=[Rect(0, 2, 2, 4)])
        grid.liquid[0, :] = True
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.OUTLET, Side.EAST, 0)
        result = check_design_rules(grid)
        assert any("restricted" in v for v in result.violations)

    def test_missing_inlet_flagged(self):
        grid = _channel()
        grid.ports = [p for p in grid.ports if p.kind is PortKind.OUTLET]
        result = check_design_rules(grid)
        assert any("no inlet" in v for v in result.violations)

    def test_missing_outlet_flagged(self):
        grid = _channel()
        grid.ports = [p for p in grid.ports if p.kind is PortKind.INLET]
        result = check_design_rules(grid)
        assert any("no outlet" in v for v in result.violations)

    def test_port_detached_from_liquid_flagged(self):
        grid = _channel()
        grid.liquid[0, 0] = False
        result = check_design_rules(grid)
        assert any("solid cell" in v for v in result.violations)

    def test_raise_if_failed(self):
        grid = _channel()
        grid.ports = []
        with pytest.raises(DesignRuleError) as err:
            check_design_rules(grid).raise_if_failed()
        assert err.value.violations


class TestSpanRule:
    def test_interleaved_ports_flagged(self):
        """Alternating-direction straight channels violate rule 3."""
        grid = ChannelGrid(9, 9)
        for row in (0, 2, 4):
            grid.carve_horizontal(row, 0, 8)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.OUTLET, Side.WEST, 2)
        grid.add_port(PortKind.INLET, Side.WEST, 4)
        grid.add_port(PortKind.OUTLET, Side.EAST, 0)
        grid.add_port(PortKind.INLET, Side.EAST, 2)
        grid.add_port(PortKind.OUTLET, Side.EAST, 4)
        result = check_design_rules(grid)
        assert any("overlap" in v or "skips" in v for v in result.violations)

    def test_gap_in_span_flagged(self):
        grid = ChannelGrid(9, 9)
        for row in (0, 2, 4):
            grid.carve_horizontal(row, 0, 8)
            grid.add_port(PortKind.OUTLET, Side.EAST, row)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.INLET, Side.WEST, 4)  # skips liquid row 2
        result = check_design_rules(grid)
        assert any("skips liquid" in v for v in result.violations)

    def test_span_rule_can_be_disabled(self):
        grid = ChannelGrid(9, 9)
        for row in (0, 2, 4):
            grid.carve_horizontal(row, 0, 8)
            grid.add_port(PortKind.OUTLET, Side.EAST, row)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.INLET, Side.WEST, 4)
        rules = DesignRules(
            single_span_per_side=False, forbid_stagnant_liquid=False
        )
        assert check_design_rules(grid, rules).ok


class TestConnectivity:
    def test_stagnant_region_flagged(self):
        grid = _channel()
        grid.carve_horizontal(4, 0, 4)  # disconnected pool, no ports
        result = check_design_rules(grid)
        assert any("stagnant" in v for v in result.violations)

    def test_inlet_only_region_flagged(self):
        grid = _channel()
        grid.carve_horizontal(4, 0, 4)
        grid.add_port(PortKind.INLET, Side.WEST, 4)
        result = check_design_rules(grid)
        assert any("no outlet" in v for v in result.violations)

    def test_connectivity_can_be_disabled(self):
        grid = _channel()
        grid.carve_horizontal(4, 0, 4)
        rules = DesignRules(forbid_stagnant_liquid=False)
        assert check_design_rules(grid, rules).ok


class TestStackLevel:
    def test_stack_all_layers_checked(self, case1_small):
        stack = case1_small.base_stack()
        assert check_design_rules(stack).ok

    def test_matched_ports_rule(self, case1_small):
        grid_a = case1_small.baseline_network()
        grid_b = case1_small.baseline_network(direction=2)
        stack = case1_small.stack_with_network([grid_a, grid_b])
        rules = DesignRules(matched_ports_across_layers=True)
        result = check_design_rules(stack, rules)
        assert any("do not match" in v for v in result.violations)

    def test_matched_ports_pass_when_replicated(self, case1_small):
        stack = case1_small.stack_with_network(case1_small.baseline_network())
        rules = DesignRules(matched_ports_across_layers=True)
        assert check_design_rules(stack, rules).ok


class TestGeneratedNetworksAreLegal:
    @pytest.mark.parametrize("direction", range(8))
    def test_straight_all_directions(self, direction):
        grid = straight_network(21, 21, direction=direction)
        assert check_design_rules(grid).ok

    @pytest.mark.parametrize("direction", range(8))
    def test_tree_all_directions(self, direction):
        grid = plan_tree_bands(21, 21, direction=direction).build()
        assert check_design_rules(grid).ok
