"""Port attachment and flow entry on every boundary side."""

import pytest

from repro.flow import FlowField
from repro.geometry import ChannelGrid, PortKind, Side
from repro.materials import WATER


def _cross(n=9):
    """A plus-shaped network touching all four boundaries."""
    grid = ChannelGrid(n, n, tsv_mask=None)
    mid = n // 2
    grid.carve_horizontal(mid, 0, n - 1)
    grid.carve_vertical(mid, 0, n - 1)
    return grid


class TestSides:
    def test_outward_vectors(self):
        assert Side.WEST.outward == (0, -1)
        assert Side.EAST.outward == (0, 1)
        assert Side.NORTH.outward == (-1, 0)
        assert Side.SOUTH.outward == (1, 0)

    def test_vertical_flag(self):
        assert Side.WEST.is_vertical and Side.EAST.is_vertical
        assert not Side.NORTH.is_vertical and not Side.SOUTH.is_vertical

    @pytest.mark.parametrize(
        "side,expected",
        [
            (Side.WEST, (4, 0)),
            (Side.EAST, (4, 8)),
            (Side.NORTH, (0, 4)),
            (Side.SOUTH, (8, 4)),
        ],
    )
    def test_boundary_cells(self, side, expected):
        grid = _cross()
        assert grid.boundary_cell(side, 4) == expected


class TestFlowThroughEverySide:
    @pytest.mark.parametrize(
        "inlet_side,outlet_side",
        [
            (Side.WEST, Side.EAST),
            (Side.NORTH, Side.SOUTH),
            (Side.WEST, Side.SOUTH),
            (Side.NORTH, Side.EAST),
        ],
    )
    def test_flow_between_sides(self, inlet_side, outlet_side):
        grid = _cross()
        grid.add_port(PortKind.INLET, inlet_side, 4)
        grid.add_port(PortKind.OUTLET, outlet_side, 4)
        solution = FlowField(grid, 2e-4, WATER).at_pressure(1e4)
        assert solution.q_sys > 0
        assert solution.inlet_flows.sum() == pytest.approx(
            solution.outlet_flows.sum(), rel=1e-9
        )

    def test_corner_turn_resistance_exceeds_straight(self):
        """West-to-south flow crosses half of each arm; the straight
        west-to-east path is the full horizontal arm.  Same total length --
        resistances should be comparable (sanity on the junction)."""
        straight = _cross()
        straight.add_port(PortKind.INLET, Side.WEST, 4)
        straight.add_port(PortKind.OUTLET, Side.EAST, 4)
        corner = _cross()
        corner.add_port(PortKind.INLET, Side.WEST, 4)
        corner.add_port(PortKind.OUTLET, Side.SOUTH, 4)
        r_straight = FlowField(straight, 2e-4, WATER).r_sys
        r_corner = FlowField(corner, 2e-4, WATER).r_sys
        assert r_corner == pytest.approx(r_straight, rel=0.05)

    def test_four_ports_at_once(self):
        grid = _cross()
        grid.add_port(PortKind.INLET, Side.WEST, 4)
        grid.add_port(PortKind.INLET, Side.NORTH, 4)
        grid.add_port(PortKind.OUTLET, Side.EAST, 4)
        grid.add_port(PortKind.OUTLET, Side.SOUTH, 4)
        solution = FlowField(grid, 2e-4, WATER).at_pressure(1e4)
        inflows = solution.inlet_flows[solution.inlet_flows > 0]
        outflows = solution.outlet_flows[solution.outlet_flows > 0]
        # Fully symmetric cross: both inlets and both outlets match.
        assert inflows[0] == pytest.approx(inflows[1], rel=1e-9)
        assert outflows[0] == pytest.approx(outflows[1], rel=1e-9)
