"""Unit tests for the basic-cell channel grid."""

import numpy as np
import pytest

from repro.errors import DesignRuleError, GeometryError
from repro.geometry import ChannelGrid, Port, PortKind, Rect, Side
from repro.geometry.grid import alternating_tsv_mask


class TestConstruction:
    def test_default_alternating_tsvs(self):
        grid = ChannelGrid(5, 5)
        assert grid.tsv_mask[1, 1] and grid.tsv_mask[3, 3]
        assert not grid.tsv_mask[0, 0] and not grid.tsv_mask[1, 2]
        assert grid.tsv_mask.sum() == 4  # (1,1),(1,3),(3,1),(3,3)

    def test_no_tsv_mask(self):
        grid = ChannelGrid(5, 5, tsv_mask=None)
        assert not grid.tsv_mask.any()

    def test_explicit_tsv_mask(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = True
        grid = ChannelGrid(3, 3, tsv_mask=mask)
        assert grid.tsv_mask[0, 0]

    def test_wrong_shape_tsv_mask(self):
        with pytest.raises(GeometryError, match="shape"):
            ChannelGrid(3, 3, tsv_mask=np.zeros((2, 2), dtype=bool))

    def test_unknown_pattern(self):
        with pytest.raises(GeometryError, match="unknown TSV pattern"):
            ChannelGrid(3, 3, tsv_mask="checkerboard")

    def test_invalid_dims(self):
        with pytest.raises(GeometryError):
            ChannelGrid(0, 5)
        with pytest.raises(GeometryError):
            ChannelGrid(5, 5, cell_width=0.0)

    def test_physical_extent(self):
        grid = ChannelGrid(10, 20, cell_width=100e-6)
        assert grid.height == pytest.approx(1e-3)
        assert grid.width == pytest.approx(2e-3)

    def test_restricted_mask(self):
        grid = ChannelGrid(9, 9, restricted=[Rect(2, 2, 4, 4)])
        assert grid.restricted_mask[2, 2]
        assert not grid.restricted_mask[4, 4]


class TestCarving:
    def test_carve_horizontal(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        assert grid.liquid[0].all()
        assert grid.liquid_count == 5

    def test_carve_vertical(self):
        grid = ChannelGrid(5, 5)
        grid.carve_vertical(0, 0, 4)
        assert grid.liquid[:, 0].all()

    def test_carve_over_tsv_raises(self):
        grid = ChannelGrid(5, 5)
        with pytest.raises(DesignRuleError, match="TSV"):
            grid.carve_horizontal(1, 0, 4)

    def test_carve_over_tsv_force(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(1, 0, 4, force=True)
        assert grid.liquid[1, 1]

    def test_carve_in_restricted_raises(self):
        grid = ChannelGrid(9, 9, restricted=[Rect(2, 2, 4, 4)])
        with pytest.raises(DesignRuleError, match="restricted"):
            grid.carve_horizontal(2, 0, 8)

    def test_carve_out_of_bounds(self):
        grid = ChannelGrid(5, 5)
        with pytest.raises(GeometryError, match="outside"):
            grid.carve_horizontal(0, 0, 7)

    def test_carve_rect(self):
        grid = ChannelGrid(5, 5, tsv_mask=None)
        grid.carve_rect(Rect(1, 1, 3, 3))
        assert grid.liquid_count == 4

    def test_fill_solid(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        grid.fill_solid()
        assert grid.liquid_count == 0

    def test_fill_solid_rect(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        grid.fill_solid(Rect(0, 0, 1, 2))
        assert grid.liquid_count == 3

    def test_reversed_args_sorted(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 4, 0)
        assert grid.liquid[0].all()


class TestPorts:
    def test_add_port_to_liquid_cell(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        port = grid.add_port(PortKind.INLET, Side.WEST, 0)
        assert port.cell(5, 5) == (0, 0)
        assert grid.inlets() == [port]

    def test_port_on_solid_rejected(self):
        grid = ChannelGrid(5, 5)
        with pytest.raises(DesignRuleError, match="solid cell"):
            grid.add_port(PortKind.INLET, Side.WEST, 0)

    def test_port_cells_by_side(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        grid.carve_vertical(0, 0, 4)
        assert grid.boundary_cell(Side.EAST, 0) == (0, 4)
        assert grid.boundary_cell(Side.NORTH, 2) == (0, 2)
        assert grid.boundary_cell(Side.SOUTH, 0) == (4, 0)

    def test_same_cell_both_kinds_rejected(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        with pytest.raises(DesignRuleError, match="cannot be both"):
            grid.add_port(PortKind.OUTLET, Side.WEST, 0)

    def test_duplicate_port_idempotent(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        assert len(grid.ports) == 1

    def test_port_span_skips_solid(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        grid.carve_horizontal(2, 0, 4)
        ports = grid.add_port_span(PortKind.INLET, Side.WEST, 0, 5)
        assert [p.index for p in ports] == [0, 2]

    def test_port_span_all_solid_rejected(self):
        grid = ChannelGrid(5, 5)
        with pytest.raises(DesignRuleError, match="no liquid"):
            grid.add_port_span(PortKind.INLET, Side.WEST, 0, 5)

    def test_index_out_of_range(self):
        grid = ChannelGrid(5, 5)
        with pytest.raises(GeometryError, match="outside side"):
            grid.boundary_cell(Side.WEST, 5)

    def test_clear_ports(self):
        grid = ChannelGrid(5, 5)
        grid.carve_horizontal(0, 0, 4)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.clear_ports()
        assert not grid.ports


class TestIteration:
    def test_liquid_cells_row_major(self):
        grid = ChannelGrid(3, 3, tsv_mask=None)
        grid.set_liquid(0, 1)
        grid.set_liquid(2, 0)
        assert list(grid.liquid_cells()) == [(0, 1), (2, 0)]

    def test_liquid_index_map(self):
        grid = ChannelGrid(3, 3, tsv_mask=None)
        grid.carve_horizontal(0, 0, 2)
        index = grid.liquid_index_map()
        assert index[(0, 0)] == 0 and index[(0, 2)] == 2

    def test_adjacent_pairs_straight_channel(self):
        grid = ChannelGrid(3, 5, tsv_mask=None)
        grid.carve_horizontal(1, 0, 4)
        pairs = list(grid.liquid_adjacent_pairs())
        assert len(pairs) == 4
        assert ((1, 0), (1, 1)) in pairs

    def test_adjacent_pairs_cross(self):
        grid = ChannelGrid(3, 3, tsv_mask=None)
        grid.carve_horizontal(1, 0, 2)
        grid.carve_vertical(1, 0, 2)
        pairs = list(grid.liquid_adjacent_pairs())
        # Horizontal: (1,0)-(1,1), (1,1)-(1,2); vertical: (0,1)-(1,1), (1,1)-(2,1).
        assert len(pairs) == 4


class TestTransforms:
    def _base(self):
        grid = ChannelGrid(5, 7)
        grid.carve_horizontal(0, 0, 6)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.OUTLET, Side.EAST, 0)
        return grid

    def test_identity(self):
        grid = self._base()
        same = grid.transformed(0, False)
        assert np.array_equal(same.liquid, grid.liquid)
        assert same.ports == grid.ports

    def test_rotation_changes_shape(self):
        grid = self._base()
        rot = grid.transformed(1, False)
        assert rot.shape == (7, 5)
        assert rot.liquid_count == grid.liquid_count

    def test_rotation_preserves_port_attachment(self):
        grid = self._base()
        for rotations in range(4):
            for flip in (False, True):
                out = grid.transformed(rotations, flip)
                for port in out.ports:
                    r, c = port.cell(out.nrows, out.ncols)
                    assert out.liquid[r, c], (rotations, flip, port)

    def test_four_rotations_identity(self):
        grid = self._base()
        out = grid.transformed(1).transformed(1).transformed(1).transformed(1)
        assert np.array_equal(out.liquid, grid.liquid)
        assert set(out.ports) == set(grid.ports)

    def test_flip_twice_identity(self):
        grid = self._base()
        out = grid.transformed(0, True).transformed(0, True)
        assert np.array_equal(out.liquid, grid.liquid)
        assert set(out.ports) == set(grid.ports)

    def test_tsv_mask_transformed(self):
        grid = ChannelGrid(5, 5)
        rot = grid.transformed(1)
        # The alternating pattern is D4-symmetric on odd-sized grids.
        assert np.array_equal(rot.tsv_mask, grid.tsv_mask)

    def test_copy_independent(self):
        grid = self._base()
        dup = grid.copy()
        dup.set_liquid(2, 2)
        assert not grid.liquid[2, 2]


class TestAlternatingMask:
    def test_quarter_density(self):
        mask = alternating_tsv_mask(101, 101)
        assert mask.sum() == 50 * 50

    def test_even_rows_clear(self):
        mask = alternating_tsv_mask(11, 11)
        assert not mask[::2, :].any()
        assert not mask[:, ::2].any()
