"""Unit tests for stack layers and the stack container."""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH
from repro.errors import GeometryError
from repro.geometry import (
    ChannelGrid,
    ChannelLayer,
    SolidLayer,
    SourceLayer,
    Stack,
    build_contest_stack,
)
from repro.materials import BEOL, SILICON
from repro.networks import straight_network


def _grid(n=11):
    return straight_network(n, n)


class TestLayers:
    def test_solid_layer(self):
        layer = SolidLayer("bulk", SILICON, 50e-6)
        assert not layer.is_channel and not layer.is_source

    def test_source_layer_total_power(self):
        power = np.full((4, 4), 0.5)
        layer = SourceLayer("src", BEOL, 2e-6, power)
        assert layer.is_source
        assert layer.total_power == pytest.approx(8.0)

    def test_source_rejects_negative_power(self):
        power = np.full((4, 4), 0.5)
        power[0, 0] = -1.0
        with pytest.raises(GeometryError, match="negative"):
            SourceLayer("src", BEOL, 2e-6, power)

    def test_source_rejects_non_2d(self):
        with pytest.raises(GeometryError, match="2D"):
            SourceLayer("src", BEOL, 2e-6, np.zeros(4))

    def test_channel_layer(self):
        layer = ChannelLayer("chan", _grid(), 200e-6, SILICON)
        assert layer.is_channel
        assert layer.channel_height == pytest.approx(200e-6)

    def test_with_grid(self):
        layer = ChannelLayer("chan", _grid(), 200e-6, SILICON)
        other = layer.with_grid(_grid())
        assert other.name == "chan" and other.grid is not layer.grid

    def test_nonpositive_thickness(self):
        with pytest.raises(GeometryError, match="thickness"):
            SolidLayer("bad", SILICON, 0.0)


class TestStack:
    def _stack(self):
        power = np.full((11, 11), 0.1)
        return build_contest_stack(
            2, 200e-6, [power, power], lambda d: _grid(), 11, 11, CELL_WIDTH
        )

    def test_layer_order_bottom_up(self):
        stack = self._stack()
        names = [l.name for l in stack.layers]
        assert names == [
            "source_0",
            "bulk_0",
            "channel_0",
            "source_1",
            "bulk_1",
            "channel_1",
        ]

    def test_total_power(self):
        stack = self._stack()
        assert stack.total_power == pytest.approx(2 * 0.1 * 121)

    def test_source_and_channel_indices(self):
        stack = self._stack()
        assert stack.source_layer_indices() == [0, 3]
        assert stack.channel_layer_indices() == [2, 5]

    def test_layer_index_by_name(self):
        stack = self._stack()
        assert stack.layer_index("bulk_1") == 4
        with pytest.raises(GeometryError, match="no layer"):
            stack.layer_index("missing")

    def test_duplicate_names_rejected(self):
        layer = SolidLayer("dup", SILICON, 1e-6)
        with pytest.raises(GeometryError, match="duplicate"):
            Stack([layer, SolidLayer("dup", SILICON, 1e-6)], 11, 11, CELL_WIDTH)

    def test_grid_shape_mismatch_rejected(self):
        with pytest.raises(GeometryError, match="does not match"):
            Stack(
                [ChannelLayer("c", _grid(9), 1e-4, SILICON)],
                11,
                11,
                CELL_WIDTH,
            )

    def test_power_map_mismatch_rejected(self):
        power = np.zeros((9, 9))
        with pytest.raises(GeometryError, match="power map"):
            Stack(
                [SourceLayer("s", BEOL, 1e-6, power)],
                11,
                11,
                CELL_WIDTH,
            )

    def test_with_channel_grids_swaps(self):
        stack = self._stack()
        new_grid = straight_network(11, 11, pitch=4)
        swapped = stack.with_channel_grids([new_grid, new_grid.copy()])
        assert swapped.channel_layers()[0].grid.liquid_count == new_grid.liquid_count
        # Original untouched.
        assert stack.channel_layers()[0].grid.liquid_count != new_grid.liquid_count

    def test_with_channel_grids_count_mismatch(self):
        stack = self._stack()
        with pytest.raises(GeometryError, match="channel layers"):
            stack.with_channel_grids([_grid()])

    def test_total_thickness(self):
        stack = self._stack()
        assert stack.total_thickness == pytest.approx(2 * (2e-6 + 50e-6 + 200e-6))

    def test_empty_stack_rejected(self):
        with pytest.raises(GeometryError, match="at least one layer"):
            Stack([], 11, 11, CELL_WIDTH)

    def test_power_maps_count_checked(self):
        power = np.zeros((11, 11))
        with pytest.raises(GeometryError, match="power maps"):
            build_contest_stack(
                2, 200e-6, [power], lambda d: _grid(), 11, 11, CELL_WIDTH
            )
