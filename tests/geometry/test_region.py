"""Unit tests for rectangular regions."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Rect


class TestRectBasics:
    def test_dimensions(self):
        rect = Rect(2, 3, 5, 10)
        assert rect.nrows == 3
        assert rect.ncols == 7
        assert rect.area_cells == 21

    def test_empty_rect_rejected(self):
        with pytest.raises(GeometryError, match="empty"):
            Rect(2, 2, 2, 5)

    def test_inverted_rect_rejected(self):
        with pytest.raises(GeometryError, match="empty"):
            Rect(5, 0, 2, 5)

    def test_negative_rejected(self):
        with pytest.raises(GeometryError, match="negative"):
            Rect(-1, 0, 2, 2)


class TestContains:
    def test_inside(self):
        rect = Rect(1, 1, 4, 4)
        assert rect.contains(1, 1)
        assert rect.contains(3, 3)

    def test_half_open_upper_bound(self):
        rect = Rect(1, 1, 4, 4)
        assert not rect.contains(4, 3)
        assert not rect.contains(3, 4)

    def test_outside(self):
        rect = Rect(1, 1, 4, 4)
        assert not rect.contains(0, 2)
        assert not rect.contains(2, 0)


class TestIntersects:
    def test_overlapping(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(4, 4, 8, 8))

    def test_touching_edges_do_not_intersect(self):
        assert not Rect(0, 0, 5, 5).intersects(Rect(5, 0, 8, 5))

    def test_disjoint(self):
        assert not Rect(0, 0, 2, 2).intersects(Rect(3, 3, 5, 5))

    def test_contained(self):
        assert Rect(0, 0, 10, 10).intersects(Rect(2, 2, 4, 4))


class TestMaskAndClip:
    def test_mask_counts_cells(self):
        rect = Rect(1, 2, 3, 5)
        mask = rect.mask(6, 6)
        assert mask.sum() == rect.area_cells
        assert mask[1, 2] and mask[2, 4]
        assert not mask[3, 2] and not mask[1, 5]

    def test_mask_clips_to_grid(self):
        rect = Rect(4, 4, 100, 100)
        mask = rect.mask(6, 6)
        assert mask.sum() == 4

    def test_clipped(self):
        rect = Rect(4, 4, 100, 100).clipped(6, 8)
        assert (rect.row1, rect.col1) == (6, 8)
