"""Property-based tests (hypothesis) on core data structures and invariants.

These cover the claims the rest of the system leans on: volume conservation
for arbitrary legal networks, energy conservation of both thermal models,
Laplacian structure of the conductance assembly, legality of every tree-plan
configuration, D4 transform group behavior, and I/O round trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import CELL_WIDTH, INLET_TEMPERATURE
from repro.cooling.system import CoolingSystem
from repro.flow import FlowField
from repro.geometry import ChannelGrid, PortKind, Side, build_contest_stack, check_design_rules
from repro.materials import WATER
from repro.networks import plan_tree_bands, serpentine_network, straight_network
from repro.thermal import RC2Simulator, RC4Simulator
from repro.thermal.mesh import Tiling

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def random_networks(draw):
    """Random legal cooling networks on small grids.

    Carve a few random horizontal tracks plus vertical connectors on the
    TSV-free track graph, attach a west inlet to the first track and an east
    outlet to every track (one contiguous span), then prune by rule check.
    """
    nrows = draw(st.sampled_from([9, 11, 13]))
    ncols = draw(st.sampled_from([9, 11, 13]))
    grid = ChannelGrid(nrows, ncols)
    n_tracks = draw(st.integers(2, nrows // 2))
    track_pool = list(range(0, nrows, 2))
    tracks = sorted(
        draw(
            st.lists(
                st.sampled_from(track_pool),
                min_size=n_tracks,
                max_size=n_tracks,
                unique=True,
            )
        )
    )
    for row in tracks:
        grid.carve_horizontal(row, 0, ncols - 1)
    n_connectors = draw(st.integers(0, 3))
    cols = list(range(0, ncols, 2))
    for _ in range(n_connectors):
        col = draw(st.sampled_from(cols))
        a = draw(st.sampled_from(tracks))
        b = draw(st.sampled_from(tracks))
        if a != b:
            grid.carve_vertical(col, min(a, b), max(a, b))
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, nrows)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, nrows)
    return grid


@st.composite
def tree_params(draw):
    nrows = 21
    ncols = 21
    plan = plan_tree_bands(nrows, ncols)
    raw = draw(
        st.lists(
            st.tuples(st.integers(-5, 30), st.integers(-5, 30)),
            min_size=plan.n_trees,
            max_size=plan.n_trees,
        )
    )
    return plan, np.array(raw)


# ---------------------------------------------------------------------------
# Flow invariants
# ---------------------------------------------------------------------------


class TestFlowProperties:
    @given(random_networks(), st.floats(1e2, 1e6))
    @settings(max_examples=25, deadline=None)
    def test_volume_conserved_everywhere(self, grid, p_sys):
        sol = FlowField(grid, 2e-4, WATER).at_pressure(p_sys)
        residual = np.abs(sol.conservation_residual()).max()
        scale = max(sol.q_sys, 1e-30)
        assert residual < 1e-9 * scale

    @given(random_networks())
    @settings(max_examples=25, deadline=None)
    def test_pressures_bounded_by_ports(self, grid):
        """Discrete maximum principle: cell pressures lie in [0, P_sys]."""
        sol = FlowField(grid, 2e-4, WATER).at_pressure(1e4)
        assert sol.pressures.min() >= -1e-9
        assert sol.pressures.max() <= 1e4 + 1e-9

    @given(random_networks())
    @settings(max_examples=25, deadline=None)
    def test_inflow_equals_outflow(self, grid):
        sol = FlowField(grid, 2e-4, WATER).at_pressure(1e4)
        assert sol.inlet_flows.sum() == pytest.approx(
            sol.outlet_flows.sum(), rel=1e-9
        )


# ---------------------------------------------------------------------------
# Thermal invariants
# ---------------------------------------------------------------------------


class TestThermalProperties:
    def _stack(self, grid, power_total):
        nrows, ncols = grid.shape
        rng = np.random.default_rng(nrows * 100 + ncols)
        power = rng.random((nrows, ncols))
        power *= power_total / power.sum()
        return build_contest_stack(
            2, 2e-4, [power, power], lambda d: grid.copy(), nrows, ncols, CELL_WIDTH
        )

    @given(random_networks(), st.floats(0.1, 3.0))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_energy_conserved_4rm(self, grid, power):
        stack = self._stack(grid, power)
        result = RC4Simulator(stack, WATER).solve(1e4)
        assert result.energy_balance_error() < 1e-8

    @given(random_networks(), st.integers(1, 6))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_energy_conserved_2rm(self, grid, tile_size):
        stack = self._stack(grid, 1.0)
        result = RC2Simulator(stack, WATER, tile_size=tile_size).solve(1e4)
        assert result.energy_balance_error() < 1e-8

    @given(random_networks(), st.integers(1, 4))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_temperatures_near_or_above_inlet(self, grid, tile_size):
        """Hard invariant: no node temperature below the inlet, ever.

        The default upwind advection scheme yields an M-matrix, so the
        discrete maximum principle holds exactly (the central scheme of
        paper Eq. 6 undershoots on inlet-heavy grids -- see
        tests/thermal/test_subinlet_regression.py for the pinned
        counterexample)."""
        stack = self._stack(grid, 1.0)
        result = RC2Simulator(stack, WATER, tile_size=tile_size).solve(1e4)
        for field in result.layer_fields:
            assert np.nanmin(field) >= INLET_TEMPERATURE - 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_inlet_floor_on_generated_grids(self, seed):
        """The same hard invariant over the adversarial generator family
        (repro.cases.generate_grid) that originally falsified the central
        scheme: full-span inlets, low-flow west-edge connectors."""
        from repro.cases import generate_grid

        grid = generate_grid(seed)
        nrows, ncols = grid.shape
        rng = np.random.default_rng(seed)
        power = rng.random((nrows, ncols))
        power *= 1.0 / power.sum()
        stack = build_contest_stack(
            2, 2e-4, [power, power], lambda d: grid.copy(), nrows, ncols,
            CELL_WIDTH,
        )
        result = RC2Simulator(stack, WATER, tile_size=3).solve(1e4)
        for field in result.layer_fields:
            assert np.nanmin(field) >= INLET_TEMPERATURE - 1e-9


# ---------------------------------------------------------------------------
# Tiling invariants
# ---------------------------------------------------------------------------


class TestTilingProperties:
    @given(
        st.integers(1, 40),
        st.integers(1, 40),
        st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_partition_grid(self, nrows, ncols, tile_size):
        t = Tiling(nrows, ncols, tile_size)
        assert t.tile_heights().sum() == nrows
        assert t.tile_widths().sum() == ncols
        ones = np.ones((nrows, ncols))
        assert t.aggregate_sum(ones).sum() == pytest.approx(nrows * ncols)

    @given(
        st.integers(2, 30),
        st.integers(2, 30),
        st.integers(1, 8),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_aggregate_sum_matches_naive(self, nrows, ncols, tile_size, seed):
        rng = np.random.default_rng(seed)
        arr = rng.random((nrows, ncols))
        t = Tiling(nrows, ncols, tile_size)
        fast = t.aggregate_sum(arr)
        for tr in range(t.n_tile_rows):
            for tc in range(t.n_tile_cols):
                rect = t.tile_rect(tr, tc)
                naive = arr[rect.row0 : rect.row1, rect.col0 : rect.col1].sum()
                assert fast[tr, tc] == pytest.approx(naive)


# ---------------------------------------------------------------------------
# Network generator invariants
# ---------------------------------------------------------------------------


class TestNetworkProperties:
    @given(tree_params())
    @settings(max_examples=40, deadline=None)
    def test_every_tree_configuration_is_legal(self, plan_and_params):
        plan, params = plan_and_params
        grid = plan.with_params(params).build()
        result = check_design_rules(grid)
        assert result.ok, result.violations

    @given(tree_params(), st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_tree_legal_in_every_direction(self, plan_and_params, direction):
        plan, params = plan_and_params
        grid = plan.with_params(params).with_direction(direction).build()
        assert check_design_rules(grid).ok

    @given(st.integers(0, 7), st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_transform_composition_preserves_liquid_count(self, d1, d2):
        base = straight_network(13, 13)
        from repro.networks import apply_direction

        once = apply_direction(base, d1)
        twice = apply_direction(once, d2)
        assert twice.liquid_count == base.liquid_count

    @given(random_networks())
    @settings(max_examples=20, deadline=None)
    def test_rule_checker_accepts_generated(self, grid):
        assert check_design_rules(grid).ok


# ---------------------------------------------------------------------------
# I/O round trips
# ---------------------------------------------------------------------------


class TestIOProperties:
    @given(random_networks())
    @settings(max_examples=15, deadline=None)
    def test_network_file_round_trip(self, tmp_path_factory, grid):
        from repro.iccad2015 import read_network, write_network

        path = tmp_path_factory.mktemp("net") / "grid.txt"
        write_network(grid, path)
        loaded = read_network(path)
        assert np.array_equal(loaded.liquid, grid.liquid)
        assert set(loaded.ports) == set(grid.ports)

    @given(
        st.integers(3, 12),
        st.integers(3, 12),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_floorplan_round_trip(self, tmp_path_factory, nrows, ncols, seed):
        from repro.iccad2015 import read_floorplan, write_floorplan

        rng = np.random.default_rng(seed)
        maps = [rng.random((nrows, ncols)) for _ in range(2)]
        path = tmp_path_factory.mktemp("fp") / "floorplan.txt"
        write_floorplan(maps, path)
        loaded = read_floorplan(path)
        for a, b in zip(loaded, maps):
            assert np.allclose(a, b, rtol=1e-7)


# ---------------------------------------------------------------------------
# 2RM vs 4RM differential (paper Fig. 9a analogue)
# ---------------------------------------------------------------------------


@st.composite
def differential_cases(draw):
    """A random small tree or serpentine network plus an operating point.

    Trees are jittered variants of the 21x21 band plan (the SA search
    family); serpentines sweep the pitch.  The power map and system
    pressure are drawn too, so every example is a full (network, load,
    pressure) operating point.
    """
    style = draw(st.sampled_from(["tree", "serpentine"]))
    if style == "tree":
        plan = plan_tree_bands(21, 21)
        base = plan.params()
        jitter = draw(
            st.lists(
                st.integers(-4, 4),
                min_size=base.size,
                max_size=base.size,
            )
        )
        params = plan.clamp_params(
            base + 2 * np.asarray(jitter).reshape(base.shape)
        )
        grid = plan.with_params(params).build()
    else:
        pitch = draw(st.sampled_from([2, 4, 6]))
        grid = serpentine_network(21, 21, pitch=pitch)
    power_seed = draw(st.integers(0, 2**16))
    p_sys = draw(st.sampled_from([5e3, 2e4, 8e4]))
    return grid, power_seed, p_sys


class TestModelDifferential:
    """Seeded differential check of the fast 2RM model against the 4RM
    reference on random small networks.

    The paper's Fig. 9a reports close 2RM/4RM agreement at contest scale;
    on the 21x21 test footprint the discretization is far coarser, so the
    envelope is calibrated for this footprint: with ``tile_size=1`` the
    worst observed rise-normalized disagreement over random trees and
    serpentines is 0.27 (peak) / 0.16 (gradient).  The asserted bounds
    (0.35 / 0.25) add margin on top of that while still catching any
    systematic divergence between the two assemblies.
    """

    PEAK_TOL = 0.35
    GRADIENT_TOL = 0.25

    @settings(
        max_examples=8,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=differential_cases())
    def test_2rm_tracks_4rm_within_envelope(self, case):
        grid, power_seed, p_sys = case
        rng = np.random.default_rng(power_seed)
        power = rng.random((21, 21))
        power *= 2.0 / power.sum()
        stack = build_contest_stack(
            2, 2e-4, [power, power], lambda d: grid.copy(), 21, 21, CELL_WIDTH
        )
        r2 = CoolingSystem(stack, WATER, model="2rm", tile_size=1).evaluate(
            p_sys
        )
        r4 = CoolingSystem(stack, WATER, model="4rm").evaluate(p_sys)

        rise = r4.t_max - INLET_TEMPERATURE
        assert rise > 0.0
        assert abs(r2.t_max - r4.t_max) <= self.PEAK_TOL * rise
        assert abs(r2.delta_t - r4.delta_t) <= self.GRADIENT_TOL * rise
