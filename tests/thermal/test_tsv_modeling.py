"""Tests for the TSV-aware vertical conduction option.

Copper TSVs threading the channel layer add high-conductance vertical paths
between dies.  Modeling them (the paper's TSV/microchannel co-optimization
future work) must cool the stack relative to treating TSV cells as silicon,
and both models must agree on the direction and rough size of the effect.
"""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH
from repro.geometry import build_contest_stack
from repro.materials import COPPER, WATER
from repro.networks import straight_network
from repro.thermal import RC2Simulator, RC4Simulator


@pytest.fixture(scope="module")
def stack():
    n = 21
    power = np.full((n, n), 2.0 / (n * n))
    grid = straight_network(n, n)
    return build_contest_stack(
        2, 200e-6, [power, power], lambda d: grid.copy(), n, n, CELL_WIDTH
    )


class TestRC4TSV:
    def test_copper_tsvs_cool_the_stack(self, stack):
        plain = RC4Simulator(stack, WATER).solve(1e4)
        with_tsv = RC4Simulator(stack, WATER, tsv_material=COPPER).solve(1e4)
        assert with_tsv.t_max < plain.t_max

    def test_energy_still_conserved(self, stack):
        result = RC4Simulator(stack, WATER, tsv_material=COPPER).solve(1e4)
        assert result.energy_balance_error() < 1e-9

    def test_effect_is_moderate(self, stack):
        """TSVs shorten vertical paths but don't replace the coolant."""
        plain = RC4Simulator(stack, WATER).solve(1e4)
        with_tsv = RC4Simulator(stack, WATER, tsv_material=COPPER).solve(1e4)
        rise_plain = plain.t_max - 300.0
        rise_tsv = with_tsv.t_max - 300.0
        assert rise_tsv > 0.5 * rise_plain


class TestRC2TSV:
    def test_copper_tsvs_cool_the_stack(self, stack):
        plain = RC2Simulator(stack, WATER, tile_size=4).solve(1e4)
        with_tsv = RC2Simulator(
            stack, WATER, tile_size=4, tsv_material=COPPER
        ).solve(1e4)
        assert with_tsv.t_max < plain.t_max

    def test_energy_still_conserved(self, stack):
        result = RC2Simulator(
            stack, WATER, tile_size=4, tsv_material=COPPER
        ).solve(1e4)
        assert result.energy_balance_error() < 1e-9

    def test_models_agree_on_effect_direction_and_order(self, stack):
        """Both models see a small cooling benefit of the same order.

        The tile-level lumping of 2RM smooths the per-cell copper vias into
        an area-weighted tile conductance, so its effect is genuinely smaller
        than 4RM's localized paths -- same sign, same order of magnitude.
        """
        drop4 = (
            RC4Simulator(stack, WATER).solve(1e4).t_max
            - RC4Simulator(stack, WATER, tsv_material=COPPER).solve(1e4).t_max
        )
        drop2 = (
            RC2Simulator(stack, WATER, tile_size=2).solve(1e4).t_max
            - RC2Simulator(
                stack, WATER, tile_size=2, tsv_material=COPPER
            ).solve(1e4).t_max
        )
        assert drop4 > 0 and drop2 > 0
        assert 0.05 * drop4 < drop2 < 3.0 * drop4
