"""Documented limitations of the 2RM porous-medium model.

The 2RM aggregates liquid transport to the *net* flow across each tile
interface (Section 2.3).  When two channels cross one interface in opposite
directions -- a dense serpentine's neighboring runs -- their flows cancel and
the model loses their advective heat transport entirely, even though each
channel moves heat.  These tests pin that behavior down so it stays a
*documented* limitation rather than a silent regression:

* counterflow-free networks (straight channels, trees, serpentines with
  pitch >= tile size) keep small errors;
* a pitch-2 serpentine under a tile size of 4 shows large errors that
  *grow* with flow rate (advection loss hurts more when advection matters
  more).

This is exactly why the ICCAD 2015 contest extended 3D-ICE with a 4RM model
for flexible topologies, and why the paper's final SA stage re-scores
candidates with 4RM.
"""

import numpy as np
import pytest

from repro.analysis.model_compare import compare_models
from repro.iccad2015 import load_case
from repro.networks import serpentine_network


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=31)


def _error(case, network, tile_size, p_sys):
    stack = case.stack_with_network(network)
    record = compare_models(
        stack, case.coolant, [tile_size], [p_sys], style="x"
    )[0]
    return record.error_abs


class TestCounterflowCancellation:
    def test_dense_serpentine_error_is_large(self, case):
        net = serpentine_network(case.nrows, case.ncols, 0, pitch=2)
        error = _error(case, net, tile_size=4, p_sys=2e4)
        assert error > 0.05  # tens of kelvin -- the model loses the channels

    def test_error_grows_with_flow(self, case):
        """Losing advection hurts more when advection dominates."""
        net = serpentine_network(case.nrows, case.ncols, 0, pitch=2)
        low = _error(case, net, tile_size=4, p_sys=5e3)
        high = _error(case, net, tile_size=4, p_sys=4e4)
        assert high > low

    def test_pitch_at_tile_size_recovers_accuracy(self, case):
        """One channel per tile boundary -> nothing cancels."""
        dense = serpentine_network(case.nrows, case.ncols, 0, pitch=2)
        sparse = serpentine_network(case.nrows, case.ncols, 0, pitch=4)
        err_dense = _error(case, dense, tile_size=4, p_sys=2e4)
        err_sparse = _error(case, sparse, tile_size=4, p_sys=2e4)
        assert err_sparse < err_dense / 3

    def test_finer_tiles_recover_accuracy(self, case):
        """Shrinking tiles below the pitch restores per-channel transport."""
        net = serpentine_network(case.nrows, case.ncols, 0, pitch=2)
        err_fine = _error(case, net, tile_size=2, p_sys=2e4)
        err_coarse = _error(case, net, tile_size=4, p_sys=2e4)
        assert err_fine < err_coarse / 3

    def test_straight_and_tree_stay_accurate(self, case):
        """The styles the paper's flow actually searches are safe."""
        straight = case.baseline_network()
        tree = case.tree_plan().build()
        assert _error(case, straight, tile_size=4, p_sys=2e4) < 0.01
        assert _error(case, tree, tile_size=4, p_sys=2e4) < 0.01
