"""Tests for run-time pressure control (the paper's future-work loop)."""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH, INLET_TEMPERATURE
from repro.errors import ThermalError
from repro.geometry import build_contest_stack
from repro.materials import WATER
from repro.networks import straight_network
from repro.thermal import (
    HysteresisController,
    PIController,
    RC2Simulator,
    run_controlled,
)


@pytest.fixture(scope="module")
def steady():
    n = 15
    power = np.full((n, n), 1.5 / (n * n))
    grid = straight_network(n, n)
    stack = build_contest_stack(
        2, 200e-6, [power, power], lambda d: grid.copy(), n, n, CELL_WIDTH
    )
    return RC2Simulator(stack, WATER, tile_size=3)


class TestHysteresisController:
    def test_switching_logic(self):
        ctl = HysteresisController(1e3, 1e4, t_low=305.0, t_high=315.0)
        assert ctl(300.0, 1e3) == 1e3      # cool: stay low
        assert ctl(316.0, 1e3) == 1e4      # hot: boost
        assert ctl(310.0, 1e4) == 1e4      # inside band: hold boost
        assert ctl(304.0, 1e4) == 1e3      # cooled down: relax

    def test_validation(self):
        with pytest.raises(ThermalError):
            HysteresisController(1e4, 1e3, 305.0, 315.0)
        with pytest.raises(ThermalError):
            HysteresisController(1e3, 1e4, 315.0, 305.0)

    def test_closed_loop_limits_peak(self, steady):
        """The boost level must cap T_max near the threshold."""
        ctl = HysteresisController(8e2, 2e4, t_low=317.5, t_high=318.5)
        trace = run_controlled(
            steady,
            ctl,
            duration=4.0,
            control_period=0.1,
            dt=0.02,
            p_initial=8e2,
        )
        # Without control, the low level alone would settle much hotter.
        uncontrolled = steady.solve(8e2).t_max
        assert trace.peak < uncontrolled
        assert max(trace.pressures) == 2e4
        assert min(trace.pressures[1:]) == 8e2


class TestPIController:
    def test_tracks_setpoint(self, steady):
        # The achievable floor is ~316 K (film resistance); pick a setpoint
        # inside the controllable range (328.7 K at 0.3 kPa .. 316.1 K).
        setpoint = 320.0
        # Gains sized to the plant: dT_max/dP ~ -0.013 K/Pa near the knee.
        ctl = PIController(
            setpoint=setpoint,
            kp=30.0,
            ki=15.0,
            p_min=3e2,
            p_max=1e5,
            period=0.1,
        )
        trace = run_controlled(
            steady,
            ctl,
            duration=6.0,
            control_period=0.1,
            dt=0.02,
            p_initial=1e3,
        )
        # Settled T_max close to the setpoint.
        assert trace.t_max[-1] == pytest.approx(setpoint, abs=0.5)

    def test_saves_power_vs_worst_case(self, steady):
        """Adaptive flow under variable power: cheaper than pumping for the
        worst case all the time, cooler than never reacting."""
        setpoint = 334.0  # achievable even during the 2x power boost
        boost = lambda t: 2.0 if (t % 2.0) > 1.0 else 1.0

        # Floor the pump at the nominal provisioning level so quiet-phase
        # relaxation cannot leave the loop flat-footed at a boost onset.
        ctl = PIController(setpoint, 60.0, 30.0, 1e3, 1e5, 0.1)
        controlled = run_controlled(
            steady, ctl, duration=6.0, control_period=0.1, dt=0.02,
            p_initial=1e3, power_profile=boost,
        )
        # Constant worst-case pressure (what a designer without runtime
        # control must provision).
        p_worst = max(controlled.pressures)
        constant = run_controlled(
            steady, lambda t, p: p_worst, duration=6.0, control_period=0.1,
            dt=0.02, p_initial=p_worst, power_profile=boost,
        )
        # Never reacting at all (stuck at the low nominal pressure).
        passive = run_controlled(
            steady, lambda t, p: 1e3, duration=6.0, control_period=0.1,
            dt=0.02, p_initial=1e3, power_profile=boost,
        )
        assert controlled.mean_pumping_power < constant.mean_pumping_power
        # Compare peaks after the cold-start transient (the controller
        # needs a few periods to wind up from the 300 K initial state).
        def late_peak(trace):
            return max(
                t for time, t in zip(trace.times, trace.t_max) if time > 3.0
            )

        assert late_peak(controlled) < late_peak(passive)

    def test_validation(self):
        with pytest.raises(ThermalError):
            PIController(307.0, 1.0, 1.0, p_min=1e4, p_max=1e3, period=0.1)
        with pytest.raises(ThermalError):
            PIController(307.0, 1.0, 1.0, p_min=1e2, p_max=1e3, period=0.0)


class TestRunControlled:
    def test_trace_shapes(self, steady):
        trace = run_controlled(
            steady,
            lambda t_max, p: 5e3,
            duration=1.0,
            control_period=0.25,
            dt=0.05,
            p_initial=5e3,
            store_results=True,
        )
        assert len(trace.times) == 5
        assert len(trace.results) == 5
        assert trace.times[-1] == pytest.approx(1.0)
        assert trace.mean_pumping_power > 0

    def test_time_above(self, steady):
        trace = run_controlled(
            steady, lambda t, p: 5e3, duration=1.0, control_period=0.25,
            dt=0.05, p_initial=5e3,
        )
        assert trace.time_above(0.0) == pytest.approx(1.0)
        assert trace.time_above(1e6) == 0.0

    def test_dt_must_divide_period(self, steady):
        with pytest.raises(ThermalError, match="divide"):
            run_controlled(
                steady, lambda t, p: 5e3, duration=1.0,
                control_period=0.25, dt=0.06, p_initial=5e3,
            )

    def test_nonpositive_command_rejected(self, steady):
        with pytest.raises(ThermalError, match="non-positive"):
            run_controlled(
                steady, lambda t, p: 0.0, duration=0.5,
                control_period=0.25, dt=0.05, p_initial=5e3,
            )
