"""Closed-form validation of the advection-conduction solution.

For a single straight channel under uniform heating, the steady coolant
temperature grows linearly along the flow:

    T_coolant(x) = T_in + P_absorbed(x) / (C_v * Q)

where ``P_absorbed(x)`` is the power injected upstream of ``x``.  The 4RM
solution must reproduce this profile (up to the central-differencing
staircase), and the solid-coolant temperature difference must match the
film resistance ``1 / (h A)`` locally.
"""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH, INLET_TEMPERATURE
from repro.flow.conductance import hydraulic_diameter
from repro.geometry import ChannelGrid, PortKind, Side, build_contest_stack
from repro.materials import WATER
from repro.thermal import RC4Simulator
from repro.thermal.common import h_conv

N = 31
H_C = 200e-6


@pytest.fixture(scope="module")
def single_channel_solution():
    grid = ChannelGrid(3, N, tsv_mask=None)
    grid.carve_horizontal(1, 0, N - 1)
    grid.add_port(PortKind.INLET, Side.WEST, 1)
    grid.add_port(PortKind.OUTLET, Side.EAST, 1)
    # Uniform heating over the channel column only keeps the 1D picture.
    power = np.zeros((3, N))
    power[1, :] = 0.5 / N
    stack = build_contest_stack(
        1, H_C, [power], lambda d: grid, 3, N, CELL_WIDTH
    )
    sim = RC4Simulator(stack, WATER)
    p_sys = 2e4
    result = sim.solve(p_sys)
    q_sys = result.q_sys
    channel_idx = stack.channel_layer_indices()[0]
    coolant = result.liquid_fields[channel_idx][1]
    return power, q_sys, coolant, result


class TestLinearCoolantProfile:
    def test_outlet_rise_matches_enthalpy(self, single_channel_solution):
        power, q_sys, coolant, result = single_channel_solution
        rise = power.sum() / (WATER.volumetric_heat_capacity * q_sys)
        # Outlet cell temperature approximates T_in + full rise.
        assert coolant[-1] - INLET_TEMPERATURE == pytest.approx(
            rise, rel=0.05
        )

    def test_profile_is_linear(self, single_channel_solution):
        _, _, coolant, _ = single_channel_solution
        x = np.arange(N, dtype=float)
        # Smooth the pairwise staircase before fitting.
        smooth = 0.5 * (coolant[:-1] + coolant[1:])
        coeffs = np.polyfit(x[:-1], smooth, deg=1)
        fit = np.polyval(coeffs, x[:-1])
        residual = np.abs(smooth - fit).max()
        total_rise = coolant.max() - coolant.min()
        assert residual < 0.05 * total_rise

    def test_mid_channel_rise_is_half(self, single_channel_solution):
        power, q_sys, coolant, _ = single_channel_solution
        rise = power.sum() / (WATER.volumetric_heat_capacity * q_sys)
        mid = 0.5 * (coolant[N // 2] + coolant[N // 2 + 1])
        assert mid - INLET_TEMPERATURE == pytest.approx(0.5 * rise, rel=0.15)


class TestFilmResistance:
    def test_source_coolant_gap_scales_with_flux(self):
        """Doubling the power doubles the local solid-coolant difference."""

        def gap(power_scale):
            grid = ChannelGrid(3, N, tsv_mask=None)
            grid.carve_horizontal(1, 0, N - 1)
            grid.add_port(PortKind.INLET, Side.WEST, 1)
            grid.add_port(PortKind.OUTLET, Side.EAST, 1)
            power = np.zeros((3, N))
            power[1, :] = power_scale / N
            stack = build_contest_stack(
                1, H_C, [power], lambda d: grid, 3, N, CELL_WIDTH
            )
            result = RC4Simulator(stack, WATER).solve(2e4)
            channel_idx = stack.channel_layer_indices()[0]
            coolant = result.liquid_fields[channel_idx][1]
            source = result.source_fields()[0][1]
            mid = N // 2
            return source[mid] - coolant[mid]

        assert gap(1.0) == pytest.approx(2.0 * gap(0.5), rel=0.02)
