"""Unit tests for shared thermal formulas and the advection assembly."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.flow.conductance import hydraulic_diameter
from repro.materials import WATER
from repro.thermal.common import (
    AdvectionSpec,
    ConductanceBuilder,
    assemble_advection,
    convective_conductance,
    h_conv,
    series_conductance,
    slab_half_conductance,
)


class TestSeriesConductance:
    def test_equal_halves(self):
        assert series_conductance(2.0, 2.0) == pytest.approx(1.0)

    def test_dominated_by_smaller(self):
        assert series_conductance(1e9, 1.0) == pytest.approx(1.0, rel=1e-6)

    def test_zero_blocks(self):
        assert series_conductance(0.0, 5.0) == 0.0
        assert series_conductance(5.0, 0.0) == 0.0

    def test_symmetric(self):
        assert series_conductance(3.0, 7.0) == pytest.approx(
            series_conductance(7.0, 3.0)
        )


class TestConvection:
    def test_h_conv_formula(self):
        h = h_conv(WATER, 1e-4, 2e-4, nusselt=4.86)
        d_h = hydraulic_diameter(1e-4, 2e-4)
        assert h == pytest.approx(4.86 * WATER.thermal_conductivity / d_h)

    def test_conductance_scales_with_area(self):
        g1 = convective_conductance(1e-8, WATER, 1e-4, 2e-4)
        g2 = convective_conductance(2e-8, WATER, 1e-4, 2e-4)
        assert g2 == pytest.approx(2 * g1)

    def test_rejects_negative_area(self):
        with pytest.raises(ThermalError):
            convective_conductance(-1.0, WATER, 1e-4, 2e-4)

    def test_slab_half(self):
        # k A / (t/2): 100 * 1e-8 / 25e-6.
        assert slab_half_conductance(100.0, 1e-8, 50e-6) == pytest.approx(
            100.0 * 1e-8 / 25e-6
        )

    def test_slab_half_rejects_zero_thickness(self):
        with pytest.raises(ThermalError):
            slab_half_conductance(100.0, 1e-8, 0.0)


class TestConductanceBuilder:
    def test_pairwise_stamp(self):
        b = ConductanceBuilder(3)
        b.add_pairs(np.array([0]), np.array([1]), np.array([2.0]))
        k = b.build().toarray()
        expected = np.array([[2.0, -2.0, 0.0], [-2.0, 2.0, 0.0], [0, 0, 0]])
        assert np.allclose(k, expected)

    def test_rows_sum_to_zero(self):
        """K is a graph Laplacian: each row sums to zero (no ground)."""
        rng = np.random.default_rng(3)
        b = ConductanceBuilder(6)
        for _ in range(10):
            i, j = rng.choice(6, size=2, replace=False)
            b.add_pairs(np.array([i]), np.array([j]), rng.random(1))
        k = b.build().toarray()
        assert np.allclose(k.sum(axis=1), 0.0)
        assert np.allclose(k, k.T)

    def test_zero_conductances_dropped(self):
        b = ConductanceBuilder(2)
        b.add_pairs(np.array([0]), np.array([1]), np.array([0.0]))
        assert b.build().nnz == 2  # only the (zero) diagonal entries

    def test_grounded(self):
        b = ConductanceBuilder(2)
        b.add_grounded(np.array([0]), np.array([3.0]))
        k = b.build().toarray()
        assert k[0, 0] == pytest.approx(3.0)
        assert k[0, 1] == 0.0


class TestAdvectionAssembly:
    def _chain_spec(self, n, q):
        """A chain 0 -> 1 -> ... -> n-1 with inlet at 0 and outlet at n-1."""
        pair_nodes = np.array([[i, i + 1] for i in range(n - 1)])
        pair_flows = np.full(n - 1, q)
        inlet = np.zeros(n)
        inlet[0] = q
        outlet = np.zeros(n)
        outlet[-1] = q
        return AdvectionSpec(
            pair_nodes=pair_nodes,
            pair_flows=pair_flows,
            node_ids=np.arange(n),
            inlet_flows=inlet,
            outlet_flows=outlet,
        )

    def test_chain_operator_structure_central(self):
        c_v, t_in, q = 4e6, 300.0, 1e-8
        a, b1 = assemble_advection(
            4, [self._chain_spec(4, q)], c_v, t_in, scheme="central"
        )
        dense = a.toarray()
        # Interior node 1: central differencing +- C_v q / 2.
        assert dense[1, 0] == pytest.approx(-0.5 * c_v * q)
        assert dense[1, 2] == pytest.approx(0.5 * c_v * q)
        assert dense[1, 1] == pytest.approx(0.0)
        # Inlet node: diagonal C_v q / 2, RHS C_v q T_in.
        assert dense[0, 0] == pytest.approx(0.5 * c_v * q)
        assert b1[0] == pytest.approx(c_v * q * t_in)
        # Outlet node: diagonal C_v q / 2.
        assert dense[3, 3] == pytest.approx(0.5 * c_v * q)

    def test_chain_operator_structure_upwind(self):
        """Default (upwind) scheme: donor-cell stamps, M-matrix rows."""
        c_v, t_in, q = 4e6, 300.0, 1e-8
        a, b1 = assemble_advection(4, [self._chain_spec(4, q)], c_v, t_in)
        dense = a.toarray()
        # Interior node 1 receives from upstream 0 only: -C_v q, and its
        # donor stamp toward node 2 lands on the diagonal: +C_v q.
        assert dense[1, 0] == pytest.approx(-c_v * q)
        assert dense[1, 1] == pytest.approx(c_v * q)
        assert dense[1, 2] == 0.0  # no downstream coupling: monotone
        # Inlet node: diagonal is the full donor flow C_v q, RHS C_v q T_in.
        assert dense[0, 0] == pytest.approx(c_v * q)
        assert b1[0] == pytest.approx(c_v * q * t_in)
        # Outlet node: receives -C_v q from node 2, outlet diag +C_v q.
        assert dense[3, 2] == pytest.approx(-c_v * q)
        assert dense[3, 3] == pytest.approx(c_v * q)
        # Row sums equal C_v * inlet flow (M-matrix / maximum principle).
        row_sums = dense.sum(axis=1)
        assert row_sums[0] == pytest.approx(c_v * q)
        assert np.allclose(row_sums[1:], 0.0, atol=1e-20)
        # Column sums equal C_v * outlet flow for both schemes (exact
        # energy accounting is scheme-independent).
        col_sums = dense.sum(axis=0)
        assert col_sums[3] == pytest.approx(c_v * q)
        assert np.allclose(col_sums[:3], 0.0, atol=1e-20)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ThermalError):
            assemble_advection(
                4, [self._chain_spec(4, 1e-8)], 4e6, 300.0, scheme="quick"
            )

    def test_pure_advection_solution_is_linear_ramp(self):
        """Solving advection with uniform heating yields the energy balance."""
        n, q, c_v, t_in = 5, 1e-8, 4e6, 300.0
        a, b1 = assemble_advection(n, [self._chain_spec(n, q)], c_v, t_in)
        source = np.full(n, 1e-3)  # 1 mW per cell
        temps = np.linalg.solve(a.toarray(), b1 + source)
        # Outlet enthalpy balance: C_v q (T_out - T_in) = total power.
        assert c_v * q * (temps[-1] - t_in) == pytest.approx(source.sum())
        # Temperatures never decrease downstream (central differencing
        # produces the classic pairwise staircase in pure advection).
        assert np.all(np.diff(temps) >= -1e-12)
        assert temps[-1] > temps[0]

    def test_empty_specs(self):
        a, b1 = assemble_advection(3, [], 4e6, 300.0)
        assert a.nnz == 0
        assert not b1.any()
