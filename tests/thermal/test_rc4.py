"""Physics validation of the 4RM reference simulator (Section 2.2)."""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH, INLET_TEMPERATURE
from repro.errors import GeometryError, ThermalError
from repro.geometry import ChannelLayer, build_contest_stack, Stack
from repro.materials import SILICON, WATER
from repro.networks import straight_network
from repro.thermal import RC4Simulator

H_C = 200e-6


def _stack(power_map, grid=None, n=21, dies=2):
    grid = grid or straight_network(n, n)
    maps = [power_map] * dies
    return build_contest_stack(
        dies, H_C, maps, lambda d: grid.copy(), n, n, CELL_WIDTH
    )


@pytest.fixture(scope="module")
def uniform_result():
    power = np.full((21, 21), 2.0 / 441)
    sim = RC4Simulator(_stack(power), WATER)
    return sim, sim.solve(20e3)


class TestEnergyConservation:
    def test_coolant_removes_all_power(self, uniform_result):
        _, result = uniform_result
        assert result.energy_balance_error() < 1e-9

    def test_conservation_at_other_pressures(self):
        power = np.full((21, 21), 1.0 / 441)
        sim = RC4Simulator(_stack(power), WATER)
        for p in (1e3, 5e4):
            assert sim.solve(p).energy_balance_error() < 1e-9

    def test_zero_power_gives_inlet_temperature(self):
        power = np.zeros((21, 21))
        sim = RC4Simulator(_stack(power), WATER)
        result = sim.solve(1e4)
        for field in result.layer_fields:
            assert np.allclose(field, INLET_TEMPERATURE, atol=1e-8)


class TestTemperatureStructure:
    def test_all_above_inlet(self, uniform_result):
        _, result = uniform_result
        for field in result.layer_fields:
            assert np.nanmin(field) >= INLET_TEMPERATURE - 1e-9

    def test_downstream_hotter_with_uniform_power(self, uniform_result):
        """Coolant absorbs heat flowing west to east (gradient factor 1)."""
        _, result = uniform_result
        source = result.source_fields()[0]
        west_mean = source[:, :5].mean()
        east_mean = source[:, -5:].mean()
        assert east_mean > west_mean

    def test_coolant_heats_along_channel(self, uniform_result):
        sim, result = uniform_result
        channel_idx = sim.stack.channel_layer_indices()[0]
        coolant = result.liquid_fields[channel_idx]
        row = coolant[0]  # channel row 0 runs west to east
        finite = row[np.isfinite(row)]
        assert finite[-1] > finite[0]

    def test_peak_in_source_layer(self, uniform_result):
        _, result = uniform_result
        assert result.t_max == pytest.approx(result.t_max_source)

    def test_hotspot_heats_locally(self):
        power = np.full((21, 21), 0.5 / 441)
        power[15, 15] += 0.5
        sim = RC4Simulator(_stack(power), WATER)
        result = sim.solve(2e4)
        source = result.source_fields()[0]
        assert source[15, 15] == np.nanmax(source)


class TestPressureResponse:
    def test_higher_pressure_cools(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC4Simulator(_stack(power), WATER)
        t_maxes = [sim.solve(p).t_max for p in (2e3, 8e3, 3.2e4)]
        assert t_maxes[0] > t_maxes[1] > t_maxes[2]

    def test_t_max_saturates(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC4Simulator(_stack(power), WATER)
        t_hi = sim.solve(4e5).t_max
        t_vhi = sim.solve(8e5).t_max
        # Beyond the turning points the curve is nearly flat.
        assert abs(t_hi - t_vhi) < 0.05 * (sim.solve(2e3).t_max - t_vhi)

    def test_nonpositive_pressure_rejected(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC4Simulator(_stack(power), WATER)
        with pytest.raises(ThermalError, match="positive"):
            sim.solve(0.0)


class TestAnalyticAgreement:
    def test_outlet_temperature_matches_enthalpy_balance(self):
        """Mean outlet coolant temperature must equal T_in + P/(C_v Q)."""
        power = np.full((21, 21), 2.0 / 441)
        sim = RC4Simulator(_stack(power), WATER)
        p_sys = 2e4
        result = sim.solve(p_sys)
        q_sys = result.q_sys
        expected_rise = result.total_power / (
            WATER.volumetric_heat_capacity * q_sys
        )
        # Flow-weighted mean outlet temperature from the coolant fields.
        total = 0.0
        for spec, field in zip(sim._specs, sim.flow_fields):
            sol = field.at_pressure(p_sys)
            # outlet flows align with spec node ordering
        # Use the recorded enthalpy rise directly:
        measured_rise = result.coolant_heat_removed / (
            WATER.volumetric_heat_capacity * q_sys
        )
        assert measured_rise == pytest.approx(expected_rise, rel=1e-9)


class TestModelOptions:
    def test_liquid_conduction_is_negligible(self):
        """Advection dominates liquid conduction (high Peclet number).

        This is why the paper's 4RM/2RM models drop liquid-liquid conduction
        entirely: enabling it must barely perturb the solution.
        """
        power = np.full((21, 21), 2.0 / 441)
        stack = _stack(power)
        base = RC4Simulator(stack, WATER).solve(1e4)
        with_cond = RC4Simulator(stack, WATER, liquid_conduction=True).solve(1e4)
        assert with_cond.t_max == pytest.approx(base.t_max, abs=0.05)
        assert with_cond.delta_t == pytest.approx(base.delta_t, abs=0.05)
        assert with_cond.energy_balance_error() < 1e-9

    def test_top_bc_cools(self):
        power = np.full((21, 21), 2.0 / 441)
        stack = _stack(power)
        adiabatic = RC4Simulator(stack, WATER).solve(5e3)
        cooled = RC4Simulator(stack, WATER, top_bc=(1e4, 300.0)).solve(5e3)
        assert cooled.t_max < adiabatic.t_max

    def test_adjacent_channel_layers_rejected(self):
        grid = straight_network(11, 11)
        layers = [
            ChannelLayer("c0", grid, H_C, SILICON),
            ChannelLayer("c1", grid.copy(), H_C, SILICON),
        ]
        stack = Stack(layers, 11, 11, CELL_WIDTH)
        with pytest.raises(GeometryError, match="adjacent channel layers"):
            RC4Simulator(stack, WATER)

    def test_three_die_stack(self):
        power = np.full((11, 11), 0.3 / 121)
        sim = RC4Simulator(_stack(power, grid=straight_network(11, 11), n=11, dies=3), WATER)
        result = sim.solve(1e4)
        assert len(result.source_layer_indices) == 3
        assert result.energy_balance_error() < 1e-9

    def test_capacitances_positive(self, uniform_result):
        sim, _ = uniform_result
        caps = sim.node_capacitances()
        assert caps.shape == (sim.n_nodes,)
        assert (caps > 0).all()
