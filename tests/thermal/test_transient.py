"""Tests for the backward-Euler transient extension."""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH, INLET_TEMPERATURE
from repro.errors import ThermalError
from repro.geometry import build_contest_stack
from repro.materials import WATER
from repro.networks import straight_network
from repro.thermal import RC2Simulator, RC4Simulator, TransientSimulator


def _sim(model="2rm", n=15, power_watts=1.0):
    power = np.full((n, n), power_watts / (n * n))
    grid = straight_network(n, n)
    stack = build_contest_stack(
        2, 200e-6, [power, power], lambda d: grid.copy(), n, n, CELL_WIDTH
    )
    if model == "2rm":
        return RC2Simulator(stack, WATER, tile_size=3)
    return RC4Simulator(stack, WATER)


class TestConvergence:
    @pytest.mark.parametrize("model", ["2rm", "4rm"])
    def test_converges_to_steady_state(self, model):
        steady = _sim(model)
        transient = TransientSimulator(steady, p_sys=1e4)
        target = transient.steady_state()
        trace = transient.run(duration=2.0, dt=0.01, store_every=50)
        final = trace.final()
        assert final.t_max == pytest.approx(target.t_max, abs=0.05)
        assert final.delta_t == pytest.approx(target.delta_t, abs=0.05)

    def test_monotone_heating_from_cold_start(self):
        transient = TransientSimulator(_sim(), p_sys=1e4)
        trace = transient.run(duration=0.5, dt=0.01, store_every=5)
        t_max = trace.t_max_series
        assert np.all(np.diff(t_max) >= -1e-9)
        assert t_max[0] == pytest.approx(INLET_TEMPERATURE)

    def test_time_axis(self):
        transient = TransientSimulator(_sim(), p_sys=1e4)
        trace = transient.run(duration=0.1, dt=0.01, store_every=2)
        assert trace.times[0] == 0.0
        assert trace.times[-1] == pytest.approx(0.1)
        assert len(trace.times) == len(trace.results)


class TestPowerSteps:
    def test_power_step_raises_temperature(self):
        """A DVFS-style power step mid-run shifts the trajectory upward."""
        transient = TransientSimulator(_sim(), p_sys=1e4)
        flat = transient.run(duration=1.0, dt=0.02)
        stepped = transient.run(
            duration=1.0,
            dt=0.02,
            power_scale=lambda t: 2.0 if t > 0.5 else 1.0,
        )
        assert stepped.final().t_max > flat.final().t_max

    def test_zero_power_stays_at_inlet(self):
        transient = TransientSimulator(_sim(), p_sys=1e4)
        trace = transient.run(duration=0.2, dt=0.02, power_scale=lambda t: 0.0)
        assert trace.final().t_max == pytest.approx(INLET_TEMPERATURE, abs=1e-6)


class TestValidation:
    def test_rejects_nonpositive_pressure(self):
        with pytest.raises(ThermalError, match="positive"):
            TransientSimulator(_sim(), p_sys=0.0)

    def test_rejects_bad_duration(self):
        transient = TransientSimulator(_sim(), p_sys=1e4)
        with pytest.raises(ThermalError):
            transient.run(duration=0.0, dt=0.01)
        with pytest.raises(ThermalError):
            transient.run(duration=1.0, dt=-0.1)

    def test_rejects_bad_initial_shape(self):
        transient = TransientSimulator(_sim(), p_sys=1e4)
        with pytest.raises(ThermalError, match="initial state"):
            transient.run(duration=0.1, dt=0.01, initial=np.zeros(3))

    def test_initial_state_default(self):
        transient = TransientSimulator(_sim(), p_sys=1e4)
        state = transient.initial_state()
        assert np.allclose(state, INLET_TEMPERATURE)

    def test_empty_trace_final_raises(self):
        from repro.thermal.transient import TransientTrace

        with pytest.raises(ThermalError, match="empty"):
            TransientTrace(times=[], results=[]).final()
