"""Unit tests for the 2RM tiling."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.thermal import Tiling


class TestTilingLayout:
    def test_exact_division(self):
        t = Tiling(8, 8, 4)
        assert t.shape == (2, 2)
        assert list(t.tile_heights()) == [4, 4]

    def test_ragged_edges(self):
        t = Tiling(101, 101, 4)
        assert t.shape == (26, 26)
        assert t.tile_heights()[-1] == 1
        assert t.tile_heights()[:-1].sum() + 1 == 101

    def test_tile_size_one(self):
        t = Tiling(5, 7, 1)
        assert t.shape == (5, 7)

    def test_tile_larger_than_grid(self):
        t = Tiling(3, 3, 10)
        assert t.shape == (1, 1)

    def test_cell_to_tile_maps(self):
        t = Tiling(10, 10, 4)
        assert t.row_of_cell[0] == 0
        assert t.row_of_cell[3] == 0
        assert t.row_of_cell[4] == 1
        assert t.row_of_cell[9] == 2

    def test_tile_rect(self):
        t = Tiling(10, 10, 4)
        rect = t.tile_rect(2, 0)
        assert (rect.row0, rect.row1) == (8, 10)

    def test_invalid_tile_size(self):
        with pytest.raises(ThermalError):
            Tiling(5, 5, 0)


class TestAggregation:
    def test_sum_partitions_total(self):
        rng = np.random.default_rng(7)
        arr = rng.random((11, 13))
        t = Tiling(11, 13, 4)
        assert t.aggregate_sum(arr).sum() == pytest.approx(arr.sum())

    def test_sum_values(self):
        arr = np.arange(16, dtype=float).reshape(4, 4)
        t = Tiling(4, 4, 2)
        tiles = t.aggregate_sum(arr)
        assert tiles[0, 0] == pytest.approx(0 + 1 + 4 + 5)
        assert tiles[1, 1] == pytest.approx(10 + 11 + 14 + 15)

    def test_count(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, :] = True
        t = Tiling(6, 6, 3)
        counts = t.aggregate_count(mask)
        assert counts[0, 0] == 3 and counts[0, 1] == 3
        assert counts[1, 0] == 0

    def test_mean_with_mask(self):
        arr = np.full((4, 4), 2.0)
        arr[0, 0] = 10.0
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        t = Tiling(4, 4, 2)
        means = t.aggregate_mean(arr, where=mask)
        assert means[0, 0] == pytest.approx(10.0)
        assert np.isnan(means[1, 1])

    def test_shape_mismatch(self):
        t = Tiling(4, 4, 2)
        with pytest.raises(ThermalError, match="does not match"):
            t.aggregate_sum(np.zeros((5, 5)))


class TestExpansion:
    def test_round_trip_constant(self):
        t = Tiling(7, 9, 3)
        tiles = np.arange(t.n_tiles, dtype=float).reshape(t.shape)
        cells = t.expand(tiles)
        assert cells.shape == (7, 9)
        # Every cell carries its tile's value.
        assert cells[0, 0] == tiles[0, 0]
        assert cells[6, 8] == tiles[-1, -1]

    def test_expand_then_aggregate_mean_identity(self):
        t = Tiling(8, 8, 4)
        tiles = np.array([[1.0, 2.0], [3.0, 4.0]])
        back = t.aggregate_mean(t.expand(tiles))
        assert np.allclose(back, tiles)

    def test_expand_shape_mismatch(self):
        t = Tiling(4, 4, 2)
        with pytest.raises(ThermalError, match="does not match"):
            t.expand(np.zeros((3, 3)))
