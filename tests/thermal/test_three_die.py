"""Three-die stacks (benchmark case 4): structure and physics checks."""

import numpy as np
import pytest

from repro.cooling import CoolingSystem
from repro.geometry import DesignRules, check_design_rules
from repro.iccad2015 import load_case
from repro.thermal import RC2Simulator, RC4Simulator


@pytest.fixture(scope="module")
def case4():
    return load_case(4, grid_size=21)


@pytest.fixture(scope="module")
def result4(case4):
    stack = case4.stack_with_network(case4.baseline_network())
    return stack, RC4Simulator(stack, case4.coolant).solve(1e4)


class TestStackStructure:
    def test_three_channel_layers(self, case4):
        stack = case4.base_stack()
        assert len(stack.channel_layers()) == 3
        assert len(stack.source_layers()) == 3

    def test_matched_ports_by_construction(self, case4):
        stack = case4.stack_with_network(case4.baseline_network())
        rules = DesignRules(matched_ports_across_layers=True)
        assert check_design_rules(stack, rules).ok

    def test_power_splits_across_dies(self, case4):
        totals = [m.sum() for m in case4.power_maps]
        assert len(totals) == 3
        assert sum(totals) == pytest.approx(case4.die_power, rel=1e-9)
        # Bottom die runs hottest per the case definition.
        assert totals[0] > totals[1] > totals[2]


class TestThreeDiePhysics:
    def test_energy_conserved(self, result4):
        _, result = result4
        assert result.energy_balance_error() < 1e-9

    def test_three_source_gradients_reported(self, result4):
        _, result = result4
        assert len(result.delta_t_per_source_layer()) == 3

    def test_flow_splits_across_three_layers(self, case4):
        system = CoolingSystem.for_network(
            case4.base_stack(), case4.baseline_network(), case4.coolant
        )
        from repro.flow import FlowField

        single = FlowField(
            case4.baseline_network(), case4.channel_height, case4.coolant
        ).r_sys
        # Three identical layers in parallel: a third of the resistance.
        assert system.r_sys == pytest.approx(single / 3.0, rel=1e-9)

    def test_bottom_die_hottest(self, result4):
        """With the largest power share and dies stacked identically, the
        bottom source layer carries the peak."""
        _, result = result4
        peaks = [float(np.nanmax(f)) for f in result.source_fields()]
        assert peaks[0] == pytest.approx(result.t_max, abs=1e-9)

    def test_2rm_matches_4rm_on_three_dies(self, case4, result4):
        stack, reference = result4
        fast = RC2Simulator(stack, case4.coolant, tile_size=4).solve(1e4)
        for f4, f2 in zip(reference.source_fields(), fast.source_fields()):
            err = np.abs(f2 - f4) / f4
            assert err.mean() < 0.01
