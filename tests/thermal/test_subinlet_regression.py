"""Pinned regression for the RC2 sub-inlet temperature bug (ROADMAP item 6).

The central-differencing advection operator (paper Eq. 6) is not monotone:
on inlet-heavy grids with low-flow connectors the cell Peclet number blows
past 2 and downstream off-diagonals go positive, producing coolant
temperatures *below* the inlet -- unphysical for a network whose only
cooling source is the inlet stream itself.

This file pins the concrete falsifying topology found by the Hypothesis
property `test_temperatures_near_or_above_inlet`: an 11x9 grid whose full
west inlet span feeds three full-width tracks, with a west-edge connector
merging two inlet mouths (a nearly stagnant branch).  Under central
differencing at tile_size=3 the minimum coolant temperature drops to
~291.4 K, almost 9 K below the 300 K inlet.  The monotone upwind scheme
(now the default) keeps every temperature at or above the inlet by the
discrete maximum principle.
"""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH, INLET_TEMPERATURE
from repro.geometry import build_contest_stack
from repro.geometry.grid import ChannelGrid, PortKind, Side
from repro.materials import WATER
from repro.thermal import RC2Simulator, RC4Simulator

P_SYS = 1e4


def falsifying_grid() -> ChannelGrid:
    """The inlet-heavy 11x9 topology that falsified central differencing."""
    grid = ChannelGrid(11, 9)
    for row in (0, 2, 10):
        grid.carve_horizontal(row, 0, 8)
    grid.carve_vertical(0, 0, 2)   # west-edge connector: near-stagnant
    grid.carve_vertical(4, 2, 10)
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, 11)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, 11)
    return grid


def min_temperature(result) -> float:
    """Minimum over every thermal node, coolant cells included."""
    return min(float(np.nanmin(f)) for f in result.layer_fields)


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(1109)
    power = rng.random((11, 9))
    power *= 1.0 / power.sum()
    grid = falsifying_grid()
    return build_contest_stack(
        2, 2e-4, [power, power], lambda d: grid.copy(), 11, 9, CELL_WIDTH
    )


class TestSubInletRegression:
    @pytest.mark.parametrize("tile_size", [1, 2, 3, 4])
    def test_rc2_default_scheme_respects_inlet_floor(self, stack, tile_size):
        """Upwind (the default) obeys the maximum principle at every tile
        coarsening, including tile_size=3 where central undershot by ~9 K."""
        result = RC2Simulator(stack, WATER, tile_size=tile_size).solve(P_SYS)
        assert min_temperature(result) >= INLET_TEMPERATURE - 1e-9

    def test_rc4_default_scheme_respects_inlet_floor(self, stack):
        result = RC4Simulator(stack, WATER).solve(P_SYS)
        assert min_temperature(result) >= INLET_TEMPERATURE - 1e-9

    def test_central_scheme_still_falsified_here(self, stack):
        """The bug is real and this grid still reproduces it: central
        differencing stays available (paper fidelity) but documentedly
        undershoots on this family.  If this ever passes, the pinned grid
        lost its teeth."""
        result = RC2Simulator(
            stack, WATER, tile_size=3, advection_scheme="central"
        ).solve(P_SYS)
        assert min_temperature(result) < INLET_TEMPERATURE - 1.0

    def test_schemes_agree_on_energy_balance(self, stack):
        """Column sums match for both schemes, so the coolant energy
        accounting is identical: removed heat equals source power."""
        for scheme in ("upwind", "central"):
            result = RC2Simulator(
                stack, WATER, tile_size=2, advection_scheme=scheme
            ).solve(P_SYS)
            assert result.energy_balance_error() < 1e-9
