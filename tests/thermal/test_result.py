"""Unit tests for the ThermalResult container and its metrics."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.thermal import ThermalResult


def _result(fields, source_indices, **kwargs):
    defaults = dict(
        p_sys=1e4,
        q_sys=1e-7,
        w_pump=1e-3,
        layer_fields=fields,
        layer_names=[f"layer_{i}" for i in range(len(fields))],
        source_layer_indices=source_indices,
        inlet_temperature=300.0,
        total_power=1.0,
    )
    defaults.update(kwargs)
    return ThermalResult(**defaults)


class TestMetrics:
    def test_t_max_over_all_layers(self):
        fields = [np.full((3, 3), 310.0), np.full((3, 3), 320.0)]
        fields[1][1, 1] = 333.0
        result = _result(fields, [1])
        assert result.t_max == pytest.approx(333.0)

    def test_delta_t_is_max_source_range(self):
        src0 = np.full((3, 3), 310.0)
        src0[0, 0] = 315.0  # range 5
        src1 = np.full((3, 3), 310.0)
        src1[0, 0] = 322.0  # range 12
        result = _result([src0, src1], [0, 1])
        assert result.delta_t == pytest.approx(12.0)
        assert result.delta_t_per_source_layer() == pytest.approx([5.0, 12.0])

    def test_delta_t_without_sources_raises(self):
        result = _result([np.full((2, 2), 300.0)], [])
        with pytest.raises(ThermalError, match="no source layers"):
            _ = result.delta_t

    def test_t_max_source(self):
        fields = [np.full((2, 2), 350.0), np.full((2, 2), 320.0)]
        result = _result(fields, [1])
        assert result.t_max_source == pytest.approx(320.0)

    def test_nan_aware(self):
        field = np.full((3, 3), 310.0)
        field[0, 0] = np.nan
        field[2, 2] = 312.0
        result = _result([field], [0])
        assert result.t_max == pytest.approx(312.0)
        assert result.delta_t == pytest.approx(2.0)


class TestAccessors:
    def test_layer_field_by_name(self):
        fields = [np.zeros((2, 2)), np.ones((2, 2))]
        result = _result(fields, [0])
        assert result.layer_field("layer_1")[0, 0] == 1.0

    def test_layer_field_unknown_name(self):
        result = _result([np.zeros((2, 2))], [0])
        with pytest.raises(ThermalError, match="no layer named"):
            result.layer_field("missing")

    def test_layer_field_by_index(self):
        fields = [np.zeros((2, 2)), np.ones((2, 2))]
        result = _result(fields, [0])
        assert result.layer_field(1)[0, 0] == 1.0

    def test_summary_mentions_units(self):
        result = _result([np.full((2, 2), 310.0)], [0])
        text = result.summary()
        assert "kPa" in text and "mW" in text


class TestEnergyBalance:
    def test_balance_error(self):
        result = _result(
            [np.full((2, 2), 310.0)], [0], coolant_heat_removed=0.9
        )
        assert result.energy_balance_error() == pytest.approx(0.1)

    def test_without_record_raises(self):
        result = _result([np.full((2, 2), 310.0)], [0])
        with pytest.raises(ThermalError, match="did not record"):
            result.energy_balance_error()

    def test_zero_power(self):
        result = _result(
            [np.full((2, 2), 300.0)],
            [0],
            total_power=0.0,
            coolant_heat_removed=1e-6,
        )
        assert result.energy_balance_error() == pytest.approx(1e-6)
