"""Physics validation of the fast 2RM simulator (Section 2.3)."""

import numpy as np
import pytest

from repro.constants import CELL_WIDTH, INLET_TEMPERATURE
from repro.errors import ThermalError
from repro.geometry import build_contest_stack
from repro.materials import WATER
from repro.networks import plan_tree_bands, straight_network
from repro.thermal import RC2Simulator, RC4Simulator
from repro.thermal.rc2 import _complete_paths
from repro.thermal.mesh import Tiling

H_C = 200e-6


def _stack(power_map, grid=None, n=21, dies=2):
    grid = grid if grid is not None else straight_network(n, n)
    return build_contest_stack(
        dies, H_C, [power_map] * dies, lambda d: grid.copy(), n, n, CELL_WIDTH
    )


class TestEnergyConservation:
    @pytest.mark.parametrize("tile_size", [1, 2, 4, 7])
    def test_coolant_removes_all_power(self, tile_size):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC2Simulator(_stack(power), WATER, tile_size=tile_size)
        result = sim.solve(2e4)
        assert result.energy_balance_error() < 1e-9

    def test_tree_network_conserves(self):
        power = np.full((21, 21), 2.0 / 441)
        grid = plan_tree_bands(21, 21).build()
        sim = RC2Simulator(_stack(power, grid), WATER, tile_size=4)
        assert sim.solve(2e4).energy_balance_error() < 1e-9

    def test_zero_power_uniform_inlet_temperature(self):
        power = np.zeros((21, 21))
        sim = RC2Simulator(_stack(power), WATER, tile_size=4)
        result = sim.solve(1e4)
        for field in result.layer_fields:
            finite = field[np.isfinite(field)]
            assert np.allclose(finite, INLET_TEMPERATURE, atol=1e-8)


class TestStructure:
    def test_all_above_inlet(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC2Simulator(_stack(power), WATER, tile_size=4)
        result = sim.solve(2e4)
        for field in result.layer_fields:
            assert np.nanmin(field) >= INLET_TEMPERATURE - 1e-9

    def test_downstream_hotter(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC2Simulator(_stack(power), WATER, tile_size=4)
        source = sim.solve(2e4).source_fields()[0]
        assert source[:, -5:].mean() > source[:, :5].mean()

    def test_higher_pressure_cools(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC2Simulator(_stack(power), WATER, tile_size=4)
        assert sim.solve(4e4).t_max < sim.solve(4e3).t_max

    def test_node_count_shrinks_quadratically(self):
        power = np.full((21, 21), 2.0 / 441)
        stack = _stack(power)
        n1 = RC2Simulator(stack, WATER, tile_size=1).n_nodes
        n4 = RC2Simulator(stack, WATER, tile_size=4).n_nodes
        # Roughly m^2 fewer nodes (channel layers carry up to 2 per tile).
        assert n4 < n1 / 8

    def test_problem_size_smaller_than_4rm(self):
        power = np.full((21, 21), 2.0 / 441)
        stack = _stack(power)
        n2 = RC2Simulator(stack, WATER, tile_size=4).n_nodes
        n4 = RC4Simulator(stack, WATER).n_nodes
        # Roughly m^2 = 16x fewer; channel layers carry 2 nodes per tile, so
        # allow some slack on small grids.
        assert n2 < n4 / 8

    def test_invalid_tile_size(self):
        power = np.full((21, 21), 2.0 / 441)
        with pytest.raises(ThermalError):
            RC2Simulator(_stack(power), WATER, tile_size=0)

    def test_capacitances_positive(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC2Simulator(_stack(power), WATER, tile_size=4)
        caps = sim.node_capacitances()
        assert caps.shape == (sim.n_nodes,)
        assert (caps > 0).all()

    def test_channel_fields_split_solid_liquid(self):
        power = np.full((21, 21), 2.0 / 441)
        sim = RC2Simulator(_stack(power), WATER, tile_size=4)
        result = sim.solve(2e4)
        channel_idx = sim.stack.channel_layer_indices()[0]
        liquid = result.liquid_fields[channel_idx]
        grid = sim.stack.channel_layers()[0].grid
        assert np.isfinite(liquid[grid.liquid]).all()
        assert np.isnan(liquid[~grid.liquid]).all()


class TestCompletePaths:
    def test_all_solid_tile(self):
        solid = np.ones((8, 8), dtype=bool)
        east, west = _complete_paths(solid, Tiling(8, 8, 4), axis=1)
        assert (east == 4).all() and (west == 4).all()

    def test_channel_blocks_paths(self):
        solid = np.ones((8, 8), dtype=bool)
        solid[1, :] = False  # a full-width channel on row 1
        east, west = _complete_paths(solid, Tiling(8, 8, 4), axis=1)
        assert east[0, 0] == 3 and west[0, 0] == 3
        assert east[1, 0] == 4

    def test_partial_block_only_counts_complete(self):
        solid = np.ones((4, 4), dtype=bool)
        solid[0, 3] = False  # east half of row 0 broken
        east, west = _complete_paths(solid, Tiling(4, 4, 4), axis=1)
        assert east[0, 0] == 3  # row 0 lost
        assert west[0, 0] == 4  # west half untouched

    def test_vertical_axis(self):
        solid = np.ones((8, 8), dtype=bool)
        solid[:, 2] = False
        south, north = _complete_paths(solid, Tiling(8, 8, 4), axis=0)
        assert south[0, 0] == 3 and north[1, 0] == 3
        assert south[0, 1] == 4

    def test_checkerboard_tsv_pattern_keeps_even_paths(self):
        """Alternating TSVs leave even rows/cols as complete paths."""
        from repro.geometry.grid import alternating_tsv_mask

        solid = np.ones((8, 8), dtype=bool)
        grid_liquid = np.zeros((8, 8), dtype=bool)
        # Solid everywhere; TSVs are solid too, so all paths complete.
        east, west = _complete_paths(solid, Tiling(8, 8, 4), axis=1)
        assert (east == 4).all()


class TestAgainst4RM:
    """Fig. 9(a)'s premise: small thermal cells track the 4RM reference."""

    @pytest.fixture(scope="class")
    def pair(self):
        power = np.full((21, 21), 2.0 / 441)
        power[5, 15] += 0.4
        stack = _stack(power)
        r4 = RC4Simulator(stack, WATER).solve(1.5e4)
        return stack, r4

    # Tolerances recalibrated for the upwind advection default: the extra
    # numerical diffusion nudges the tile-2 error from 0.148 to 0.1503.
    @pytest.mark.parametrize("tile_size,tolerance", [(2, 0.17), (4, 0.25)])
    def test_source_temperature_rise_tracks(self, pair, tile_size, tolerance):
        stack, r4 = pair
        r2 = RC2Simulator(stack, WATER, tile_size=tile_size).solve(1.5e4)
        rise4 = r4.source_fields()[0] - INLET_TEMPERATURE
        rise2 = r2.source_fields()[0] - INLET_TEMPERATURE
        rel = np.abs(rise2 - rise4).mean() / rise4.mean()
        assert rel < tolerance

    def test_error_grows_with_tile_size(self, pair):
        stack, r4 = pair
        rise4 = r4.source_fields()[0] - INLET_TEMPERATURE

        def err(tile_size):
            r2 = RC2Simulator(stack, WATER, tile_size=tile_size).solve(1.5e4)
            rise2 = r2.source_fields()[0] - INLET_TEMPERATURE
            return np.abs(rise2 - rise4).mean() / rise4.mean()

        assert err(2) < err(7)

    def test_q_sys_identical(self, pair):
        """Both models share the exact same flow solution."""
        stack, r4 = pair
        r2 = RC2Simulator(stack, WATER, tile_size=4).solve(1.5e4)
        assert r2.q_sys == pytest.approx(r4.q_sys, rel=1e-12)
        assert r2.w_pump == pytest.approx(r4.w_pump, rel=1e-12)
