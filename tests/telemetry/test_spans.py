"""Unit tests for the span tracer and its Chrome trace export."""

import os
import pickle
import threading

import pytest

from repro import telemetry
from repro.telemetry import TelemetryConfig
from repro.telemetry.spans import _NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with a disabled, empty global tracer."""
    telemetry.set_tracing(False)
    telemetry.clear_spans()
    yield
    telemetry.set_tracing(False)
    telemetry.clear_spans()


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        handle = tracer.span("thermal.solve")
        assert handle is _NULL_SPAN
        with handle:
            pass
        assert tracer.snapshot() == []

    def test_disabled_instant_records_nothing(self):
        tracer = Tracer()
        tracer.instant("parallel.retry", attempt=1)
        assert tracer.snapshot() == []

    def test_disabled_extend_is_noop(self):
        tracer = Tracer()
        tracer.extend([{"name": "x"}])
        assert tracer.snapshot() == []


class TestRecording:
    def test_span_records_identity_and_timing(self):
        tracer = Tracer(enabled=True)
        with tracer.span("thermal.solve", nodes=100):
            pass
        (span,) = tracer.snapshot()
        assert span["name"] == "thermal.solve"
        assert span["ph"] == "X"
        assert span["dur"] >= 0
        assert span["pid"] == os.getpid()
        assert span["tid"] == threading.get_ident()
        assert span["args"] == {"nodes": 100}

    def test_non_scalar_attrs_are_stringified(self):
        tracer = Tracer(enabled=True)
        with tracer.span("thermal.solve", shape=(3, 4), ok=True):
            pass
        (span,) = tracer.snapshot()
        assert span["args"] == {"shape": "(3, 4)", "ok": True}

    def test_nested_spans_are_contained(self):
        tracer = Tracer(enabled=True)
        with tracer.span("optimize.round"):
            with tracer.span("parallel.batch"):
                pass
        inner, outer = tracer.snapshot()
        assert (inner["name"], outer["name"]) == (
            "parallel.batch", "optimize.round",
        )
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_instant_marker(self):
        tracer = Tracer(enabled=True)
        tracer.instant("parallel.retry", attempt=2)
        (marker,) = tracer.snapshot()
        assert marker["ph"] == "i"
        assert "dur" not in marker
        assert marker["args"] == {"attempt": 2}

    def test_span_records_on_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("thermal.solve"):
                raise ValueError("boom")
        assert len(tracer.snapshot()) == 1


class TestBufferDiscipline:
    def test_capacity_bound_counts_drops(self):
        tracer = Tracer(enabled=True, capacity=2)
        for _ in range(5):
            tracer.instant("parallel.retry")
        assert len(tracer.snapshot()) == 2
        assert tracer.dropped == 3

    def test_drain_empties_buffer(self):
        tracer = Tracer(enabled=True)
        tracer.instant("parallel.retry")
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.snapshot() == []

    def test_extend_folds_and_respects_capacity(self):
        tracer = Tracer(enabled=True, capacity=3)
        tracer.instant("parallel.retry")
        worker_spans = [
            {"name": "parallel.candidate", "ph": "i", "ts": 0,
             "pid": 9999, "tid": 1, "args": {}},
        ] * 4
        tracer.extend(worker_spans)
        assert len(tracer.snapshot()) == 3
        assert tracer.dropped == 2

    def test_clear_resets_dropped(self):
        tracer = Tracer(enabled=True, capacity=1)
        tracer.instant("parallel.retry")
        tracer.instant("parallel.retry")
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0
        assert tracer.snapshot() == []


class TestChromeTrace:
    def test_export_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("thermal.rc2.solve", cells=10):
            pass
        tracer.instant("parallel.retry")
        tracer.extend([
            {"name": "parallel.candidate", "ph": "X", "ts": 5_000,
             "dur": 2_000, "pid": 424242, "tid": 7, "args": {}},
        ])
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        complete = by_ph["X"]
        assert {"thermal.rc2.solve", "parallel.candidate"} == {
            e["name"] for e in complete
        }
        worker_event = next(
            e for e in complete if e["name"] == "parallel.candidate"
        )
        assert worker_event["ts"] == 5.0  # ns -> us
        assert worker_event["dur"] == 2.0
        (marker,) = by_ph["i"]
        assert marker["s"] == "p"
        assert all(
            e["cat"] == e["name"].split(".", 1)[0]
            for e in complete + by_ph["i"]
        )
        labels = {
            e["pid"]: e["args"]["name"] for e in by_ph["M"]
            if e["name"] == "process_name"
        }
        assert labels[os.getpid()] == "parent"
        assert labels[424242] == "worker-424242"


class TestModuleHelpers:
    def test_set_tracing_round_trip(self):
        assert telemetry.set_tracing(True) is False
        assert telemetry.is_tracing()
        with telemetry.span("checkpoint.save"):
            pass
        assert len(telemetry.spans_snapshot()) == 1
        assert telemetry.set_tracing(False) is True
        telemetry.extend_spans(None)  # tolerated
        telemetry.clear_spans()
        assert telemetry.spans_snapshot() == []

    def test_drain_and_extend_round_trip(self):
        telemetry.set_tracing(True)
        telemetry.instant("parallel.retry")
        shipped = telemetry.drain_spans()
        assert telemetry.spans_snapshot() == []
        telemetry.extend_spans(shipped)
        assert len(telemetry.spans_snapshot()) == 1


class TestTelemetryConfig:
    def test_current_apply_round_trip(self):
        telemetry.set_tracing(True)
        config = TelemetryConfig.current()
        assert config.trace is True
        telemetry.set_tracing(False)
        config.apply()
        assert telemetry.is_tracing()

    def test_picklable_and_hashable(self):
        config = TelemetryConfig(trace=True, span_capacity=10)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert hash(clone) == hash(config)
        with pytest.raises(AttributeError):
            config.trace = False


class TestThreadLanes:
    def test_lane_names_give_threads_their_own_rows(self):
        """API and worker threads of one process export as distinct,
        lane-named process rows with stable synthetic pids."""
        telemetry.set_tracing(True)

        def record(lane):
            telemetry.set_thread_lane(lane)
            telemetry.instant("server.http", lane_check=lane)

        threads = [
            threading.Thread(target=record, args=(lane,))
            for lane in ("api", "worker-0")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        trace = telemetry.to_chrome_trace()
        labels = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert sorted(labels.values()) == ["api", "worker-0"]
        # Synthetic pids stay clear of real pid space and are distinct.
        assert all(pid >= 0x40000000 for pid in labels)
        assert len(set(labels)) == 2

    def test_lane_clears_and_unlaned_spans_keep_the_plain_row(self):
        telemetry.set_tracing(True)
        telemetry.set_thread_lane("api")
        telemetry.set_thread_lane(None)
        telemetry.instant("server.http")
        trace = telemetry.to_chrome_trace()
        (meta,) = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        ]
        assert meta["pid"] == os.getpid()
        assert meta["args"]["name"] == "parent"

    def test_foreign_pid_spans_drop_inherited_lanes(self):
        """A forked pool worker inherits the spawning thread's lane in its
        thread-locals; the export must render its spans as a worker-<pid>
        row, not fold them into the parent's lane."""
        telemetry.set_tracing(True)
        telemetry.set_thread_lane("worker-0")
        try:
            with telemetry.span("server.job"):
                pass
            foreign = dict(telemetry.spans_snapshot()[0])
            foreign["pid"] = 424242  # as if drained home from a fork
            foreign["name"] = "parallel.candidate"
            telemetry.extend_spans([foreign])
            trace = telemetry.to_chrome_trace()
            labels = {
                e["args"]["name"]
                for e in trace["traceEvents"]
                if e.get("ph") == "M" and e["name"] == "process_name"
            }
            assert labels == {"worker-0", "worker-424242"}
        finally:
            telemetry.set_thread_lane(None)

    def test_trace_id_rides_every_process_row(self):
        telemetry.set_tracing(True)
        TelemetryConfig(trace=True, trace_id="t-42").apply()
        telemetry.instant("server.http")
        trace = telemetry.to_chrome_trace()
        assert trace["otherData"] == {"trace_id": "t-42"}
        for event in trace["traceEvents"]:
            if event.get("ph") == "M" and event["name"] == "process_name":
                assert event["args"]["trace_id"] == "t-42"
        TelemetryConfig().apply()
