"""Unit tests for the JSONL run log and the offline report analyzer."""

import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro import profiling
from repro.errors import TelemetryError
from repro.telemetry.report import render_report, summarize_run
from repro.telemetry.runlog import (
    RunLog,
    active_run_log,
    emit_event,
    read_run_log,
    set_run_log,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _no_active_log():
    """No global run log leaks into (or out of) any of these tests."""
    set_run_log(None)
    yield
    set_run_log(None)


class TestRunLog:
    def test_emit_and_read_round_trip(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl")
        log.emit("run.start", problem="problem1", seed=3)
        log.emit("round.end", best_cost=1.5, acceptance_rate=0.25)
        records = read_run_log(tmp_path / "run.jsonl")
        assert [r["type"] for r in records] == ["run.start", "round.end"]
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["problem"] == "problem1"
        assert records[1]["best_cost"] == 1.5
        assert all("t_wall" in r and "t_mono_ns" in r for r in records)

    def test_infinite_scores_round_trip(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl")
        log.emit("round.end", best_cost=math.inf)
        (record,) = read_run_log(tmp_path / "run.jsonl")
        assert record["best_cost"] == math.inf

    def test_appends_across_generations(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunLog(path).emit("run.start")
        RunLog(path).emit("checkpoint.resume")
        assert [r["type"] for r in read_run_log(path)] == [
            "run.start", "checkpoint.resume",
        ]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunLog(path).emit("run.start")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "round.end", "best_co')
        records = read_run_log(path)
        assert [r["type"] for r in records] == ["run.start"]

    def test_corruption_before_final_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"type": "run.start", "seq": 0}\n'
            "garbage not json\n"
            '{"type": "run.end", "seq": 2}\n',
            encoding="utf-8",
        )
        with pytest.raises(TelemetryError, match="corrupt"):
            read_run_log(path)

    def test_untyped_record_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"seq": 0}\n', encoding="utf-8")
        with pytest.raises(TelemetryError, match="'type'"):
            read_run_log(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="not found"):
            read_run_log(tmp_path / "absent.jsonl")

    def test_metrics_interval_samples_counters(self, tmp_path):
        profiling.reset()
        profiling.increment("cooling.cache_hits", 3)
        profiling.increment("cooling.simulations", 1)
        try:
            log = RunLog(tmp_path / "run.jsonl", metrics_interval=0.0)
            log.emit("round.end", best_cost=2.0)
            records = read_run_log(tmp_path / "run.jsonl")
        finally:
            profiling.reset()
        metrics = [r for r in records if r["type"] == "run.metrics"]
        assert metrics, "expected a run.metrics sample"
        assert metrics[0]["counters"]["cooling.cache_hits"] == 3
        assert metrics[0]["cache_hit_rates"]["cooling"] == pytest.approx(0.75)


class TestGlobalRunLog:
    def test_emit_event_noop_without_active_log(self):
        emit_event("round.end", best_cost=1.0)  # must not raise

    def test_set_run_log_returns_previous(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl")
        assert set_run_log(log) is None
        assert active_run_log() is log
        emit_event("run.start", problem="problem1")
        assert set_run_log(None) is log
        (record,) = read_run_log(tmp_path / "run.jsonl")
        assert record["type"] == "run.start"


def _write_synthetic_log(path, score=5.0):
    log = RunLog(path)
    log.emit(
        "run.start", problem="problem1", case_number=1, grid_size=21,
        seed=0, directions=[0, 1], stages=["s1"], n_workers=2,
        batch_size=2, fingerprint="abc123",
    )
    log.emit(
        "checkpoint.resume", fingerprint="abc123", d_index=0,
        stage_index=0, round_index=1, sa_iteration=7,
    )
    for round_i, best in enumerate((9.0, 7.0, score)):
        log.emit("sa.iteration", iteration=round_i, best_cost=best)
        log.emit(
            "round.end", d_index=0, stage="s1", round=round_i,
            best_cost=best, accepted=round_i + 1, proposed=4,
            acceptance_rate=(round_i + 1) / 4.0, iterations=4,
        )
    log.emit("pool.retry", attempt=1, pending=2)
    log.emit(
        "run.end", score=score, feasible=True, direction=0,
        total_simulations=42, seconds=1.5,
        histograms={
            "optimize.candidate": {
                "count": 10, "sum": 0.5, "mean": 0.05, "min": 0.01,
                "max": 0.2, "p50": 0.04, "p90": 0.1, "p99": 0.2,
            },
        },
    )


class TestReport:
    def test_summarize_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_synthetic_log(path)
        summary = summarize_run(read_run_log(path))
        assert summary["start"]["problem"] == "problem1"
        assert summary["end"]["score"] == 5.0
        assert len(summary["rounds"]) == 3
        assert summary["iterations"] == 3
        assert summary["pool_retries"] == 1
        assert len(summary["resumes"]) == 1
        assert summary["histograms"]["optimize.candidate"]["count"] == 10

    def test_render_report_surfaces_key_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_synthetic_log(path)
        text = render_report(path)
        assert "problem=problem1" in text
        assert "resumed:" in text and "sa_iteration=7" in text
        assert "score=5.0" in text
        assert "75.0%" in text  # final round acceptance
        assert "9 -> 7 -> 5" in text  # best-score trajectory
        assert "optimize.candidate: n=10" in text
        assert "p50=40.00 ms" in text
        assert "1 retries" in text

    def test_render_compare_deltas(self, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _write_synthetic_log(path_a, score=5.0)
        _write_synthetic_log(path_b, score=4.0)
        text = render_report(path_a, compare=path_b)
        assert "== compare (B - A) ==" in text
        assert "score delta:       -1" in text

    def test_cli_report_smoke(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_synthetic_log(path)
        result = subprocess.run(
            [sys.executable, "-m", "repro.telemetry", "report", str(path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "best-score trajectory" in result.stdout

    def test_cli_report_missing_file_fails(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.telemetry", "report",
                str(tmp_path / "absent.jsonl"),
            ],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert result.returncode == 1
        assert "error:" in result.stderr
