"""End-to-end telemetry: worker spans, run-log events, resume markers.

Tiny schedules on the 21x21 grid -- the goal is to prove the plumbing
(worker spans crossing the process boundary, run events landing in the
JSONL stream, the resume marker carrying its cursor), not solver quality.
"""

import os

import pytest

from repro import profiling, telemetry
from repro.errors import RunInterrupted
from repro.iccad2015 import load_case
from repro.optimize.parallel import evaluate_population, shutdown_pools
from repro.optimize.runner import PROBLEM_PUMPING_POWER, run_staged_flow
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    StageConfig,
)
from repro.telemetry.report import render_report
from repro.telemetry.runlog import RunLog, read_run_log, set_run_log

FIXED_STAGE = StageConfig("f", 4, 1, 4, METRIC_FIXED_PRESSURE_GRADIENT, "2rm")
FIXED_PRESSURE = 2e4

TINY = [
    StageConfig("s1", 3, 1, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"),
    StageConfig("s2", 3, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm"),
]


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Fresh tracer/profiler/run-log state, no warm pools left behind."""
    telemetry.set_tracing(False)
    telemetry.clear_spans()
    profiling.reset()
    set_run_log(None)
    yield
    shutdown_pools()
    telemetry.set_tracing(False)
    telemetry.clear_spans()
    profiling.reset()
    set_run_log(None)


class TestWorkerSpans:
    def test_worker_spans_reach_parent(self, case):
        """Spans recorded inside pool workers land in the parent tracer."""
        plan = case.tree_plan()
        shutdown_pools()
        telemetry.set_tracing(True)
        batch = [
            plan.clamp_params(plan.params() + delta) for delta in range(6)
        ]
        evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, batch,
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        )
        spans = telemetry.spans_snapshot()
        parent_pid = os.getpid()
        parent_names = {
            s["name"] for s in spans if s["pid"] == parent_pid
        }
        worker_pids = {s["pid"] for s in spans} - {parent_pid}
        worker_names = {
            s["name"] for s in spans if s["pid"] != parent_pid
        }
        assert "parallel.batch" in parent_names
        assert worker_pids, "expected spans from at least one worker process"
        assert "parallel.candidate" in worker_names
        assert "flow.unit_solve" in worker_names

    def test_flipping_tracing_rebuilds_pool(self, case):
        """TelemetryConfig is part of the pool cache key, so toggling
        tracing re-arms workers instead of reusing stale ones."""
        plan = case.tree_plan()
        shutdown_pools()
        batch = [plan.params()]
        evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, batch,
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        )
        telemetry.set_tracing(True)
        evaluate_population(
            case, plan, FIXED_STAGE, PROBLEM_PUMPING_POWER, batch,
            fixed_pressure=FIXED_PRESSURE, n_workers=2,
        )
        assert profiling.counter("parallel.pool_starts") == 2


class TestRunEvents:
    def test_staged_flow_emits_typed_events(self, case, tmp_path):
        path = tmp_path / "run.jsonl"
        set_run_log(RunLog(path, fsync=False))
        try:
            result = run_staged_flow(
                case, TINY, PROBLEM_PUMPING_POWER, directions=(0,), seed=0
            )
        finally:
            set_run_log(None)
        records = read_run_log(path)
        types = [r["type"] for r in records]
        assert types[0] == "run.start"
        assert types[-1] == "run.end"
        for expected in (
            "sa.iteration", "round.end", "stage.end", "direction.end",
        ):
            assert expected in types
        end = records[-1]
        assert end["score"] == result.evaluation.score
        assert end["total_simulations"] == result.total_simulations
        assert "optimize.candidate" in end["histograms"]
        rounds = [r for r in records if r["type"] == "round.end"]
        assert all(0.0 <= r["acceptance_rate"] <= 1.0 for r in rounds)
        text = render_report(path)
        assert "best-score trajectory" in text
        assert "optimize.candidate" in text

    def test_resume_emits_cursor_event(self, case, tmp_path):
        path = tmp_path / "run.jsonl"
        calls = [0]

        def interrupt():
            calls[0] += 1
            return calls[0] >= 3

        set_run_log(RunLog(path, fsync=False))
        try:
            with pytest.raises(RunInterrupted):
                run_staged_flow(
                    case, TINY, PROBLEM_PUMPING_POWER, directions=(0,),
                    seed=0, checkpoint_dir=str(tmp_path / "ckpt"),
                    checkpoint_every=2, interrupt_check=interrupt,
                )
            run_staged_flow(
                case, TINY, PROBLEM_PUMPING_POWER, directions=(0,),
                seed=0, checkpoint_dir=str(tmp_path / "ckpt"), resume=True,
            )
        finally:
            set_run_log(None)
        records = read_run_log(path)
        resumes = [r for r in records if r["type"] == "checkpoint.resume"]
        assert len(resumes) == 1
        assert "fingerprint" in resumes[0]
        assert "sa_iteration" in resumes[0]
        assert "resumed:" in render_report(path)
