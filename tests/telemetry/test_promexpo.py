"""The Prometheus exposition module: render/parse round-trip fidelity.

The renderer and the parser in :mod:`repro.telemetry.promexpo` define the
whole ``GET /metrics`` wire contract between them (no client library on
either side), so the tests drive one against the other: everything the
renderer emits must parse back loss-free, and the parser must reject the
malformed shapes a broken renderer would produce.
"""

import math

import pytest

from repro.errors import TelemetryError
from repro.profiling import LATENCY_BUCKET_BOUNDS, Profiler
from repro.telemetry.promexpo import (
    PROMETHEUS_CONTENT_TYPE,
    gauge,
    histogram_quantile,
    parse_prometheus_text,
    render_prometheus,
)


def live_snapshot():
    """A profiler snapshot exercising counters, timers, and histograms."""
    profiler = Profiler(enabled=True)
    profiler.increment("server.jobs_submitted", 3)
    profiler.add_time("flow.unit_solve", 0.25, count=5)
    for value in (0.01, 0.02, 0.5, 2.0):
        profiler.observe("server.job_duration", value)
    return profiler.snapshot()


def test_counters_render_as_total_and_round_trip():
    text = render_prometheus(live_snapshot())
    families = parse_prometheus_text(text)
    family = families["repro_server_jobs_submitted_total"]
    assert family["type"] == "counter"
    assert family["samples"][0]["value"] == 3


def test_timers_render_as_seconds_and_calls_pair():
    text = render_prometheus(live_snapshot())
    families = parse_prometheus_text(text)
    seconds = families["repro_flow_unit_solve_seconds_total"]
    calls = families["repro_flow_unit_solve_calls_total"]
    assert seconds["samples"][0]["value"] == pytest.approx(0.25)
    assert calls["samples"][0]["value"] == 5


def test_timer_with_same_name_histogram_renders_histogram_only():
    """``profiling.timer`` feeds both a timer and a histogram of the same
    name; exporting both would double-count, so only the histogram (whose
    _sum/_count carry the timer's data) may render."""
    profiler = Profiler(enabled=True)
    with profiler.timer("thermal.solve"):
        pass
    text = render_prometheus(profiler.snapshot())
    families = parse_prometheus_text(text)
    assert "repro_thermal_solve_seconds" in families
    assert "repro_thermal_solve_seconds_total" not in families


def test_latency_histogram_is_cumulative_with_inf_and_unit_suffix():
    text = render_prometheus(live_snapshot())
    families = parse_prometheus_text(text)
    family = families["repro_server_job_duration_seconds"]
    assert family["type"] == "histogram"
    buckets = sorted(
        (float("inf") if s["labels"]["le"] == "+Inf" else float(s["labels"]["le"]),
         s["value"])
        for s in family["samples"]
        if s["name"].endswith("_bucket")
    )
    counts = [count for _, count in buckets]
    assert counts == sorted(counts)  # cumulative by construction
    assert buckets[-1][0] == float("inf")
    assert buckets[-1][1] == 4  # +Inf bucket holds every observation
    total = next(
        s["value"] for s in family["samples"] if s["name"].endswith("_count")
    )
    assert total == 4
    sum_sample = next(
        s["value"] for s in family["samples"] if s["name"].endswith("_sum")
    )
    assert sum_sample == pytest.approx(0.01 + 0.02 + 0.5 + 2.0)


def test_gauges_render_with_escaped_labels():
    tricky = 'tenant "a"\\with\nnewline'
    text = render_prometheus(
        gauges=[
            gauge("server.queue_depth", 4, state="pending"),
            gauge("server.tenant_active_jobs", 2, tenant=tricky),
        ]
    )
    families = parse_prometheus_text(text)
    depth = families["repro_server_queue_depth"]
    assert depth["type"] == "gauge"
    assert depth["samples"][0]["labels"] == {"state": "pending"}
    tenants = families["repro_server_tenant_active_jobs"]
    assert tenants["samples"][0]["labels"]["tenant"] == tricky


def test_empty_inputs_render_empty_and_parse_empty():
    assert render_prometheus() == ""
    assert parse_prometheus_text("") == {}
    assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


def test_parser_rejects_malformed_text():
    with pytest.raises(TelemetryError, match="no preceding"):
        parse_prometheus_text("repro_orphan_total 3\n")
    with pytest.raises(TelemetryError, match="unknown sample type"):
        parse_prometheus_text("# TYPE repro_x summary\nrepro_x 1\n")
    with pytest.raises(TelemetryError, match="bad sample value"):
        parse_prometheus_text(
            "# TYPE repro_x counter\nrepro_x oops\n"
        )
    with pytest.raises(TelemetryError, match="lacks a \\+Inf"):
        parse_prometheus_text(
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 2\n'
            "repro_h_sum 1\nrepro_h_count 2\n"
        )
    with pytest.raises(TelemetryError, match="not cumulative"):
        parse_prometheus_text(
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1\nrepro_h_count 2\n"
        )


def test_parser_skips_comment_and_heartbeat_lines():
    families = parse_prometheus_text(
        "#hb\n# a free-form comment\n"
        "# TYPE repro_x counter\nrepro_x 1\n"
    )
    assert families["repro_x"]["samples"][0]["value"] == 1


def test_histogram_quantile_interpolates_and_bounds():
    buckets = [(1.0, 10.0), (2.0, 20.0), (math.inf, 20.0)]
    assert histogram_quantile(buckets, 0.0) == 0.0
    assert histogram_quantile(buckets, 0.25) == pytest.approx(0.5)
    assert histogram_quantile(buckets, 0.75) == pytest.approx(1.5)
    # Mass in the +Inf bucket clamps to the last finite bound.
    assert histogram_quantile([(1.0, 0.0), (math.inf, 5.0)], 0.99) == 1.0
    assert histogram_quantile([], 0.5) == 0.0
    with pytest.raises(TelemetryError):
        histogram_quantile(buckets, 1.5)


def test_quantiles_round_trip_through_exposition_text():
    """p50/p90 recovered from rendered text stay within one bucket of the
    profiler's own percentile estimate (the ``repro top`` data path)."""
    profiler = Profiler(enabled=True)
    for exponent in range(40):
        profiler.observe("server.job_duration", 0.01 * (1.3 ** exponent))
    direct = profiler.histogram("server.job_duration").percentile(90.0)
    families = parse_prometheus_text(render_prometheus(profiler.snapshot()))
    family = families["repro_server_job_duration_seconds"]
    buckets = [
        (float("inf") if s["labels"]["le"] == "+Inf" else float(s["labels"]["le"]),
         s["value"])
        for s in family["samples"]
        if s["name"].endswith("_bucket")
    ]
    recovered = histogram_quantile(buckets, 0.90)
    bounds = sorted(b for b, _ in buckets if b != float("inf"))
    spacing = max(
        b2 / b1 for b1, b2 in zip(bounds, bounds[1:])
    )
    assert recovered / direct < spacing * 1.01
    assert direct / recovered < spacing * 1.01
