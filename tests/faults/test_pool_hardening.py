"""PersistentEvaluationPool resilience: timeouts, retries, degradation."""

import math

import numpy as np
import pytest

from repro import profiling
from repro.errors import SearchError, WorkerTimeoutError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, SITE_PARALLEL_WORKER
from repro.iccad2015 import load_case
from repro.optimize.parallel import (
    PersistentEvaluationPool,
    evaluate_population,
    shutdown_pools,
)
from repro.optimize.runner import PROBLEM_PUMPING_POWER
from repro.optimize.stages import METRIC_LOWEST_FEASIBLE_POWER, StageConfig

WATCHDOG = 120.0

STAGE = StageConfig("h", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


@pytest.fixture(scope="module")
def candidates(case):
    plan = case.tree_plan()
    rng = np.random.default_rng(7)
    out = [plan.params()]
    for _ in range(3):
        jitter = 2 * rng.integers(-3, 4, size=out[-1].shape)
        out.append(plan.clamp_params(out[-1] + jitter))
    return out


@pytest.fixture(scope="module")
def baseline_costs(case, candidates):
    with PersistentEvaluationPool(
        case, case.tree_plan(), STAGE, PROBLEM_PUMPING_POWER, n_workers=2
    ) as pool:
        return pool.evaluate(candidates)


def make_pool(case, fault_plan=None, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("backoff_base", 0.01)
    return PersistentEvaluationPool(
        case,
        case.tree_plan(),
        STAGE,
        PROBLEM_PUMPING_POWER,
        fault_plan=fault_plan,
        **kwargs,
    )


def death_plan(**spec_kwargs):
    return FaultPlan(
        [
            FaultSpec(
                site=SITE_PARALLEL_WORKER, kind="worker-death", **spec_kwargs
            )
        ],
        seed=3,
    )


class TestTimeoutAndRetry:
    def test_hang_times_out_then_retry_recovers(
        self, watchdog, case, candidates, baseline_costs
    ):
        # Each worker hangs on its *second* candidate: the first attempt
        # makes partial progress then times out; the respawned workers
        # finish the remainder before hitting their own second hit.
        fp = FaultPlan(
            [
                FaultSpec(
                    site=SITE_PARALLEL_WORKER,
                    kind="hang",
                    after=1,
                    delay=30.0,
                )
            ],
            seed=3,
        )
        with watchdog(WATCHDOG), make_pool(case, fp, timeout=5.0) as pool:
            costs = pool.evaluate(candidates)
        assert costs == baseline_costs
        counters = profiling.snapshot()["counters"]
        assert counters.get("parallel.timeouts", 0) >= 1
        assert counters.get("parallel.worker_replacements", 0) >= 1
        assert not pool.degraded

    def test_worker_death_replaced_and_recovers(
        self, watchdog, case, candidates, baseline_costs
    ):
        fp = death_plan(after=1, max_fires=1)
        with watchdog(WATCHDOG), make_pool(case, fp) as pool:
            costs = pool.evaluate(candidates)
        assert costs == baseline_costs
        counters = profiling.snapshot()["counters"]
        assert counters.get("parallel.worker_lost", 0) >= 1
        assert counters.get("parallel.retries", 0) >= 1

    def test_retries_exhausted_raises_typed_error(
        self, watchdog, case, candidates
    ):
        fp = FaultPlan(
            [FaultSpec(site=SITE_PARALLEL_WORKER, kind="hang", delay=30.0)],
            seed=3,
        )
        with watchdog(WATCHDOG), make_pool(
            case, fp, timeout=0.3, max_retries=1, degrade_after=99
        ) as pool:
            with pytest.raises(WorkerTimeoutError):
                pool.evaluate(candidates)
        counters = profiling.snapshot()["counters"]
        assert counters.get("parallel.timeouts", 0) == 2
        assert counters.get("parallel.retries", 0) == 1


class TestDegradation:
    def test_persistent_deaths_degrade_to_serial(
        self, watchdog, case, candidates, baseline_costs
    ):
        fp = death_plan()  # rate 1.0: every worker dies on every candidate
        with watchdog(WATCHDOG), make_pool(case, fp) as pool:
            costs = pool.evaluate(candidates)
            assert pool.degraded
            assert costs == baseline_costs
            counters = profiling.snapshot()["counters"]
            assert counters.get("parallel.degraded") == 1
            assert counters.get("parallel.serial_fallback") == len(candidates)

            # Once degraded, later batches stay serial with no new failures.
            failures_before = counters.get("parallel.pool_failures", 0)
            assert pool.evaluate(candidates) == baseline_costs
            after = profiling.snapshot()["counters"]
            assert after.get("parallel.pool_failures", 0) == failures_before
            assert after.get("parallel.serial_fallback") == 2 * len(candidates)

    def test_degraded_pool_never_fires_worker_faults(
        self, watchdog, case, candidates
    ):
        # The parallel.worker site lives only inside pool workers: the
        # serial-degradation path must never execute worker-death faults in
        # the parent (that would kill the test process).
        fp = death_plan()
        with watchdog(WATCHDOG), make_pool(case, fp) as pool:
            costs = pool.evaluate(candidates)
        assert all(math.isfinite(c) or math.isinf(c) for c in costs)


class TestCachedDispatch:
    """The evaluate_population front door under an ambient fault plan."""

    def test_empty_batch_short_circuits(self, case):
        with PersistentEvaluationPool(
            case, case.tree_plan(), STAGE, PROBLEM_PUMPING_POWER, n_workers=2
        ) as pool:
            assert pool.evaluate([]) == []

    def test_ambient_plan_reaches_cached_pool(
        self, watchdog, case, candidates, baseline_costs
    ):
        # The cached-pool path arms its workers with the ambient plan and
        # the conftest's shutdown_pools() drains the warm cache afterwards.
        fp = death_plan(after=1, max_fires=1)
        with watchdog(WATCHDOG), FaultInjector(fp):
            costs = evaluate_population(
                case,
                case.tree_plan(),
                STAGE,
                PROBLEM_PUMPING_POWER,
                candidates,
                n_workers=2,
            )
        shutdown_pools()
        assert costs == baseline_costs

    def test_bad_worker_count_rejected(self, case, candidates):
        with pytest.raises(SearchError, match="n_workers"):
            evaluate_population(
                case,
                case.tree_plan(),
                STAGE,
                PROBLEM_PUMPING_POWER,
                candidates,
                n_workers=0,
            )


class TestLifecycleAndValidation:
    def test_reuse_after_close_raises(self, case, candidates):
        pool = make_pool(case)
        pool.close()
        assert pool.closed
        with pytest.raises(SearchError, match="closed"):
            pool.evaluate(candidates)

    def test_close_is_idempotent(self, case):
        pool = make_pool(case)
        pool.close()
        pool.close()
        assert pool.closed

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"n_workers": 0}, "n_workers"),
            ({"timeout": 0.0}, "timeout"),
            ({"max_retries": -1}, "max_retries"),
            ({"degrade_after": 0}, "degrade_after"),
        ],
    )
    def test_bad_parameters_rejected(self, case, kwargs, match):
        with pytest.raises(SearchError, match=match):
            make_pool(case, **kwargs)
