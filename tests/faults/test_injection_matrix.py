"""The chaos acceptance matrix: every fault kind at each of its sites.

Every row runs the *real* stack (no monkeypatching) under an armed
:class:`~repro.faults.FaultPlan` and must end, within the watchdog, in one
of exactly two outcomes:

* **recovered** -- the computation completes with the same result as the
  fault-free run (slow workers, survivable worker deaths), or with the
  injected infeasibility correctly scored ``inf``;
* **typed error** -- a :class:`~repro.errors.ReproError` subclass (or
  :class:`~repro.errors.CandidateCrashError` for deliberately untyped
  crashes, proving the crash boundary translates instead of swallowing).

A hang, a bare builtin exception, or a silently different result fails the
suite.
"""

import math

import numpy as np
import pytest

from repro.constants import CELL_WIDTH
from repro.cooling.evaluation import evaluate_problem1, evaluate_problem2
from repro.cooling.system import CoolingSystem
from repro.errors import (
    BenchmarkError,
    CandidateCrashError,
    FlowError,
    InjectedFaultError,
    ThermalError,
    WorkerTimeoutError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    KNOWN_KINDS,
    SITE_COOLING_PROBLEM1,
    SITE_COOLING_PROBLEM2,
    SITE_FLOW_MATRIX,
    SITE_FLOW_PRESSURES,
    SITE_IO_POWER_MAP,
    SITE_LINALG_UPDATE,
    SITE_PARALLEL_DISPATCH,
    SITE_PARALLEL_WORKER,
    SITE_THERMAL_RC2,
    SITE_THERMAL_RC4,
)
from repro.flow.network import clear_unit_cache
from repro.geometry import build_contest_stack
from repro.iccad2015 import load_case
from repro.iccad2015.io import read_floorplan, write_floorplan
from repro.materials import WATER
from repro.networks import serpentine_network
from repro.optimize.parallel import PersistentEvaluationPool
from repro.optimize.runner import PROBLEM_PUMPING_POWER
from repro.optimize.stages import METRIC_LOWEST_FEASIBLE_POWER, StageConfig

WATCHDOG = 60.0

DELTA_T_STAR = 50.0
T_MAX_STAR = 450.0
W_PUMP_STAR = 1e-3

STAGE = StageConfig("chaos", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")


def small_stack():
    grid = serpentine_network(9, 9)
    power = np.full((9, 9), 0.01)
    return build_contest_stack(
        2, 2e-4, [power, power], lambda d: grid.copy(), 9, 9, CELL_WIDTH
    )


def run_evaluation(problem, model):
    """One fault-free-shaped network evaluation through the full stack."""
    clear_unit_cache()
    system = CoolingSystem(small_stack(), WATER, model=model)
    if problem == "problem1":
        return evaluate_problem1(system, DELTA_T_STAR, T_MAX_STAR)
    return evaluate_problem2(system, T_MAX_STAR, W_PUMP_STAR)


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


@pytest.fixture(scope="module")
def candidates(case):
    plan = case.tree_plan()
    rng = np.random.default_rng(0)
    out = [plan.params()]
    for _ in range(3):
        jitter = 2 * rng.integers(-3, 4, size=out[-1].shape)
        out.append(plan.clamp_params(out[-1] + jitter))
    return out


@pytest.fixture(scope="module")
def baseline_costs(case, candidates):
    plan = case.tree_plan()
    with PersistentEvaluationPool(
        case, plan, STAGE, PROBLEM_PUMPING_POWER, n_workers=2
    ) as pool:
        return pool.evaluate(candidates)


def make_pool(case, fault_plan, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("backoff_base", 0.01)
    return PersistentEvaluationPool(
        case,
        case.tree_plan(),
        STAGE,
        PROBLEM_PUMPING_POWER,
        fault_plan=fault_plan,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# In-process solver sites: corruption becomes a typed library error
# ---------------------------------------------------------------------------

IN_PROCESS_ERRORS = [
    ("singular-system", SITE_FLOW_MATRIX, "problem1", "2rm", FlowError),
    ("disconnect", SITE_FLOW_MATRIX, "problem1", "2rm", FlowError),
    ("nan", SITE_FLOW_PRESSURES, "problem1", "2rm", FlowError),
    ("inf", SITE_FLOW_PRESSURES, "problem1", "2rm", FlowError),
    ("nan", SITE_THERMAL_RC2, "problem1", "2rm", ThermalError),
    ("inf", SITE_THERMAL_RC2, "problem1", "2rm", ThermalError),
    ("nan", SITE_THERMAL_RC4, "problem1", "4rm", ThermalError),
    ("inf", SITE_THERMAL_RC4, "problem1", "4rm", ThermalError),
    ("nan", SITE_LINALG_UPDATE, "problem1", "2rm", ThermalError),
    ("inf", SITE_LINALG_UPDATE, "problem1", "2rm", ThermalError),
    (
        "raise-infeasible",
        SITE_COOLING_PROBLEM1,
        "problem1",
        "2rm",
        InjectedFaultError,
    ),
    (
        "raise-infeasible",
        SITE_COOLING_PROBLEM2,
        "problem2",
        "2rm",
        InjectedFaultError,
    ),
]


@pytest.mark.parametrize(
    "kind,site,problem,model,expected",
    IN_PROCESS_ERRORS,
    ids=[f"{k}@{s}" for k, s, *_ in IN_PROCESS_ERRORS],
)
def test_in_process_fault_raises_typed_error(
    watchdog, kind, site, problem, model, expected
):
    plan = FaultPlan([FaultSpec(site=site, kind=kind)], seed=1)
    with watchdog(WATCHDOG), FaultInjector(plan):
        with pytest.raises(expected):
            run_evaluation(problem, model)
    assert plan.fired() >= 1


IN_PROCESS_RECOVERIES = [
    ("slow", SITE_COOLING_PROBLEM1, None),
    ("hang", SITE_COOLING_PROBLEM1, 0.2),
    ("slow", SITE_FLOW_PRESSURES, None),
]


@pytest.mark.parametrize(
    "kind,site,delay",
    IN_PROCESS_RECOVERIES,
    ids=[f"{k}@{s}" for k, s, _ in IN_PROCESS_RECOVERIES],
)
def test_in_process_delay_recovers_with_same_result(
    watchdog, kind, site, delay
):
    baseline = run_evaluation("problem1", "2rm")
    plan = FaultPlan([FaultSpec(site=site, kind=kind, delay=delay)], seed=1)
    with watchdog(WATCHDOG), FaultInjector(plan):
        result = run_evaluation("problem1", "2rm")
    assert plan.fired() >= 1
    assert result.score == baseline.score
    assert result.feasible == baseline.feasible


# ---------------------------------------------------------------------------
# The load boundary: corrupted power maps are rejected on read
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["nan", "inf", "negative"])
def test_power_map_fault_rejected_at_load(watchdog, tmp_path, kind):
    path = tmp_path / "floorplan.txt"
    write_floorplan([np.full((3, 3), 0.5)], path)
    plan = FaultPlan([FaultSpec(site=SITE_IO_POWER_MAP, kind=kind)], seed=1)
    with watchdog(WATCHDOG), FaultInjector(plan):
        with pytest.raises(BenchmarkError, match="power density"):
            read_floorplan(path)
    assert plan.fired() == 1


# ---------------------------------------------------------------------------
# The serial scoring boundary: untyped crashes are translated, not hidden
# ---------------------------------------------------------------------------


def test_injected_crash_translates_to_candidate_crash(
    watchdog, case, candidates
):
    from repro.optimize.parallel import evaluate_population

    plan = FaultPlan(
        [FaultSpec(site=SITE_COOLING_PROBLEM1, kind="raise-crash")], seed=1
    )
    with watchdog(WATCHDOG), FaultInjector(plan):
        with pytest.raises(CandidateCrashError, match="injected crash"):
            evaluate_population(
                case,
                case.tree_plan(),
                STAGE,
                PROBLEM_PUMPING_POWER,
                candidates[:1],
                n_workers=1,
            )


# ---------------------------------------------------------------------------
# Pool sites: hangs, deaths, crashes inside worker processes
# ---------------------------------------------------------------------------


def test_worker_crash_is_typed(watchdog, case, candidates):
    fp = FaultPlan(
        [FaultSpec(site=SITE_PARALLEL_WORKER, kind="raise-crash", max_fires=1)],
        seed=3,
    )
    with watchdog(WATCHDOG), make_pool(case, fp) as pool:
        with pytest.raises(CandidateCrashError, match="injected crash"):
            pool.evaluate(candidates)


def test_worker_injected_infeasibility_scores_inf(watchdog, case, candidates):
    fp = FaultPlan(
        [FaultSpec(site=SITE_PARALLEL_WORKER, kind="raise-infeasible")],
        seed=3,
    )
    with watchdog(WATCHDOG), make_pool(case, fp) as pool:
        costs = pool.evaluate(candidates)
    assert costs == [math.inf] * len(candidates)


def test_worker_death_recovers(watchdog, case, candidates, baseline_costs):
    fp = FaultPlan(
        [
            FaultSpec(
                site=SITE_PARALLEL_WORKER,
                kind="worker-death",
                after=1,
                max_fires=1,
            )
        ],
        seed=3,
    )
    with watchdog(WATCHDOG), make_pool(case, fp) as pool:
        costs = pool.evaluate(candidates)
    assert costs == baseline_costs


def test_worker_slow_recovers(watchdog, case, candidates, baseline_costs):
    fp = FaultPlan(
        [FaultSpec(site=SITE_PARALLEL_WORKER, kind="slow", delay=0.02)],
        seed=3,
    )
    with watchdog(WATCHDOG), make_pool(case, fp) as pool:
        costs = pool.evaluate(candidates)
    assert costs == baseline_costs


def test_worker_hang_is_typed_timeout(watchdog, case, candidates):
    fp = FaultPlan(
        [FaultSpec(site=SITE_PARALLEL_WORKER, kind="hang", delay=30.0)],
        seed=3,
    )
    with watchdog(WATCHDOG), make_pool(
        case, fp, timeout=0.5, max_retries=1, degrade_after=99
    ) as pool:
        with pytest.raises(WorkerTimeoutError, match="no candidate"):
            pool.evaluate(candidates)


def test_dispatch_fault_is_typed(watchdog, case, candidates):
    fp = FaultPlan(
        [FaultSpec(site=SITE_PARALLEL_DISPATCH, kind="raise-infeasible")],
        seed=3,
    )
    with watchdog(WATCHDOG), FaultInjector(fp):
        with make_pool(case, None) as pool:
            with pytest.raises(InjectedFaultError, match="parallel.dispatch"):
                pool.evaluate(candidates)


# ---------------------------------------------------------------------------
# Queue sites: torn records, lost leases, dying queue workers
# ---------------------------------------------------------------------------


def queue_store(tmp_path):
    from repro.server import JobStore, validate_submission

    store = JobStore(tmp_path / "store", lease_ttl=5.0)
    spec = validate_submission(
        {
            "case_seed": 7,
            "grid": 9,
            "rounds": 2,
            "iterations": 1,
            "batch_size": 1,
        }
    )
    return store, spec


def test_torn_record_write_is_surfaced_not_served(watchdog, tmp_path):
    """A torn record write makes *that job* unreadable -- typed on access,
    counted by scan -- while the rest of the queue keeps working."""
    from repro.errors import JobRecordError
    from repro.faults import SITE_SERVER_RECORD

    store, spec = queue_store(tmp_path)
    plan = FaultPlan(
        [FaultSpec(site=SITE_SERVER_RECORD, kind="torn-write", max_fires=1)],
        seed=1,
    )
    with watchdog(WATCHDOG), FaultInjector(plan):
        torn = store.submit(dict(spec), tenant="a")
    assert plan.fired() == 1
    with pytest.raises(JobRecordError):
        store.get(torn.job_id)
    healthy = store.submit(dict(spec), tenant="b")  # queue still admits
    records, invalid = store.scan()
    assert [r.job_id for r in records] == [healthy.job_id]
    assert invalid == [torn.job_id]
    assert store.queue_depth()["invalid"] == 1


def test_lease_renewal_fault_is_typed_and_transient(watchdog, tmp_path):
    from repro.faults import SITE_SERVER_LEASE_RENEW
    from repro.server import LeaseFile

    lease_file = LeaseFile(tmp_path, ttl=5.0)
    lease = lease_file.try_acquire("w")
    plan = FaultPlan(
        [
            FaultSpec(
                site=SITE_SERVER_LEASE_RENEW,
                kind="raise-infeasible",
                max_fires=1,
            )
        ],
        seed=1,
    )
    with watchdog(WATCHDOG), FaultInjector(plan):
        with pytest.raises(InjectedFaultError, match="server.lease.renew"):
            lease_file.renew(lease)
    assert plan.fired() == 1
    assert lease_file.renew(lease).renewals == 1  # transient, not fatal


_QUEUE_WORKER_DEATH_SCRIPT = """
import sys
from repro.faults import FaultInjector, FaultPlan, FaultSpec, SITE_SERVER_WORKER
from repro.server import JobStore, Worker

store = JobStore(sys.argv[1], lease_ttl=float(sys.argv[2]))
plan = FaultPlan(
    [FaultSpec(site=SITE_SERVER_WORKER, kind="worker-death", max_fires=1)],
    seed=1,
)
with FaultInjector(plan):
    Worker(store, worker_id="w-doomed").claim_once()
"""


def test_queue_worker_death_leaves_job_reclaimable(watchdog, tmp_path):
    """``worker-death`` at the queue site is a real ``os._exit`` in a real
    process; the reaper must requeue the abandoned job."""
    import os
    import subprocess
    import sys
    import time as _time
    from pathlib import Path

    from repro.faults.plan import _DEATH_EXIT_CODE
    from repro.server import Reaper, Worker

    store, spec = queue_store(tmp_path)
    store = type(store)(store.root, lease_ttl=0.2)
    job_id = store.submit(spec).job_id
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH", "")) if p
    )
    with watchdog(WATCHDOG):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _QUEUE_WORKER_DEATH_SCRIPT,
                str(store.root),
                str(store.lease_ttl),
            ],
            env=env,
            timeout=WATCHDOG,
        )
    assert proc.returncode == _DEATH_EXIT_CODE
    _time.sleep(0.25)  # let the orphaned lease expire
    assert Reaper(store, retry_backoff=0.01).sweep() == [job_id]
    reclaimed = store.get(job_id)
    assert reclaimed.state == "pending"
    assert reclaimed.attempts == 1
    _time.sleep(0.05)
    with watchdog(WATCHDOG):
        assert Worker(store, worker_id="w-2").claim_once() == job_id
    assert store.get(job_id).state == "completed"


# ---------------------------------------------------------------------------
# Matrix completeness
# ---------------------------------------------------------------------------


def test_matrix_covers_at_least_eight_kinds():
    exercised = {k for k, *_ in IN_PROCESS_ERRORS}
    exercised |= {k for k, _, _ in IN_PROCESS_RECOVERIES}
    exercised |= {"nan", "inf", "negative"}  # load boundary
    exercised |= {"raise-crash", "worker-death", "slow", "hang"}  # pool
    exercised |= {"torn-write", "raise-infeasible"}  # queue sites
    assert len(exercised) >= 8
    assert exercised == set(KNOWN_KINDS)
