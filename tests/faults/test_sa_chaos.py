"""SA under fire: the full staged flow with 30% injected worker deaths.

The acceptance bar of the fault-injection tentpole: a Problem-1 SA run in
which roughly a third of worker candidates kill their process must still
finish -- through worker replacement and, if the pool keeps failing, serial
degradation -- and must return the *same* feasible design and score as the
fault-free run, because retries redo work instead of dropping it.
"""

import pytest

from repro import profiling
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SITE_PARALLEL_WORKER,
)
from repro.linalg import use_config
from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1
from repro.optimize.stages import METRIC_LOWEST_FEASIBLE_POWER, StageConfig

WATCHDOG = 300.0

STAGES = [StageConfig("c", 3, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm")]


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


def run_sa(case):
    return optimize_problem1(
        case,
        stages=STAGES,
        directions=(0,),
        seed=0,
        n_workers=2,
        batch_size=3,
    )


def test_sa_survives_30pct_worker_deaths(watchdog, case):
    with watchdog(WATCHDOG):
        baseline = run_sa(case)
    assert baseline.evaluation is not None

    profiling.reset()
    chaos_plan = FaultPlan(
        [
            FaultSpec(
                site=SITE_PARALLEL_WORKER, kind="worker-death", rate=0.3
            )
        ],
        seed=42,
    )
    with watchdog(WATCHDOG), FaultInjector(chaos_plan):
        chaos = run_sa(case)

    # Same design, same score, still feasible: faults were absorbed by
    # retry/replacement/degradation, never by dropping or mis-scoring work.
    assert chaos.evaluation.score == baseline.evaluation.score
    assert chaos.evaluation.feasible == baseline.evaluation.feasible
    assert chaos.direction == baseline.direction
    assert (chaos.plan.params() == baseline.plan.params()).all()

    counters = profiling.snapshot()["counters"]
    # The chaos run really did lose workers (or degrade) along the way.
    assert (
        counters.get("parallel.worker_lost", 0) > 0
        or counters.get("parallel.degraded", 0) > 0
    )


def test_sa_incremental_updates_are_bitwise_invisible(watchdog, case):
    """Incremental solver updates never change what the SA flow returns.

    The acceptance bar of the incremental-solver tentpole: the staged flow
    with Woodbury pressure-shift solves enabled (the default) must return
    the *same* design with a bit-identical score as a run forced through
    fresh factorizations -- and keep doing so while 30% of worker
    candidates kill their process, because respawned workers re-arm the
    parent's solver configuration.
    """
    with watchdog(WATCHDOG), use_config(incremental=False):
        exact = run_sa(case)
    assert exact.evaluation is not None

    with watchdog(WATCHDOG):
        incremental = run_sa(case)
    assert incremental.evaluation.score == exact.evaluation.score
    assert incremental.evaluation.feasible == exact.evaluation.feasible
    assert incremental.direction == exact.direction
    assert (incremental.plan.params() == exact.plan.params()).all()

    chaos_plan = FaultPlan(
        [FaultSpec(site=SITE_PARALLEL_WORKER, kind="worker-death", rate=0.3)],
        seed=42,
    )
    with watchdog(WATCHDOG), FaultInjector(chaos_plan):
        chaos = run_sa(case)
    assert chaos.evaluation.score == exact.evaluation.score
    assert (chaos.plan.params() == exact.plan.params()).all()
