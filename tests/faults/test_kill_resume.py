"""Kill resilience: SIGKILL a checkpointed run mid-stage, resume, match.

The crash-safety acceptance bar: a staged SA run whose *process* dies --
no handlers, no cleanup, ``SIGKILL`` -- must resume from its checkpoint to
the exact result of a run that never died.  Two kill strategies:

* **faults-chosen**: a :mod:`repro.faults` ``hang`` fault parks the child
  at a deterministic thermal-solve hit mid-stage; the parent detects the
  stall and hard-kills it there.
* **checkpoint-polling smoke**: the parent kills the child as soon as the
  first checkpoint lands, wherever the run happens to be.

Both resumes must be bitwise: same score, same selected plan, same
simulation count.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import profiling
from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    StageConfig,
)

WATCHDOG = 300.0
SRC = str(Path(__file__).resolve().parents[2] / "src")

STAGES = [
    StageConfig("coarse", 5, 2, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"),
    StageConfig("fine", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm"),
]

#: The child runs the same flow as :func:`run_golden`, checkpointing every
#: iteration; with HANG_AFTER set it arms a long ``hang`` fault at the
#: N-th 2RM thermal solve so the parent can SIGKILL it at a deterministic,
#: faults-chosen point mid-stage.
CHILD_SCRIPT = """
import os, sys
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.faults import KIND_HANG, SITE_THERMAL_RC2
from repro.iccad2015 import load_case
from repro.optimize import optimize_problem1
from repro.optimize.stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    StageConfig,
)

stages = [
    StageConfig("coarse", 5, 2, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm"),
    StageConfig("fine", 4, 1, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm"),
]
case = load_case(1, grid_size=21)

def run():
    optimize_problem1(
        case, stages=stages, directions=(0, 1), seed=3,
        checkpoint_dir=sys.argv[1], checkpoint_every=1,
    )

hang_after = int(os.environ.get("HANG_AFTER", "0"))
if hang_after:
    plan = FaultPlan(
        [FaultSpec(site=SITE_THERMAL_RC2, kind=KIND_HANG,
                   after=hang_after, max_fires=1, delay=600.0)],
        seed=0,
    )
    with FaultInjector(plan):
        run()
else:
    run()
print("FINISHED")
"""


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=21)


def run_golden(case):
    return optimize_problem1(
        case, stages=STAGES, directions=(0, 1), seed=3
    )


def summarize(result):
    return (
        result.evaluation.score,
        result.total_simulations,
        result.plan.params().tolist(),
        result.direction,
    )


def spawn_child(tmp_path, hang_after=0):
    env = dict(os.environ, PYTHONPATH=SRC, HANG_AFTER=str(hang_after))
    return subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(tmp_path)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def wait_for_checkpoint(child, ckpt, deadline_s=120.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if ckpt.exists():
            return
        if child.poll() is not None:
            raise AssertionError(
                f"child exited ({child.returncode}) before its first "
                f"checkpoint: {child.stderr.read().decode()}"
            )
        time.sleep(0.05)
    raise AssertionError("child never wrote a checkpoint")


def wait_for_stall(child, ckpt, quiet_s=2.0, deadline_s=120.0):
    """Wait until the checkpoint stops changing: the hang fault has fired."""
    start = time.monotonic()
    last_stat = None
    quiet_since = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if child.poll() is not None:
            raise AssertionError(
                f"child exited ({child.returncode}) before hanging: "
                f"{child.stderr.read().decode()}"
            )
        stat = ckpt.stat()
        key = (stat.st_mtime_ns, stat.st_size)
        if key != last_stat:
            last_stat = key
            quiet_since = time.monotonic()
        elif time.monotonic() - quiet_since >= quiet_s:
            return
        time.sleep(0.05)
    raise AssertionError("child never stalled on the hang fault")


def sigkill(child):
    child.kill()  # SIGKILL: no handlers, no atexit, no flushing
    child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL


def resume(case, tmp_path):
    profiling.reset()
    return optimize_problem1(
        case, stages=STAGES, directions=(0, 1), seed=3,
        checkpoint_dir=str(tmp_path), checkpoint_every=1, resume=True,
    )


def test_sigkill_at_faults_chosen_point_resumes_bitwise(
    watchdog, case, tmp_path
):
    """Hang fault parks the child mid-stage; SIGKILL there; resume."""
    with watchdog(WATCHDOG):
        golden = summarize(run_golden(case))

        child = spawn_child(tmp_path, hang_after=120)
        try:
            ckpt = tmp_path / "run.ckpt"
            wait_for_checkpoint(child, ckpt)
            wait_for_stall(child, ckpt)
        finally:
            sigkill(child)

        result = resume(case, tmp_path)
    assert summarize(result) == golden
    # The resume really continued a partial run rather than starting over.
    assert profiling.counter("checkpoint.resumes") == 1


def test_sigkill_at_first_checkpoint_resumes_bitwise(watchdog, case, tmp_path):
    """Kill as early as possible: resume must rebuild everything missing."""
    with watchdog(WATCHDOG):
        golden = summarize(run_golden(case))

        child = spawn_child(tmp_path)
        try:
            wait_for_checkpoint(child, tmp_path / "run.ckpt")
        finally:
            sigkill(child)

        result = resume(case, tmp_path)
    assert summarize(result) == golden
