"""Shared machinery for the chaos suite: isolation and a hang watchdog.

Every test runs with a clean injection state, clean solver caches, and no
warm worker pools, so a fault armed by one test can never leak into the
next.  The :func:`deadline` watchdog converts a hang -- the one failure
mode the suite exists to rule out -- into an ordinary test failure instead
of a stuck CI job.
"""

import _thread
import threading
from contextlib import contextmanager

import pytest

from repro import profiling
from repro.faults import clear_active_plan
from repro.flow.network import clear_unit_cache
from repro.optimize.parallel import shutdown_pools


@pytest.fixture(autouse=True)
def _isolate():
    clear_active_plan()
    profiling.reset()
    clear_unit_cache()
    yield
    clear_active_plan()
    shutdown_pools()
    clear_unit_cache()
    profiling.reset()


@contextmanager
def deadline(seconds):
    """Fail (never hang) when the body runs longer than ``seconds``.

    A daemon timer interrupts the main thread, which surfaces here as
    ``KeyboardInterrupt`` and is converted to ``pytest.fail``.
    """
    timer = threading.Timer(seconds, _thread.interrupt_main)
    timer.daemon = True
    timer.start()
    try:
        yield
    except KeyboardInterrupt:
        pytest.fail(
            f"operation hung: exceeded the {seconds:g}s chaos watchdog"
        )
    finally:
        timer.cancel()


@pytest.fixture
def watchdog():
    """The :func:`deadline` context manager, as a fixture."""
    return deadline
