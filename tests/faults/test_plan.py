"""FaultPlan semantics: determinism, scheduling knobs, pickling, validation."""

import pickle

import numpy as np
import pytest

from repro.errors import FaultConfigError, InjectedFaultError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    KNOWN_KINDS,
    KNOWN_SITES,
    SITE_COOLING_PROBLEM1,
    SITE_FLOW_MATRIX,
    SITE_PARALLEL_WORKER,
    SITE_THERMAL_RC2,
    active_plan,
    clear_active_plan,
    corrupt,
    inject,
    set_active_plan,
)

ARRAY = np.arange(6.0)


def nan_pattern(plan, hits):
    """Which of ``hits`` consecutive site hits the plan corrupted."""
    return [
        bool(np.isnan(plan.transform(SITE_THERMAL_RC2, ARRAY)).any())
        for _ in range(hits)
    ]


class TestDeterminism:
    def test_same_seed_replays_identically(self):
        spec = FaultSpec(site=SITE_THERMAL_RC2, kind="nan", rate=0.5)
        first = nan_pattern(FaultPlan([spec], seed=11), 50)
        second = nan_pattern(FaultPlan([spec], seed=11), 50)
        assert first == second
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        spec = FaultSpec(site=SITE_THERMAL_RC2, kind="nan", rate=0.5)
        assert nan_pattern(FaultPlan([spec], seed=11), 50) != nan_pattern(
            FaultPlan([spec], seed=12), 50
        )

    def test_rate_statistics(self):
        spec = FaultSpec(site=SITE_THERMAL_RC2, kind="nan", rate=0.3)
        plan = FaultPlan([spec], seed=5)
        fired = sum(nan_pattern(plan, 1000))
        assert plan.fired() == fired
        assert 230 <= fired <= 370

    def test_rate_one_always_fires(self):
        spec = FaultSpec(site=SITE_THERMAL_RC2, kind="nan")
        assert all(nan_pattern(FaultPlan([spec], seed=0), 20))


class TestScheduling:
    def test_max_fires_caps_total(self):
        plan = FaultPlan(
            [FaultSpec(site=SITE_THERMAL_RC2, kind="nan", max_fires=3)]
        )
        pattern = nan_pattern(plan, 10)
        assert pattern == [True] * 3 + [False] * 7
        assert plan.fired() == 3
        assert plan.hits() == 10

    def test_after_skips_initial_hits(self):
        plan = FaultPlan(
            [FaultSpec(site=SITE_THERMAL_RC2, kind="nan", after=4)]
        )
        assert nan_pattern(plan, 6) == [False] * 4 + [True] * 2

    def test_untouched_hits_return_value_unchanged(self):
        plan = FaultPlan(
            [FaultSpec(site=SITE_THERMAL_RC2, kind="nan", after=1)]
        )
        out = plan.transform(SITE_THERMAL_RC2, ARRAY)
        assert out is ARRAY

    def test_other_sites_not_counted(self):
        plan = FaultPlan([FaultSpec(site=SITE_THERMAL_RC2, kind="nan")])
        plan.transform(SITE_FLOW_MATRIX, ARRAY)
        assert plan.hits() == 0

    def test_raise_infeasible_is_typed(self):
        plan = FaultPlan(
            [FaultSpec(site=SITE_COOLING_PROBLEM1, kind="raise-infeasible")]
        )
        with pytest.raises(InjectedFaultError, match="cooling"):
            plan.fire(SITE_COOLING_PROBLEM1)


class TestPickling:
    def test_roundtrip_rearms_counters(self):
        spec = FaultSpec(site=SITE_THERMAL_RC2, kind="nan", rate=0.5)
        plan = FaultPlan([spec], seed=21)
        before = nan_pattern(plan, 30)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.seed == plan.seed
        assert clone.fired() == 0
        # A respawned worker replays the same schedule from the top.
        assert nan_pattern(clone, 30) == before


class TestValidation:
    @pytest.mark.parametrize(
        "spec,match",
        [
            (FaultSpec(site="nope", kind="nan"), "unknown site"),
            (FaultSpec(site=SITE_THERMAL_RC2, kind="nope"), "unknown kind"),
            (
                FaultSpec(site=SITE_THERMAL_RC2, kind="worker-death"),
                "cannot attach",
            ),
            (
                FaultSpec(site=SITE_COOLING_PROBLEM1, kind="singular-system"),
                "cannot attach",
            ),
            (FaultSpec(site=SITE_THERMAL_RC2, kind="nan", rate=1.5), "rate"),
            (
                FaultSpec(site=SITE_THERMAL_RC2, kind="nan", max_fires=0),
                "max_fires",
            ),
            (FaultSpec(site=SITE_THERMAL_RC2, kind="nan", after=-1), "after"),
            (
                FaultSpec(site=SITE_THERMAL_RC2, kind="slow", delay=-0.1),
                "delay",
            ),
        ],
    )
    def test_bad_spec_rejected(self, spec, match):
        with pytest.raises(FaultConfigError, match=match):
            FaultPlan([spec])

    def test_empty_plan_rejected(self):
        with pytest.raises(FaultConfigError, match="no specs"):
            FaultPlan([])

    def test_every_kind_names_allowed_sites(self):
        for kind, sites in KNOWN_KINDS.items():
            assert sites, kind
            assert sites <= frozenset(KNOWN_SITES)


class TestInjectorScoping:
    def test_hooks_are_noops_without_plan(self):
        assert active_plan() is None
        assert corrupt(SITE_THERMAL_RC2, ARRAY) is ARRAY
        assert inject(SITE_PARALLEL_WORKER) is None

    def test_context_manager_installs_and_restores(self):
        plan = FaultPlan([FaultSpec(site=SITE_THERMAL_RC2, kind="nan")])
        with FaultInjector(plan) as active:
            assert active is plan
            assert active_plan() is plan
            assert np.isnan(corrupt(SITE_THERMAL_RC2, ARRAY)).any()
        assert active_plan() is None

    def test_nesting_restores_outer_plan(self):
        outer = FaultPlan([FaultSpec(site=SITE_THERMAL_RC2, kind="nan")])
        inner = FaultPlan([FaultSpec(site=SITE_THERMAL_RC2, kind="inf")])
        with FaultInjector(outer):
            with FaultInjector(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_restored_on_exception(self):
        plan = FaultPlan([FaultSpec(site=SITE_THERMAL_RC2, kind="nan")])
        with pytest.raises(RuntimeError, match="boom"):
            with FaultInjector(plan):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_set_and_clear_return_previous(self):
        plan = FaultPlan([FaultSpec(site=SITE_THERMAL_RC2, kind="nan")])
        assert set_active_plan(plan) is None
        assert set_active_plan(None) is plan
        set_active_plan(plan)
        assert clear_active_plan() is plan
        assert clear_active_plan() is None
