"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_straight_2rm(self, capsys):
        code = main(
            ["simulate", "--case", "1", "--grid", "21", "--pressure", "1e4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2RM" in out and "T_max" in out

    def test_4rm_with_map(self, capsys):
        code = main(
            [
                "simulate", "--case", "2", "--grid", "21",
                "--model", "4rm", "--map",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4RM" in out and "K]" in out

    def test_tree_network(self, capsys):
        code = main(
            ["simulate", "--case", "1", "--grid", "21", "--network", "tree"]
        )
        assert code == 0

    def test_bad_case_reports_error(self, capsys):
        code = main(["simulate", "--case", "9", "--grid", "21"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err


class TestOptimizeEvaluateRoundTrip:
    def test_optimize_then_evaluate(self, tmp_path, capsys):
        out_file = tmp_path / "design.txt"
        code = main(
            [
                "optimize", "--case", "1", "--grid", "21", "--problem", "1",
                "--quick", "--directions", "0", "--out", str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "W_pump" in out

        code = main(
            [
                "evaluate", "--case", "1", "--grid", "21",
                "--network-file", str(out_file), "--model", "2rm",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "feasible" in out or "INFEASIBLE" in out


class TestCompareRender:
    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--case", "1", "--grid", "21",
                "--tiles", "2", "4", "--pressures", "1e4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "speed-up" in out

    def test_render(self, tmp_path, capsys):
        from repro.iccad2015 import write_network
        from repro.networks import straight_network

        path = tmp_path / "net.txt"
        write_network(straight_network(21, 21), path)
        code = main(["render", "--network-file", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "=" in out

    def test_no_command_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "usage" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_trace_and_run_log_artifacts(self, tmp_path, capsys):
        import json

        from repro.telemetry.report import render_report

        trace = tmp_path / "trace.json"
        run_log = tmp_path / "run.jsonl"
        code = main(
            [
                "optimize", "--case", "1", "--grid", "21", "--problem", "1",
                "--quick", "--directions", "0",
                "--trace-out", str(trace),
                "--run-log", str(run_log),
                "--metrics-interval", "0",
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "optimize.round" in names
        assert "process_name" in names
        types = {
            json.loads(line)["type"]
            for line in run_log.read_text().splitlines()
        }
        assert {"run.start", "round.end", "run.metrics", "run.end"} <= types
        assert "best-score trajectory" in render_report(run_log)

    def test_metrics_interval_requires_run_log(self, capsys):
        code = main(
            [
                "optimize", "--case", "1", "--grid", "21", "--problem", "1",
                "--quick", "--directions", "0", "--metrics-interval", "5",
            ]
        )
        assert code == 1
        assert "--metrics-interval needs --run-log" in capsys.readouterr().err


class TestOptimizeOptions:
    def test_power_aware_init(self, capsys):
        code = main(
            [
                "optimize", "--case", "1", "--grid", "21", "--problem", "2",
                "--quick", "--directions", "0", "--init", "power_aware",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DeltaT" in out
