"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_straight_2rm(self, capsys):
        code = main(
            ["simulate", "--case", "1", "--grid", "21", "--pressure", "1e4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2RM" in out and "T_max" in out

    def test_4rm_with_map(self, capsys):
        code = main(
            [
                "simulate", "--case", "2", "--grid", "21",
                "--model", "4rm", "--map",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4RM" in out and "K]" in out

    def test_tree_network(self, capsys):
        code = main(
            ["simulate", "--case", "1", "--grid", "21", "--network", "tree"]
        )
        assert code == 0

    def test_bad_case_reports_error(self, capsys):
        code = main(["simulate", "--case", "9", "--grid", "21"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err


class TestOptimizeEvaluateRoundTrip:
    def test_optimize_then_evaluate(self, tmp_path, capsys):
        out_file = tmp_path / "design.txt"
        code = main(
            [
                "optimize", "--case", "1", "--grid", "21", "--problem", "1",
                "--quick", "--directions", "0", "--out", str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "W_pump" in out

        code = main(
            [
                "evaluate", "--case", "1", "--grid", "21",
                "--network-file", str(out_file), "--model", "2rm",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "feasible" in out or "INFEASIBLE" in out


class TestCompareRender:
    def test_compare(self, capsys):
        code = main(
            [
                "compare", "--case", "1", "--grid", "21",
                "--tiles", "2", "4", "--pressures", "1e4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "speed-up" in out

    def test_render(self, tmp_path, capsys):
        from repro.iccad2015 import write_network
        from repro.networks import straight_network

        path = tmp_path / "net.txt"
        write_network(straight_network(21, 21), path)
        code = main(["render", "--network-file", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "=" in out

    def test_no_command_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "usage" in capsys.readouterr().out


class TestOptimizeOptions:
    def test_power_aware_init(self, capsys):
        code = main(
            [
                "optimize", "--case", "1", "--grid", "21", "--problem", "2",
                "--quick", "--directions", "0", "--init", "power_aware",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DeltaT" in out
