"""Determinism contract of the procedural case generator (ISSUE satellite 4).

The generator's whole value is that a seed is a *name*: the same integer
must reproduce the same case bit for bit on every platform and session, and
distinct seeds must name distinct cases.  The differential suites, the
portfolio bench, and the chaos CI leg all rely on this.
"""

import numpy as np
import pytest

from repro.cases import (
    GENERATED_CASE_NUMBER_BASE,
    case_fingerprint,
    generate_case,
    generate_case_spec,
    generate_grid,
)
from repro.cases.generator import GRID_SIZES
from repro.errors import BenchmarkError
from repro.geometry.grid import PortKind


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 17, 2**31])
    def test_same_seed_is_bitwise_identical(self, seed):
        a, b = generate_case(seed), generate_case(seed)
        assert case_fingerprint(a) == case_fingerprint(b)
        for ma, mb in zip(a.power_maps, b.power_maps):
            assert ma.tobytes() == mb.tobytes()

    def test_distinct_seeds_distinct_fingerprints(self):
        prints = {case_fingerprint(generate_case(seed)) for seed in range(40)}
        assert len(prints) == 40

    def test_spec_is_deterministic(self):
        assert generate_case_spec(5) == generate_case_spec(5)

    def test_fingerprint_sees_power_map_bits(self):
        case = generate_case(3)
        before = case_fingerprint(case)
        case.power_maps[0][0, 0] = np.nextafter(
            case.power_maps[0][0, 0], np.inf
        )  # one-ulp wiggle
        assert case_fingerprint(case) != before


class TestCaseShape:
    def test_numbering_and_grid_size_pool(self):
        for seed in range(10):
            case = generate_case(seed)
            assert case.number == GENERATED_CASE_NUMBER_BASE + seed
            assert case.nrows == case.ncols
            assert case.nrows in GRID_SIZES
            assert case.matched_ports

    def test_grid_size_override(self):
        case = generate_case(2, grid_size=13)
        assert (case.nrows, case.ncols) == (13, 13)

    def test_negative_seed_rejected(self):
        with pytest.raises(BenchmarkError):
            generate_case(-1)

    def test_power_maps_normalized(self):
        case = generate_case(11)
        total = sum(float(m.sum()) for m in case.power_maps)
        assert total == pytest.approx(case.die_power, rel=1e-9)
        assert all((m >= 0.0).all() for m in case.power_maps)

    def test_tree_plan_builds(self):
        case = generate_case(7)
        grid = case.tree_plan().build()
        assert grid.nrows == case.nrows


class TestGeneratedGrids:
    @pytest.mark.parametrize("seed", [0, 5, 23, 101])
    def test_grid_deterministic_and_ported(self, seed):
        a, b = generate_grid(seed), generate_grid(seed)
        assert a.nrows == b.nrows and a.ncols == b.ncols
        inlets = [p for p in a.ports if p.kind is PortKind.INLET]
        outlets = [p for p in a.ports if p.kind is PortKind.OUTLET]
        assert inlets and outlets

    def test_grid_size_override(self):
        grid = generate_grid(4, nrows=9, ncols=13)
        assert (grid.nrows, grid.ncols) == (9, 13)
