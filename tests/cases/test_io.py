"""On-disk case format: lossless round trip and loud failure modes."""

import json

import pytest

from repro.cases import case_fingerprint, generate_case, load_case_file, save_case
from repro.cases.io import CASE_FILE_FORMAT
from repro.errors import BenchmarkError


class TestRoundTrip:
    def test_round_trip_is_bitwise(self, tmp_path):
        case = generate_case(9)
        path = save_case(case, tmp_path / "case.json")
        loaded = load_case_file(path)
        assert case_fingerprint(loaded) == case_fingerprint(case)
        for a, b in zip(case.power_maps, loaded.power_maps):
            assert a.tobytes() == b.tobytes()

    def test_resave_is_byte_stable(self, tmp_path):
        case = generate_case(9)
        p1 = save_case(case, tmp_path / "a.json")
        p2 = save_case(load_case_file(p1), tmp_path / "b.json")
        assert p1.read_bytes() == p2.read_bytes()

    def test_restricted_rects_survive(self, tmp_path):
        for seed in range(8):
            case = generate_case(seed)
            if case.restricted:
                break
        else:
            pytest.skip("no restricted case in the first 8 seeds")
        loaded = load_case_file(save_case(case, tmp_path / "r.json"))
        assert loaded.restricted == case.restricted


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchmarkError, match="not found"):
            load_case_file(tmp_path / "nope.json")

    def test_torn_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"format": "repro.cases/1", "number": 1')
        with pytest.raises(BenchmarkError, match="not a valid case file"):
            load_case_file(path)

    def test_wrong_format_marker(self, tmp_path):
        path = save_case(generate_case(0), tmp_path / "c.json")
        payload = json.loads(path.read_text())
        payload["format"] = "repro.cases/999"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchmarkError, match="unknown case-file format"):
            load_case_file(path)

    def test_map_count_mismatch(self, tmp_path):
        path = save_case(generate_case(0), tmp_path / "c.json")
        payload = json.loads(path.read_text())
        payload["power_maps"] = payload["power_maps"][:1]
        payload["n_dies"] = 3
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchmarkError, match="power maps"):
            load_case_file(path)

    def test_format_constant_pinned(self):
        # The loader's compatibility story keys on this string.
        assert CASE_FILE_FORMAT == "repro.cases/1"
