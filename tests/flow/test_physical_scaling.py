"""Physical scaling laws of the flow network.

These pin the model to textbook hydraulics: resistance scales linearly with
viscosity and with channel length, inversely with ``D_h^2 A_c``, and pumping
power obeys Eq. 10 exactly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.flow import FlowField
from repro.flow.conductance import channel_cross_section, hydraulic_diameter
from repro.geometry import ChannelGrid, PortKind, Side
from repro.materials import WATER


def _channel(ncols):
    grid = ChannelGrid(3, ncols, tsv_mask=None)
    grid.carve_horizontal(1, 0, ncols - 1)
    grid.add_port(PortKind.INLET, Side.WEST, 1)
    grid.add_port(PortKind.OUTLET, Side.EAST, 1)
    return grid


class TestViscosityScaling:
    def test_resistance_linear_in_viscosity(self):
        grid = _channel(15)
        r_base = FlowField(grid, 2e-4, WATER).r_sys
        thick = replace(WATER, dynamic_viscosity=WATER.dynamic_viscosity * 3)
        r_thick = FlowField(grid, 2e-4, thick).r_sys
        assert r_thick == pytest.approx(3 * r_base, rel=1e-12)

    def test_flow_inverse_in_viscosity(self):
        grid = _channel(15)
        q_base = FlowField(grid, 2e-4, WATER).q_sys(1e4)
        thin = replace(WATER, dynamic_viscosity=WATER.dynamic_viscosity / 2)
        q_thin = FlowField(grid, 2e-4, thin).q_sys(1e4)
        assert q_thin == pytest.approx(2 * q_base, rel=1e-12)


class TestGeometryScaling:
    def test_length_scaling(self):
        """Doubling channel length roughly doubles resistance (edge terms
        keep it slightly sublinear)."""
        short = FlowField(_channel(11), 2e-4, WATER).r_sys
        long = FlowField(_channel(21), 2e-4, WATER).r_sys
        assert 1.5 * short < long < 2.2 * short

    def test_height_scaling_follows_conductance_formula(self):
        grid = _channel(15)
        w = grid.cell_width
        r1 = FlowField(grid, 2e-4, WATER).r_sys
        r2 = FlowField(grid, 4e-4, WATER).r_sys
        expected_ratio = (
            hydraulic_diameter(w, 2e-4) ** 2 * channel_cross_section(w, 2e-4)
        ) / (
            hydraulic_diameter(w, 4e-4) ** 2 * channel_cross_section(w, 4e-4)
        )
        assert r2 / r1 == pytest.approx(expected_ratio, rel=1e-12)


class TestSuperposition:
    def test_two_inlets_split_symmetrically(self):
        """A symmetric H network splits the inflow equally."""
        grid = ChannelGrid(5, 11, tsv_mask=None)
        grid.carve_horizontal(0, 0, 10)
        grid.carve_horizontal(4, 0, 10)
        grid.carve_vertical(10, 0, 4)
        grid.carve_horizontal(2, 0, 10)  # outlet arm in the middle
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.INLET, Side.WEST, 4)
        grid.add_port(PortKind.OUTLET, Side.WEST, 2)
        solution = FlowField(grid, 2e-4, WATER).at_pressure(1e4)
        inflows = solution.inlet_flows[solution.inlet_flows > 0]
        assert inflows.size == 2
        assert inflows[0] == pytest.approx(inflows[1], rel=1e-9)

    def test_pressure_symmetry(self):
        """The symmetric network's pressure field mirrors about the axis."""
        grid = ChannelGrid(5, 11, tsv_mask=None)
        grid.carve_horizontal(0, 0, 10)
        grid.carve_horizontal(4, 0, 10)
        grid.carve_vertical(10, 0, 4)
        grid.carve_horizontal(2, 0, 10)
        grid.add_port(PortKind.INLET, Side.WEST, 0)
        grid.add_port(PortKind.INLET, Side.WEST, 4)
        grid.add_port(PortKind.OUTLET, Side.WEST, 2)
        solution = FlowField(grid, 2e-4, WATER).at_pressure(1e4)
        index = grid.liquid_index_map()
        for col in range(11):
            top = solution.pressures[index[(0, col)]]
            bottom = solution.pressures[index[(4, col)]]
            assert top == pytest.approx(bottom, rel=1e-9)
