"""Unit tests for hydraulic conductance formulas (Eq. 1)."""

import pytest

from repro.constants import POISEUILLE_CONSTANT
from repro.errors import FlowError
from repro.flow import (
    cell_conductance,
    channel_cross_section,
    edge_conductance,
    hydraulic_diameter,
)
from repro.materials import WATER


class TestHydraulicDiameter:
    def test_square_duct(self):
        # For a square duct D_h equals the side length.
        assert hydraulic_diameter(1e-4, 1e-4) == pytest.approx(1e-4)

    def test_rectangular_duct(self):
        # 2wh/(w+h) for 100 x 200 um: 2*2e-8/3e-4.
        assert hydraulic_diameter(1e-4, 2e-4) == pytest.approx(4e-8 / 3e-4)

    def test_symmetric_in_arguments(self):
        assert hydraulic_diameter(1e-4, 4e-4) == pytest.approx(
            hydraulic_diameter(4e-4, 1e-4)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(FlowError):
            hydraulic_diameter(0.0, 1e-4)


class TestCrossSection:
    def test_area(self):
        assert channel_cross_section(1e-4, 2e-4) == pytest.approx(2e-8)

    def test_rejects_nonpositive(self):
        with pytest.raises(FlowError):
            channel_cross_section(1e-4, -1.0)


class TestCellConductance:
    def test_formula(self):
        w, h, l = 1e-4, 2e-4, 1e-4
        d_h = hydraulic_diameter(w, h)
        expected = d_h**2 * (w * h) / (
            POISEUILLE_CONSTANT * l * WATER.dynamic_viscosity
        )
        assert cell_conductance(w, h, l, WATER) == pytest.approx(expected)

    def test_halving_length_doubles_conductance(self):
        g1 = cell_conductance(1e-4, 2e-4, 1e-4, WATER)
        g2 = cell_conductance(1e-4, 2e-4, 5e-5, WATER)
        assert g2 == pytest.approx(2 * g1)

    def test_taller_channel_conducts_more(self):
        g_short = cell_conductance(1e-4, 2e-4, 1e-4, WATER)
        g_tall = cell_conductance(1e-4, 4e-4, 1e-4, WATER)
        assert g_tall > g_short

    def test_rejects_nonpositive_length(self):
        with pytest.raises(FlowError):
            cell_conductance(1e-4, 2e-4, 0.0, WATER)


class TestEdgeConductance:
    def test_smaller_than_cell_conductance(self):
        """The paper states the inlet/outlet conductance is smaller."""
        g_cell = cell_conductance(1e-4, 2e-4, 1e-4, WATER)
        g_edge = edge_conductance(1e-4, 2e-4, 1e-4, WATER)
        assert g_edge < g_cell

    def test_factor_scaling(self):
        g_cell = cell_conductance(1e-4, 2e-4, 1e-4, WATER)
        g_edge = edge_conductance(1e-4, 2e-4, 1e-4, WATER, factor=0.25)
        assert g_edge == pytest.approx(0.25 * g_cell)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(FlowError):
            edge_conductance(1e-4, 2e-4, 1e-4, WATER, factor=0.0)
