"""Unit tests for the pressure/flow solver (Eqs. 1-3)."""

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flow import FlowField, solve_flow
from repro.flow.conductance import cell_conductance, edge_conductance
from repro.geometry import ChannelGrid, PortKind, Side
from repro.materials import WATER
from repro.networks import ladder_network, straight_network

H_C = 200e-6


def _single_channel(n=9):
    grid = ChannelGrid(3, n, tsv_mask=None)
    grid.carve_horizontal(1, 0, n - 1)
    grid.add_port(PortKind.INLET, Side.WEST, 1)
    grid.add_port(PortKind.OUTLET, Side.EAST, 1)
    return grid


class TestSingleChannel:
    def test_matches_series_resistance(self):
        """A straight channel is a series chain: Q = P / R_total."""
        n = 9
        grid = _single_channel(n)
        field = FlowField(grid, H_C, WATER)
        w = grid.cell_width
        g_cell = cell_conductance(w, H_C, w, WATER)
        g_edge = edge_conductance(w, H_C, w, WATER)
        # n-1 internal links plus two edge links.
        r_total = (n - 1) / g_cell + 2.0 / g_edge
        assert field.r_sys == pytest.approx(r_total, rel=1e-9)

    def test_pressure_decreases_downstream(self):
        grid = _single_channel()
        sol = FlowField(grid, H_C, WATER).at_pressure(1e4)
        pressures = sol.pressures
        assert np.all(np.diff(pressures) < 0)

    def test_uniform_flow_along_channel(self):
        grid = _single_channel()
        sol = FlowField(grid, H_C, WATER).at_pressure(1e4)
        assert np.allclose(sol.edge_flows, sol.edge_flows[0])
        assert sol.q_sys == pytest.approx(sol.edge_flows[0])

    def test_volume_conservation(self):
        grid = _single_channel()
        sol = FlowField(grid, H_C, WATER).at_pressure(1e4)
        residual = sol.conservation_residual()
        assert np.abs(residual).max() < 1e-12 * sol.q_sys + 1e-30


class TestLinearity:
    def test_scaling_with_pressure(self):
        grid = _single_channel()
        field = FlowField(grid, H_C, WATER)
        s1 = field.at_pressure(1e3)
        s2 = field.at_pressure(2e3)
        assert np.allclose(2 * s1.pressures, s2.pressures)
        assert np.allclose(2 * s1.edge_flows, s2.edge_flows)
        assert s2.q_sys == pytest.approx(2 * s1.q_sys)

    def test_w_pump_quadratic(self):
        grid = _single_channel()
        field = FlowField(grid, H_C, WATER)
        assert field.w_pump(2e3) == pytest.approx(4 * field.w_pump(1e3))

    def test_p_sys_for_power_inverts(self):
        grid = _single_channel()
        field = FlowField(grid, H_C, WATER)
        p = field.p_sys_for_power(field.w_pump(7.5e3))
        assert p == pytest.approx(7.5e3)

    def test_r_sys_independent_of_pressure(self):
        grid = _single_channel()
        field = FlowField(grid, H_C, WATER)
        assert field.at_pressure(1e3).r_sys == pytest.approx(
            field.at_pressure(8e4).r_sys
        )


class TestParallelChannels:
    def test_two_channels_halve_resistance(self):
        one = _single_channel()
        two = ChannelGrid(5, 9, tsv_mask=None)
        for row in (1, 3):
            two.carve_horizontal(row, 0, 8)
            two.add_port(PortKind.INLET, Side.WEST, row)
            two.add_port(PortKind.OUTLET, Side.EAST, row)
        r_one = FlowField(one, H_C, WATER).r_sys
        r_two = FlowField(two, H_C, WATER).r_sys
        assert r_two == pytest.approx(r_one / 2.0, rel=1e-9)

    def test_straight_network_flow_split_evenly(self):
        grid = straight_network(21, 21)
        sol = FlowField(grid, H_C, WATER).at_pressure(1e4)
        inflows = sol.inlet_flows[sol.inlet_flows > 0]
        assert inflows.size == len(grid.inlets())
        assert np.allclose(inflows, inflows[0])


class TestTopologyEffects:
    def test_ladder_has_lower_resistance_than_straight(self):
        """Manifolds add parallel paths, lowering fluid resistance."""
        straight = straight_network(21, 21)
        ladder = ladder_network(21, 21)
        r_straight = FlowField(straight, H_C, WATER).r_sys
        r_ladder = FlowField(ladder, H_C, WATER).r_sys
        assert r_ladder < r_straight

    def test_taller_channels_flow_more(self):
        grid = straight_network(21, 21)
        r_short = FlowField(grid, 200e-6, WATER).r_sys
        r_tall = FlowField(grid, 400e-6, WATER).r_sys
        assert r_tall < r_short

    def test_edge_factor_changes_resistance(self):
        grid = _single_channel()
        r_default = FlowField(grid, H_C, WATER, edge_factor=0.5).r_sys
        r_open = FlowField(grid, H_C, WATER, edge_factor=2.0).r_sys
        assert r_open < r_default


class TestErrors:
    def test_no_liquid(self):
        grid = ChannelGrid(3, 3, tsv_mask=None)
        with pytest.raises(FlowError, match="no liquid"):
            FlowField(grid, H_C, WATER)

    def test_no_inlet(self):
        grid = ChannelGrid(3, 3, tsv_mask=None)
        grid.carve_horizontal(1, 0, 2)
        grid.add_port(PortKind.OUTLET, Side.EAST, 1)
        with pytest.raises(FlowError, match="no inlet"):
            FlowField(grid, H_C, WATER)

    def test_no_outlet(self):
        grid = ChannelGrid(3, 3, tsv_mask=None)
        grid.carve_horizontal(1, 0, 2)
        grid.add_port(PortKind.INLET, Side.WEST, 1)
        with pytest.raises(FlowError, match="no outlet"):
            FlowField(grid, H_C, WATER)

    def test_negative_pressure_rejected(self):
        field = FlowField(_single_channel(), H_C, WATER)
        with pytest.raises(FlowError, match="non-negative"):
            field.at_pressure(-1.0)

    def test_nonpositive_height_rejected(self):
        with pytest.raises(FlowError, match="channel height"):
            FlowField(_single_channel(), 0.0, WATER)


class TestConvenienceWrapper:
    def test_solve_flow(self):
        sol = solve_flow(_single_channel(), H_C, WATER, 1e4)
        assert sol.p_sys == pytest.approx(1e4)
        assert sol.q_sys > 0
        assert sol.w_pump == pytest.approx(sol.p_sys * sol.q_sys)
        assert sol.r_sys == pytest.approx(sol.p_sys / sol.q_sys)

    def test_zero_flow_r_sys_raises(self):
        sol = solve_flow(_single_channel(), H_C, WATER, 0.0)
        with pytest.raises(FlowError, match="zero"):
            _ = sol.r_sys
