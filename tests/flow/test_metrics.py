"""Unit tests for hydraulic metric helpers (Eq. 10)."""

import pytest

from repro.errors import FlowError
from repro.flow.metrics import (
    pressure_for_power,
    pumping_power,
    system_flow_rate,
    system_resistance,
)


class TestMetrics:
    def test_flow_rate(self):
        assert system_flow_rate(10.0, 5.0) == pytest.approx(2.0)

    def test_resistance(self):
        assert system_resistance(10.0, 2.0) == pytest.approx(5.0)

    def test_pumping_power(self):
        assert pumping_power(10.0, 5.0) == pytest.approx(20.0)

    def test_pressure_for_power_round_trip(self):
        r_sys = 7.3
        w = pumping_power(123.0, r_sys)
        assert pressure_for_power(w, r_sys) == pytest.approx(123.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(FlowError):
            pumping_power(1.0, 0.0)
        with pytest.raises(FlowError):
            system_flow_rate(1.0, -1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(FlowError):
            pressure_for_power(-1.0, 1.0)

    def test_rejects_nonpositive_flow(self):
        with pytest.raises(FlowError):
            system_resistance(1.0, 0.0)
