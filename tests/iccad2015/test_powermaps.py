"""Unit tests for synthetic power maps."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.iccad2015 import Hotspot, hotspot_power_map
from repro.iccad2015.powermaps import (
    CASE_BACKGROUND,
    CASE_DIE_SPLIT,
    CASE_HOTSPOTS,
    case_power_maps,
)


class TestHotspot:
    def test_valid(self):
        spot = Hotspot(0.5, 0.5, 0.1, 1.0)
        assert spot.weight == 1.0

    def test_position_bounds(self):
        with pytest.raises(BenchmarkError):
            Hotspot(1.5, 0.5, 0.1, 1.0)

    def test_sigma_positive(self):
        with pytest.raises(BenchmarkError):
            Hotspot(0.5, 0.5, 0.0, 1.0)

    def test_weight_positive(self):
        with pytest.raises(BenchmarkError):
            Hotspot(0.5, 0.5, 0.1, -1.0)


class TestHotspotPowerMap:
    def test_total_power_exact(self):
        spots = [Hotspot(0.3, 0.3, 0.1, 1.0)]
        power = hotspot_power_map(21, 21, 10.0, spots)
        assert power.sum() == pytest.approx(10.0, rel=1e-12)

    def test_nonnegative(self):
        spots = [Hotspot(0.3, 0.3, 0.05, 1.0)]
        power = hotspot_power_map(21, 21, 10.0, spots)
        assert (power >= 0).all()

    def test_hotspot_location_is_peak(self):
        spots = [Hotspot(0.25, 0.75, 0.08, 1.0)]
        power = hotspot_power_map(40, 40, 10.0, spots)
        peak = np.unravel_index(np.argmax(power), power.shape)
        assert abs(peak[0] - 10) <= 1
        assert abs(peak[1] - 30) <= 1

    def test_all_background_is_uniform(self):
        power = hotspot_power_map(11, 11, 5.0, [], background_fraction=1.0)
        assert np.allclose(power, 5.0 / 121)

    def test_lower_background_more_contrast(self):
        spots = [Hotspot(0.5, 0.5, 0.05, 1.0)]
        flat = hotspot_power_map(21, 21, 10.0, spots, background_fraction=0.8)
        spiky = hotspot_power_map(21, 21, 10.0, spots, background_fraction=0.1)
        assert spiky.max() > flat.max()

    def test_zero_power(self):
        spots = [Hotspot(0.5, 0.5, 0.1, 1.0)]
        power = hotspot_power_map(11, 11, 0.0, spots)
        assert power.sum() == 0.0

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            hotspot_power_map(11, 11, -1.0, [Hotspot(0.5, 0.5, 0.1, 1.0)])
        with pytest.raises(BenchmarkError):
            hotspot_power_map(11, 11, 1.0, [], background_fraction=0.5)
        with pytest.raises(BenchmarkError):
            hotspot_power_map(
                11, 11, 1.0, [Hotspot(0.5, 0.5, 0.1, 1.0)], background_fraction=2.0
            )


class TestCaseMaps:
    def test_configs_complete(self):
        for case in (1, 2, 3, 4, 5):
            assert case in CASE_HOTSPOTS
            assert case in CASE_DIE_SPLIT
            assert case in CASE_BACKGROUND
            assert len(CASE_HOTSPOTS[case]) == len(CASE_DIE_SPLIT[case])
            assert sum(CASE_DIE_SPLIT[case]) == pytest.approx(1.0)

    def test_maps_sum_to_die_power(self):
        maps = case_power_maps(1, 21, 21, 42.038)
        assert sum(m.sum() for m in maps) == pytest.approx(42.038, rel=1e-9)

    def test_case4_has_three_dies(self):
        maps = case_power_maps(4, 21, 21, 43.438)
        assert len(maps) == 3

    def test_case5_is_high_and_highly_varied(self):
        """Case 5 is 'high and highly varied': at the published die powers
        its absolute power density and its absolute variation both dominate
        every other case."""
        map1 = case_power_maps(1, 31, 31, 42.038)[0]
        map5 = case_power_maps(5, 31, 31, 148.174)[0]
        assert map5.mean() > 3 * map1.mean()  # high
        assert map5.std() > map1.std()  # highly varied

    def test_deterministic(self):
        a = case_power_maps(2, 21, 21, 37.0)
        b = case_power_maps(2, 21, 21, 37.0)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_unknown_case(self):
        with pytest.raises(BenchmarkError, match="unknown case"):
            case_power_maps(9, 21, 21, 1.0)
