"""Unit tests for the benchmark case definitions (Table 2)."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.geometry import check_design_rules
from repro.iccad2015 import CASE_NUMBERS, load_case


class TestTable2Data:
    def test_case_roster(self):
        assert CASE_NUMBERS == (1, 2, 3, 4, 5)

    @pytest.mark.parametrize(
        "number,dies,h_c_um,power,dt,tmax",
        [
            (1, 2, 200, 42.038, 15.0, 358.15),
            (2, 2, 400, 37.038, 10.0, 358.15),
            (3, 2, 400, 43.038, 15.0, 358.15),
            (4, 3, 200, 43.438, 10.0, 358.15),
            (5, 2, 400, 148.174, 10.0, 338.15),
        ],
    )
    def test_row_values(self, number, dies, h_c_um, power, dt, tmax):
        case = load_case(number)  # full scale
        assert case.n_dies == dies
        assert case.channel_height == pytest.approx(h_c_um * 1e-6)
        assert case.die_power == pytest.approx(power)
        assert case.delta_t_star == dt
        assert case.t_max_star == tmax

    def test_full_scale_grid(self):
        case = load_case(1)
        assert (case.nrows, case.ncols) == (101, 101)

    def test_case3_restricted(self):
        case = load_case(3)
        assert len(case.restricted) == 1

    def test_case4_matched_ports(self):
        assert load_case(4).matched_ports
        assert not load_case(1).matched_ports

    def test_unknown_case(self):
        with pytest.raises(BenchmarkError, match="unknown case"):
            load_case(6)


class TestScaling:
    def test_scale_shrinks_grid(self):
        case = load_case(1, scale=0.5)
        assert case.nrows == 51

    def test_grid_size_override(self):
        case = load_case(1, grid_size=33)
        assert case.nrows == 33

    def test_even_size_bumped_odd(self):
        case = load_case(1, grid_size=20)
        assert case.nrows == 21

    def test_power_density_preserved(self):
        full = load_case(1)
        half = load_case(1, scale=0.5)
        density_full = full.die_power / full.nrows**2
        density_half = half.die_power / half.nrows**2
        assert density_half == pytest.approx(density_full, rel=1e-9)

    def test_unscaled_power_option(self):
        case = load_case(1, scale=0.5, scale_power=False)
        assert case.die_power == pytest.approx(42.038)

    def test_w_pump_star_uses_full_power(self):
        half = load_case(1, scale=0.5)
        assert half.w_pump_star() == pytest.approx(0.001 * 42.038)
        assert half.w_pump_star(of_full_power=False) == pytest.approx(
            0.001 * half.die_power
        )

    def test_too_small_rejected(self):
        with pytest.raises(BenchmarkError, match="too small"):
            load_case(1, grid_size=5)

    def test_bad_scale(self):
        with pytest.raises(BenchmarkError, match="scale"):
            load_case(1, scale=0.0)


class TestCaseBuilders:
    def test_power_maps_sum(self):
        case = load_case(2, grid_size=21)
        total = sum(m.sum() for m in case.power_maps)
        assert total == pytest.approx(case.die_power, rel=1e-9)

    def test_base_stack_layers(self):
        case = load_case(4, grid_size=21)
        stack = case.base_stack()
        assert len(stack.channel_layers()) == 3
        assert len(stack.source_layers()) == 3

    def test_stack_with_network_list(self):
        case = load_case(1, grid_size=21)
        grids = [case.baseline_network(), case.baseline_network(direction=1)]
        stack = case.stack_with_network(grids)
        assert len(stack.channel_layers()) == 2

    def test_stack_with_wrong_count(self):
        case = load_case(1, grid_size=21)
        with pytest.raises(BenchmarkError, match="channel layers"):
            case.stack_with_network([case.baseline_network()])

    def test_baseline_respects_restriction(self):
        case = load_case(3, grid_size=31)
        grid = case.baseline_network()
        assert check_design_rules(grid).ok
        forbidden = np.zeros((31, 31), dtype=bool)
        for rect in case.restricted:
            forbidden |= rect.mask(31, 31)
        assert not (grid.liquid & forbidden).any()

    def test_tree_plan_covers_case(self):
        case = load_case(1, grid_size=21)
        plan = case.tree_plan()
        grid = plan.build()
        assert check_design_rules(grid).ok

    def test_tree_plan_with_restriction(self):
        case = load_case(3, grid_size=31)
        grid = case.tree_plan().build()
        assert check_design_rules(grid).ok

    def test_repr_mentions_case(self):
        assert "Case(2" in repr(load_case(2, grid_size=21))
