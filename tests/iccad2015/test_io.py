"""Round-trip tests for the text file formats."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.iccad2015 import (
    load_case,
    read_floorplan,
    read_network,
    read_stack_description,
    write_floorplan,
    write_network,
    write_stack_description,
)
from repro.networks import plan_tree_bands, serpentine_network, straight_network


class TestStackDescription:
    def test_round_trip(self, tmp_path):
        case = load_case(3, grid_size=31)
        path = tmp_path / "stack.txt"
        write_stack_description(case, path)
        fields = read_stack_description(path)
        assert fields["case"] == 3
        assert fields["dies"] == 2
        assert fields["nrows"] == 31
        assert fields["channel_height"] == pytest.approx(case.channel_height)
        assert fields["die_power"] == pytest.approx(case.die_power)
        assert len(fields["restricted"]) == 1
        rect = fields["restricted"][0]
        assert rect == case.restricted[0]

    def test_matched_ports_flag(self, tmp_path):
        case = load_case(4, grid_size=21)
        path = tmp_path / "stack.txt"
        write_stack_description(case, path)
        assert read_stack_description(path)["matched_ports"] is True

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("case 1\ndies 2\n")
        with pytest.raises(BenchmarkError, match="missing fields"):
            read_stack_description(path)

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("wibble 3\n")
        with pytest.raises(BenchmarkError, match="unknown"):
            read_stack_description(path)


class TestFloorplan:
    def test_round_trip(self, tmp_path):
        case = load_case(1, grid_size=21)
        path = tmp_path / "floorplan.txt"
        write_floorplan(case.power_maps, path)
        maps = read_floorplan(path)
        assert len(maps) == len(case.power_maps)
        for a, b in zip(maps, case.power_maps):
            assert np.allclose(a, b)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(BenchmarkError, match="no power maps"):
            read_floorplan(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "trunc.txt"
        path.write_text("die 0 rows 3 cols 3\n0 0 0\n")
        with pytest.raises(BenchmarkError, match="expected 3 rows"):
            read_floorplan(path)


class TestNetworkFile:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: straight_network(21, 21),
            lambda: serpentine_network(21, 21),
            lambda: plan_tree_bands(21, 21).build(),
        ],
    )
    def test_round_trip(self, tmp_path, builder):
        grid = builder()
        path = tmp_path / "net.txt"
        write_network(grid, path)
        loaded = read_network(path)
        assert np.array_equal(loaded.liquid, grid.liquid)
        assert np.array_equal(loaded.tsv_mask, grid.tsv_mask)
        assert set(loaded.ports) == set(grid.ports)
        assert loaded.cell_width == pytest.approx(grid.cell_width)

    def test_bad_char_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("grid 1 3\ncell_width 1e-4\n.Z.\n")
        with pytest.raises(BenchmarkError, match="unknown char"):
            read_network(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("...\n")
        with pytest.raises(BenchmarkError, match="grid header"):
            read_network(path)

    def test_missing_cell_width_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("grid 1 3\nOOO\n")
        with pytest.raises(BenchmarkError, match="cell_width"):
            read_network(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("grid 2 3\ncell_width 1e-4\nOOO\nOO\n")
        with pytest.raises(BenchmarkError, match="chars"):
            read_network(path)


class TestCaseBundle:
    def test_round_trip(self, tmp_path):
        from repro.iccad2015 import load_case_bundle, save_case_bundle

        case = load_case(3, grid_size=21)
        save_case_bundle(case, tmp_path / "case3")
        loaded = load_case_bundle(tmp_path / "case3")
        assert loaded.number == case.number
        assert loaded.n_dies == case.n_dies
        assert loaded.die_power == pytest.approx(case.die_power, rel=1e-7)
        assert loaded.delta_t_star == case.delta_t_star
        assert loaded.restricted == case.restricted
        for a, b in zip(loaded.power_maps, case.power_maps):
            assert np.allclose(a, b, rtol=1e-7)

    def test_bundle_preserves_full_power(self, tmp_path):
        from repro.iccad2015 import load_case_bundle, save_case_bundle

        case = load_case(1, grid_size=21)
        save_case_bundle(case, tmp_path / "b")
        loaded = load_case_bundle(tmp_path / "b")
        # Stack file records the (scaled) die power as full_die_power so
        # w_pump_star() stays consistent for the bundle.
        assert loaded.w_pump_star(of_full_power=False) == pytest.approx(
            0.001 * case.die_power, rel=1e-7
        )

    def test_missing_files_rejected(self, tmp_path):
        from repro.iccad2015 import load_case_bundle

        (tmp_path / "incomplete").mkdir()
        with pytest.raises(BenchmarkError, match="needs stack.txt"):
            load_case_bundle(tmp_path / "incomplete")

    def test_die_count_mismatch_rejected(self, tmp_path):
        from repro.iccad2015 import (
            load_case_bundle,
            save_case_bundle,
            write_floorplan,
        )

        case = load_case(1, grid_size=21)
        save_case_bundle(case, tmp_path / "bad")
        write_floorplan(case.power_maps[:1], tmp_path / "bad" / "floorplan.txt")
        with pytest.raises(BenchmarkError, match="declares 2 dies"):
            load_case_bundle(tmp_path / "bad")

    def test_bundle_is_usable(self, tmp_path):
        from repro.cooling import CoolingSystem
        from repro.iccad2015 import load_case_bundle, save_case_bundle

        case = load_case(2, grid_size=21)
        save_case_bundle(case, tmp_path / "c2")
        loaded = load_case_bundle(tmp_path / "c2")
        system = CoolingSystem.for_network(
            loaded.base_stack(), loaded.baseline_network(), loaded.coolant
        )
        assert system.evaluate(1e4).t_max > 300.0
