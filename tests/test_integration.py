"""End-to-end integration tests reproducing the paper's claims in miniature.

Each test runs a reduced version of one headline experiment and checks the
*shape* of the paper's result: tree networks beat straight channels on
pumping power (Table 3) and on thermal gradient (Table 4), 2RM tracks 4RM
while being much smaller (Fig. 9), and the Problem 1 / Problem 2 temperature
maps trade heat for flatness (Fig. 10).
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    compare_models,
    map_statistics,
    pressure_sweep,
    source_layer_map,
)
from repro.analysis.model_compare import aggregate_by
from repro.cooling import CoolingSystem, evaluate_problem1, evaluate_problem2
from repro.geometry import check_design_rules
from repro.iccad2015 import load_case
from repro.optimize import (
    best_straight_baseline,
    optimize_problem1,
    optimize_problem2,
)
from repro.optimize.runner import PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT


@pytest.fixture(scope="module")
def case():
    return load_case(1, grid_size=31)


@pytest.fixture(scope="module")
def p1_result(case):
    return optimize_problem1(case, quick=True, directions=(0, 1), seed=7)


@pytest.fixture(scope="module")
def p2_result(case):
    return optimize_problem2(case, quick=True, directions=(0, 1), seed=7)


@pytest.fixture(scope="module")
def p1_baseline(case):
    return best_straight_baseline(case, PROBLEM_PUMPING_POWER, model="4rm")


@pytest.fixture(scope="module")
def p2_baseline(case):
    return best_straight_baseline(case, PROBLEM_THERMAL_GRADIENT, model="4rm")


class TestProblem1Shape:
    """Table 3's shape: the optimized tree meets the same constraints."""

    def test_both_feasible(self, p1_result, p1_baseline):
        assert p1_result.evaluation.feasible
        assert p1_baseline.feasible

    def test_constraints_met(self, case, p1_result):
        assert p1_result.evaluation.delta_t <= case.delta_t_star * 1.02
        assert p1_result.evaluation.t_max <= case.t_max_star * 1.02

    def test_tree_competitive_with_baseline(self, p1_result, p1_baseline):
        """With the quick schedule the tree should at least approach the
        baseline; full schedules (the bench harness) beat it."""
        assert (
            p1_result.evaluation.w_pump
            <= 3.0 * p1_baseline.evaluation.w_pump
        )

    def test_optimized_network_legal(self, p1_result):
        assert check_design_rules(p1_result.network).ok


class TestProblem2Shape:
    """Table 4's shape: the tree cuts the gradient under the power cap."""

    def test_feasible(self, p2_result, p2_baseline):
        assert p2_result.evaluation.feasible
        assert p2_baseline.feasible

    def test_power_cap_met(self, case, p2_result):
        assert p2_result.evaluation.w_pump <= case.w_pump_star() * 1.01

    def test_gradient_improves_or_matches(self, p2_result, p2_baseline):
        assert (
            p2_result.evaluation.delta_t
            <= 1.5 * p2_baseline.evaluation.delta_t
        )


class TestFig9Shape:
    def test_error_and_speedup_trends(self, case):
        stack = case.base_stack()
        records = compare_models(
            stack,
            case.coolant,
            tile_sizes=[2, 4, 8],
            pressures=[1e4],
            style="straight",
        )
        by_tile = aggregate_by(records, "tile_size")
        errors = [by_tile[t]["error_rise"] for t in (2, 4, 8)]
        # Error grows with thermal-cell size...
        assert errors[0] <= errors[-1]
        # ...and the paper's headline metric (relative to absolute node
        # temperature) stays well under 1% -- the paper reports ~0.5% for
        # its 400 um cells.
        errors_abs = [by_tile[t]["error_abs"] for t in (2, 4, 8)]
        assert max(errors_abs) < 0.01


class TestFig10Shape:
    def test_p1_hotter_p2_flatter(self, case, p1_result, p2_result):
        """P1's map runs hotter with a larger spread; P2's is flatter."""
        sys_p1 = CoolingSystem.for_network(
            case.base_stack(), p1_result.network, case.coolant, model="4rm"
        )
        sys_p2 = CoolingSystem.for_network(
            case.base_stack(), p2_result.network, case.coolant, model="4rm"
        )
        map_p1 = source_layer_map(sys_p1.evaluate(p1_result.evaluation.p_sys))
        map_p2 = source_layer_map(sys_p2.evaluate(p2_result.evaluation.p_sys))
        stats_p1 = map_statistics(map_p1)
        stats_p2 = map_statistics(map_p2)
        assert stats_p1.t_mean > stats_p2.t_mean  # P1 hotter overall
        assert p2_result.evaluation.delta_t < p1_result.evaluation.delta_t
        # P1 spends less pumping power than P2.
        assert p1_result.evaluation.w_pump < p2_result.evaluation.w_pump


class TestCurveShapes:
    def test_gradient_curve_has_paper_shape(self, case):
        """f(P_sys) is uni-modal or monotone decreasing (Fig. 6)."""
        system = CoolingSystem.for_network(
            case.base_stack(), case.baseline_network(), case.coolant
        )
        sweep = pressure_sweep(system, np.geomspace(5e2, 2e5, 12))
        assert sweep.gradient_shape() in ("unimodal", "decreasing")
        assert sweep.peak_is_monotone(rtol=1e-4)


class TestEvaluationConsistency:
    def test_2rm_and_4rm_evaluations_agree_roughly(self, case):
        """The staged flow's premise: 2RM scores track 4RM scores."""
        network = case.baseline_network()
        fast = CoolingSystem.for_network(
            case.base_stack(), network, case.coolant, model="2rm", tile_size=4
        )
        slow = CoolingSystem.for_network(
            case.base_stack(), network, case.coolant, model="4rm"
        )
        ev_fast = evaluate_problem1(fast, case.delta_t_star, case.t_max_star)
        ev_slow = evaluate_problem1(slow, case.delta_t_star, case.t_max_star)
        assert ev_fast.feasible == ev_slow.feasible
        if ev_fast.feasible:
            assert ev_fast.w_pump == pytest.approx(ev_slow.w_pump, rel=0.5)
