"""Unit tests for the profiling instrumentation module."""

import threading

import pytest

from repro import profiling
from repro.profiling import Profiler


@pytest.fixture(autouse=True)
def _clean_global():
    """Every test starts and ends with a zeroed, enabled global profiler."""
    profiling.reset()
    profiling.set_enabled(True)
    yield
    profiling.reset()
    profiling.set_enabled(True)


class TestCounters:
    def test_increment_and_read(self):
        p = Profiler()
        assert p.counter("x") == 0
        p.increment("x")
        p.increment("x", 4)
        assert p.counter("x") == 5

    def test_independent_names(self):
        p = Profiler()
        p.increment("a")
        p.increment("b", 2)
        assert (p.counter("a"), p.counter("b")) == (1, 2)

    def test_thread_safety(self):
        p = Profiler()

        def bump():
            for _ in range(1000):
                p.increment("hits")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert p.counter("hits") == 8000


class TestTimers:
    def test_add_time_accumulates(self):
        p = Profiler()
        p.add_time("solve", 0.25)
        p.add_time("solve", 0.5, count=3)
        assert p.timer_seconds("solve") == pytest.approx(0.75)
        assert p.snapshot()["timers"]["solve"]["count"] == 4

    def test_timer_context_manager(self):
        p = Profiler()
        with p.timer("work"):
            pass
        snap = p.snapshot()["timers"]["work"]
        assert snap["count"] == 1
        assert snap["seconds"] >= 0.0

    def test_timer_records_on_exception(self):
        p = Profiler()
        with pytest.raises(ValueError):
            with p.timer("work"):
                raise ValueError("boom")
        assert p.snapshot()["timers"]["work"]["count"] == 1


class TestSnapshotMergeReset:
    def test_snapshot_is_a_copy(self):
        p = Profiler()
        p.increment("x")
        snap = p.snapshot()
        p.increment("x")
        assert snap["counters"]["x"] == 1
        assert p.counter("x") == 2

    def test_merge_folds_worker_snapshot(self):
        parent, worker = Profiler(), Profiler()
        parent.increment("solves", 2)
        worker.increment("solves", 3)
        worker.add_time("factorize", 0.1, count=2)
        parent.merge(worker.snapshot())
        assert parent.counter("solves") == 5
        assert parent.timer_seconds("factorize") == pytest.approx(0.1)
        assert parent.snapshot()["timers"]["factorize"]["count"] == 2

    def test_merge_empty_snapshot(self):
        p = Profiler()
        p.merge({})
        assert p.snapshot() == {"counters": {}, "timers": {}}

    def test_reset(self):
        p = Profiler()
        p.increment("x")
        p.add_time("t", 1.0)
        p.reset()
        assert p.snapshot() == {"counters": {}, "timers": {}}


class TestEnabled:
    def test_disabled_profiler_is_noop(self):
        p = Profiler(enabled=False)
        p.increment("x")
        p.add_time("t", 1.0)
        with p.timer("t2"):
            pass
        assert p.snapshot() == {"counters": {}, "timers": {}}

    def test_set_enabled_round_trip(self):
        assert profiling.set_enabled(False) is True
        profiling.increment("x")
        assert profiling.counter("x") == 0
        assert profiling.set_enabled(True) is False
        profiling.increment("x")
        assert profiling.counter("x") == 1


class TestModuleHelpers:
    def test_global_helpers(self):
        profiling.increment("g", 2)
        with profiling.timer("gt"):
            pass
        profiling.add_time("gt", 0.5)
        snap = profiling.snapshot()
        assert snap["counters"]["g"] == 2
        assert snap["timers"]["gt"]["count"] == 2
        profiling.merge({"counters": {"g": 1}, "timers": {}})
        assert profiling.counter("g") == 3

    def test_format_snapshot(self):
        profiling.increment("flow.unit_solves", 7)
        profiling.add_time("thermal.factorize", 0.123, count=2)
        text = profiling.format_snapshot()
        assert "flow.unit_solves" in text
        assert "7" in text
        assert "thermal.factorize" in text
        assert "2 calls" in text
