"""Unit tests for the profiling instrumentation module."""

import random
import threading

import pytest

from repro import profiling
from repro.errors import TelemetryError
from repro.profiling import (
    LATENCY_BUCKET_BOUNDS,
    SIZE_BUCKET_BOUNDS,
    Histogram,
    Profiler,
)


@pytest.fixture(autouse=True)
def _clean_global():
    """Every test starts and ends with a zeroed, enabled global profiler."""
    profiling.reset()
    profiling.set_enabled(True)
    yield
    profiling.reset()
    profiling.set_enabled(True)


class TestCounters:
    def test_increment_and_read(self):
        p = Profiler()
        assert p.counter("x") == 0
        p.increment("x")
        p.increment("x", 4)
        assert p.counter("x") == 5

    def test_independent_names(self):
        p = Profiler()
        p.increment("a")
        p.increment("b", 2)
        assert (p.counter("a"), p.counter("b")) == (1, 2)

    def test_thread_safety(self):
        p = Profiler()

        def bump():
            for _ in range(1000):
                p.increment("hits")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert p.counter("hits") == 8000


class TestTimers:
    def test_add_time_accumulates(self):
        p = Profiler()
        p.add_time("solve", 0.25)
        p.add_time("solve", 0.5, count=3)
        assert p.timer_seconds("solve") == pytest.approx(0.75)
        assert p.snapshot()["timers"]["solve"]["count"] == 4

    def test_timer_context_manager(self):
        p = Profiler()
        with p.timer("work"):
            pass
        snap = p.snapshot()["timers"]["work"]
        assert snap["count"] == 1
        assert snap["seconds"] >= 0.0

    def test_timer_records_on_exception(self):
        p = Profiler()
        with pytest.raises(ValueError):
            with p.timer("work"):
                raise ValueError("boom")
        assert p.snapshot()["timers"]["work"]["count"] == 1


class TestSnapshotMergeReset:
    def test_snapshot_is_a_copy(self):
        p = Profiler()
        p.increment("x")
        snap = p.snapshot()
        p.increment("x")
        assert snap["counters"]["x"] == 1
        assert p.counter("x") == 2

    def test_merge_folds_worker_snapshot(self):
        parent, worker = Profiler(), Profiler()
        parent.increment("solves", 2)
        worker.increment("solves", 3)
        worker.add_time("factorize", 0.1, count=2)
        parent.merge(worker.snapshot())
        assert parent.counter("solves") == 5
        assert parent.timer_seconds("factorize") == pytest.approx(0.1)
        assert parent.snapshot()["timers"]["factorize"]["count"] == 2

    def test_merge_empty_snapshot(self):
        p = Profiler()
        p.merge({})
        assert p.snapshot() == {"counters": {}, "timers": {}}

    def test_reset(self):
        p = Profiler()
        p.increment("x")
        p.add_time("t", 1.0)
        p.reset()
        assert p.snapshot() == {"counters": {}, "timers": {}}


class TestEnabled:
    def test_disabled_profiler_is_noop(self):
        p = Profiler(enabled=False)
        p.increment("x")
        p.add_time("t", 1.0)
        with p.timer("t2"):
            pass
        assert p.snapshot() == {"counters": {}, "timers": {}}

    def test_set_enabled_round_trip(self):
        assert profiling.set_enabled(False) is True
        profiling.increment("x")
        assert profiling.counter("x") == 0
        assert profiling.set_enabled(True) is False
        profiling.increment("x")
        assert profiling.counter("x") == 1


class TestHistograms:
    def test_observe_and_summary(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0, 10.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5
        assert s["sum"] == pytest.approx(16.5)
        assert s["min"] == 0.5
        assert s["max"] == 10.0
        assert 0.5 <= s["p50"] <= 10.0

    def test_empty_summary_is_all_zeros(self):
        s = Histogram().summary()
        assert s == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_percentiles_clamped_to_observed_envelope(self):
        h = Histogram(bounds=LATENCY_BUCKET_BOUNDS)
        h.observe(0.005)
        assert h.percentile(0.0) == 0.005
        assert h.percentile(100.0) == 0.005

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(TelemetryError):
            Histogram().percentile(101.0)

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(TelemetryError):
            Histogram(bounds=(1.0, 1.0, 2.0))

    def test_snapshot_round_trip(self):
        h = Histogram(bounds=SIZE_BUCKET_BOUNDS)
        for v in (1, 3, 17, 9000):
            h.observe(v)
        clone = Histogram.from_snapshot(h.snapshot())
        assert clone.snapshot() == h.snapshot()
        assert clone.summary() == h.summary()

    def test_merge_requires_identical_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_merge_is_associative_and_order_independent(self):
        rng = random.Random(42)
        parts = []
        for _ in range(4):
            h = Histogram(bounds=LATENCY_BUCKET_BOUNDS)
            for _ in range(200):
                h.observe(rng.lognormvariate(-6.0, 2.0))
            parts.append(h)

        def fold(order):
            acc = Histogram(bounds=LATENCY_BUCKET_BOUNDS)
            for index in order:
                acc.merge(
                    Histogram.from_snapshot(parts[index].snapshot())
                )
            return acc.snapshot()

        forward = fold([0, 1, 2, 3])
        reverse = fold([3, 2, 1, 0])
        shuffled = fold([2, 0, 3, 1])
        assert forward == reverse == shuffled
        # Associativity: (a+b)+(c+d) equals folding left-to-right.
        left = Histogram(bounds=LATENCY_BUCKET_BOUNDS)
        left.merge(parts[0])
        left.merge(parts[1])
        right = Histogram(bounds=LATENCY_BUCKET_BOUNDS)
        right.merge(parts[2])
        right.merge(parts[3])
        left.merge(right)
        assert left.snapshot() == forward

    def test_profiler_timer_feeds_histogram(self):
        p = Profiler()
        with p.timer("work"):
            pass
        snap = p.snapshot()
        assert snap["histograms"]["work"]["count"] == 1
        assert p.histogram("work").count == 1

    def test_observe_helper_and_bounds_conflict(self):
        p = Profiler()
        p.observe("batch", 8, bounds=SIZE_BUCKET_BOUNDS)
        with pytest.raises(TelemetryError):
            p.observe("batch", 8, bounds=LATENCY_BUCKET_BOUNDS)

    def test_snapshot_omits_histograms_key_when_none(self):
        p = Profiler()
        p.increment("x")
        assert "histograms" not in p.snapshot()

    def test_merge_folds_worker_histograms(self):
        parent, worker = Profiler(), Profiler()
        with parent.timer("solve"):
            pass
        with worker.timer("solve"):
            pass
        worker.observe("batch", 4, bounds=SIZE_BUCKET_BOUNDS)
        parent.merge(worker.snapshot())
        assert parent.histogram("solve").count == 2
        assert parent.histogram("batch").count == 1

    def test_concurrent_increment_and_merge(self):
        parent = Profiler()
        worker_snapshots = []
        for _ in range(4):
            w = Profiler()
            w.increment("hits", 100)
            with w.timer("solve"):
                pass
            worker_snapshots.append(w.snapshot())

        def bump():
            for _ in range(500):
                parent.increment("hits")

        def fold(snap):
            for _ in range(50):
                parent.merge(snap)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        threads += [
            threading.Thread(target=fold, args=(s,))
            for s in worker_snapshots
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert parent.counter("hits") == 4 * 500 + 4 * 50 * 100
        assert parent.histogram("solve").count == 4 * 50


class TestFormatSnapshot:
    def test_long_names_stay_aligned(self):
        long_name = "optimize.batch_cache_hits.some.very.long.subsystem.name"
        assert len(long_name) > 32
        profiling.increment(long_name, 3)
        profiling.increment("search.probes", 1)
        text = profiling.format_snapshot()
        lines = text.splitlines()
        # Every value column starts at the same offset: one space after
        # the widened name column.
        offsets = {line.rindex(" ") for line in lines}
        assert len(offsets) == 1
        assert all(len(line) > len(long_name) for line in lines)

    def test_sort_by_seconds_orders_hottest_first(self):
        profiling.add_time("cold.timer", 0.1)
        profiling.add_time("hot.timer", 9.0)
        profiling.increment("small.counter", 1)
        profiling.increment("big.counter", 100)
        text = profiling.format_snapshot(sort_by="seconds")
        assert text.index("hot.timer") < text.index("cold.timer")
        assert text.index("big.counter") < text.index("small.counter")

    def test_sort_by_rejects_unknown_key(self):
        with pytest.raises(TelemetryError):
            profiling.format_snapshot(sort_by="frequency")

    def test_histogram_lines_rendered(self):
        profiling.observe("optimize.candidate", 0.01)
        text = profiling.format_snapshot()
        assert "optimize.candidate" in text
        assert "p50" in text and "p99" in text


class TestModuleHelpers:
    def test_global_helpers(self):
        profiling.increment("g", 2)
        with profiling.timer("gt"):
            pass
        profiling.add_time("gt", 0.5)
        snap = profiling.snapshot()
        assert snap["counters"]["g"] == 2
        assert snap["timers"]["gt"]["count"] == 2
        profiling.merge({"counters": {"g": 1}, "timers": {}})
        assert profiling.counter("g") == 3

    def test_format_snapshot(self):
        profiling.increment("flow.unit_solves", 7)
        profiling.add_time("thermal.factorize", 0.123, count=2)
        text = profiling.format_snapshot()
        assert "flow.unit_solves" in text
        assert "7" in text
        assert "thermal.factorize" in text
        assert "2 calls" in text
