"""Live event streams (``follow=1``): delivery latency, half-close, chaos.

The stream is the service's only push channel, so these tests pin down its
contract: every durable event is delivered (within one heartbeat of being
logged), the final lifecycle event always precedes the synthetic
``stream.end`` record, a vanished client costs the server nothing but one
handler thread that exits by the next write, and a follower spanning a
worker SIGKILL + reaper reclaim sees the whole recovery story on one
connection.
"""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.server import ApiServer, DesignService, JobStore, Reaper, ServiceClient, Worker
from repro.server.records import STATE_COMPLETED, STATE_RUNNING

from .conftest import QUICK_PAYLOAD
from .test_chaos import WORKER_SCRIPT, long_spec, spawn, wait_until

WATCHDOG = 240.0

#: Streams in these tests heartbeat fast so disconnect detection and
#: final-event grace windows stay interactive-speed.
HEARTBEAT = 0.5


@pytest.fixture
def api(tmp_path):
    """An API over a store with NO workers: streams idle until we act."""
    server = ApiServer(
        JobStore(tmp_path / "store", lease_ttl=2.0),
        stream_heartbeat=HEARTBEAT,
    )
    server.start()
    yield server
    server.shutdown()


@pytest.fixture
def client(api):
    return ServiceClient(f"http://127.0.0.1:{api.port}", timeout=5.0)


def follow_in_thread(client, job_id, offset=0):
    """Collect ``(event, arrival_monotonic)`` pairs off a follower thread."""
    collected = []
    done = threading.Event()

    def run():
        try:
            for event in client.follow_events(job_id, offset=offset):
                collected.append((event, time.time()))
        finally:
            done.set()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return collected, done, thread


def test_follow_streams_live_run_within_one_heartbeat(tmp_path, watchdog):
    """End to end: every event of a real run arrives on the stream within
    one heartbeat of being written, and the final event precedes
    ``stream.end`` (reason ``completed``)."""
    service = DesignService(
        tmp_path / "svc", n_workers=1, lease_ttl=5.0,
        stream_heartbeat=2.0,
    )
    service.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
        events = []
        with watchdog(WATCHDOG):
            for event in client.follow_events(job_id):
                events.append((event, time.time()))
    finally:
        service.stop()
    types = [event["type"] for event, _ in events]
    assert types[0] == "job.submitted"
    assert "portfolio.round" in types  # live progress, not just lifecycle
    assert types[-2:] == ["job.completed", "stream.end"]
    end = events[-1][0]
    assert end["reason"] == "completed"
    assert end["next_offset"] == len(events) - 1  # resume point
    for event, arrived in events[:-1]:
        latency = arrived - event["t_wall"]
        assert latency <= 2.0, (event["type"], latency)


def test_follow_offset_skips_delivered_events(api, client):
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
    store = api.store
    store.log_event(job_id, "job.claimed", worker="w-test")
    collected, done, _ = follow_in_thread(client, job_id, offset=1)
    assert wait_until(lambda: len(collected) >= 1, 10.0)
    record = store.get(job_id)
    store.update(record.with_state(STATE_RUNNING, worker="w-test"))
    store.log_event(job_id, "job.completed", worker="w-test")
    store.update(store.get(job_id).with_state(STATE_COMPLETED))
    assert done.wait(10.0)
    types = [event["type"] for event, _ in collected]
    assert "job.submitted" not in types  # offset=1 skipped it
    assert types == ["job.claimed", "job.completed", "stream.end"]


def test_follower_spans_worker_sigkill_and_reaper_reclaim(
    api, client, watchdog
):
    """One connection observes the whole crash story: claim, SIGKILL (no
    events -- silence), lease reclaim, resume, completion, stream end."""
    store = api.store
    job_id = client.submit(long_spec(dict(QUICK_PAYLOAD)))["job_id"]
    collected, done, _ = follow_in_thread(client, job_id)

    victim = spawn(WORKER_SCRIPT, store.root, store.lease_ttl)
    try:
        from repro.optimize.portfolio import PORTFOLIO_CHECKPOINT

        ckpt = store.checkpoint_dir(job_id) / PORTFOLIO_CHECKPOINT
        assert wait_until(ckpt.exists, WATCHDOG), "no checkpoint appeared"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        victim.kill()
        victim.wait(timeout=30)

    lease_file = store.lease(job_id)
    assert wait_until(
        lambda: (lambda l: l is None or l.expired)(lease_file.read()),
        WATCHDOG,
    ), "orphaned lease never expired"
    reaper = Reaper(store, reaper_id="r-1", retry_backoff=0.01)
    assert wait_until(lambda: reaper.sweep() == [job_id], WATCHDOG)
    time.sleep(0.05)  # clear the requeue backoff
    with watchdog(WATCHDOG):
        assert Worker(store, worker_id="w-rescue").claim_once() == job_id
    assert done.wait(30.0), "stream never terminated after recovery"

    types = [event["type"] for event, _ in collected]
    for expected in (
        "job.submitted",
        "job.claimed",
        "job.lease_reclaimed",
        "job.resumed",
        "job.completed",
    ):
        assert expected in types, (expected, types)
    assert types[-1] == "stream.end"
    assert collected[-1][0]["reason"] == "completed"
    # The recovery events arrived promptly, not at stream teardown.
    by_type = {event["type"]: arrived for event, arrived in collected[:-1]}
    reclaim_event = next(
        event for event, _ in collected
        if event["type"] == "job.lease_reclaimed"
    )
    assert by_type["job.lease_reclaimed"] - reclaim_event["t_wall"] <= 5.0


def test_client_disconnect_releases_thread_and_socket(api, client):
    """A follower that vanishes mid-stream is detected by the next write
    (at worst one heartbeat) and costs no leaked thread or fd."""
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]  # stays pending
    fd_dir = "/proc/self/fd"
    baseline_threads = threading.active_count()
    baseline_fds = len(os.listdir(fd_dir))

    conn = http.client.HTTPConnection("127.0.0.1", api.port, timeout=10.0)
    conn.request("GET", f"/v1/jobs/{job_id}/events?follow=1")
    response = conn.getresponse()
    assert response.status == 200
    assert response.getheader("Content-Type") == "application/x-ndjson"
    first = json.loads(response.readline())
    assert first["type"] == "job.submitted"
    conn.close()  # vanish without consuming the stream

    # The serving thread notices on its next write -- a heartbeat at most
    # -- and both the thread and the server-side socket go away.
    assert wait_until(
        lambda: threading.active_count() <= baseline_threads
        and len(os.listdir(fd_dir)) <= baseline_fds,
        HEARTBEAT * 20 + 10.0,
    ), (
        f"leak: {threading.active_count()} threads "
        f"(baseline {baseline_threads}), "
        f"{len(os.listdir(fd_dir))} fds (baseline {baseline_fds})"
    )


def test_follow_pending_job_ends_on_drain(api, client):
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
    collected, done, _ = follow_in_thread(client, job_id)
    assert wait_until(lambda: len(collected) >= 1, 10.0)
    api.draining.set()
    assert done.wait(10.0), "drain did not terminate the pending stream"
    end = collected[-1][0]
    assert end["type"] == "stream.end"
    assert end["reason"] == "draining"


def test_follow_running_job_survives_drain_with_final_event(
    tmp_path, watchdog
):
    """SIGTERM-equivalent drain mid-job: the follower keeps its stream
    through the drain window and receives ``job.interrupted`` before the
    stream closes -- the in-flight work's fate is never silent."""
    service = DesignService(
        tmp_path / "svc", n_workers=1, lease_ttl=5.0,
        stream_heartbeat=HEARTBEAT,
    )
    service.start()
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    payload = dict(QUICK_PAYLOAD)
    payload["rounds"] = 8  # long enough to still be running at stop()
    job_id = client.submit(payload)["job_id"]
    collected, done, _ = follow_in_thread(client, job_id)
    store = service.store
    with watchdog(WATCHDOG):
        while store.get(job_id).state == "pending":
            time.sleep(0.01)  # wait for a worker to claim it
        service.stop(timeout=WATCHDOG)
    assert done.wait(30.0), "drain did not terminate the stream"
    types = [event["type"] for event, _ in collected]
    assert types[-1] == "stream.end"
    end = collected[-1][0]
    if store.get(job_id).state == "pending":
        # Interrupted at a round boundary: final event then clean close.
        assert "job.interrupted" in types
        assert end["reason"] in ("draining", "shutdown")
    else:
        # The job beat the drain; then it closed as a normal completion.
        assert "job.completed" in types
        assert end["reason"] == "completed"


def test_idle_stream_emits_heartbeats(api, client):
    """A stream with nothing to say still writes ``#hb`` comments, so
    dead connections are detected and clients can distinguish silence
    from disconnection."""
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
    conn = http.client.HTTPConnection("127.0.0.1", api.port, timeout=10.0)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/events?follow=1")
        response = conn.getresponse()
        json.loads(response.readline())  # job.submitted
        line = response.readline().decode("utf-8").strip()
        assert line == "#hb"
    finally:
        conn.close()
