"""The HTTP API: status codes, backpressure, health, readiness, drain."""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
    JobValidationError,
)
from repro.server import ApiServer, DesignService, JobStore, ServiceClient

from .conftest import QUICK_PAYLOAD

WATCHDOG = 120.0


@pytest.fixture
def api(tmp_path):
    """An API over a store with NO workers: queue state stays put."""
    server = ApiServer(
        JobStore(tmp_path / "store", tenant_cap=2, lease_ttl=5.0),
        max_queue_depth=3,
    )
    server.start()
    yield server
    server.shutdown()


@pytest.fixture
def client(api):
    return ServiceClient(f"http://127.0.0.1:{api.port}", timeout=5.0)


def raw_status(api, method, path, body=None, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{api.port}{path}",
        data=body,
        method=method,
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_submit_poll_events_round_trip(api, client):
    record = client.submit(dict(QUICK_PAYLOAD))
    assert record["state"] == "pending"
    job_id = record["job_id"]
    assert client.status(job_id)["state"] == "pending"
    assert [j["job_id"] for j in client.jobs()] == [job_id]
    page = client.events(job_id)
    assert [e["type"] for e in page["events"]] == ["job.submitted"]
    assert client.events(job_id, offset=page["next_offset"])["events"] == []


def test_validation_failures_are_400_with_field(api, client):
    with pytest.raises(JobValidationError, match="NaN"):
        client.submit(
            {"case_seed": 7, "power_maps": [[[1.0, float("nan")]]]}
        )
    status, payload = raw_status(
        api,
        "POST",
        "/v1/jobs",
        body=json.dumps({"case": 99}).encode(),
    )
    assert status == 400
    assert payload["field"] == "case"
    status, _ = raw_status(api, "POST", "/v1/jobs", body=b"{not json")
    assert status == 400
    status, _ = raw_status(api, "POST", "/v1/jobs", body=b"")
    assert status == 400


def test_unknown_job_and_route_are_404(api, client):
    with pytest.raises(JobNotFoundError):
        client.status("j-nope")
    assert raw_status(api, "GET", "/v2/other")[0] == 404


def test_path_traversal_job_ids_are_404(api, client):
    """A job-id path segment is joined onto the store root; anything not
    shaped like a real job id (``..``, encoded separators, store file
    names) must 404 before it ever touches the filesystem."""
    import http.client

    client.submit(dict(QUICK_PAYLOAD))  # a real job the escape could hit
    for path in (
        "/v1/jobs/..",
        "/v1/jobs/../events",
        "/v1/jobs/../result",
        "/v1/jobs/..%2f..",
        "/v1/jobs/lease.json",
    ):
        # http.client sends the path verbatim -- urllib would normalize
        # away the exact traversal under test.
        conn = http.client.HTTPConnection("127.0.0.1", api.port, timeout=5.0)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 404, path
            assert body["error"] == "JobNotFoundError", path
        finally:
            conn.close()


def test_result_before_completion_is_409(api, client):
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
    with pytest.raises(JobStateError, match="not completed"):
        client.result(job_id)


def test_tenant_cap_is_429_with_retry_after(api, client):
    client.submit(dict(QUICK_PAYLOAD))
    client.submit(dict(QUICK_PAYLOAD))
    with pytest.raises(JobQueueFullError) as excinfo:
        client.submit(dict(QUICK_PAYLOAD))
    assert excinfo.value.retry_after >= 1.0
    # Another tenant still gets in.
    other = ServiceClient(client.base_url, tenant="other")
    other.submit(dict(QUICK_PAYLOAD))


def test_healthz_reports_queue_and_readyz_backpressure(api, client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["queue"]["invalid"] == 0
    status, ready = raw_status(api, "GET", "/readyz")
    assert status == 200
    assert ready["ready"] is True
    # Fill past max_queue_depth=3 (two tenants x two jobs each).
    for tenant in ("a", "b"):
        t = ServiceClient(client.base_url, tenant=tenant)
        t.submit(dict(QUICK_PAYLOAD))
        t.submit(dict(QUICK_PAYLOAD))
    status, ready = raw_status(api, "GET", "/readyz")
    assert status == 503
    assert ready["ready"] is False
    assert any("queue depth" in r for r in ready["reasons"])


def test_draining_rejects_submissions_but_serves_reads(api, client):
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
    api.draining.set()
    status, payload = raw_status(
        api,
        "POST",
        "/v1/jobs",
        body=json.dumps(dict(QUICK_PAYLOAD)).encode(),
    )
    assert status == 503
    assert payload["error"] == "draining"
    assert client.status(job_id)["state"] == "pending"  # reads still work
    assert raw_status(api, "GET", "/readyz")[0] == 503
    assert client.healthz()["status"] == "draining"


def test_internal_errors_are_opaque_500(api, monkeypatch):
    def boom():
        raise RuntimeError("secret stack detail")

    monkeypatch.setattr(api.store, "list_jobs", boom)
    status, payload = raw_status(api, "GET", "/v1/jobs")
    assert status == 500
    assert payload["error"] == "internal"
    assert "secret" not in json.dumps(payload)  # no detail leak


def test_events_offset_and_limit_are_validated_and_applied(api, client):
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
    api.store.log_event(job_id, "job.claimed", worker="w-test")
    # Validation: negative / non-integer query values are typed 400s.
    for query in (
        "offset=-1",
        "offset=nope",
        "offset=1.5",
        "limit=0",
        "limit=-3",
        "limit=x",
    ):
        status, payload = raw_status(
            api, "GET", f"/v1/jobs/{job_id}/events?{query}"
        )
        assert status == 400, query
        assert payload["error"] == "JobValidationError", query
        assert payload["field"] in ("offset", "limit"), query
    # Application: offset skips, limit caps, next_offset composes.
    page = client.events(job_id, offset=1, limit=1)
    assert [e["type"] for e in page["events"]] == ["job.claimed"]
    assert page["next_offset"] == 2


def test_metrics_endpoint_serves_valid_prometheus_text(api, client):
    from repro.telemetry.promexpo import (
        PROMETHEUS_CONTENT_TYPE,
        parse_prometheus_text,
    )

    client.submit(dict(QUICK_PAYLOAD))
    client.submit(dict(QUICK_PAYLOAD))
    request = urllib.request.Request(
        f"http://127.0.0.1:{api.port}/metrics"
    )
    with urllib.request.urlopen(request, timeout=5.0) as response:
        assert response.status == 200
        assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = response.read().decode("utf-8")
    families = parse_prometheus_text(text)  # raises on malformed output
    depth = {
        s["labels"]["state"]: s["value"]
        for s in families["repro_server_queue_depth"]["samples"]
    }
    assert depth["pending"] == 2
    tenants = families["repro_server_tenant_active_jobs"]["samples"]
    assert {s["labels"]["tenant"]: s["value"] for s in tenants} == {
        "default": 2
    }
    assert families["repro_server_jobs_submitted_total"]["samples"][0][
        "value"
    ] == 2
    assert "repro_server_active_leases" in families
    assert "repro_server_oldest_pending_age_s" in families


def test_readyz_detail_shares_the_metrics_gauges(api, client):
    client.submit(dict(QUICK_PAYLOAD))
    status, ready = raw_status(api, "GET", "/readyz")
    assert status == 200
    gauges = ready["gauges"]
    assert gauges["queue_depth"] == 1
    assert gauges["expired_lease_count"] == 0
    assert gauges["oldest_pending_age_s"] >= 0.0
    assert ready["queue"]["pending"] == 1


def test_trace_endpoint_is_409_until_exported(api, client):
    job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
    assert client.status(job_id)["trace_id"]  # minted at submission
    with pytest.raises(JobStateError, match="no trace export"):
        client.trace(job_id)
    assert raw_status(api, "GET", "/v1/jobs/nope/trace")[0] == 404


def test_full_service_runs_submission_to_result(tmp_path, watchdog):
    service = DesignService(
        tmp_path / "svc", n_workers=1, lease_ttl=5.0
    )
    service.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
        with watchdog(WATCHDOG):
            final = client.wait(job_id, timeout=WATCHDOG)
        assert final["attempts"] == 0
        result = client.result(job_id)
        assert result["winner"] == "multi_fidelity"
        types = [e["type"] for e in client.events(job_id)["events"]]
        assert types[0] == "job.submitted"
        assert types[-1] == "job.completed"
        health = client.healthz()
        assert health["degraded"] is False
    finally:
        service.stop()


def test_graceful_stop_drains_in_flight_jobs(tmp_path, watchdog):
    """SIGTERM-equivalent: stop() while a job runs leaves it pending and
    resumable, with a checkpoint on disk and no attempt charged."""
    service = DesignService(tmp_path / "svc", n_workers=1, lease_ttl=5.0)
    service.start()
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    payload = dict(QUICK_PAYLOAD)
    payload["rounds"] = 8  # long enough to still be running at stop()
    job_id = client.submit(payload)["job_id"]
    store = service.store
    with watchdog(WATCHDOG):
        while store.get(job_id).state == "pending":
            pass  # wait for a worker to claim it
        service.stop(timeout=WATCHDOG)
    drained = store.get(job_id)
    assert drained.state in ("pending", "completed")
    if drained.state == "pending":
        assert drained.attempts == 0
        assert any(store.checkpoint_dir(job_id).iterdir())
    # A fresh service process over the same root picks the job back up.
    revived = DesignService(tmp_path / "svc", n_workers=1, lease_ttl=5.0)
    revived.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{revived.port}")
        with watchdog(WATCHDOG):
            client.wait(job_id, timeout=WATCHDOG)
        assert store.get(job_id).state == "completed"
    finally:
        revived.stop()
