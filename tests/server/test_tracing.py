"""Cross-process trace correlation: one ``trace_id`` stitches every row.

A traced job's export must tell the whole story in one file: the API
thread that served requests during the run, the worker thread that
executed it, and the evaluation-pool processes it fanned out to -- all as
separately named Perfetto process rows carrying the ``trace_id`` minted at
submission.  The suite also pins the zero-overhead contract: with tracing
off (the default), the global tracer never arms.
"""

import pytest

from repro import telemetry
from repro.server import DesignService, JobStore, ServiceClient, Worker
from repro.telemetry import TelemetryConfig

from .conftest import QUICK_PAYLOAD

WATCHDOG = 240.0

#: A traced submission that fans out to a real evaluation pool, so the
#: export has pool-worker rows to stitch.
POOLED_PAYLOAD = dict(QUICK_PAYLOAD, batch_size=2, iterations=2, n_workers=2)


def process_rows(trace):
    """``{row label: metadata args}`` of the export's process rows."""
    return {
        event["args"]["name"]: event["args"]
        for event in trace["traceEvents"]
        if event.get("ph") == "M" and event.get("name") == "process_name"
    }


def test_traced_job_stitches_api_worker_and_pool_rows(tmp_path, watchdog):
    service = DesignService(
        tmp_path / "svc",
        n_workers=1,
        lease_ttl=10.0,
        trace_jobs=True,
        stream_heartbeat=1.0,
    )
    service.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        submitted = client.submit(dict(POOLED_PAYLOAD))
        job_id = submitted["job_id"]
        trace_id = submitted["trace_id"]
        assert trace_id
        with watchdog(WATCHDOG):
            events = list(client.follow_events(job_id))
        assert events[-1]["reason"] == "completed"
        trace = client.trace(job_id)
    finally:
        service.stop()

    # The export is Perfetto-loadable Chrome trace-event JSON.
    assert isinstance(trace["traceEvents"], list)
    for event in trace["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)
    rows = process_rows(trace)
    assert "api" in rows, rows.keys()  # requests served during the run
    assert "worker-0" in rows, rows.keys()  # the executing worker thread
    pool_rows = [
        label
        for label in rows
        if label.startswith("worker-") and label != "worker-0"
    ]
    assert pool_rows, rows.keys()  # the evaluation-pool processes
    # One trace_id stitches every row -- and matches the job record's.
    assert trace["otherData"]["trace_id"] == trace_id
    for label, args in rows.items():
        assert args["trace_id"] == trace_id, label
    # The worker row carries the actual execution span.
    job_spans = [
        e for e in trace["traceEvents"] if e["name"] == "server.job"
    ]
    assert len(job_spans) == 1
    assert job_spans[0]["args"]["job_id"] == job_id


def test_untraced_service_never_arms_the_tracer(tmp_path, watchdog):
    """trace_jobs=False (the default) is the zero-overhead path: no span
    is ever recorded and ``/trace`` stays a typed 409."""
    from repro.errors import JobStateError

    service = DesignService(tmp_path / "svc", n_workers=1, lease_ttl=10.0)
    service.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        job_id = client.submit(dict(QUICK_PAYLOAD))["job_id"]
        with watchdog(WATCHDOG):
            client.wait(job_id, timeout=WATCHDOG)
        assert telemetry.spans_snapshot() == []
        with pytest.raises(JobStateError, match="no trace export"):
            client.trace(job_id)
    finally:
        service.stop()


def test_trace_id_rides_telemetry_config_to_pool_workers():
    """The pool re-arm path: ``TelemetryConfig`` (the frozen dataclass in
    the pool's initargs and cache key) round-trips the trace_id."""
    original = TelemetryConfig.current()
    try:
        TelemetryConfig(trace=True, trace_id="t-123").apply()
        mirrored = TelemetryConfig.current()
        assert mirrored.trace is True
        assert mirrored.trace_id == "t-123"
        # A worker applying the mirrored config tags its exports too.
        TelemetryConfig().apply()
        assert TelemetryConfig.current().trace_id is None
        mirrored.apply()
        with telemetry.span("server.job", job_id="j"):
            pass
        assert telemetry.to_chrome_trace()["otherData"]["trace_id"] == "t-123"
    finally:
        original.apply()
        telemetry.clear_spans()


def test_concurrent_jobs_trace_at_most_one_per_process(tmp_path, watchdog):
    """The global tracer is process state: with two traced jobs racing in
    one process, exactly one export exists per completed *traced* job and
    no export ever mixes two jobs' spans (the trace lock guarantees the
    loser runs untraced)."""
    store = JobStore(tmp_path / "store", lease_ttl=10.0)
    from repro.server import validate_submission

    ids = [
        store.submit(validate_submission(dict(QUICK_PAYLOAD))).job_id
        for _ in range(2)
    ]
    worker = Worker(store, worker_id="w-0", trace_jobs=True)
    with watchdog(WATCHDOG):
        assert worker.claim_once() in ids
        assert worker.claim_once() in ids
    for job_id in ids:
        trace = store.read_trace(job_id)
        spans = [
            e for e in trace["traceEvents"] if e["name"] == "server.job"
        ]
        assert len(spans) == 1
        assert spans[0]["args"]["job_id"] == job_id
        assert (
            trace["otherData"]["trace_id"] == store.get(job_id).trace_id
        )
