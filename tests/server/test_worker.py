"""Workers and the reaper: retries, quarantine, drains, and contention."""

import threading
import time

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SITE_SERVER_WORKER,
)
from repro.server import JobStore, Reaper, Worker
from repro.server.records import (
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_QUARANTINED,
    STATE_RUNNING,
)

WATCHDOG = 120.0


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store", lease_ttl=5.0)


def event_types(store, job_id):
    return [e["type"] for e in store.events(job_id)]


def test_worker_completes_a_job(watchdog, store, quick_spec):
    record = store.submit(quick_spec)
    worker = Worker(store, worker_id="w-1")
    with watchdog(WATCHDOG):
        assert worker.claim_once() == record.job_id
    final = store.get(record.job_id)
    assert final.state == STATE_COMPLETED
    assert final.attempts == 0
    result = store.read_result(record.job_id)
    assert result["winner"] == "multi_fidelity"
    assert result["score"] == pytest.approx(result["score"])  # finite
    types = event_types(store, record.job_id)
    # Lifecycle events bracket the run; the worker's progress callback
    # interleaves live portfolio events between claim and completion.
    assert types[:2] == ["job.submitted", "job.claimed"]
    assert types[-1] == "job.completed"
    assert "portfolio.round" in types
    assert all(t.startswith(("job.", "portfolio.", "run.")) for t in types)
    assert store.lease(record.job_id).read() is None  # released


def test_empty_queue_claims_nothing(store):
    assert Worker(store).claim_once() is None


def test_injected_crash_retries_with_backoff_then_succeeds(
    watchdog, store, quick_spec
):
    record = store.submit(quick_spec)
    worker = Worker(store, worker_id="w-1", retry_backoff=0.3)
    plan = FaultPlan(
        [FaultSpec(site=SITE_SERVER_WORKER, kind="raise-crash", max_fires=1)],
        seed=1,
    )
    with watchdog(WATCHDOG), FaultInjector(plan):
        assert worker.claim_once() == record.job_id
        failed = store.get(record.job_id)
        assert failed.state == STATE_PENDING
        assert failed.attempts == 1
        assert "injected crash" in failed.error
        assert failed.not_before > failed.updated_at  # backoff applied
        assert worker.claim_once() is None  # gated by backoff
        time.sleep(0.4)
        assert worker.claim_once() == record.job_id  # retry succeeds
    final = store.get(record.job_id)
    assert final.state == STATE_COMPLETED
    assert final.attempts == 1
    assert "job.failed" in event_types(store, record.job_id)


def test_poison_job_is_quarantined_after_max_attempts(
    watchdog, store, quick_spec
):
    spec = dict(quick_spec)
    spec["max_attempts"] = 2
    record = store.submit(spec)
    worker = Worker(store, worker_id="w-1", retry_backoff=0.01)
    plan = FaultPlan(
        [FaultSpec(site=SITE_SERVER_WORKER, kind="raise-crash")], seed=1
    )
    with watchdog(WATCHDOG), FaultInjector(plan):
        assert worker.claim_once() == record.job_id
        time.sleep(0.05)
        assert worker.claim_once() == record.job_id
        time.sleep(0.05)
        assert worker.claim_once() is None  # quarantined: never claimable
    final = store.get(record.job_id)
    assert final.state == STATE_QUARANTINED
    assert final.attempts == 2
    assert final.terminal
    assert "job.quarantined" in event_types(store, record.job_id)


def test_graceful_drain_requeues_without_charging_an_attempt(
    watchdog, store, quick_spec
):
    record = store.submit(quick_spec)
    worker = Worker(store, worker_id="w-1")
    with watchdog(WATCHDOG):
        # stop_check is already true: the run checkpoints at the first
        # round boundary and defers the rest.
        assert worker.claim_once(stop_check=lambda: True) == record.job_id
    drained = store.get(record.job_id)
    assert drained.state == STATE_PENDING
    assert drained.attempts == 0  # drains are free: not a failure
    assert "job.interrupted" in event_types(store, record.job_id)
    assert store.lease(record.job_id).read() is None
    ckpt = store.checkpoint_dir(record.job_id)
    assert any(ckpt.iterdir())  # resumable state reached disk
    with watchdog(WATCHDOG):
        assert worker.claim_once() == record.job_id  # picks it back up
    assert store.get(record.job_id).state == STATE_COMPLETED
    assert "job.resumed" in event_types(store, record.job_id)


def test_two_workers_one_job_exactly_one_executes(
    watchdog, store, quick_spec
):
    record = store.submit(quick_spec)
    results = {}
    barrier = threading.Barrier(2)

    def claim(name):
        worker = Worker(store, worker_id=name)
        barrier.wait()
        results[name] = worker.claim_once()

    threads = [
        threading.Thread(target=claim, args=(f"w-{i}",)) for i in range(2)
    ]
    with watchdog(WATCHDOG):
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    claimed = [v for v in results.values() if v is not None]
    assert claimed == [record.job_id]  # exactly one winner
    types = event_types(store, record.job_id)
    assert types.count("job.claimed") == 1
    assert types.count("job.completed") == 1
    assert store.get(record.job_id).state == STATE_COMPLETED


def test_reaper_ignores_live_leases(store, quick_spec):
    record = store.submit(quick_spec)
    store.update(record.with_state(STATE_RUNNING, worker="w-alive"))
    lease = store.lease(record.job_id).try_acquire("w-alive")
    assert lease is not None
    assert Reaper(store).sweep() == []
    assert store.get(record.job_id).state == STATE_RUNNING


def test_reaper_reclaims_expired_lease_and_requeues(store, quick_spec):
    store = JobStore(store.root, lease_ttl=0.05)
    record = store.submit(quick_spec)
    store.update(record.with_state(STATE_RUNNING, worker="w-dead"))
    assert store.lease(record.job_id).try_acquire("w-dead") is not None
    time.sleep(0.08)  # the dead worker never heartbeats
    reaper = Reaper(store, reaper_id="r-1", retry_backoff=0.01)
    assert reaper.sweep() == [record.job_id]
    reclaimed = store.get(record.job_id)
    assert reclaimed.state == STATE_PENDING
    assert reclaimed.attempts == 1  # the crash cost one attempt
    assert reclaimed.worker is None
    assert "job.lease_reclaimed" in event_types(store, record.job_id)
    assert store.lease(record.job_id).read() is None


def test_reaper_quarantines_repeatedly_crashing_job(store, quick_spec):
    store = JobStore(store.root, lease_ttl=0.05)
    spec = dict(quick_spec)
    spec["max_attempts"] = 1
    record = store.submit(spec)
    store.update(record.with_state(STATE_RUNNING, worker="w-dead"))
    store.lease(record.job_id).try_acquire("w-dead")
    time.sleep(0.08)
    assert Reaper(store).sweep() == [record.job_id]
    assert store.get(record.job_id).state == STATE_QUARANTINED


def test_reaper_commits_half_completed_jobs(store, quick_spec):
    """A worker that died between writing the result and flipping the
    record must not cost a re-run: the reaper commits the completion."""
    store = JobStore(store.root, lease_ttl=0.05)
    record = store.submit(quick_spec)
    store.update(record.with_state(STATE_RUNNING, worker="w-dead"))
    store.lease(record.job_id).try_acquire("w-dead")
    store.write_result(record.job_id, {"score": 0.5, "winner": "x"})
    time.sleep(0.08)
    assert Reaper(store).sweep() == [record.job_id]
    final = store.get(record.job_id)
    assert final.state == STATE_COMPLETED
    assert final.attempts == 0  # the work was NOT redone
    assert store.read_result(record.job_id)["score"] == 0.5


def test_reaper_claims_running_job_with_no_lease(store, quick_spec):
    record = store.submit(quick_spec)
    store.update(record.with_state(STATE_RUNNING, worker="w-gone"))
    reaper = Reaper(store, retry_backoff=0.01)
    assert reaper.sweep() == [record.job_id]
    assert store.get(record.job_id).state == STATE_PENDING


def test_reaper_unwedges_pending_job_with_orphaned_lease(
    watchdog, store, quick_spec
):
    """A claimer SIGKILLed between lease acquisition and the record flip
    to running leaves a pending job behind an expired lease.  Acquisition
    never steals (even expired leases), so only the reaper's sweep can
    make the job claimable again -- and it must not charge an attempt."""
    store = JobStore(store.root, lease_ttl=0.05)
    record = store.submit(quick_spec)
    assert store.lease(record.job_id).try_acquire("w-dead") is not None
    time.sleep(0.08)  # the dead claimer never flipped the record
    assert Worker(store).claim_once() is None  # wedged: acquire refuses
    assert Reaper(store, reaper_id="r-1").sweep() == [record.job_id]
    unwedged = store.get(record.job_id)
    assert unwedged.state == STATE_PENDING
    assert unwedged.attempts == 0  # no work started, no attempt charged
    assert store.lease(record.job_id).read() is None
    assert "job.orphaned_lease_cleared" in event_types(store, record.job_id)
    long_store = JobStore(store.root, lease_ttl=5.0)
    with watchdog(WATCHDOG):
        assert Worker(long_store).claim_once() == record.job_id
    assert long_store.get(record.job_id).state == STATE_COMPLETED


def test_reaper_leaves_live_claim_window_alone(store, quick_spec):
    """A pending job whose lease is fresh is a claim in progress -- the
    sweep must not steal it out from under the live claimer."""
    record = store.submit(quick_spec)
    assert store.lease(record.job_id).try_acquire("w-claiming") is not None
    assert Reaper(store).sweep() == []
    assert store.lease(record.job_id).read().owner == "w-claiming"


def test_claim_releases_lease_on_unexpected_error(store, quick_spec):
    """An unexpected exception inside the claim window (between acquire
    and the heartbeat start) must not strand the job behind an orphaned
    lease: the claim path releases on every exit."""
    record = store.submit(quick_spec)
    worker = Worker(store, worker_id="w-1")
    original = store.get

    def broken_get(job_id):
        raise OSError("disk fell over")

    store.get = broken_get
    try:
        with pytest.raises(OSError, match="disk fell over"):
            worker.claim_once()
    finally:
        store.get = original
    assert store.lease(record.job_id).read() is None  # released, not orphaned
    assert store.get(record.job_id).state == STATE_PENDING
