"""TTL leases: exclusivity, renewal, expiry, and reclaim races."""

import threading
import time

import pytest

from repro.errors import LeaseError, LeaseLostError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SITE_SERVER_LEASE_RENEW,
)
from repro.server import LeaseFile


def test_acquire_is_exclusive(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=30.0)
    lease = lease_file.try_acquire("worker-a")
    assert lease is not None
    assert lease.owner == "worker-a"
    assert not lease.expired
    assert lease_file.try_acquire("worker-b") is None


def test_contending_acquirers_produce_exactly_one_owner(tmp_path):
    """N threads race one lease; the filesystem must pick exactly one."""
    lease_file = LeaseFile(tmp_path, ttl=30.0)
    barrier = threading.Barrier(8)
    wins = []

    def contend(name):
        barrier.wait()
        lease = lease_file.try_acquire(name)
        if lease is not None:
            wins.append(lease)

    threads = [
        threading.Thread(target=contend, args=(f"w{i}",)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1
    on_disk = lease_file.read()
    assert on_disk is not None
    assert on_disk.owner == wins[0].owner
    assert on_disk.token == wins[0].token


def test_renew_extends_and_counts(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=5.0)
    lease = lease_file.try_acquire("w")
    renewed = lease_file.renew(lease)
    assert renewed.renewals == 1
    assert renewed.expires_at >= lease.expires_at
    assert renewed.token == lease.token
    assert lease_file.read().renewals == 1


def test_renew_after_loss_is_typed(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=0.05)
    lease = lease_file.try_acquire("victim")
    time.sleep(0.08)
    assert lease_file.read().expired
    stolen = lease_file.steal_expired("reaper")
    assert stolen is not None
    with pytest.raises(LeaseLostError, match="lost"):
        lease_file.renew(lease)
    with pytest.raises(LeaseLostError):
        lease_file.verify(lease)


def test_steal_requires_expiry(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=30.0)
    lease_file.try_acquire("alive")
    assert lease_file.steal_expired("thief") is None
    assert lease_file.read().owner == "alive"


def test_steal_of_absent_lease_is_none(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=1.0)
    assert lease_file.steal_expired("thief") is None


def test_racing_reapers_reclaim_exactly_once(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=0.05)
    lease_file.try_acquire("dead-worker")
    time.sleep(0.08)
    barrier = threading.Barrier(6)
    wins = []

    def reap(name):
        barrier.wait()
        # Per-thread LeaseFile: separate handles, same path -- like
        # separate reaper processes.
        stolen = LeaseFile(tmp_path, ttl=0.05).steal_expired(name)
        if stolen is not None:
            wins.append(stolen)

    threads = [
        threading.Thread(target=reap, args=(f"r{i}",)) for i in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1


def test_stale_steal_cannot_take_a_successor_lease(tmp_path, monkeypatch):
    """The read-to-rename window: reaper B reads an expired lease, then
    reaper A reclaims it AND a successor re-acquires -- B's rename must
    not carry off the successor's fresh lease."""
    lease_file = LeaseFile(tmp_path, ttl=0.05)
    lease_file.try_acquire("dead-worker")
    time.sleep(0.08)
    stale_raw = lease_file.path.read_bytes()  # B's view, about to go stale
    fresh_handle = LeaseFile(tmp_path, ttl=30.0)
    winner = fresh_handle.steal_expired("fast-reaper")
    assert winner is not None
    assert not winner.expired  # reclaimed AND re-owned, live again
    slow = LeaseFile(tmp_path, ttl=30.0)
    monkeypatch.setattr(slow, "_read_raw", lambda: stale_raw)
    assert slow.steal_expired("slow-reaper") is None
    on_disk = fresh_handle.read()
    assert on_disk is not None
    assert on_disk.token == winner.token  # fresh lease untouched
    fresh_handle.verify(winner)  # and still verifiable by its owner


def test_stale_renew_cannot_clobber_a_successor_lease(
    tmp_path, monkeypatch
):
    """A holder whose renew runs just past its TTL (GC pause, VM suspend)
    with a stale view of its own lease must lose to the reclaim-and-
    re-acquire that happened meanwhile, not overwrite the successor."""
    lease_file = LeaseFile(tmp_path, ttl=0.05)
    old = lease_file.try_acquire("stalled-worker")
    time.sleep(0.08)
    stale_raw = lease_file.path.read_bytes()  # the holder's frozen view
    successor = LeaseFile(tmp_path, ttl=30.0).steal_expired("reaper")
    assert successor is not None
    slow = LeaseFile(tmp_path, ttl=30.0)
    # The stalled holder still sees its own token; rename-verify must
    # refuse anyway instead of os.replace-ing the successor's lease.
    monkeypatch.setattr(slow, "_read_raw", lambda: stale_raw)
    with pytest.raises(LeaseLostError, match="reclaimed mid-renewal"):
        slow.renew(old)
    on_disk = lease_file.read()
    assert on_disk is not None
    assert on_disk.token == successor.token  # fresh lease untouched
    lease_file.verify(successor)  # and still verifiable by its owner


def test_stale_release_cannot_delete_a_successor_lease(
    tmp_path, monkeypatch
):
    """A holder releasing just past its TTL must not unlink the lease a
    reaper reclaimed and re-issued in the meantime."""
    lease_file = LeaseFile(tmp_path, ttl=0.05)
    old = lease_file.try_acquire("slow-worker")
    time.sleep(0.08)
    stale_raw = lease_file.path.read_bytes()
    fresh = LeaseFile(tmp_path, ttl=30.0).steal_expired("reaper")
    assert fresh is not None
    slow = LeaseFile(tmp_path, ttl=30.0)
    # The slow worker's release decision is based on its stale view (it
    # still sees its own token); the rename-verify must still refuse.
    monkeypatch.setattr(slow, "_read_raw", lambda: stale_raw)
    slow.release(old)
    on_disk = lease_file.read()
    assert on_disk is not None
    assert on_disk.token == fresh.token


def test_release_is_token_guarded_and_idempotent(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=0.05)
    stale = lease_file.try_acquire("old")
    time.sleep(0.08)
    fresh = lease_file.steal_expired("new")
    assert fresh is not None
    lease_file.release(stale)  # stale handle must NOT delete the new lease
    assert lease_file.read().owner == "new"
    lease_file.release(fresh)
    assert lease_file.read() is None
    lease_file.release(fresh)  # double release is a no-op


def test_corrupt_lease_blocks_acquire_but_is_reclaimable(tmp_path):
    lease_file = LeaseFile(tmp_path, ttl=30.0)
    lease_file.path.write_bytes(b"\x00garbage not json")
    held = lease_file.read()
    assert held is not None
    assert held.expired  # held-but-expired sentinel
    assert lease_file.try_acquire("w") is None
    stolen = lease_file.steal_expired("reaper")
    assert stolen is not None
    assert stolen.owner == "reaper"


def test_injected_renewal_failure_surfaces_to_heartbeat(tmp_path):
    plan = FaultPlan(
        [
            FaultSpec(
                site=SITE_SERVER_LEASE_RENEW,
                kind="raise-infeasible",
                max_fires=1,
            )
        ],
        seed=1,
    )
    lease_file = LeaseFile(tmp_path, ttl=5.0)
    lease = lease_file.try_acquire("w")
    with FaultInjector(plan):
        with pytest.raises(Exception) as excinfo:
            lease_file.renew(lease)
    assert plan.fired() == 1
    assert excinfo.type.__name__ == "InjectedFaultError"
    # An un-faulted retry still works: the failure was transient.
    assert lease_file.renew(lease).renewals == 1


def test_invalid_ttl_is_typed(tmp_path):
    with pytest.raises(LeaseError, match="positive"):
        LeaseFile(tmp_path, ttl=0.0)
