"""Submission validation: every doomed payload is a typed 400 at the door."""

import math

import pytest

from repro.errors import JobValidationError
from repro.server import validate_submission
from repro.server.validation import MAX_GRID_SIZE

from .conftest import QUICK_PAYLOAD


def reject(payload, match=None):
    with pytest.raises(JobValidationError, match=match) as excinfo:
        validate_submission(payload)
    return excinfo.value


def test_quick_payload_validates_with_defaults():
    spec = validate_submission(dict(QUICK_PAYLOAD))
    assert spec["case_seed"] == 7
    assert spec["case"] is None
    assert spec["problem"] == 1
    assert spec["seed"] == 0
    assert spec["max_attempts"] == 3
    assert spec["power_maps"] is None


def test_minimal_contest_payload_validates():
    spec = validate_submission({"case": 1, "grid": 21})
    assert spec["case"] == 1
    assert spec["optimizers"] == ["multi_fidelity"]


def test_non_object_body_rejected():
    reject([1, 2, 3], match="JSON object")


def test_unknown_keys_rejected():
    exc = reject({"case": 1, "gird": 21}, match="unknown submission keys")
    assert exc.field == "gird"


def test_exactly_one_case_source_required():
    reject({}, match="exactly one of")
    reject({"case": 1, "case_seed": 7}, match="exactly one of")


def test_type_and_range_enforcement():
    reject({"case": "1"}, match="must be an integer")
    reject({"case": True}, match="must be an integer")
    reject({"case": 9}, match=r"in \[1, 5\]")
    reject({"case_seed": -1}, match=r"in \[0")
    reject({"case": 1, "rounds": 0}, match="rounds")
    reject({"case": 1, "iterations": 100000}, match="iterations")
    reject({"case": 1, "problem": 3}, match="problem")


def test_oversize_grid_rejected():
    exc = reject({"case": 1, "grid": MAX_GRID_SIZE + 2})
    assert exc.field == "grid"
    reject({"case": 1, "grid": 3}, match="grid")


def test_unknown_optimizer_rejected():
    exc = reject(
        {"case": 1, "optimizers": ["multi_fidelity", "gradient_descent"]},
        match="unknown optimizer",
    )
    assert exc.field == "optimizers"
    reject({"case": 1, "optimizers": []}, match="non-empty")
    reject({"case": 1, "optimizers": [7]}, match="non-empty")


@pytest.mark.parametrize(
    "cell,why",
    [
        (math.nan, "NaN"),
        (math.inf, "infinite"),
        (-math.inf, "infinite"),
        (-0.5, "negative"),
        ("hot", "not a number"),
        (True, "not a number"),
    ],
)
def test_bad_power_map_cells_rejected(cell, why):
    maps = [[[0.1, 0.1], [0.1, cell]]]
    exc = reject({"case_seed": 7, "grid": 9, "power_maps": maps}, match=why)
    assert exc.field == "power_maps"


def test_power_map_structure_rejected():
    reject({"case_seed": 7, "power_maps": []}, match="non-empty")
    reject({"case_seed": 7, "power_maps": [[]]}, match="non-empty")
    reject(
        {"case_seed": 7, "power_maps": [[[0.1, 0.2], [0.3]]]}, match="ragged"
    )
    big = [[0.0] * (MAX_GRID_SIZE + 1)] * 2
    reject({"case_seed": 7, "power_maps": [big]}, match="caps footprints")


def test_power_map_shape_must_match_the_case():
    # Case seed 7 at grid 9 is a 9x9 stack; a 2x2 override cannot build.
    maps = [[[0.1, 0.1], [0.1, 0.1]]]
    reject(
        {"case_seed": 7, "grid": 9, "power_maps": maps},
        match="footprint|dies",
    )


def test_impossible_geometry_is_rejected_at_the_door():
    # grid=10 is silently bumped to 11 by the case builders; that is fine.
    # But a spec the case builders refuse must be a 400 here.
    spec = validate_submission({"case_seed": 7, "grid": 10})
    assert spec["grid"] == 10  # normalization happens in the builder
