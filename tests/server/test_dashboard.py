"""``repro top``: the dashboard is a pure renderer over public endpoints.

A fake client speaking the two public surfaces (``/metrics`` exposition
text and the jobs/events JSON) drives :class:`TopMonitor` and
:func:`render` without a server, so the tests pin the screen's content --
queue, leases, latency quantiles, live score trajectories -- not socket
behavior (the client itself is covered by the API suite).
"""

import io
import time

from repro.errors import JobError
from repro.server.dashboard import (
    MAX_TRAJECTORY,
    TopMonitor,
    render,
    run_top,
)
from repro.telemetry.promexpo import gauge, render_prometheus


class FakeClient:
    """The slice of ``ServiceClient`` the dashboard consumes."""

    def __init__(self, metrics_text="", jobs=None, events=None):
        self.metrics_text = metrics_text
        self._jobs = jobs or []
        self._events = events or {}
        self.event_calls = []

    def metrics(self):
        return self.metrics_text

    def jobs(self):
        return list(self._jobs)

    def events(self, job_id, offset=0, limit=None):
        self.event_calls.append((job_id, offset))
        events = self._events.get(job_id, [])[offset:]
        if limit is not None:
            events = events[:limit]
        return {"events": events, "next_offset": offset + len(events)}


def sample_metrics():
    from repro.profiling import Profiler

    profiler = Profiler(enabled=True)
    for value in (1.0, 1.0, 4.0, 8.0):
        profiler.observe("server.job_duration", value)
    return render_prometheus(
        profiler.snapshot(),
        [
            gauge("server.queue_depth", 3, state="pending"),
            gauge("server.queue_depth", 1, state="running"),
            gauge("server.active_leases", 1),
            gauge("server.expired_leases", 2),
            gauge("server.oldest_pending_age_s", 7.5),
            gauge("server.worker_heartbeat_age_s", 1.25, worker="w-0"),
            gauge("server.tenant_active_jobs", 4, tenant="acme"),
        ],
    )


def test_render_shows_queue_leases_latency_and_trajectories():
    monitor = TopMonitor(
        FakeClient(
            metrics_text=sample_metrics(),
            jobs=[
                {
                    "job_id": "j-abc",
                    "state": "running",
                    "attempts": 0,
                    "max_attempts": 3,
                    "submitted_at": time.time() - 30.0,
                }
            ],
            events={
                "j-abc": [
                    {"type": "job.claimed"},
                    {"type": "portfolio.round", "verified": 12.5},
                    {"type": "portfolio.round", "verified": 9.75},
                ]
            },
        )
    )
    screen = render(monitor.poll())
    assert "pending 3" in screen and "running 1" in screen
    assert "active 1" in screen and "expired 2" in screen
    assert "oldest-pending 7.5s" in screen
    assert "w-0 hb 1.2s" in screen
    assert "latency p50" in screen and "(n=4)" in screen
    assert "acme 4" in screen
    assert "j-abc" in screen
    assert "12.5 -> 9.75" in screen


def test_poll_tails_events_incrementally():
    client = FakeClient(
        jobs=[{"job_id": "j-1", "state": "running"}],
        events={"j-1": [{"type": "portfolio.round", "verified": 5.0}]},
    )
    monitor = TopMonitor(client)
    monitor.poll()
    client._events["j-1"].append(
        {"type": "portfolio.round", "verified": 4.0}
    )
    state = monitor.poll()
    # The second poll resumed from the stored offset, not from zero.
    assert client.event_calls == [("j-1", 0), ("j-1", 1)]
    assert state["trajectories"]["j-1"] == [5.0, 4.0]


def test_render_truncates_trajectories_and_handles_empty_state():
    scores = [float(i) for i in range(MAX_TRAJECTORY + 3)]
    screen = render(
        {
            "families": {},
            "jobs": [{"job_id": "j-long", "state": "running"}],
            "trajectories": {"j-long": scores},
        }
    )
    shown = screen.split("score ", 1)[1]
    assert len(shown.split(" -> ")) == MAX_TRAJECTORY
    empty = render({})
    assert "(no data)" in empty
    assert "(no jobs)" in empty


def test_run_top_renders_and_survives_unreachable_service():
    out = io.StringIO()
    count = run_top(
        "http://127.0.0.1:1",
        interval=0.0,
        iterations=2,
        out=out,
        client=FakeClient(metrics_text=sample_metrics()),
        clear=False,
    )
    assert count == 2
    assert out.getvalue().count("repro top") == 2

    class DeadClient(FakeClient):
        def metrics(self):
            raise JobError("connection refused")

    out = io.StringIO()
    assert run_top(
        "http://127.0.0.1:1",
        interval=0.0,
        iterations=1,
        out=out,
        client=DeadClient(),
        clear=False,
    ) == 1
    assert "unreachable" in out.getvalue()
