"""Shared machinery for the service suite: isolation, specs, watchdog.

Server tests mutate global state the rest of the suite also touches
(armed fault plans, profiling counters, solver caches), so every test runs
isolated.  The shared ``QUICK_SPEC`` runs the smallest deterministic job
the validator admits -- a 9x9 generated case, one optimizer, one round --
keeping the whole suite interactive-speed while still exercising the real
portfolio under the queue.
"""

import _thread
import threading
from contextlib import contextmanager

import pytest

from repro import profiling
from repro.faults import clear_active_plan
from repro.flow.network import clear_unit_cache
from repro.optimize.parallel import shutdown_pools
from repro.server import validate_submission

#: The submission payload used across the suite (validated once per test).
QUICK_PAYLOAD = {
    "case_seed": 7,
    "grid": 9,
    "rounds": 2,
    "iterations": 1,
    "batch_size": 1,
    "optimizers": ["multi_fidelity"],
}


@pytest.fixture(autouse=True)
def _isolate():
    clear_active_plan()
    profiling.reset()
    clear_unit_cache()
    yield
    clear_active_plan()
    shutdown_pools()
    clear_unit_cache()
    profiling.reset()


@pytest.fixture
def quick_spec():
    """The validated spec of :data:`QUICK_PAYLOAD`."""
    return validate_submission(dict(QUICK_PAYLOAD))


@contextmanager
def deadline(seconds):
    """Fail (never hang) when the body runs longer than ``seconds``."""
    timer = threading.Timer(seconds, _thread.interrupt_main)
    timer.daemon = True
    timer.start()
    try:
        yield
    except KeyboardInterrupt:
        pytest.fail(
            f"operation hung: exceeded the {seconds:g}s service watchdog"
        )
    finally:
        timer.cancel()


@pytest.fixture
def watchdog():
    """The :func:`deadline` context manager, as a fixture."""
    return deadline
