"""Durable job records: round-trip fidelity and hostile-input rejection.

Every way a record file can be wrong -- absent, torn, corrupted, version-
skewed, well-formed-but-alien -- must surface as a typed
:class:`~repro.errors.JobRecordError`, never a half-parsed record.
"""

import json
import zlib

import pytest

from repro.errors import JobRecordError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, SITE_SERVER_RECORD
from repro.server import JobRecord, read_record, write_record
from repro.server.records import (
    JOB_RECORD_MAGIC,
    JOB_RECORD_VERSION,
    STATE_PENDING,
    STATE_RUNNING,
    new_job_id,
)


def record(**overrides):
    fields = {
        "job_id": "j0001",
        "tenant": "default",
        "state": STATE_PENDING,
        "spec": {"case_seed": 7, "rounds": 2},
        "attempts": 1,
        "max_attempts": 3,
        "submitted_at": 100.0,
        "updated_at": 101.0,
        "not_before": 0.0,
        "worker": None,
        "error": None,
    }
    fields.update(overrides)
    return JobRecord(**fields)


def test_round_trip_is_exact(tmp_path):
    path = tmp_path / "record.json"
    original = record(worker="w-1", error="earlier failure")
    write_record(path, original)
    assert read_record(path) == original


def test_rewrite_replaces_previous_version(tmp_path):
    path = tmp_path / "record.json"
    write_record(path, record())
    write_record(path, record(state=STATE_RUNNING, attempts=2))
    loaded = read_record(path)
    assert loaded.state == STATE_RUNNING
    assert loaded.attempts == 2


def test_with_state_restamps_and_validates():
    base = record(updated_at=0.0)
    running = base.with_state(STATE_RUNNING, worker="w-9")
    assert running.state == STATE_RUNNING
    assert running.worker == "w-9"
    assert running.updated_at > 0.0
    with pytest.raises(JobRecordError, match="unknown job state"):
        base.with_state("paused")


def test_new_job_ids_sort_by_submission_and_never_collide():
    ids = [new_job_id() for _ in range(64)]
    assert len(set(ids)) == len(ids)
    assert ids == sorted(ids)


def test_missing_file_is_typed(tmp_path):
    with pytest.raises(JobRecordError, match="cannot read"):
        read_record(tmp_path / "absent.json")


def test_not_a_record_is_typed(tmp_path):
    path = tmp_path / "record.json"
    path.write_bytes(b"just some text\nwith lines\n")
    with pytest.raises(JobRecordError, match="not a job record"):
        read_record(path)


def test_foreign_magic_is_typed(tmp_path):
    path = tmp_path / "record.json"
    body = b"{}"
    header = json.dumps(
        {
            "magic": "other-tool",
            "version": 1,
            "body_bytes": len(body),
            "crc32": zlib.crc32(body),
        }
    ).encode("ascii")
    path.write_bytes(header + b"\n" + body)
    with pytest.raises(JobRecordError, match="not a repro job record"):
        read_record(path)


def test_version_skew_is_typed(tmp_path):
    path = tmp_path / "record.json"
    write_record(path, record())
    raw = path.read_bytes()
    header_line, _, body = raw.partition(b"\n")
    header = json.loads(header_line)
    header["version"] = JOB_RECORD_VERSION + 1
    path.write_bytes(json.dumps(header).encode("ascii") + b"\n" + body)
    with pytest.raises(JobRecordError, match="schema version"):
        read_record(path)


def test_truncated_body_is_typed(tmp_path):
    path = tmp_path / "record.json"
    write_record(path, record())
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 20])
    with pytest.raises(JobRecordError, match="torn or truncated"):
        read_record(path)


def test_flipped_byte_fails_crc(tmp_path):
    path = tmp_path / "record.json"
    write_record(path, record())
    raw = bytearray(path.read_bytes())
    raw[-2] ^= 0x40  # flip one bit inside the JSON body
    path.write_bytes(bytes(raw))
    with pytest.raises(JobRecordError, match="CRC mismatch"):
        read_record(path)


def test_valid_crc_wrong_fields_is_typed(tmp_path):
    path = tmp_path / "record.json"
    body = json.dumps({"job_id": "j1", "surprise": True}).encode()
    header = json.dumps(
        {
            "magic": JOB_RECORD_MAGIC,
            "version": JOB_RECORD_VERSION,
            "body_bytes": len(body),
            "crc32": zlib.crc32(body),
        }
    ).encode("ascii")
    path.write_bytes(header + b"\n" + body)
    with pytest.raises(JobRecordError, match="wrong fields"):
        read_record(path)


def test_unknown_state_rejected_on_read_and_write(tmp_path):
    from dataclasses import asdict

    path = tmp_path / "record.json"
    bad = record()
    object.__setattr__(bad, "state", "zombie")
    with pytest.raises(JobRecordError, match="unknown"):
        write_record(path, bad)
    # Craft a record whose body is valid except for the state value.
    fields = asdict(record())
    fields["state"] = "zombie"
    body = json.dumps(fields).encode()
    header = json.dumps(
        {
            "magic": JOB_RECORD_MAGIC,
            "version": JOB_RECORD_VERSION,
            "body_bytes": len(body),
            "crc32": zlib.crc32(body),
        }
    ).encode("ascii")
    path.write_bytes(header + b"\n" + body)
    with pytest.raises(JobRecordError, match="unknown state"):
        read_record(path)


def test_injected_torn_write_is_rejected_on_read(tmp_path):
    """The ``torn-write`` chaos kind truncates the bytes that land on disk;
    the reader's length check must catch it before the body is parsed."""
    path = tmp_path / "record.json"
    plan = FaultPlan(
        [FaultSpec(site=SITE_SERVER_RECORD, kind="torn-write", max_fires=1)],
        seed=1,
    )
    with FaultInjector(plan):
        write_record(path, record())
    assert plan.fired() == 1
    with pytest.raises(JobRecordError):
        read_record(path)
    # The next (un-faulted) write heals the file completely.
    write_record(path, record())
    assert read_record(path) == record()
