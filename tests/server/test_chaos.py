"""SIGKILL chaos: no acknowledged job is lost, and recovered runs are
bitwise-identical to uninterrupted ones.

Each scenario kills a real OS process (worker, submitter, reaper) with
SIGKILL -- no cleanup handlers run -- then proves the survivors restore
the queue to a coherent state:

* worker killed mid-optimization: the reaper reclaims the expired lease,
  a fresh worker resumes from the per-job checkpoint, and the final
  score bitwise-matches a never-interrupted run of the same spec;
* submitter killed mid-burst: every acknowledged job id has a complete,
  CRC-valid record; crash debris is at worst an empty job dir, never a
  torn record;
* reaper killed mid-sweep: recovery still happens exactly once -- the
  job is charged one attempt, not two, and then completes.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.optimize.portfolio import PORTFOLIO_CHECKPOINT
from repro.server import JobStore, Reaper, Worker
from repro.server.records import (
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_RUNNING,
)

from .conftest import QUICK_PAYLOAD

WATCHDOG = 240.0
SRC = Path(__file__).resolve().parents[2] / "src"

# Fields of the executor result that must survive a crash bit-for-bit.
EXACT_FIELDS = ("winner", "score", "p_sys", "w_pump", "t_max", "delta_t")


def spawn(script, *argv):
    """Run ``script`` in a fresh interpreter with the repo on sys.path."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH", "")) if p
    )
    return subprocess.Popen(
        [sys.executable, "-c", script, *map(str, argv)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def wait_until(predicate, deadline, interval=0.01):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return False


def long_spec(quick_spec):
    """A run with several round-boundary checkpoints to kill between."""
    spec = dict(quick_spec)
    spec["rounds"] = 8
    return spec


WORKER_SCRIPT = """
import sys
from repro.server import JobStore, Worker

store = JobStore(sys.argv[1], lease_ttl=float(sys.argv[2]))
worker = Worker(store, worker_id="w-victim")
worker.claim_once()
"""


def test_sigkill_worker_reaper_reclaims_and_result_is_bitwise_identical(
    tmp_path, watchdog, quick_spec
):
    spec = long_spec(quick_spec)

    # Baseline: the same spec, never interrupted.
    baseline_store = JobStore(tmp_path / "baseline", lease_ttl=30.0)
    baseline_id = baseline_store.submit(dict(spec)).job_id
    with watchdog(WATCHDOG):
        assert Worker(baseline_store, worker_id="w-calm").claim_once()
    baseline = baseline_store.read_result(baseline_id)

    # Victim run: a separate OS process claims the job...
    store = JobStore(tmp_path / "chaos", lease_ttl=1.0)
    job_id = store.submit(dict(spec)).job_id
    victim = spawn(WORKER_SCRIPT, store.root, store.lease_ttl)
    try:
        ckpt = store.checkpoint_dir(job_id) / PORTFOLIO_CHECKPOINT
        # ...and dies the instant resumable state reaches disk.
        assert wait_until(ckpt.exists, WATCHDOG), "no checkpoint appeared"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        victim.kill()
        victim.wait(timeout=30)

    assert store.get(job_id).state == STATE_RUNNING  # died mid-job
    lease_file = store.lease(job_id)
    assert wait_until(
        lambda: (lambda l: l is None or l.expired)(lease_file.read()),
        WATCHDOG,
    ), "orphaned lease never expired"

    reaper = Reaper(store, reaper_id="r-1", retry_backoff=0.01)
    assert reaper.sweep() == [job_id]
    reclaimed = store.get(job_id)
    assert reclaimed.state == STATE_PENDING
    assert reclaimed.attempts == 1
    assert ckpt.exists()  # reclaim preserved the checkpoint

    time.sleep(0.05)  # clear the requeue backoff
    with watchdog(WATCHDOG):
        assert Worker(store, worker_id="w-rescue").claim_once() == job_id
    final = store.get(job_id)
    assert final.state == STATE_COMPLETED
    result = store.read_result(job_id)

    # Zero loss AND zero drift: resume produced the exact same design.
    for field in EXACT_FIELDS:
        assert result[field] == baseline[field], field
    types = [e["type"] for e in store.events(job_id)]
    assert "job.lease_reclaimed" in types
    assert "job.resumed" in types


SUBMITTER_SCRIPT = """
import sys
from repro.server import JobStore, validate_submission

spec = validate_submission(
    {"case_seed": 7, "grid": 9, "optimizers": ["multi_fidelity"]}
)
store = JobStore(sys.argv[1], tenant_cap=100000)
i = 0
while True:
    record = store.submit(dict(spec), tenant="t%d" % i)
    print(record.job_id, flush=True)
    i += 1
"""


def test_sigkill_submitter_leaves_no_torn_records(tmp_path, watchdog):
    store = JobStore(tmp_path / "store", tenant_cap=100000)
    submitter = spawn(SUBMITTER_SCRIPT, store.root)
    try:
        # Let it ack a healthy burst, then kill it mid-stride.
        # jobs/ is created lazily by the submitter's first admission.
        assert wait_until(
            lambda: store.jobs_dir.exists()
            and len(list(store.jobs_dir.iterdir())) >= 6,
            WATCHDOG,
        ), "submitter never produced jobs"
        submitter.send_signal(signal.SIGKILL)
        out, _ = submitter.communicate(timeout=30)
    finally:
        submitter.kill()
        submitter.wait(timeout=30)

    # Ids the submitter printed were acknowledged: submit() had returned.
    # The kill window can swallow the newest dir's ack (that's the point),
    # so acked trails the dir count by at most the in-flight submission.
    lines = out.split("\n")
    acked = [line for line in lines[:-1] if line]  # last line may be torn
    assert len(acked) >= 4

    records, invalid = store.scan()
    surviving = {r.job_id for r in records}
    # Zero loss: every acknowledged job has a complete, CRC-valid record.
    for job_id in acked:
        assert job_id in surviving, f"acked {job_id} lost"
        assert store.get(job_id).state == STATE_PENDING
    # Crash debris is at worst an empty dir -- never a half-written
    # record, because records land via write-to-temp-then-rename.
    for job_id in invalid:
        assert not (store.job_dir(job_id) / "record.json").exists()
    # The store still admits work afterwards.
    from repro.server import validate_submission

    store.submit(validate_submission(dict(QUICK_PAYLOAD)), tenant="after")


REAPER_SCRIPT = """
import sys, time
from repro.server import JobStore, Reaper

store = JobStore(sys.argv[1], lease_ttl=float(sys.argv[2]))
reaper = Reaper(store, reaper_id="r-victim", retry_backoff=0.01)
print("ready", flush=True)
while True:
    reaper.sweep()
    time.sleep(0.01)
"""


def test_sigkill_reaper_recovery_still_happens_exactly_once(
    tmp_path, watchdog, quick_spec
):
    store = JobStore(tmp_path / "store", lease_ttl=0.2)
    record = store.submit(quick_spec)
    job_id = record.job_id
    # Fake a worker that died mid-job: running record, expiring lease.
    store.update(record.with_state(STATE_RUNNING, worker="w-dead"))
    assert store.lease(job_id).try_acquire("w-dead") is not None
    time.sleep(0.25)  # let the lease expire

    victim = spawn(REAPER_SCRIPT, store.root, store.lease_ttl)
    try:
        assert victim.stdout.readline().strip() == "ready"
        time.sleep(0.05)  # let it get into (or through) a sweep
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        victim.kill()
        victim.wait(timeout=30)

    # A replacement reaper finishes whatever the victim left undone.
    Reaper(store, reaper_id="r-successor", retry_backoff=0.01).sweep()
    reclaimed = store.get(job_id)
    assert reclaimed.state == STATE_PENDING
    assert reclaimed.attempts == 1  # exactly one attempt charged, not two
    types = [e["type"] for e in store.events(job_id)]
    assert types.count("job.lease_reclaimed") <= 1

    time.sleep(0.05)
    with watchdog(WATCHDOG):
        assert Worker(store, worker_id="w-rescue").claim_once() == job_id
    assert store.get(job_id).state == STATE_COMPLETED
