"""Gate on the committed service-overhead benchmark artifact.

The observability PR's bargain is "near-free unless armed, cheap when
armed": running a job through the service must track a direct
``SimulationExecutor.execute`` call within queue-poll noise, and turning
on the full surface (per-job tracing + a live ``follow=1`` consumer +
``/metrics`` scrapes) must not meaningfully tax the job on top of that.
The gates are ratios within one artifact, so they hold across machines.

Regenerate the artifact with::

    PYTHONPATH=src python benchmarks/harness.py --bench service_overhead --json
"""

import json
from pathlib import Path

import pytest

ARTIFACT = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "out"
    / "BENCH_service_overhead.json"
)

#: The quiet service (no tracing, nobody scraping) may cost at most this
#: multiple of a direct executor call.  The honest tax is claim-poll and
#: status-poll latency -- fractions of a second on a seconds-long job --
#: so 2x is generous headroom for CI noise, not a performance budget.
MAX_SERVICE_TAX = 2.0

#: The fully observed leg (tracing armed, a follower draining the event
#: stream, metrics parsed every round) over the quiet leg.  Span capture
#: is bounded-buffer appends and the stream tails a file the worker was
#: writing anyway, so anything past 1.5x means an observability feature
#: leaked onto the hot path.
MAX_OBSERVED_TAX = 1.5


@pytest.fixture(scope="module")
def artifact():
    assert ARTIFACT.is_file(), (
        f"missing {ARTIFACT}; regenerate with: "
        "PYTHONPATH=src python benchmarks/harness.py "
        "--bench service_overhead --json"
    )
    return json.loads(ARTIFACT.read_text())


def test_artifact_identifies_itself(artifact):
    assert artifact["benchmark"] == "service_overhead"
    assert artifact["config"]["repeats"] >= 3
    assert artifact["config"]["legs"] == ["baseline", "disabled", "enabled"]
    for leg in ("baseline", "disabled", "enabled"):
        assert artifact[f"{leg}_seconds"] > 0.0
        assert len(artifact[f"{leg}_runs"]) == artifact["config"]["repeats"]


def test_quiet_service_tracks_direct_execution(artifact):
    ratio = artifact["disabled_over_baseline"]
    assert ratio <= MAX_SERVICE_TAX, (
        f"service(quiet)/direct = {ratio:.2f}x exceeds "
        f"{MAX_SERVICE_TAX}x: the queue or HTTP layer is taxing jobs"
    )


def test_full_observability_is_cheap_when_armed(artifact):
    ratio = artifact["enabled_over_disabled"]
    assert ratio <= MAX_OBSERVED_TAX, (
        f"service(observed)/service(quiet) = {ratio:.2f}x exceeds "
        f"{MAX_OBSERVED_TAX}x: tracing, streaming, or /metrics is "
        "leaking onto the job's hot path"
    )


def test_ratios_match_recorded_medians(artifact):
    """The committed ratios are derived from the committed medians."""
    assert artifact["disabled_over_baseline"] == pytest.approx(
        artifact["disabled_seconds"] / artifact["baseline_seconds"]
    )
    assert artifact["enabled_over_disabled"] == pytest.approx(
        artifact["enabled_seconds"] / artifact["disabled_seconds"]
    )
