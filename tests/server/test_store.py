"""The durable job store: admission, ordering, caps, and scan hygiene."""

import time

import pytest

from repro.errors import (
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
)
from repro.server import JobStore
from repro.server.records import (
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_QUARANTINED,
    STATE_RUNNING,
)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store", tenant_cap=2, lease_ttl=5.0)


def test_submit_get_round_trip(store, quick_spec):
    record = store.submit(quick_spec, tenant="acme")
    loaded = store.get(record.job_id)
    assert loaded == record
    assert loaded.state == STATE_PENDING
    assert loaded.spec == quick_spec
    assert loaded.submitted_at > 0
    types = [e["type"] for e in store.events(record.job_id)]
    assert types == ["job.submitted"]


def test_unknown_job_is_typed(store):
    with pytest.raises(JobNotFoundError):
        store.get("j-nope")
    with pytest.raises(JobNotFoundError):
        store.events("j-nope")


def test_listing_is_submission_ordered(store, quick_spec):
    ids = [store.submit(quick_spec, tenant=f"t{i}").job_id for i in range(3)]
    assert [r.job_id for r in store.list_jobs()] == ids
    assert [r.job_id for r in store.claimable()] == ids


def test_backoff_gates_claimability(store, quick_spec):
    record = store.submit(quick_spec)
    store.update(
        record.with_state(STATE_PENDING, not_before=time.time() + 60.0)
    )
    assert store.claimable() == []
    assert len(store.list_jobs()) == 1


def test_tenant_cap_rejects_with_retry_after(store, quick_spec):
    store.submit(quick_spec, tenant="acme")
    store.submit(quick_spec, tenant="acme")
    with pytest.raises(JobQueueFullError) as excinfo:
        store.submit(quick_spec, tenant="acme")
    assert excinfo.value.retry_after > 0
    # Another tenant's queue is unaffected.
    store.submit(quick_spec, tenant="other")


def test_terminal_jobs_free_tenant_capacity(store, quick_spec):
    first = store.submit(quick_spec, tenant="acme")
    store.submit(quick_spec, tenant="acme")
    store.update(first.with_state(STATE_COMPLETED))
    assert store.active_count("acme") == 1
    store.submit(quick_spec, tenant="acme")  # admitted again


def test_queue_depth_counts_states(store, quick_spec):
    a = store.submit(quick_spec, tenant="a")
    b = store.submit(quick_spec, tenant="b")
    store.submit(quick_spec, tenant="c")
    store.update(a.with_state(STATE_RUNNING, worker="w"))
    store.update(b.with_state(STATE_QUARANTINED, error="poison"))
    depth = store.queue_depth()
    assert depth["pending"] == 1
    assert depth["running"] == 1
    assert depth["quarantined"] == 1
    assert depth["invalid"] == 0


def test_scan_surfaces_invalid_records(store, quick_spec):
    good = store.submit(quick_spec)
    broken_dir = store.jobs_dir / "j-broken"
    broken_dir.mkdir()
    (broken_dir / "record.json").write_bytes(b"\x00 not a record")
    empty_dir = store.jobs_dir / "j-empty"  # crash between mkdir and write
    empty_dir.mkdir()
    records, invalid = store.scan()
    assert [r.job_id for r in records] == [good.job_id]
    assert sorted(invalid) == ["j-broken", "j-empty"]
    assert store.queue_depth()["invalid"] == 2


def test_result_requires_completion(store, quick_spec):
    record = store.submit(quick_spec)
    with pytest.raises(JobStateError, match="not completed"):
        store.read_result(record.job_id)
    store.write_result(record.job_id, {"score": 1.25})
    with pytest.raises(JobStateError, match="not completed"):
        store.read_result(record.job_id)  # result file alone is not enough
    store.update(record.with_state(STATE_COMPLETED))
    assert store.read_result(record.job_id) == {"score": 1.25}


def test_update_of_unknown_job_is_typed(store, quick_spec):
    record = store.submit(quick_spec)
    import shutil

    shutil.rmtree(store.job_dir(record.job_id))
    with pytest.raises(JobNotFoundError):
        store.update(record.with_state(STATE_RUNNING))


def test_events_offset_pagination(store, quick_spec):
    record = store.submit(quick_spec)
    store.log_event(record.job_id, "job.claimed", worker="w")
    store.log_event(record.job_id, "job.completed", worker="w")
    all_events = store.events(record.job_id)
    assert [e["type"] for e in all_events] == [
        "job.submitted",
        "job.claimed",
        "job.completed",
    ]
    assert [e["type"] for e in store.events(record.job_id, offset=2)] == [
        "job.completed"
    ]
