"""ICCAD 2015 contest benchmark suite (Table 2 of the paper).

The original contest files are no longer distributed, so the five cases are
rebuilt from everything Table 2 publishes -- die count, channel height, total
die power, the ``DeltaT*`` / ``T_max*`` constraints, case 3's restricted area
and case 4's matched-port rule -- plus deterministic synthetic hotspot power
maps scaled to the published totals (see DESIGN.md, "Substitutions").

``load_case(n)`` returns a fully populated :class:`~repro.iccad2015.cases.Case`;
``scale`` shrinks the 101 x 101 footprint for laptop-friendly sweeps.
"""

from .cases import CASE_NUMBERS, Case, load_case
from .powermaps import Hotspot, hotspot_power_map
from .io import (
    load_case_bundle,
    read_floorplan,
    read_network,
    read_stack_description,
    save_case_bundle,
    write_floorplan,
    write_network,
    write_stack_description,
)

__all__ = [
    "CASE_NUMBERS",
    "Case",
    "Hotspot",
    "hotspot_power_map",
    "load_case",
    "load_case_bundle",
    "save_case_bundle",
    "read_floorplan",
    "read_network",
    "read_stack_description",
    "write_floorplan",
    "write_network",
    "write_stack_description",
]
