"""Text file formats for stack descriptions, floorplans and networks.

Algorithm 1 takes "stack description and floorplan files" as input; optimized
networks are the output artifact.  These plain-text formats make the flow
file-driven and round-trippable:

* **stack description** -- key/value lines (die count, channel height, grid,
  constraints, restricted rectangles);
* **floorplan** -- per-die power maps as whitespace-separated grids;
* **network** -- character art (``.`` solid, ``O`` liquid, ``#`` TSV) plus
  explicit port lines.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..errors import BenchmarkError
from ..faults import SITE_IO_POWER_MAP, corrupt
from ..geometry.grid import ChannelGrid, Port, PortKind, Side
from ..geometry.region import Rect
from .cases import Case

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Stack description
# ---------------------------------------------------------------------------


def write_stack_description(case: Case, path: PathLike) -> None:
    """Write a case's stack description file."""
    lines = [
        "# repro stack description",
        f"case {case.number}",
        f"dies {case.n_dies}",
        f"grid {case.nrows} {case.ncols}",
        f"cell_width {case.cell_width:.9g}",
        f"channel_height {case.channel_height:.9g}",
        f"die_power {case.die_power:.9g}",
        f"delta_t_star {case.delta_t_star:.9g}",
        f"t_max_star {case.t_max_star:.9g}",
        f"matched_ports {int(case.matched_ports)}",
    ]
    for rect in case.restricted:
        lines.append(
            f"restricted {rect.row0} {rect.col0} {rect.row1} {rect.col1}"
        )
    Path(path).write_text("\n".join(lines) + "\n")


def read_stack_description(path: PathLike) -> dict:
    """Parse a stack description file into a dict of fields."""
    fields: dict = {"restricted": []}
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        key, *values = line.split()
        if key == "restricted":
            if len(values) != 4:
                raise BenchmarkError(f"bad restricted line: {line!r}")
            fields["restricted"].append(Rect(*(int(v) for v in values)))
        elif key == "grid":
            if len(values) != 2:
                raise BenchmarkError(f"bad grid line: {line!r}")
            fields["nrows"], fields["ncols"] = int(values[0]), int(values[1])
        elif key in ("case", "dies", "matched_ports"):
            fields[key] = int(values[0])
        elif key in (
            "cell_width",
            "channel_height",
            "die_power",
            "delta_t_star",
            "t_max_star",
        ):
            fields[key] = float(values[0])
        else:
            raise BenchmarkError(f"unknown stack description key {key!r}")
    missing = {
        "case",
        "dies",
        "nrows",
        "ncols",
        "cell_width",
        "channel_height",
        "die_power",
        "delta_t_star",
        "t_max_star",
    } - set(fields)
    if missing:
        raise BenchmarkError(
            f"stack description missing fields: {sorted(missing)}"
        )
    fields["matched_ports"] = bool(fields.get("matched_ports", 0))
    fields["restricted"] = tuple(fields["restricted"])
    return fields


# ---------------------------------------------------------------------------
# Floorplan (power maps)
# ---------------------------------------------------------------------------


def write_floorplan(power_maps: Sequence[np.ndarray], path: PathLike) -> None:
    """Write per-die power maps, bottom die first."""
    buf = _io.StringIO()
    buf.write("# repro floorplan: per-die power maps in watts per cell\n")
    for die, power in enumerate(power_maps):
        arr = np.asarray(power, dtype=float)
        buf.write(f"die {die} rows {arr.shape[0]} cols {arr.shape[1]}\n")
        for row in arr:
            buf.write(" ".join(f"{v:.9g}" for v in row))
            buf.write("\n")
    Path(path).write_text(buf.getvalue())


def _validate_power_map(arr: np.ndarray, die: str, path: PathLike) -> None:
    """Reject power densities no thermal solve can make sense of.

    This is the load boundary: a NaN/Inf/negative cell power must become a
    typed :class:`~repro.errors.BenchmarkError` here instead of propagating
    into (and silently corrupting) the thermal system's RHS.
    """
    bad = ~np.isfinite(arr)
    if bad.any():
        r, c = np.argwhere(bad)[0]
        raise BenchmarkError(
            f"floorplan {path} die {die}: non-finite power density "
            f"{arr[r, c]!r} at cell ({r}, {c})"
        )
    negative = arr < 0.0
    if negative.any():
        r, c = np.argwhere(negative)[0]
        raise BenchmarkError(
            f"floorplan {path} die {die}: negative power density "
            f"{arr[r, c]!r} at cell ({r}, {c}); cell powers are heat "
            f"sources and must be >= 0"
        )


def read_floorplan(path: PathLike) -> List[np.ndarray]:
    """Read per-die power maps written by :func:`write_floorplan`.

    Power densities are validated at this boundary: NaN, Inf, and negative
    values raise :class:`~repro.errors.BenchmarkError` naming the die and
    cell.
    """
    maps: List[np.ndarray] = []
    lines = [
        line
        for line in Path(path).read_text().splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    i = 0
    while i < len(lines):
        header = lines[i].split()
        if header[0] != "die" or header[2] != "rows" or header[4] != "cols":
            raise BenchmarkError(f"bad floorplan header: {lines[i]!r}")
        nrows, ncols = int(header[3]), int(header[5])
        block = lines[i + 1 : i + 1 + nrows]
        if len(block) != nrows:
            raise BenchmarkError(
                f"floorplan die {header[1]}: expected {nrows} rows, "
                f"got {len(block)}"
            )
        arr = np.array([[float(v) for v in row.split()] for row in block])
        if arr.shape != (nrows, ncols):
            raise BenchmarkError(
                f"floorplan die {header[1]}: ragged rows "
                f"(shape {arr.shape}, expected ({nrows}, {ncols}))"
            )
        arr = corrupt(SITE_IO_POWER_MAP, arr)
        _validate_power_map(arr, header[1], path)
        maps.append(arr)
        i += 1 + nrows
    if not maps:
        raise BenchmarkError(f"no power maps found in {path}")
    return maps


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------

_SOLID_CHAR = "."
_LIQUID_CHAR = "O"
_TSV_CHAR = "#"


def write_network(grid: ChannelGrid, path: PathLike) -> None:
    """Write a channel grid (pattern + ports) as character art."""
    buf = _io.StringIO()
    buf.write("# repro cooling network\n")
    buf.write(f"grid {grid.nrows} {grid.ncols}\n")
    buf.write(f"cell_width {grid.cell_width:.9g}\n")
    for r in range(grid.nrows):
        chars = []
        for c in range(grid.ncols):
            if grid.liquid[r, c]:
                chars.append(_LIQUID_CHAR)
            elif grid.tsv_mask[r, c]:
                chars.append(_TSV_CHAR)
            else:
                chars.append(_SOLID_CHAR)
        buf.write("".join(chars) + "\n")
    for port in grid.ports:
        buf.write(f"port {port.kind.value} {port.side.value} {port.index}\n")
    Path(path).write_text(buf.getvalue())


def read_network(path: PathLike) -> ChannelGrid:
    """Read a network file written by :func:`write_network`."""
    lines = Path(path).read_text().splitlines()
    body = [l for l in lines if l.strip() and not l.lstrip().startswith("#")]
    if not body or not body[0].startswith("grid "):
        raise BenchmarkError(f"network file {path} missing grid header")
    _, nrows_s, ncols_s = body[0].split()
    nrows, ncols = int(nrows_s), int(ncols_s)
    cell_width = None
    rows: List[str] = []
    ports: List[Tuple[str, str, int]] = []
    for line in body[1:]:
        if line.startswith("cell_width"):
            cell_width = float(line.split()[1])
        elif line.startswith("port "):
            _, kind, side, index = line.split()
            ports.append((kind, side, int(index)))
        else:
            rows.append(line)
    if cell_width is None:
        raise BenchmarkError(f"network file {path} missing cell_width")
    if len(rows) != nrows:
        raise BenchmarkError(
            f"network file {path}: expected {nrows} pattern rows, got {len(rows)}"
        )
    tsv = np.zeros((nrows, ncols), dtype=bool)
    liquid = np.zeros((nrows, ncols), dtype=bool)
    for r, row in enumerate(rows):
        if len(row) != ncols:
            raise BenchmarkError(
                f"network file {path}: row {r} has {len(row)} chars, "
                f"expected {ncols}"
            )
        for c, char in enumerate(row):
            if char == _LIQUID_CHAR:
                liquid[r, c] = True
            elif char == _TSV_CHAR:
                tsv[r, c] = True
            elif char != _SOLID_CHAR:
                raise BenchmarkError(
                    f"network file {path}: unknown char {char!r} at ({r}, {c})"
                )
    grid = ChannelGrid(nrows, ncols, cell_width=cell_width, tsv_mask=tsv)
    grid.liquid = liquid
    for kind, side, index in ports:
        grid.add_port(PortKind(kind), Side(side), index)
    return grid


# ---------------------------------------------------------------------------
# Case bundles
# ---------------------------------------------------------------------------


def save_case_bundle(case: Case, directory: PathLike) -> None:
    """Persist a whole benchmark case as a directory of text files.

    Writes ``stack.txt`` (stack description) and ``floorplan.txt`` (per-die
    power maps); networks designed for the case can be dropped alongside
    (see :func:`write_network`).
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    write_stack_description(case, path / "stack.txt")
    write_floorplan(case.power_maps, path / "floorplan.txt")


def load_case_bundle(directory: PathLike) -> Case:
    """Rebuild a :class:`~repro.iccad2015.cases.Case` from a bundle directory.

    The inverse of :func:`save_case_bundle`: the stack description supplies
    geometry and constraints, the floorplan supplies the exact power maps
    (so a bundle round-trips bit-for-bit even if the synthetic map recipes
    change later).
    """
    path = Path(directory)
    stack_file = path / "stack.txt"
    floorplan_file = path / "floorplan.txt"
    if not stack_file.exists() or not floorplan_file.exists():
        raise BenchmarkError(
            f"case bundle {path} needs stack.txt and floorplan.txt"
        )
    fields = read_stack_description(stack_file)
    power_maps = read_floorplan(floorplan_file)
    if len(power_maps) != fields["dies"]:
        raise BenchmarkError(
            f"bundle {path}: stack declares {fields['dies']} dies but the "
            f"floorplan holds {len(power_maps)} power maps"
        )
    for power in power_maps:
        if power.shape != (fields["nrows"], fields["ncols"]):
            raise BenchmarkError(
                f"bundle {path}: power map shape {power.shape} does not "
                f"match grid ({fields['nrows']}, {fields['ncols']})"
            )
    total = float(sum(p.sum() for p in power_maps))
    return Case(
        number=fields["case"],
        n_dies=fields["dies"],
        channel_height=fields["channel_height"],
        die_power=total,
        delta_t_star=fields["delta_t_star"],
        t_max_star=fields["t_max_star"],
        nrows=fields["nrows"],
        ncols=fields["ncols"],
        cell_width=fields["cell_width"],
        restricted=fields["restricted"],
        matched_ports=fields["matched_ports"],
        power_maps=power_maps,
        full_die_power=fields["die_power"],
    )
