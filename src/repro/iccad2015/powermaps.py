"""Synthetic non-uniform power maps for the benchmark cases.

The contest floorplans are not redistributable; these maps preserve what the
optimization actually reacts to -- total power, hotspot placement and
contrast.  Each map is a uniform background plus Gaussian hotspots, scaled
exactly to the published per-die total.  Everything is deterministic: the
same case always yields the same map at any grid scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Sequence, Tuple

import numpy as np

from ..errors import BenchmarkError


@dataclass(frozen=True)
class Hotspot:
    """One Gaussian hotspot in fractional die coordinates.

    Attributes:
        row_frac / col_frac: Center position as a fraction of the die edge,
            in [0, 1].
        sigma_frac: Gaussian sigma as a fraction of the die edge.
        weight: Relative share of the non-background power.
    """

    row_frac: float
    col_frac: float
    sigma_frac: float
    weight: float

    def __post_init__(self) -> None:
        for name in ("row_frac", "col_frac"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise BenchmarkError(f"{name} must be in [0, 1], got {value}")
        if self.sigma_frac <= 0:
            raise BenchmarkError(f"sigma_frac must be positive, got {self.sigma_frac}")
        if self.weight <= 0:
            raise BenchmarkError(f"weight must be positive, got {self.weight}")


def hotspot_power_map(
    nrows: int,
    ncols: int,
    total_power: float,
    hotspots: Sequence[Hotspot],
    background_fraction: float = 0.35,
) -> np.ndarray:
    """Build a per-cell power map summing exactly to ``total_power`` watts.

    Args:
        nrows / ncols: Grid size in basic cells.
        total_power: Total dissipated power of the die, W.
        hotspots: Gaussian hotspots; their weights are normalized.
        background_fraction: Share of total power spread uniformly (models
            the always-on background logic).
    """
    if total_power < 0:
        raise BenchmarkError(f"total power must be >= 0, got {total_power}")
    if not 0.0 <= background_fraction <= 1.0:
        raise BenchmarkError(
            f"background fraction must be in [0, 1], got {background_fraction}"
        )
    if not hotspots and background_fraction < 1.0:
        raise BenchmarkError("need at least one hotspot unless all background")
    rows = (np.arange(nrows) + 0.5) / nrows
    cols = (np.arange(ncols) + 0.5) / ncols
    rr, cc = np.meshgrid(rows, cols, indexing="ij")
    density = np.zeros((nrows, ncols))
    total_weight = sum(h.weight for h in hotspots) or 1.0
    for spot in hotspots:
        blob = np.exp(
            -(
                (rr - spot.row_frac) ** 2 + (cc - spot.col_frac) ** 2
            )
            / (2.0 * spot.sigma_frac**2)
        )
        blob_sum = blob.sum()
        if blob_sum > 0:
            density += (spot.weight / total_weight) * blob / blob_sum
    hotspot_power = total_power * (1.0 - background_fraction)
    background_power = total_power * background_fraction
    out = hotspot_power * density + background_power / (nrows * ncols)
    # Exact renormalization guards against clipped hotspot tails.
    current = out.sum()
    if current > 0:
        out *= total_power / current
    return out


#: Per-case hotspot layouts, keyed by case number; one list per die, bottom
#: to top.  Layouts are invented but deterministic; their contrast levels
#: follow the paper's hints (case 5 is "high and highly varied").
CASE_HOTSPOTS: Mapping[int, Tuple[Tuple[Hotspot, ...], ...]] = MappingProxyType({
    1: (
        (
            Hotspot(0.30, 0.65, 0.085, 2.0),
            Hotspot(0.70, 0.30, 0.105, 1.0),
        ),
        (
            Hotspot(0.50, 0.50, 0.115, 1.0),
            Hotspot(0.20, 0.20, 0.085, 0.8),
        ),
    ),
    2: (
        (
            Hotspot(0.25, 0.25, 0.09, 1.0),
            Hotspot(0.75, 0.75, 0.09, 1.0),
        ),
        (
            Hotspot(0.50, 0.70, 0.10, 1.2),
        ),
    ),
    3: (
        (
            Hotspot(0.20, 0.75, 0.08, 1.5),
            Hotspot(0.75, 0.20, 0.10, 1.0),
        ),
        (
            Hotspot(0.80, 0.80, 0.09, 1.0),
            Hotspot(0.15, 0.50, 0.08, 0.7),
        ),
    ),
    4: (
        (
            Hotspot(0.40, 0.60, 0.09, 1.2),
            Hotspot(0.70, 0.25, 0.08, 0.8),
        ),
        (
            Hotspot(0.30, 0.30, 0.10, 1.0),
        ),
        (
            Hotspot(0.60, 0.70, 0.10, 1.0),
        ),
    ),
    5: (
        (
            Hotspot(0.30, 0.70, 0.16, 3.0),
            Hotspot(0.65, 0.25, 0.15, 2.0),
            Hotspot(0.80, 0.80, 0.17, 1.0),
        ),
        (
            Hotspot(0.45, 0.45, 0.16, 3.0),
            Hotspot(0.20, 0.20, 0.17, 1.5),
        ),
    ),
})

#: Power split across dies (bottom to top); bottom dies run hotter.
CASE_DIE_SPLIT: Mapping[int, Tuple[float, ...]] = MappingProxyType({
    1: (0.55, 0.45),
    2: (0.55, 0.45),
    3: (0.55, 0.45),
    4: (0.40, 0.35, 0.25),
    5: (0.60, 0.40),
})

#: Background (uniform) share of each case's power; case 5 concentrates
#: nearly everything in hotspots.
CASE_BACKGROUND: Mapping[int, float] = MappingProxyType(
    {1: 0.41, 2: 0.40, 3: 0.40, 4: 0.40, 5: 0.45}
)


def case_power_maps(
    case_number: int, nrows: int, ncols: int, total_power: float
) -> list:
    """The per-die power maps of one benchmark case at a given grid size."""
    if case_number not in CASE_HOTSPOTS:
        raise BenchmarkError(
            f"unknown case {case_number}; known: {sorted(CASE_HOTSPOTS)}"
        )
    split = CASE_DIE_SPLIT[case_number]
    background = CASE_BACKGROUND[case_number]
    maps = []
    for die_fraction, hotspots in zip(split, CASE_HOTSPOTS[case_number]):
        maps.append(
            hotspot_power_map(
                nrows,
                ncols,
                total_power * die_fraction,
                hotspots,
                background_fraction=background,
            )
        )
    return maps
