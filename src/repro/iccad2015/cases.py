"""The five benchmark cases of Table 2.

| # | dies | h_c (um) | power (W) | DeltaT* (K) | T_max* (K) | extra rule        |
|---|------|----------|-----------|-------------|------------|-------------------|
| 1 | 2    | 200      | 42.038    | 15          | 358.15     | --                |
| 2 | 2    | 400      | 37.038    | 10          | 358.15     | --                |
| 3 | 2    | 400      | 43.038    | 15          | 358.15     | restricted area   |
| 4 | 3    | 200      | 43.438    | 10          | 358.15     | matched ports     |
| 5 | 2    | 400      | 148.174   | 10          | 338.15     | --                |

The contest die is 10.1 mm x 10.1 mm on a 101 x 101 basic-cell grid with
100 um channels and 300 K inlets.  ``load_case(n, scale=...)`` shrinks the
cell grid (keeping the cell width) for faster experiments; power totals and
constraints are preserved, so who-wins comparisons keep their shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..constants import (
    CELL_WIDTH,
    CHANNEL_HEIGHT_200UM,
    CHANNEL_HEIGHT_400UM,
    CONTEST_GRID_SIZE,
    INLET_TEMPERATURE,
)
from ..errors import BenchmarkError
from ..geometry.grid import ChannelGrid
from ..geometry.region import Rect
from ..geometry.stack import Stack, build_contest_stack
from ..materials import WATER, Coolant
from ..networks.straight import straight_network
from ..networks.tree import TreePlan, plan_tree_bands
from .powermaps import case_power_maps

#: Valid benchmark case numbers.
CASE_NUMBERS = (1, 2, 3, 4, 5)

#: Raw Table 2 rows: (dies, channel height, die power, DeltaT*, T_max*).
_TABLE2 = {
    1: (2, CHANNEL_HEIGHT_200UM, 42.038, 15.0, 358.15),
    2: (2, CHANNEL_HEIGHT_400UM, 37.038, 10.0, 358.15),
    3: (2, CHANNEL_HEIGHT_400UM, 43.038, 15.0, 358.15),
    4: (3, CHANNEL_HEIGHT_200UM, 43.438, 10.0, 358.15),
    5: (2, CHANNEL_HEIGHT_400UM, 148.174, 10.0, 338.15),
}

#: Case 3's forbidden region in fractional die coordinates
#: (row0, col0, row1, col1).
_RESTRICTED_FRAC = (0.30, 0.45, 0.50, 0.70)


@dataclass
class Case:
    """One fully instantiated benchmark case.

    Attributes:
        number: Case id (1-5).
        n_dies: Stack die count.
        channel_height: ``h_c`` in meters.
        die_power: Total dissipation across all dies, W.
        delta_t_star: Gradient constraint ``DeltaT*``, K.
        t_max_star: Peak constraint ``T_max*``, K.
        nrows / ncols / cell_width: Footprint.
        restricted: Forbidden rectangles (case 3).
        matched_ports: Whether all channel layers must share port positions
            (case 4); this implementation replicates one network across all
            layers for every case, which satisfies the rule by construction.
        power_maps: Per-die power maps, bottom to top.
        coolant: Working fluid (water at 300 K inlets).
    """

    number: int
    n_dies: int
    channel_height: float
    die_power: float
    delta_t_star: float
    t_max_star: float
    nrows: int
    ncols: int
    cell_width: float
    restricted: Tuple[Rect, ...]
    matched_ports: bool
    power_maps: List[np.ndarray]
    #: Unscaled contest die power (W); equals ``die_power`` at scale 1.
    full_die_power: float = 0.0
    coolant: Coolant = WATER
    inlet_temperature: float = INLET_TEMPERATURE

    # ------------------------------------------------------------------

    def w_pump_star(
        self, fraction: float = 0.001, of_full_power: bool = True
    ) -> float:
        """Problem 2's pumping-power cap: 0.1% of die power by default.

        At reduced grid scales the cap is taken relative to the *full-size*
        contest power by default: pumping power does not shrink with die
        area the way heat does, so scaling the cap with the die would make
        Problem 2 disproportionately tight on small grids.
        """
        base = self.full_die_power if of_full_power else self.die_power
        return fraction * base

    def base_stack(self) -> Stack:
        """The stack with a default straight network installed."""
        return self.stack_with_network(self.baseline_network())

    def stack_with_network(
        self, network: "ChannelGrid | Sequence[ChannelGrid]"
    ) -> Stack:
        """Build the case's stack with ``network`` in every channel layer."""
        if isinstance(network, ChannelGrid):
            grids = [network.copy() for _ in range(self.n_dies)]
        else:
            grids = list(network)
            if len(grids) != self.n_dies:
                raise BenchmarkError(
                    f"case {self.number} has {self.n_dies} channel layers, "
                    f"got {len(grids)} networks"
                )
        return build_contest_stack(
            self.n_dies,
            self.channel_height,
            self.power_maps,
            lambda die: grids[die],
            self.nrows,
            self.ncols,
            self.cell_width,
        )

    def baseline_network(self, direction: int = 0, pitch: int = 2) -> ChannelGrid:
        """A straight-channel network respecting the case's restrictions."""
        return straight_network(
            self.nrows,
            self.ncols,
            direction=direction,
            pitch=pitch,
            cell_width=self.cell_width,
            restricted=self.restricted,
        )

    def tree_plan(
        self, direction: int = 0, leaves_per_tree: int = 4
    ) -> TreePlan:
        """The parameterized tree-network family for this case."""
        return plan_tree_bands(
            self.nrows,
            self.ncols,
            leaves_per_tree=leaves_per_tree,
            direction=direction,
            cell_width=self.cell_width,
            restricted=self.restricted,
        )

    def __repr__(self) -> str:
        return (
            f"Case({self.number}: {self.n_dies} dies, "
            f"h_c={self.channel_height * 1e6:.0f} um, "
            f"P={self.die_power:.3f} W, grid {self.nrows}x{self.ncols})"
        )


def load_case(
    number: int,
    scale: float = 1.0,
    grid_size: Optional[int] = None,
    scale_power: bool = True,
) -> Case:
    """Instantiate one benchmark case.

    Args:
        number: Case id, 1-5.
        scale: Shrinks the contest's 101-cell grid; e.g. ``scale=0.5`` gives
            a 51 x 51 footprint.
        grid_size: Explicit odd grid size; overrides ``scale``.
        scale_power: Scale the die power with the die area (default) so the
            power *density* -- what sets temperatures -- matches the contest.
            The temperature constraints then keep their meaning at any scale,
            and optimization trade-offs keep the paper's shape at lower cost.

    Returns:
        A fully populated :class:`Case`.
    """
    if number not in _TABLE2:
        raise BenchmarkError(f"unknown case {number}; known: {CASE_NUMBERS}")
    if grid_size is None:
        if scale <= 0:
            raise BenchmarkError(f"scale must be positive, got {scale}")
        grid_size = int(round(CONTEST_GRID_SIZE * scale))
    if grid_size < 9:
        raise BenchmarkError(f"grid size {grid_size} too small (need >= 9)")
    if grid_size % 2 == 0:
        grid_size += 1  # keep the contest's odd size (TSV pattern symmetry)

    dies, h_c, power, dt_star, tmax_star = _TABLE2[number]
    full_power = power
    if scale_power:
        power *= (grid_size / CONTEST_GRID_SIZE) ** 2
    restricted: Tuple[Rect, ...] = ()
    if number == 3:
        r0, c0, r1, c1 = _RESTRICTED_FRAC
        rect = Rect(
            int(r0 * grid_size),
            int(c0 * grid_size),
            max(int(r1 * grid_size), int(r0 * grid_size) + 1),
            max(int(c1 * grid_size), int(c0 * grid_size) + 1),
        )
        restricted = (rect,)
    return Case(
        number=number,
        n_dies=dies,
        channel_height=h_c,
        die_power=power,
        delta_t_star=dt_star,
        t_max_star=tmax_star,
        nrows=grid_size,
        ncols=grid_size,
        cell_width=CELL_WIDTH,
        restricted=restricted,
        matched_ports=(number == 4),
        power_maps=case_power_maps(number, grid_size, grid_size, power),
        full_die_power=full_power,
    )
