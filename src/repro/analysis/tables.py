"""Plain-text table formatting for the benchmark harness.

The benches print Tables 2-4 in the paper's row layout (``P_sys`` in kPa,
``T_max`` and ``DeltaT`` in K, ``W_pump`` in mW) so paper-vs-measured
comparisons read side by side.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..cooling.evaluation import EvaluationResult


def result_row(evaluation: Optional[EvaluationResult]) -> dict:
    """One Table 3/4 row from an evaluation (``None``/infeasible -> N/A)."""
    if evaluation is None or not evaluation.feasible:
        return {
            "P_sys (kPa)": "N/A",
            "T_max (K)": "N/A",
            "DeltaT (K)": "N/A",
            "W_pump (mW)": "N/A",
        }
    return {
        "P_sys (kPa)": f"{evaluation.p_sys / 1e3:.2f}",
        "T_max (K)": f"{evaluation.t_max:.1f}",
        "DeltaT (K)": f"{evaluation.delta_t:.2f}",
        "W_pump (mW)": f"{evaluation.w_pump * 1e3:.3f}",
    }


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def improvement_percent(baseline: float, ours: float) -> float:
    """Relative improvement of ``ours`` over ``baseline`` in percent."""
    if not (math.isfinite(baseline) and math.isfinite(ours)) or baseline == 0:
        return float("nan")
    return 100.0 * (baseline - ours) / baseline


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "N/A"
        if math.isinf(value):
            return "inf"
        return f"{value:.4g}"
    return str(value)
