"""2RM vs 4RM accuracy and runtime comparison (Fig. 9).

The paper sweeps benchmarks x network samples x thermal-cell sizes x
pressures (15600 simulations), scoring each 2RM run by the average relative
error of source-layer thermal nodes against 4RM, then averaging per cell
size and per network style.  Findings reproduced here:

* error grows with thermal-cell size and is smallest for straight channels;
* speed-up grows with cell size, saturating once solver time stops
  dominating (Fig. 9(b)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.stack import Stack
from ..materials import Coolant
from ..thermal.rc2 import RC2Simulator
from ..thermal.rc4 import RC4Simulator


@dataclass
class ModelComparison:
    """One 2RM-vs-4RM data point.

    Attributes:
        network: Sample name.
        style: Network style label (straight / tree / manual).
        tile_size: 2RM thermal-cell size in basic cells.
        p_sys: Pressure drop, Pa.
        error_abs: Mean per-node relative error of source-layer temperatures
            ``|T2 - T4| / T4`` (the paper's headline metric).
        error_rise: Same error normalized by the 4RM temperature *rise* above
            the inlet -- stricter, scale-free variant.
        time_4rm / time_2rm: Wall-clock solve time in seconds (one solve,
            excluding one-time mesh assembly).
        speedup: ``time_4rm / time_2rm``.
    """

    network: str
    style: str
    tile_size: int
    p_sys: float
    error_abs: float
    error_rise: float
    time_4rm: float
    time_2rm: float

    @property
    def speedup(self) -> float:
        """Solve-time ratio 4RM / 2RM."""
        return self.time_4rm / self.time_2rm if self.time_2rm > 0 else float("inf")


def compare_models(
    stack: Stack,
    coolant: Coolant,
    tile_sizes: Sequence[int],
    pressures: Sequence[float],
    network_name: str = "network",
    style: str = "manual",
    inlet_temperature: float = 300.0,
) -> List[ModelComparison]:
    """Compare 2RM against 4RM on one stack over tile sizes and pressures."""
    sim4 = RC4Simulator(stack, coolant, inlet_temperature=inlet_temperature)
    reference: Dict[float, object] = {}
    times4: Dict[float, float] = {}
    for p in pressures:
        start = time.perf_counter()
        reference[p] = sim4.solve(p)
        times4[p] = time.perf_counter() - start

    records: List[ModelComparison] = []
    for tile_size in tile_sizes:
        sim2 = RC2Simulator(
            stack,
            coolant,
            tile_size=tile_size,
            inlet_temperature=inlet_temperature,
        )
        for p in pressures:
            start = time.perf_counter()
            result2 = sim2.solve(p)
            elapsed2 = time.perf_counter() - start
            err_abs, err_rise = source_layer_errors(
                reference[p], result2, inlet_temperature
            )
            records.append(
                ModelComparison(
                    network=network_name,
                    style=style,
                    tile_size=tile_size,
                    p_sys=float(p),
                    error_abs=err_abs,
                    error_rise=err_rise,
                    time_4rm=times4[p],
                    time_2rm=elapsed2,
                )
            )
    return records


def source_layer_errors(result4, result2, inlet_temperature: float):
    """Per-node relative errors of source-layer temperatures.

    2RM fields are already expanded to cell resolution, so the comparison is
    cell-by-cell: the paper's metric ``mean(|T2 - T4| / T4)`` plus the
    rise-normalized variant ``mean(|T2 - T4|) / mean(T4 - T_in)``.
    """
    abs_errors = []
    rise_numer = []
    rise_denom = []
    for idx4, idx2 in zip(
        result4.source_layer_indices, result2.source_layer_indices
    ):
        t4 = result4.layer_fields[idx4]
        t2 = result2.layer_fields[idx2]
        diff = np.abs(t2 - t4)
        abs_errors.append(diff / t4)
        rise_numer.append(diff)
        rise_denom.append(t4 - inlet_temperature)
    error_abs = float(np.mean(np.concatenate([e.ravel() for e in abs_errors])))
    numer = float(np.mean(np.concatenate([e.ravel() for e in rise_numer])))
    denom = float(np.mean(np.concatenate([e.ravel() for e in rise_denom])))
    error_rise = numer / max(denom, 1e-12)
    return error_abs, error_rise


def aggregate_by(
    records: Sequence[ModelComparison],
    key: str,
) -> Dict[object, Dict[str, float]]:
    """Average error/speed-up grouped by one attribute (e.g. ``tile_size``)."""
    groups: Dict[object, List[ModelComparison]] = {}
    for record in records:
        groups.setdefault(getattr(record, key), []).append(record)
    out: Dict[object, Dict[str, float]] = {}
    for group_key, members in sorted(groups.items(), key=lambda kv: str(kv[0])):
        out[group_key] = {
            "error_abs": float(np.mean([m.error_abs for m in members])),
            "error_rise": float(np.mean([m.error_rise for m in members])),
            "speedup": float(np.mean([m.speedup for m in members])),
            "time_2rm": float(np.mean([m.time_2rm for m in members])),
            "time_4rm": float(np.mean([m.time_4rm for m in members])),
            "count": float(len(members)),
        }
    return out
