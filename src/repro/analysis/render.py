"""ASCII rendering of networks and temperature fields.

Terminal-friendly stand-ins for the paper's figures: Fig. 2/7-style network
plots (channels, TSVs, ports) and Fig. 10-style shaded temperature maps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GeometryError
from ..geometry.grid import ChannelGrid, PortKind, Side
from .maps import downsample

#: Shades from cold to hot for field rendering.
_SHADES = " .:-=+*#%@"


def render_network(grid: ChannelGrid, max_width: int = 120) -> str:
    """Character-art view of a cooling network.

    ``=`` liquid, ``.`` solid, ``o`` TSV; ``>``/``<``/``v``/``^`` mark inlet
    surfaces and ``I``/``O`` prefix rows/columns... ports are drawn in a
    one-cell margin around the pattern: ``>`` inlet flow entering, ``x``
    outlet flow leaving.
    """
    if grid.ncols + 2 > max_width:
        raise GeometryError(
            f"grid with {grid.ncols} columns does not fit in {max_width} chars; "
            "downsample or raise max_width"
        )
    inlet_cells = set()
    outlet_cells = set()
    for port in grid.ports:
        target = inlet_cells if port.kind is PortKind.INLET else outlet_cells
        target.add((port.side, port.index))

    def margin_char(side: Side, index: int) -> str:
        if (side, index) in inlet_cells:
            return ">"
        if (side, index) in outlet_cells:
            return "x"
        return " "

    lines = []
    top = " " + "".join(
        margin_char(Side.NORTH, c) for c in range(grid.ncols)
    )
    lines.append(top)
    for r in range(grid.nrows):
        row_chars = [margin_char(Side.WEST, r)]
        for c in range(grid.ncols):
            if grid.liquid[r, c]:
                row_chars.append("=")
            elif grid.tsv_mask[r, c]:
                row_chars.append("o")
            else:
                row_chars.append(".")
        row_chars.append(margin_char(Side.EAST, r))
        lines.append("".join(row_chars))
    bottom = " " + "".join(
        margin_char(Side.SOUTH, c) for c in range(grid.ncols)
    )
    lines.append(bottom)
    return "\n".join(lines)


def sparkline(values, width: int = 60) -> str:
    """One-line text sparkline of a numeric series (SA convergence traces).

    Infinite entries render as ``!`` (infeasible region); the series is
    resampled to at most ``width`` characters.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if len(series) > width:
        step = len(series) / width
        series = [series[int(i * step)] for i in range(width)]
    finite = [v for v in series if np.isfinite(v)]
    if not finite:
        return "!" * len(series)
    lo, hi = min(finite), max(finite)
    span = max(hi - lo, 1e-12)
    ramp = "▁▂▃▄▅▆▇█"
    chars = []
    for v in series:
        if not np.isfinite(v):
            chars.append("!")
            continue
        level = int((v - lo) / span * (len(ramp) - 1))
        chars.append(ramp[min(max(level, 0), len(ramp) - 1)])
    return "".join(chars)


def render_field(
    field: np.ndarray,
    max_width: int = 80,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> str:
    """Shaded character map of a temperature field.

    Cold cells render light, hot cells dense; NaN renders as space.  The
    field is block-averaged down to at most ``max_width`` columns.
    """
    arr = np.asarray(field, dtype=float)
    factor = max(1, int(np.ceil(arr.shape[1] / max_width)))
    if factor > 1:
        arr = downsample(arr, factor)
    lo = float(np.nanmin(arr)) if t_min is None else t_min
    hi = float(np.nanmax(arr)) if t_max is None else t_max
    span = max(hi - lo, 1e-12)
    lines = []
    for row in arr:
        chars = []
        for value in row:
            if not np.isfinite(value):
                chars.append(" ")
                continue
            level = int((value - lo) / span * (len(_SHADES) - 1))
            level = min(max(level, 0), len(_SHADES) - 1)
            chars.append(_SHADES[level])
        lines.append("".join(chars))
    legend = f"[{lo:.2f} K {_SHADES[0]!r} .. {_SHADES[-1]!r} {hi:.2f} K]"
    return "\n".join(lines + [legend])
