"""Parameter sensitivity analysis of a cooling system.

Quantifies how the paper's headline metrics respond to the physical knobs a
designer controls (channel height, coolant, Nusselt correlation, inlet
temperature, edge conductance): one-at-a-time sweeps around a baseline
operating point, reported as elasticities (percent change of metric per
percent change of parameter) so different knobs are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..constants import EDGE_CONDUCTANCE_FACTOR, INLET_TEMPERATURE, NUSSELT_NUMBER
from ..errors import ThermalError
from ..geometry.grid import ChannelGrid
from ..geometry.stack import Stack
from ..materials import Coolant
from ..thermal.rc2 import RC2Simulator

#: Knobs supported by :func:`sensitivity_sweep`.
PARAMETERS = (
    "channel_height",
    "nusselt",
    "edge_factor",
    "viscosity",
    "coolant_heat_capacity",
)


@dataclass
class SensitivityRecord:
    """Metric response to one parameter perturbation.

    Attributes:
        parameter: Which knob was moved.
        scale: Multiplier applied to the baseline value.
        t_max / delta_t / w_pump / q_sys: Metrics at the perturbed point.
    """

    parameter: str
    scale: float
    t_max: float
    delta_t: float
    w_pump: float
    q_sys: float


def sensitivity_sweep(
    base_stack: Stack,
    network: ChannelGrid,
    coolant: Coolant,
    p_sys: float,
    parameters: Sequence[str] = PARAMETERS,
    scales: Sequence[float] = (0.8, 1.0, 1.25),
    tile_size: int = 4,
    inlet_temperature: float = INLET_TEMPERATURE,
) -> List[SensitivityRecord]:
    """One-at-a-time sweep of physical parameters at a fixed pressure.

    Args:
        base_stack: Stack whose channel layers will carry ``network``.
        network: The cooling network to install.
        coolant: Baseline working fluid.
        p_sys: Operating pressure drop, Pa.
        parameters: Subset of :data:`PARAMETERS` to sweep.
        scales: Multipliers applied to each parameter (1.0 = baseline).
        tile_size: 2RM thermal-cell size used for the sweep.

    Returns:
        One record per (parameter, scale) pair, baseline included per
        parameter (scale 1.0).
    """
    unknown = set(parameters) - set(PARAMETERS)
    if unknown:
        raise ThermalError(
            f"unknown sensitivity parameters {sorted(unknown)}; "
            f"supported: {PARAMETERS}"
        )
    records: List[SensitivityRecord] = []
    for parameter in parameters:
        for scale in scales:
            simulator = _build(
                base_stack,
                network,
                coolant,
                parameter,
                scale,
                tile_size,
                inlet_temperature,
            )
            result = simulator.solve(p_sys)
            records.append(
                SensitivityRecord(
                    parameter=parameter,
                    scale=float(scale),
                    t_max=result.t_max,
                    delta_t=result.delta_t,
                    w_pump=result.w_pump,
                    q_sys=result.q_sys,
                )
            )
    return records


def elasticities(
    records: Sequence[SensitivityRecord],
    metric: str = "t_max",
    reference_temperature: float = INLET_TEMPERATURE,
) -> Dict[str, float]:
    """Percent metric change per percent parameter change, per parameter.

    Temperature metrics are measured as rises above the reference (an
    elasticity on absolute kelvin would be meaninglessly small).  Computed
    as the slope of a log-log least-squares fit over the sweep points.
    """
    by_parameter: Dict[str, List[SensitivityRecord]] = {}
    for record in records:
        by_parameter.setdefault(record.parameter, []).append(record)
    out: Dict[str, float] = {}
    for parameter, group in by_parameter.items():
        xs, ys = [], []
        for record in sorted(group, key=lambda r: r.scale):
            value = getattr(record, metric)
            if metric in ("t_max",):
                value = value - reference_temperature
            elif metric == "delta_t":
                pass  # already a difference
            if value <= 0 or record.scale <= 0:
                continue
            xs.append(np.log(record.scale))
            ys.append(np.log(value))
        if len(xs) >= 2:
            slope = float(np.polyfit(xs, ys, 1)[0])
            out[parameter] = slope
    return out


def _build(
    base_stack: Stack,
    network: ChannelGrid,
    coolant: Coolant,
    parameter: str,
    scale: float,
    tile_size: int,
    inlet_temperature: float,
) -> RC2Simulator:
    nusselt = NUSSELT_NUMBER
    edge_factor = EDGE_CONDUCTANCE_FACTOR
    stack = base_stack
    fluid = coolant
    if parameter == "channel_height":
        layers = list(base_stack.layers)
        new_layers = []
        for layer in layers:
            if hasattr(layer, "channel_height"):
                new_layers.append(
                    type(layer)(
                        layer.name,
                        layer.grid,
                        layer.channel_height * scale,
                        layer.wall_material,
                    )
                )
            else:
                new_layers.append(layer)
        stack = Stack(
            new_layers, base_stack.nrows, base_stack.ncols, base_stack.cell_width
        )
    elif parameter == "nusselt":
        nusselt = NUSSELT_NUMBER * scale
    elif parameter == "edge_factor":
        edge_factor = EDGE_CONDUCTANCE_FACTOR * scale
    elif parameter == "viscosity":
        fluid = replace(coolant, dynamic_viscosity=coolant.dynamic_viscosity * scale)
    elif parameter == "coolant_heat_capacity":
        fluid = replace(
            coolant,
            volumetric_heat_capacity=coolant.volumetric_heat_capacity * scale,
        )
    n_channels = len(stack.channel_layer_indices())
    stack = stack.with_channel_grids([network.copy() for _ in range(n_channels)])
    return RC2Simulator(
        stack,
        fluid,
        tile_size=tile_size,
        edge_factor=edge_factor,
        nusselt=nusselt,
        inlet_temperature=inlet_temperature,
    )
