"""Analysis and reporting utilities for the paper's figures and tables.

* :mod:`~repro.analysis.curves` -- pressure sweeps of ``T``, ``DeltaT`` and
  ``T_max`` (Figs. 5 and 6): turning points and curve-shape classification.
* :mod:`~repro.analysis.maps` -- temperature-map extraction and statistics
  (Fig. 10).
* :mod:`~repro.analysis.render` -- ASCII rendering of networks and fields
  (Figs. 2 and 7).
* :mod:`~repro.analysis.model_compare` -- the 2RM vs 4RM accuracy/runtime
  sweep (Fig. 9).
* :mod:`~repro.analysis.tables` -- text formatting of Tables 2-4 rows.
"""

from .curves import (
    PressureSweep,
    classify_gradient_curve,
    pressure_sweep,
    turning_point,
)
from .maps import gradient_decomposition, map_statistics, source_layer_map
from .model_compare import ModelComparison, compare_models
from .render import render_field, render_network, sparkline
from .sensitivity import SensitivityRecord, elasticities, sensitivity_sweep
from .tables import format_table, result_row
from .tradeoff import TradeoffPoint, front_dominates, pareto_front, tradeoff_curve

__all__ = [
    "ModelComparison",
    "PressureSweep",
    "classify_gradient_curve",
    "compare_models",
    "format_table",
    "gradient_decomposition",
    "map_statistics",
    "pressure_sweep",
    "SensitivityRecord",
    "elasticities",
    "render_field",
    "render_network",
    "sensitivity_sweep",
    "sparkline",
    "result_row",
    "source_layer_map",
    "TradeoffPoint",
    "front_dominates",
    "pareto_front",
    "tradeoff_curve",
    "turning_point",
]
