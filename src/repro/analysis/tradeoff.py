"""Pumping-power vs thermal-gradient trade-off curves.

The paper closes on a choice: "the problem formulation can be chosen
according to preference between W_pump and DeltaT" (Fig. 10).  For one
network, sweeping the pressure traces that trade-off directly; comparing
fronts of different networks shows *dominance* -- a network whose front lies
below another's is better at every operating preference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..cooling.system import CoolingSystem
from ..errors import SearchError


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point on a network's trade-off curve."""

    p_sys: float
    w_pump: float
    delta_t: float
    t_max: float

    def dominates(self, other: "TradeoffPoint", tol: float = 0.0) -> bool:
        """Weakly better on both objectives, strictly better on one."""
        better_w = self.w_pump <= other.w_pump + tol
        better_dt = self.delta_t <= other.delta_t + tol
        strictly = (
            self.w_pump < other.w_pump - tol
            or self.delta_t < other.delta_t - tol
        )
        return better_w and better_dt and strictly


def tradeoff_curve(
    system: CoolingSystem,
    pressures: Sequence[float],
    t_max_star: float = float("inf"),
) -> List[TradeoffPoint]:
    """Sample a network's (W_pump, DeltaT) trade-off over a pressure sweep.

    Operating points violating ``t_max_star`` are dropped (they are not
    admissible choices).
    """
    if len(pressures) < 2:
        raise SearchError("a trade-off curve needs at least two pressures")
    points = []
    for p in sorted(float(p) for p in pressures):
        if p <= 0:
            raise SearchError(f"pressures must be positive, got {p}")
        result = system.evaluate(p)
        if result.t_max > t_max_star:
            continue
        points.append(
            TradeoffPoint(
                p_sys=p,
                w_pump=system.w_pump(p),
                delta_t=result.delta_t,
                t_max=result.t_max,
            )
        )
    return points


def pareto_front(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """The non-dominated subset, sorted by increasing pumping power."""
    front = []
    for candidate in points:
        if not any(
            other.dominates(candidate) for other in points if other != candidate
        ):
            front.append(candidate)
    front.sort(key=lambda pt: pt.w_pump)
    return front


def front_dominates(
    front_a: Sequence[TradeoffPoint],
    front_b: Sequence[TradeoffPoint],
    tol: float = 1e-12,
) -> bool:
    """Whether every point of ``front_b`` is dominated by some point of
    ``front_a`` (network A is at least as good at every preference)."""
    if not front_a or not front_b:
        raise SearchError("fronts must be non-empty")
    return all(
        any(a.dominates(b, tol) for a in front_a) for b in front_b
    )
