"""Temperature-map extraction and statistics (Fig. 10).

The paper compares the bottom source layer's temperature map of case 1 under
the Problem 1 and Problem 2 solutions: the P1 map is hotter overall (lower
pumping power) with a larger spread; the P2 map is flatter at higher power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ThermalError
from ..thermal.result import ThermalResult


def source_layer_map(
    result: ThermalResult, which: int = 0
) -> np.ndarray:
    """The cell-resolution temperature field of one source layer.

    Args:
        result: A thermal solution.
        which: Source-layer ordinal, bottom to top (0 = bottom, the Fig. 10
            layer).
    """
    indices = result.source_layer_indices
    if not indices:
        raise ThermalError("result has no source layers")
    if not 0 <= which < len(indices):
        raise ThermalError(
            f"source layer ordinal {which} out of range "
            f"(have {len(indices)})"
        )
    return result.layer_fields[indices[which]]


@dataclass
class MapStatistics:
    """Summary of one temperature map."""

    t_min: float
    t_max: float
    t_mean: float
    t_range: float
    t_std: float

    def __str__(self) -> str:
        return (
            f"min={self.t_min:.2f} K  max={self.t_max:.2f} K  "
            f"mean={self.t_mean:.2f} K  range={self.t_range:.2f} K  "
            f"std={self.t_std:.2f} K"
        )


def map_statistics(field: np.ndarray) -> MapStatistics:
    """Robust statistics of a temperature field (NaN-aware)."""
    arr = np.asarray(field, dtype=float)
    if not np.isfinite(arr).any():
        raise ThermalError("temperature field contains no finite values")
    return MapStatistics(
        t_min=float(np.nanmin(arr)),
        t_max=float(np.nanmax(arr)),
        t_mean=float(np.nanmean(arr)),
        t_range=float(np.nanmax(arr) - np.nanmin(arr)),
        t_std=float(np.nanstd(arr)),
    )


def downsample(field: np.ndarray, factor: int) -> np.ndarray:
    """Block-average a field by an integer factor (ragged edges averaged)."""
    if factor < 1:
        raise ThermalError(f"downsample factor must be >= 1, got {factor}")
    arr = np.asarray(field, dtype=float)
    nrows, ncols = arr.shape
    row_starts = np.arange(0, nrows, factor)
    col_starts = np.arange(0, ncols, factor)
    sums = np.add.reduceat(np.add.reduceat(arr, row_starts, 0), col_starts, 1)
    counts = np.add.reduceat(
        np.add.reduceat(np.ones_like(arr), row_starts, 0), col_starts, 1
    )
    return sums / counts


def gradient_decomposition(result) -> dict:
    """Split the thermal gradient into its Section 3 factors.

    Returns a dict with:

    * ``delta_t`` -- the full metric (max source-layer range);
    * ``coolant_range`` -- the spread of coolant temperatures (factor 1,
      heat-up from inlet to outlet);
    * ``residual`` -- ``delta_t - coolant_range``, the share driven by power
      non-uniformity and channel placement (factors 2 and 3) that flow rate
      alone cannot remove.

    The decomposition explains scale effects: coolant heat-up scales with
    total power over flow, so shrinking a die (at constant power density)
    shrinks factor 1 and leaves hotspot contrast dominating.
    """
    from ..errors import ThermalError

    if not result.liquid_fields:
        raise ThermalError("result has no channel layers to decompose")
    coolant_min = min(
        float(np.nanmin(f)) for f in result.liquid_fields.values()
    )
    coolant_max = max(
        float(np.nanmax(f)) for f in result.liquid_fields.values()
    )
    coolant_range = coolant_max - coolant_min
    delta_t = result.delta_t
    return {
        "delta_t": delta_t,
        "coolant_range": coolant_range,
        "residual": max(delta_t - coolant_range, 0.0),
        "coolant_share": coolant_range / delta_t if delta_t > 0 else 0.0,
    }
