"""Pressure-response curves (Section 4.1, Figs. 5 and 6).

As the system pressure drop grows, every node temperature decreases
monotonically toward an asymptote; the knee of that curve is the node's
*turning point*, reached earlier in upstream regions.  The derived curves are
``h(P_sys) = T_max`` (monotone decreasing) and ``f(P_sys) = DeltaT`` (either
uni-modal or monotone decreasing) -- the structure Algorithms 2/3 exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cooling.system import CoolingSystem
from ..errors import SearchError

#: Curve shape labels.
SHAPE_UNIMODAL = "unimodal"
SHAPE_DECREASING = "decreasing"


@dataclass
class PressureSweep:
    """Metrics sampled over a pressure sweep.

    Attributes:
        pressures: Sampled ``P_sys`` values, Pa (ascending).
        t_max: Peak temperature per sample, K.
        delta_t: Thermal gradient per sample, K.
        w_pump: Pumping power per sample, W.
        node_curves: Optional per-probe temperature traces, keyed by label.
    """

    pressures: np.ndarray
    t_max: np.ndarray
    delta_t: np.ndarray
    w_pump: np.ndarray
    node_curves: dict

    def gradient_shape(self, rtol: float = 1e-3) -> str:
        """Classify ``f`` as uni-modal or monotone decreasing."""
        return classify_gradient_curve(self.pressures, self.delta_t, rtol)

    def peak_is_monotone(self, rtol: float = 1e-6) -> bool:
        """Whether ``h`` decreases monotonically over the sweep."""
        h = self.t_max
        return bool(np.all(np.diff(h) <= rtol * np.abs(h[:-1])))


def pressure_sweep(
    system: CoolingSystem,
    pressures: Sequence[float],
    probe_cells: Optional[Sequence[Tuple[str, int, int, int]]] = None,
) -> PressureSweep:
    """Sweep one cooling system across pressures.

    Args:
        system: The cooling system to probe.
        pressures: Pressure drops to sample, Pa; sorted ascending internally.
        probe_cells: Optional ``(label, layer_index, row, col)`` probes whose
            temperature traces are recorded (the Fig. 5 per-cell curves).

    Returns:
        A :class:`PressureSweep`.
    """
    ps = np.sort(np.asarray(list(pressures), dtype=float))
    if ps.size < 2:
        raise SearchError("a sweep needs at least two pressures")
    if (ps <= 0).any():
        raise SearchError("sweep pressures must be positive")
    t_max = np.empty(ps.size)
    delta_t = np.empty(ps.size)
    w_pump = np.empty(ps.size)
    node_curves: dict = {
        label: np.empty(ps.size) for label, _, _, _ in (probe_cells or [])
    }
    for i, p in enumerate(ps):
        result = system.evaluate(p)
        t_max[i] = result.t_max
        delta_t[i] = result.delta_t
        w_pump[i] = system.w_pump(p)
        for label, layer, row, col in probe_cells or []:
            node_curves[label][i] = result.layer_fields[layer][row, col]
    return PressureSweep(
        pressures=ps,
        t_max=t_max,
        delta_t=delta_t,
        w_pump=w_pump,
        node_curves=node_curves,
    )


def classify_gradient_curve(
    pressures: np.ndarray, delta_t: np.ndarray, rtol: float = 1e-3
) -> str:
    """Label a sampled ``f(P_sys)`` curve (Fig. 6's two possible shapes)."""
    dt = np.asarray(delta_t, dtype=float)
    if dt.size < 2:
        raise SearchError("need at least two samples to classify a curve")
    diffs = np.diff(dt)
    scale = max(float(np.max(dt) - np.min(dt)), 1e-12)
    rising = diffs > rtol * scale
    if not rising.any():
        return SHAPE_DECREASING
    return SHAPE_UNIMODAL


def turning_point(
    pressures: np.ndarray, temperatures: np.ndarray, knee_fraction: float = 0.95
) -> float:
    """The pressure where a node's cooling is ``knee_fraction`` complete.

    Temperatures decrease from ``T(p_min)`` toward an asymptote approximated
    by ``T(p_max)``; the turning point is the smallest sampled pressure whose
    temperature has covered ``knee_fraction`` of that total drop.  Upstream
    cells turn earlier than downstream cells (Fig. 5).
    """
    ps = np.asarray(pressures, dtype=float)
    ts = np.asarray(temperatures, dtype=float)
    if ps.size != ts.size or ps.size < 3:
        raise SearchError("need matching arrays of at least three samples")
    if not 0.0 < knee_fraction < 1.0:
        raise SearchError(f"knee fraction must be in (0, 1), got {knee_fraction}")
    drop_total = ts[0] - ts[-1]
    if drop_total <= 0:
        return float(ps[0])
    target = ts[0] - knee_fraction * drop_total
    below = np.nonzero(ts <= target)[0]
    return float(ps[below[0]]) if below.size else float(ps[-1])
