"""Lightweight named counters and wall-clock timers for the hot paths.

The solver-reuse layers (flow unit-solution cache, thermal factorization
reuse, cooling-system result memoization) and the parallel SA evaluation all
report what they did through this module, so benchmarks can prove that an
optimization actually removed work instead of guessing from wall clock alone:

    from repro import profiling

    profiling.reset()
    ...  # run something
    print(profiling.snapshot())
    # {"counters": {"flow.unit_cache_hits": 12, ...},
    #  "timers": {"thermal.factorize": {"count": 9, "seconds": 0.41}, ...}}

Instrumentation is process-local: worker processes of
:class:`repro.optimize.parallel.PersistentEvaluationPool` accumulate their
own counters, which the pool can fetch and fold into the parent's profiler
(:func:`merge`).  Overhead is one dict update plus a lock per event --
negligible next to a sparse factorization -- and :func:`set_enabled` turns
everything into no-ops for the truly paranoid.

Well-known names (see ``docs/SOLVER_CACHES.md`` for the cache semantics):

=============================  =============================================
``flow.unit_solves``           sparse pressure systems assembled + factorized
``flow.unit_cache_hits``       :class:`~repro.flow.network.FlowField` reuses
``thermal.factorizations``     ``splu`` calls on the thermal operator
``thermal.lu_cache_hits``      thermal solves that reused a factorization
``thermal.solves``             thermal linear solves (triangular sweeps)
``cooling.simulations``        distinct thermal simulations per network
``cooling.cache_hits``         pressure probes served from the result cache
``parallel.pool_starts``       persistent worker pools created
``parallel.batches``           candidate batches dispatched
``parallel.candidates``        candidates scored (parent-side count)
``parallel.infeasible``        candidates scored ``inf`` (illegal/infeasible)
``parallel.crashed``           candidates that raised unexpected exceptions
``parallel.pool_failures``     batch attempts lost to a pool-level failure
``parallel.timeouts``          batches that hit the no-progress timeout
``parallel.worker_lost``       batches that lost a worker process
``parallel.retries``           batch retries after a pool failure
``parallel.worker_replacements``  worker sets killed and respawned
``parallel.degraded``          pools that fell back to serial evaluation
``parallel.serial_fallback``   candidates scored on the degraded path
``faults.injected``            faults fired by :mod:`repro.faults` (also
                               split per kind: ``faults.injected.<kind>``)
``optimize.batch_cache_hits``  batch-mode candidates served from the
                               per-round memo instead of re-evaluated
``checkpoint.saves``           checkpoints written (boundary + cadence)
``checkpoint.loads``           checkpoints read back and validated
``checkpoint.resumes``         staged-flow runs that continued a prior run
=============================  =============================================
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Profiler:
    """A thread-safe bag of named counters and accumulated timers."""

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self.enabled = bool(enabled)
        self._counters: Dict[str, int] = {}
        self._timer_counts: Dict[str, int] = {}
        self._timer_seconds: Dict[str, float] = {}

    # -- events --------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` of wall clock against the timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._timer_counts[name] = self._timer_counts.get(name, 0) + count
            self._timer_seconds[name] = (
                self._timer_seconds.get(name, 0.0) + float(seconds)
            )

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into the timer ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # -- queries -------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def timer_seconds(self, name: str) -> float:
        """Accumulated seconds of a timer (0.0 when never used)."""
        with self._lock:
            return self._timer_seconds.get(name, 0.0)

    def snapshot(self) -> dict:
        """A JSON-ready copy: ``{"counters": {...}, "timers": {...}}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "count": self._timer_counts[name],
                        "seconds": self._timer_seconds[name],
                    }
                    for name in self._timer_counts
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, value)
        for name, stat in snapshot.get("timers", {}).items():
            self.add_time(name, stat["seconds"], count=stat["count"])

    def reset(self) -> None:
        """Zero every counter and timer."""
        with self._lock:
            self._counters.clear()
            self._timer_counts.clear()
            self._timer_seconds.clear()


#: The process-global profiler behind the module-level helpers.
GLOBAL = Profiler()


def increment(name: str, amount: int = 1) -> None:
    """Add to a counter on the global profiler."""
    GLOBAL.increment(name, amount)


def add_time(name: str, seconds: float, count: int = 1) -> None:
    """Record wall-clock seconds on the global profiler."""
    GLOBAL.add_time(name, seconds, count)


def timer(name: str):
    """Time a ``with`` body on the global profiler."""
    return GLOBAL.timer(name)


def counter(name: str) -> int:
    """Read one global counter."""
    return GLOBAL.counter(name)


def timer_seconds(name: str) -> float:
    """Read one global timer's accumulated seconds."""
    return GLOBAL.timer_seconds(name)


def snapshot() -> dict:
    """Snapshot the global profiler."""
    return GLOBAL.snapshot()


def merge(worker_snapshot: dict) -> None:
    """Merge a worker snapshot into the global profiler."""
    GLOBAL.merge(worker_snapshot)


def reset() -> None:
    """Zero the global profiler."""
    GLOBAL.reset()


def set_enabled(enabled: bool) -> bool:
    """Enable/disable global instrumentation; returns the previous state."""
    previous = GLOBAL.enabled
    GLOBAL.enabled = bool(enabled)
    return previous


def format_snapshot(snap: Optional[dict] = None) -> str:
    """Human-readable one-line-per-entry rendering of a snapshot."""
    snap = snapshot() if snap is None else snap
    lines: List[str] = []
    for name in sorted(snap.get("counters", {})):
        lines.append(f"{name:<32s} {snap['counters'][name]:>12d}")
    for name in sorted(snap.get("timers", {})):
        stat = snap["timers"][name]
        lines.append(
            f"{name:<32s} {stat['count']:>12d} calls "
            f"{stat['seconds']:>10.3f} s"
        )
    return "\n".join(lines)
