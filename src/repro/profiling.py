"""Lightweight named counters, timers, and histograms for the hot paths.

The solver-reuse layers (flow unit-solution cache, thermal factorization
reuse, cooling-system result memoization) and the parallel SA evaluation all
report what they did through this module, so benchmarks can prove that an
optimization actually removed work instead of guessing from wall clock alone:

    from repro import profiling

    profiling.reset()
    ...  # run something
    print(profiling.snapshot())
    # {"counters": {"flow.unit_cache_hits": 12, ...},
    #  "timers": {"thermal.factorize": {"count": 9, "seconds": 0.41}, ...},
    #  "histograms": {"thermal.factorize": {"bounds": [...], ...}}}

Beyond sum-only timers, every :meth:`Profiler.timer` block also feeds a
fixed-bucket :class:`Histogram`, so snapshots carry latency *distributions*
(p50/p90/p99) for the hot paths, not just totals -- a batch whose p99 is 40x
its p50 looks identical to a uniform one in a sum, and completely different
in a histogram.  Buckets are fixed and shared by construction, which makes
histogram merging associative: folding worker snapshots into the parent
gives the same result in any order.

Instrumentation is process-local: worker processes of
:class:`repro.optimize.parallel.PersistentEvaluationPool` accumulate their
own counters, which the pool can fetch and fold into the parent's profiler
(:func:`merge`).  Overhead is one dict update plus a lock per event --
negligible next to a sparse factorization -- and :func:`set_enabled` turns
everything into no-ops for the truly paranoid.

Metric names are dot-namespaced string literals declared in
:mod:`repro.telemetry.names` (enforced by lint rule R7); see
``docs/OBSERVABILITY.md`` for the full registry with semantics.

Well-known names (see ``docs/SOLVER_CACHES.md`` for the cache semantics):

=============================  =============================================
``flow.unit_solves``           sparse pressure systems assembled + factorized
``flow.unit_cache_hits``       :class:`~repro.flow.network.FlowField` reuses
``thermal.factorizations``     ``splu`` calls on the thermal operator
``thermal.lu_cache_hits``      thermal solves that reused a factorization
``thermal.solves``             thermal linear solves (triangular sweeps)
``cooling.simulations``        distinct thermal simulations per network
``cooling.cache_hits``         pressure probes served from the result cache
``search.probes``              pressure-search objective evaluations
``parallel.pool_starts``       persistent worker pools created
``parallel.batches``           candidate batches dispatched
``parallel.candidates``        candidates scored (parent-side count)
``parallel.infeasible``        candidates scored ``inf`` (illegal/infeasible)
``parallel.crashed``           candidates that raised unexpected exceptions
``parallel.pool_failures``     batch attempts lost to a pool-level failure
``parallel.timeouts``          batches that hit the no-progress timeout
``parallel.worker_lost``       batches that lost a worker process
``parallel.retries``           batch retries after a pool failure
``parallel.worker_replacements``  worker sets killed and respawned
``parallel.degraded``          pools that fell back to serial evaluation
``parallel.serial_fallback``   candidates scored on the degraded path
``parallel.batch_size``        histogram of candidates per dispatched batch
``faults.injected``            faults fired by :mod:`repro.faults` (also
                               split per kind: ``faults.injected.<kind>``)
``optimize.batch_cache_hits``  batch-mode candidates served from the
                               per-round memo instead of re-evaluated
``optimize.candidate``         timer + histogram over single-candidate
                               scoring (cache misses only)
``checkpoint.saves``           checkpoints written (boundary + cadence)
``checkpoint.loads``           checkpoints read back and validated
``checkpoint.resumes``         staged-flow runs that continued a prior run
=============================  =============================================
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import TelemetryError

#: [unit: s] Upper bucket bounds for latency histograms: log-spaced, four
#: buckets per decade, from 1 microsecond to 100 seconds (an implicit
#: overflow bucket catches anything slower).  Fixed bounds -- identical in
#: every process and every run -- are what make histogram merges associative
#: and snapshots comparable across BENCH_*.json generations.
LATENCY_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-24, 9)
)

#: [unit: 1] Upper bucket bounds for size/count histograms (batch sizes,
#: queue depths): powers of two from 1 to 4096.
SIZE_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    float(2**exponent) for exponent in range(0, 13)
)


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``bounds`` are *upper* bucket edges: observation ``v`` lands in the
    first bucket whose bound is ``>= v``; anything above the last bound
    lands in the implicit overflow bucket, so there are ``len(bounds) + 1``
    buckets in total.  Because the bounds are fixed at construction and two
    histograms only merge when their bounds match exactly, merging is
    associative and commutative -- fold worker snapshots in any order and
    the percentiles come out identical.

    Percentiles are estimated by linear interpolation inside the bucket
    containing the requested rank, clamped to the exact observed
    ``[min, max]`` envelope.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKET_BOUNDS):
        if len(bounds) < 1:
            raise TelemetryError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if any(b2 <= b1 for b1, b2 in zip(ordered, ordered[1:])):
            raise TelemetryError(
                "histogram bucket bounds must be strictly increasing"
            )
        self.bounds: Tuple[float, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    # -- recording -----------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same bounds) into this one."""
        if other.bounds != self.bounds:
            raise TelemetryError(
                f"cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} edges)"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    # -- queries -------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Estimated value at percentile ``q`` (0..100); 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self.vmin
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.vmax
                )
                fraction = (target - cumulative) / bucket_count
                value = lower + fraction * (upper - lower)
                return min(max(value, self.vmin), self.vmax)
            cumulative += bucket_count
        return self.vmax

    def snapshot(self) -> dict:
        """JSON-ready bucket state (mergeable via :meth:`from_snapshot`)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        """Rebuild a histogram from a :meth:`snapshot` payload."""
        histogram = cls(bounds=tuple(snap["bounds"]))
        counts = [int(c) for c in snap["counts"]]
        if len(counts) != len(histogram.counts):
            raise TelemetryError(
                f"histogram snapshot has {len(counts)} buckets, "
                f"expected {len(histogram.counts)}"
            )
        histogram.counts = counts
        histogram.count = int(snap["count"])
        histogram.total = float(snap["sum"])
        if histogram.count:
            histogram.vmin = float(snap["min"])
            histogram.vmax = float(snap["max"])
        return histogram

    def summary(self) -> dict:
        """Compact stats: count, sum, mean, min/max, p50/p90/p99."""
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p90": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class Profiler:
    """A thread-safe bag of named counters, timers, and histograms."""

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self.enabled = bool(enabled)
        self._counters: Dict[str, int] = {}
        self._timer_counts: Dict[str, int] = {}
        self._timer_seconds: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- events --------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` of wall clock against the timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._timer_counts[name] = self._timer_counts.get(name, 0) + count
            self._timer_seconds[name] = (
                self._timer_seconds.get(name, 0.0) + float(seconds)
            )

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = LATENCY_BUCKET_BOUNDS,
    ) -> None:
        """Record one observation into the histogram ``name``.

        ``bounds`` only matters on first use (the histogram is created
        with them); later observations must agree or the merge discipline
        would break, so a mismatch raises :class:`TelemetryError`.
        """
        if not self.enabled:
            return
        with self._lock:
            self._observe_locked(name, value, tuple(float(b) for b in bounds))

    def _observe_locked(
        self, name: str, value: float, bounds: Tuple[float, ...]
    ) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(bounds=bounds)
            self._histograms[name] = histogram
        elif histogram.bounds != bounds:
            raise TelemetryError(
                f"histogram {name!r} already exists with different bounds"
            )
        histogram.observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into timer + histogram ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._timer_counts[name] = self._timer_counts.get(name, 0) + 1
                self._timer_seconds[name] = (
                    self._timer_seconds.get(name, 0.0) + elapsed
                )
                self._observe_locked(name, elapsed, LATENCY_BUCKET_BOUNDS)

    # -- queries -------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def timer_seconds(self, name: str) -> float:
        """Accumulated seconds of a timer (0.0 when never used)."""
        with self._lock:
            return self._timer_seconds.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        """A copy of the histogram ``name`` (``None`` when never observed)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return None
            return Histogram.from_snapshot(histogram.snapshot())

    def snapshot(self) -> dict:
        """A JSON-ready copy: counters, timers, and (when any) histograms.

        The ``"histograms"`` key is only present when at least one
        histogram has been created, so counter/timer-only consumers (and
        pre-histogram snapshots riding in old checkpoints) see the same
        two-key shape as before.
        """
        with self._lock:
            out: dict = {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "count": self._timer_counts[name],
                        "seconds": self._timer_seconds[name],
                    }
                    for name in self._timer_counts
                },
            }
            if self._histograms:
                out["histograms"] = {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                }
            return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this one.

        Histograms merge bucket-wise (associative, order-independent);
        snapshots without a ``"histograms"`` key merge as before.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, value)
        for name, stat in snapshot.get("timers", {}).items():
            self.add_time(name, stat["seconds"], count=stat["count"])
        for name, hist_snap in snapshot.get("histograms", {}).items():
            if not self.enabled:
                return
            incoming = Histogram.from_snapshot(hist_snap)
            with self._lock:
                existing = self._histograms.get(name)
                if existing is None:
                    self._histograms[name] = incoming
                else:
                    existing.merge(incoming)

    def reset(self) -> None:
        """Zero every counter, timer, and histogram."""
        with self._lock:
            self._counters.clear()
            self._timer_counts.clear()
            self._timer_seconds.clear()
            self._histograms.clear()


#: The process-global profiler behind the module-level helpers.
GLOBAL = Profiler()


def increment(name: str, amount: int = 1) -> None:
    """Add to a counter on the global profiler."""
    GLOBAL.increment(name, amount)


def add_time(name: str, seconds: float, count: int = 1) -> None:
    """Record wall-clock seconds on the global profiler."""
    GLOBAL.add_time(name, seconds, count)


def observe(
    name: str, value: float, bounds: Sequence[float] = LATENCY_BUCKET_BOUNDS
) -> None:
    """Record a histogram observation on the global profiler."""
    GLOBAL.observe(name, value, bounds=bounds)


def timer(name: str):
    """Time a ``with`` body on the global profiler."""
    return GLOBAL.timer(name)


def counter(name: str) -> int:
    """Read one global counter."""
    return GLOBAL.counter(name)


def timer_seconds(name: str) -> float:
    """Read one global timer's accumulated seconds."""
    return GLOBAL.timer_seconds(name)


def histogram(name: str) -> Optional[Histogram]:
    """Read (a copy of) one global histogram."""
    return GLOBAL.histogram(name)


def snapshot() -> dict:
    """Snapshot the global profiler."""
    return GLOBAL.snapshot()


def merge(worker_snapshot: dict) -> None:
    """Merge a worker snapshot into the global profiler."""
    GLOBAL.merge(worker_snapshot)


def reset() -> None:
    """Zero the global profiler."""
    GLOBAL.reset()


def set_enabled(enabled: bool) -> bool:
    """Enable/disable global instrumentation; returns the previous state."""
    previous = GLOBAL.enabled
    GLOBAL.enabled = bool(enabled)
    return previous


def histogram_summaries(snap: Optional[dict] = None) -> Dict[str, dict]:
    """Per-histogram :meth:`Histogram.summary` stats of a snapshot.

    The compact form benchmarks and run logs embed: percentiles and
    count/sum per histogram, without the raw buckets.
    """
    snap = snapshot() if snap is None else snap
    return {
        name: Histogram.from_snapshot(hist_snap).summary()
        for name, hist_snap in snap.get("histograms", {}).items()
    }


def format_snapshot(
    snap: Optional[dict] = None, sort_by: str = "name"
) -> str:
    """Human-readable one-line-per-entry rendering of a snapshot.

    Args:
        snap: A :func:`snapshot` payload (the global one by default).
        sort_by: ``"name"`` for alphabetical sections, or ``"seconds"`` to
            sort timers by accumulated wall clock (descending) and counters
            by value (descending), so the hottest entries surface first.

    The name column widens to the longest name present (minimum 32), so
    long dotted names never shear the value columns out of alignment.
    """
    if sort_by not in ("name", "seconds"):
        raise TelemetryError(
            f"sort_by must be 'name' or 'seconds', got {sort_by!r}"
        )
    snap = snapshot() if snap is None else snap
    counters = snap.get("counters", {})
    timers = snap.get("timers", {})
    summaries = histogram_summaries(snap)
    names = [*counters, *timers, *summaries]
    width = max([32, *(len(name) for name in names)]) if names else 32

    if sort_by == "seconds":
        counter_names = sorted(counters, key=lambda n: (-counters[n], n))
        timer_names = sorted(
            timers, key=lambda n: (-timers[n]["seconds"], n)
        )
    else:
        counter_names = sorted(counters)
        timer_names = sorted(timers)

    lines: List[str] = []
    for name in counter_names:
        lines.append(f"{name:<{width}s} {counters[name]:>12d}")
    for name in timer_names:
        stat = timers[name]
        lines.append(
            f"{name:<{width}s} {stat['count']:>12d} calls "
            f"{stat['seconds']:>10.3f} s"
        )
    for name in sorted(summaries):
        stats = summaries[name]
        lines.append(
            f"{name:<{width}s} {stats['count']:>12d} obs   "
            f"p50 {stats['p50']:.3g} s  p90 {stats['p90']:.3g} s  "
            f"p99 {stats['p99']:.3g} s"
        )
    return "\n".join(lines)
