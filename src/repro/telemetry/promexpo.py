"""Dependency-free Prometheus text-format (0.0.4) exposition.

Renders the live :func:`repro.profiling.snapshot` -- counters, timers, and
fixed-bucket histograms -- plus point-in-time *gauge* samples (queue depth,
lease health, per-tenant admission) as the plain-text format every
Prometheus-compatible scraper understands.  The API server mounts the
result at ``GET /metrics`` (:mod:`repro.server.api`); ``repro top`` and the
CI text-format check re-read it through :func:`parse_prometheus_text`, so
the renderer and the parser in this one module define the whole wire
contract -- no client library on either side.

Mapping rules (mechanical, so the registry in
:mod:`repro.telemetry.names` stays the single source of truth):

* dots become underscores and everything gets a ``repro_`` prefix:
  ``server.jobs_completed`` -> ``repro_server_jobs_completed_total``;
* profiling **counters** render as Prometheus counters (``_total``);
* **timers** render as a pair of counters (``_seconds_total`` and
  ``_calls_total``) -- unless a histogram of the same name exists (every
  ``profiling.timer`` feeds one), in which case the histogram alone is
  rendered: its ``_sum``/``_count`` carry the same information;
* **histograms** render as native Prometheus histograms with *cumulative*
  ``le`` buckets ending in ``+Inf``; latency-bucket histograms get a
  ``_seconds`` unit suffix;
* **gauges** (built with :func:`gauge`, names registered in
  ``GAUGE_NAMES`` and checked by lint rule R7) render as gauges, with
  labels escaped per the exposition spec.

The module is pure data-in/text-out: no HTTP, no filesystem, no clock.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import TelemetryError
from ..profiling import LATENCY_BUCKET_BOUNDS

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "gauge",
    "histogram_quantile",
    "parse_prometheus_text",
    "render_prometheus",
]

#: The Content-Type ``GET /metrics`` answers with (exposition format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix every exported family carries (one namespace per service).
_PREFIX = "repro_"

#: Sample types the parser accepts after a ``# TYPE`` declaration.
_SAMPLE_TYPES = frozenset({"counter", "gauge", "histogram", "untyped"})


def gauge(name: str, value: float, **labels: str) -> Dict[str, Any]:
    """One gauge sample: registered dot-namespaced ``name`` plus labels.

    The first positional argument is checked against
    :data:`repro.telemetry.names.GAUGE_NAMES` by lint rule R7, exactly like
    ``profiling.increment`` -- collect gauges through this constructor and
    a typo'd name fails the build instead of forking the namespace.
    """
    return {
        "name": name,
        "value": float(value),
        "labels": {key: str(val) for key, val in labels.items()},
    }


def _family(name: str, suffix: str = "") -> str:
    return _PREFIX + name.replace(".", "_") + suffix


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def _number(value: float) -> str:
    """A float in exposition syntax (integers stay integral)."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _header(family: str, kind: str, help_text: str) -> List[str]:
    return [
        f"# HELP {family} {help_text}",
        f"# TYPE {family} {kind}",
    ]


def _render_histogram(name: str, snap: Mapping[str, Any]) -> List[str]:
    bounds = [float(b) for b in snap["bounds"]]
    counts = [int(c) for c in snap["counts"]]
    seconds = tuple(bounds) == LATENCY_BUCKET_BOUNDS
    family = _family(name, "_seconds" if seconds else "")
    lines = _header(
        family,
        "histogram",
        f"distribution of {name}" + (" [unit: s]" if seconds else ""),
    )
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        lines.append(
            f'{family}_bucket{{le="{_number(bound)}"}} {cumulative}'
        )
    cumulative += counts[-1] if len(counts) == len(bounds) + 1 else 0
    lines.append(f'{family}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{family}_sum {_number(float(snap['sum']))}")
    lines.append(f"{family}_count {int(snap['count'])}")
    return lines


def render_prometheus(
    snapshot: Optional[Mapping[str, Any]] = None,
    gauges: Iterable[Mapping[str, Any]] = (),
) -> str:
    """A profiling snapshot plus gauge samples as exposition text.

    Args:
        snapshot: A :func:`repro.profiling.snapshot` payload (pass ``None``
            for an empty one -- gauges alone still render).
        gauges: Samples built with :func:`gauge`; samples sharing a name
            become one family with one ``TYPE`` line and per-label rows.

    Families render sorted by exported name, so the output is
    deterministic for a given input -- diffs in CI stay readable.
    """
    snapshot = snapshot or {}
    counters: Mapping[str, Any] = snapshot.get("counters", {})
    timers: Mapping[str, Any] = snapshot.get("timers", {})
    histograms: Mapping[str, Any] = snapshot.get("histograms", {})

    blocks: List[Tuple[str, List[str]]] = []
    for name, value in counters.items():
        family = _family(name, "_total")
        lines = _header(family, "counter", f"total of {name}")
        lines.append(f"{family} {int(value)}")
        blocks.append((family, lines))
    for name, stat in timers.items():
        if name in histograms:
            continue  # the histogram's _sum/_count carry the same data
        family = _family(name, "_seconds_total")
        lines = _header(family, "counter", f"seconds spent in {name}")
        lines.append(f"{family} {_number(float(stat['seconds']))}")
        calls = _family(name, "_calls_total")
        lines += _header(calls, "counter", f"timed calls of {name}")
        lines.append(f"{calls} {int(stat['count'])}")
        blocks.append((family, lines))
    for name, snap in histograms.items():
        blocks.append((_family(name), _render_histogram(name, snap)))

    by_family: Dict[str, List[Mapping[str, Any]]] = {}
    for sample in gauges:
        by_family.setdefault(str(sample["name"]), []).append(sample)
    for name, samples in by_family.items():
        family = _family(name)
        lines = _header(family, "gauge", f"current {name}")
        for sample in samples:
            labels = _labels_text(sample.get("labels", {}))
            lines.append(f"{family}{labels} {_number(sample['value'])}")
        blocks.append((family, lines))

    blocks.sort(key=lambda block: block[0])
    out: List[str] = []
    for _, lines in blocks:
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


# -- parsing (tests, CI validity check, and ``repro top``) -----------------


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    index = 0
    while index < len(text):
        equals = text.index("=", index)
        key = text[index:equals].strip()
        if not key.replace("_", "").isalnum():
            raise TelemetryError(f"bad label name {key!r}")
        if equals + 1 >= len(text) or text[equals + 1] != '"':
            raise TelemetryError(f"label {key!r} value is not quoted")
        value: List[str] = []
        index = equals + 2
        while True:
            if index >= len(text):
                raise TelemetryError(f"unterminated label value for {key!r}")
            char = text[index]
            if char == "\\":
                escape = text[index + 1 : index + 2]
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escape, escape)
                )
                index += 2
                continue
            if char == '"':
                index += 1
                break
            value.append(char)
            index += 1
        labels[key] = "".join(value)
        if index < len(text) and text[index] == ",":
            index += 1
    return labels


def _parse_value(text: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError as exc:
        raise TelemetryError(f"bad sample value {text!r}") from exc


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into families (the CI validity check).

    Returns ``{family: {"type": ..., "help": ..., "samples": [...]}}``
    where each sample is ``{"name", "labels", "value"}``.  Validates the
    grammar strictly enough to catch a broken renderer: unknown line
    shapes, samples without a preceding ``TYPE``, non-numeric values, and
    histogram bucket series whose cumulative counts decrease all raise
    :class:`~repro.errors.TelemetryError`.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                return base
        return sample_name

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in _SAMPLE_TYPES:
                    raise TelemetryError(
                        f"unknown sample type {kind!r} in {line!r}"
                    )
                families.setdefault(
                    parts[2], {"type": kind, "help": "", "samples": []}
                )["type"] = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                families.setdefault(
                    parts[2], {"type": "untyped", "help": "", "samples": []}
                )["help"] = parts[3] if len(parts) > 3 else ""
            continue  # other comments (heartbeats) are legal and skipped
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise TelemetryError(f"unbalanced labels in {line!r}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close])
            value = _parse_value(line[close + 1 :])
        else:
            pieces = line.split()
            if len(pieces) != 2:
                raise TelemetryError(f"unparsable sample line {line!r}")
            sample_name, labels = pieces[0], {}
            value = _parse_value(pieces[1])
        family = family_of(sample_name)
        if family not in families:
            raise TelemetryError(
                f"sample {sample_name!r} has no preceding # TYPE line"
            )
        families[family]["samples"].append(
            {"name": sample_name, "labels": labels, "value": value}
        )

    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets = sorted(
            (
                (_parse_value(s["labels"]["le"]), s["value"])
                for s in data["samples"]
                if s["name"].endswith("_bucket")
            ),
        )
        if not buckets or buckets[-1][0] != float("inf"):
            raise TelemetryError(f"histogram {family} lacks a +Inf bucket")
        previous = 0.0
        for _, cumulative in buckets:
            if cumulative < previous:
                raise TelemetryError(
                    f"histogram {family} buckets are not cumulative"
                )
            previous = cumulative
    return families


def histogram_quantile(
    buckets: Sequence[Tuple[float, float]], q: float
) -> float:
    """Estimate quantile ``q`` (0..1) from cumulative ``(le, count)`` pairs.

    The inverse of :func:`render_prometheus`'s bucket encoding; linear
    interpolation inside the winning bucket, matching the semantics of
    :meth:`repro.profiling.Histogram.percentile` closely enough for a
    dashboard.  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(buckets)
    if not ordered:
        return 0.0
    total = ordered[-1][1]
    if total <= 0:
        return 0.0
    target = q * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, cumulative in ordered:
        if cumulative >= target:
            if bound == float("inf"):
                return previous_bound
            span = cumulative - previous_count
            if span <= 0:
                return bound
            fraction = (target - previous_count) / span
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_count = bound, cumulative
    return previous_bound
