"""Write the span buffer out as a Chrome trace-event JSON file.

The exported file loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``; see ``docs/OBSERVABILITY.md`` for the walkthrough.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..checkpoint.atomic import atomic_write_json
from .spans import GLOBAL, Tracer


def write_chrome_trace(
    path: Union[str, Path], tracer: Optional[Tracer] = None
) -> Path:
    """Export a tracer's buffer (the global one by default) to ``path``.

    Written atomically so a crash mid-export never leaves a torn trace
    file.  Returns the final path.
    """
    tracer = GLOBAL if tracer is None else tracer
    return atomic_write_json(path, tracer.to_chrome_trace())
