"""The JSONL run-event stream: typed records per SA iteration/round/stage.

A :class:`RunLog` appends one JSON object per line to a file via the
crash-safe :func:`repro.checkpoint.atomic.append_jsonl` primitive, so a run
killed mid-write can tear at most the final line (which
:func:`read_run_log` skips).  Records are typed: every one carries

- ``type``: an event name from :data:`repro.telemetry.names.EVENT_TYPES`
  (``run.start``, ``sa.iteration``, ``round.end``, ``run.end``, ...),
- ``seq``: a monotonically increasing per-log sequence number,
- ``t_wall`` / ``t_mono_ns``: wall-clock and monotonic timestamps,

plus whatever typed fields the emitter attached (temperature, acceptance
rate, best/current score, cache hit rates, fault/retry annotations...).
``metrics_interval`` additionally samples the profiling counters into
periodic ``run.metrics`` records.

Like the tracer, the run log is opt-in and global: the CLI (``--run-log``)
installs one with :func:`set_run_log`, instrumented code emits through
:func:`emit_event`, which is a no-op (one ``None`` check) when no log is
active.  The offline analyzer lives in :mod:`repro.telemetry.report`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..checkpoint.atomic import append_jsonl
from ..errors import TelemetryError


class Stopwatch:
    """Monotonic elapsed-seconds measurement for run-event payloads.

    Clock reads live here in the telemetry boundary so instrumented code
    (the SA runner, the staged flow) never touches ``time`` directly --
    timing is observability, not algorithm state, and the determinism lint
    (R9) holds non-telemetry modules to that.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since construction (monotonic, never negative)."""
        return time.monotonic() - self._start


class RunLog:
    """An append-only JSONL stream of typed run events.

    Args:
        path: Destination file; parent directories are created on first
            emit.  An existing file is appended to (a resumed run continues
            its log; :func:`read_run_log` keeps both generations).
        metrics_interval: When set, at most every this-many seconds an
            extra ``run.metrics`` record samples the global profiling
            counters and cache hit rates alongside whatever event
            triggered it.
        fsync: Forwarded to :func:`append_jsonl`; ``False`` trades
            per-record durability for throughput on chatty logs.
    """

    def __init__(
        self,
        path: Union[str, Path],
        metrics_interval: Optional[float] = None,
        fsync: bool = True,
    ):
        self.path = Path(path)
        self.metrics_interval = metrics_interval
        self.fsync = fsync
        self._seq = 0
        self._last_metrics = time.monotonic()

    def emit(self, event_type: str, **fields: Any) -> None:
        """Append one typed record (and maybe a ``run.metrics`` sample)."""
        self._append(event_type, fields)
        if (
            self.metrics_interval is not None
            and event_type != "run.metrics"
            and time.monotonic() - self._last_metrics >= self.metrics_interval
        ):
            self._last_metrics = time.monotonic()
            self._append("run.metrics", self._metrics_fields())

    def _append(self, event_type: str, fields: Dict[str, Any]) -> None:
        record = {
            "type": event_type,
            "seq": self._seq,
            "t_wall": time.time(),
            "t_mono_ns": time.monotonic_ns(),
            **fields,
        }
        self._seq += 1
        append_jsonl(self.path, record, fsync=self.fsync)

    def _metrics_fields(self) -> Dict[str, Any]:
        """The profiling counters + derived cache hit rates of the moment."""
        from .. import profiling  # lazy: keep import graph acyclic

        snap = profiling.snapshot()
        counters = snap["counters"]
        fields: Dict[str, Any] = {"counters": counters}
        rates = {}
        for label, hits, misses in (
            ("flow_unit", "flow.unit_cache_hits", "flow.unit_solves"),
            ("thermal_lu", "thermal.lu_cache_hits", "thermal.factorizations"),
            ("cooling", "cooling.cache_hits", "cooling.simulations"),
            ("batch_memo", "optimize.batch_cache_hits", "parallel.candidates"),
        ):
            n_hits = counters.get(hits, 0)
            n_total = n_hits + counters.get(misses, 0)
            if n_total:
                rates[label] = n_hits / n_total
        if rates:
            fields["cache_hit_rates"] = rates
        return fields


#: The process-global run log (``None`` when run-event logging is off).
_ACTIVE: Optional[RunLog] = None


def set_run_log(log: Optional[RunLog]) -> Optional[RunLog]:
    """Install (or clear, with ``None``) the global run log; returns prev."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = log
    return previous


def active_run_log() -> Optional[RunLog]:
    """The installed global run log, if any."""
    return _ACTIVE


def emit_event(event_type: str, **fields: Any) -> None:
    """Emit a typed record to the global run log; no-op when none is set."""
    if _ACTIVE is not None:
        _ACTIVE.emit(event_type, **fields)


def read_run_log(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL run log, tolerating only a torn *final* line.

    A truncated last record is the expected signature of a crash mid-append
    and is silently dropped; malformed JSON anywhere earlier means the file
    is not a run log (or was corrupted some other way) and raises
    :class:`~repro.errors.TelemetryError`.
    """
    path = Path(path)
    if not path.exists():
        raise TelemetryError(f"run log not found: {path}")
    records: List[dict] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                break  # torn final line from a crash mid-append
            raise TelemetryError(
                f"{path}:{index + 1}: corrupt run-log record: {exc}"
            ) from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TelemetryError(
                f"{path}:{index + 1}: run-log records must be objects "
                f"with a 'type' field"
            )
        records.append(record)
    return records
