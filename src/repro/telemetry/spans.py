"""Nested span tracing with a bounded in-memory buffer.

A *span* is one timed region of work with a dot-namespaced name, free-form
attributes, and process/thread identity:

    from repro import telemetry

    with telemetry.span("thermal.rc2.solve", cells=n_cells):
        ...

Spans nest naturally (the Chrome trace viewer reconstructs the stack from
the enclosing time intervals per thread), timestamps come from
``time.monotonic_ns()`` -- ``CLOCK_MONOTONIC`` is shared across processes
on Linux, so worker spans and parent spans land on one comparable
timeline -- and everything is held in a bounded in-memory buffer drained
either into a Chrome trace-event file at the end of the run
(:func:`repro.telemetry.export.write_chrome_trace`) or across the process
boundary by the evaluation pool (:func:`drain_spans` in the worker,
:func:`extend_spans` in the parent).

Tracing is **off by default** and the disabled path is a single attribute
check returning a shared no-op context manager -- the same near-zero-cost
discipline as :mod:`repro.profiling` and :mod:`repro.faults`.

Span names are literals from the registry in :mod:`repro.telemetry.names`
(lint rule R7).
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Attribute values are coerced to JSON-safe scalars with this check.
_JSON_SCALARS = (str, int, float, bool, type(None))

#: Default bound on buffered spans per process; beyond it new spans are
#: counted as dropped instead of recorded, so a runaway trace cannot eat
#: the heap.
DEFAULT_SPAN_CAPACITY = 100_000


def _clean_args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce span attributes to JSON-serializable scalars."""
    return {
        key: value if isinstance(value, _JSON_SCALARS) else str(value)
        for key, value in attrs.items()
    }


#: Per-thread state: the *lane* a thread records its spans under.  Lanes
#: give one process's logical actors (API listener, worker threads) their
#: own named rows in the exported trace -- threads of one service process
#: would otherwise collapse into a single anonymous process row.
_THREAD_STATE = threading.local()


def set_thread_lane(lane: Optional[str]) -> None:
    """Name the lane this thread's spans render under (``None`` clears)."""
    _THREAD_STATE.lane = lane


def current_lane() -> Optional[str]:
    """This thread's lane, or ``None`` when unset."""
    return getattr(_THREAD_STATE, "lane", None)


def _lane_pid(pid: int, lane: str) -> int:
    """A stable synthetic pid for a ``(pid, lane)`` row.

    Real Linux pids stay below ``2**22``; offsetting the CRC into the
    ``2**30`` range keeps synthetic rows from colliding with any real
    process while staying deterministic across exports.
    """
    return 0x40000000 + zlib.crc32(f"{pid}:{lane}".encode("utf-8"))


class SpanHandle:
    """The context-manager interface :meth:`Tracer.span` hands out."""

    __slots__ = ()

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = SpanHandle()


class _LiveSpan(SpanHandle):
    """A span being timed; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start = 0

    def __enter__(self) -> "_LiveSpan":
        self._start = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.monotonic_ns()
        self._tracer.record(
            {
                "name": self._name,
                "ph": "X",
                "ts": self._start,
                "dur": end - self._start,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "lane": current_lane(),
                "args": self._args,
            }
        )


class Tracer:
    """A thread-safe, bounded buffer of completed spans (off by default)."""

    def __init__(
        self,
        enabled: bool = False,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        trace_id: Optional[str] = None,
    ):
        self._lock = threading.Lock()
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.trace_id = trace_id
        self._spans: List[dict] = []
        self.dropped = 0

    def span(self, name: str, **attrs: Any) -> SpanHandle:
        """A context manager timing its body as span ``name``.

        Attributes become the span's ``args`` in the exported trace; values
        that are not JSON scalars are stringified.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, _clean_args(attrs))

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker (retry fired, resume point...)."""
        if not self.enabled:
            return
        self.record(
            {
                "name": name,
                "ph": "i",
                "ts": time.monotonic_ns(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "lane": current_lane(),
                "args": _clean_args(attrs),
            }
        )

    def record(self, span_dict: dict) -> None:
        """Append one finished span/marker, honouring the capacity bound."""
        with self._lock:
            if len(self._spans) >= self.capacity:
                self.dropped += 1
                return
            self._spans.append(span_dict)

    def extend(self, spans: List[dict]) -> None:
        """Fold spans drained from another process into this buffer."""
        if not self.enabled or not spans:
            return
        with self._lock:
            room = self.capacity - len(self._spans)
            if room <= 0:
                self.dropped += len(spans)
                return
            self._spans.extend(spans[:room])
            self.dropped += max(0, len(spans) - room)

    def drain(self) -> List[dict]:
        """Remove and return every buffered span (worker -> parent hop)."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def snapshot(self) -> List[dict]:
        """A copy of the buffered spans, leaving the buffer intact."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Discard all buffered spans and reset the dropped counter."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def to_chrome_trace(self) -> dict:
        """The buffered spans as a Chrome trace-event JSON object.

        Loadable in Perfetto / ``chrome://tracing``: ``ph: "X"`` complete
        events with microsecond ``ts``/``dur``, one named process row per
        pid (``parent`` for this process, ``worker-<pid>`` otherwise), and
        the first name segment as the event category.

        Threads that declared a *lane* (:func:`set_thread_lane` -- the API
        listener and worker threads of one service process) get their own
        synthetic process rows named after the lane, so a single-process
        service still renders as distinguishable API / worker / pool-worker
        timelines.  When :attr:`trace_id` is set it rides in every process
        row's metadata and in ``otherData`` -- the stitching key across the
        API, worker, and pool-worker exports of one job.
        """
        events: List[dict] = []
        rows: List[tuple] = []
        this_pid = os.getpid()
        for span_dict in self.snapshot():
            pid = span_dict["pid"]
            lane = span_dict.get("lane")
            if pid != this_pid:
                # A foreign span carrying a lane is a forked pool worker
                # that inherited the spawning thread's lane; render it as
                # its own worker-<pid> row, not under the parent's lane.
                lane = None
            display_pid = pid if lane is None else _lane_pid(pid, lane)
            if (display_pid, pid, lane) not in rows:
                rows.append((display_pid, pid, lane))
            event = {
                "name": span_dict["name"],
                "cat": span_dict["name"].split(".", 1)[0],
                "ph": span_dict["ph"],
                "ts": span_dict["ts"] / 1000.0,
                "pid": display_pid,
                "tid": span_dict["tid"],
                "args": span_dict["args"],
            }
            if span_dict["ph"] == "X":
                event["dur"] = span_dict["dur"] / 1000.0
            else:
                event["s"] = "p"
            events.append(event)
        for display_pid, pid, lane in rows:
            if lane is not None:
                label = lane
            elif pid == this_pid:
                label = "parent"
            else:
                label = f"worker-{pid}"
            args: Dict[str, Any] = {"name": label}
            if self.trace_id is not None:
                args["trace_id"] = self.trace_id
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": display_pid,
                    "tid": 0,
                    "args": args,
                }
            )
        trace: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }
        if self.trace_id is not None:
            trace["otherData"] = {"trace_id": self.trace_id}
        return trace


#: The process-global tracer behind the module-level helpers.
GLOBAL = Tracer()


def span(name: str, **attrs: Any) -> SpanHandle:
    """Time a ``with`` body as a span on the global tracer."""
    return GLOBAL.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record a zero-duration marker on the global tracer."""
    GLOBAL.instant(name, **attrs)


def set_tracing(enabled: bool) -> bool:
    """Enable/disable the global tracer; returns the previous state."""
    previous = GLOBAL.enabled
    GLOBAL.enabled = bool(enabled)
    return previous


def is_tracing() -> bool:
    """Whether the global tracer is recording."""
    return GLOBAL.enabled


def drain_spans() -> List[dict]:
    """Drain the global tracer (used by workers shipping spans home)."""
    return GLOBAL.drain()


def extend_spans(spans: Optional[List[dict]]) -> None:
    """Fold worker spans into the global tracer."""
    if spans:
        GLOBAL.extend(spans)


def clear_spans() -> None:
    """Discard everything in the global tracer."""
    GLOBAL.clear()


def spans_snapshot() -> List[dict]:
    """A copy of the global tracer's buffered spans."""
    return GLOBAL.snapshot()


def to_chrome_trace() -> dict:
    """The global tracer's buffer as Chrome trace-event JSON."""
    return GLOBAL.to_chrome_trace()


@dataclass(frozen=True)
class TelemetryConfig:
    """The picklable slice of telemetry state workers must mirror.

    Shipped in the evaluation pool's initializer arguments (like the fault
    plan) so respawned workers re-arm tracing identically; also part of the
    pool cache key so flipping tracing rebuilds the pool.
    """

    trace: bool = False
    span_capacity: int = DEFAULT_SPAN_CAPACITY
    trace_id: Optional[str] = None

    @classmethod
    def current(cls) -> "TelemetryConfig":
        """The parent process's live configuration."""
        return cls(
            trace=GLOBAL.enabled,
            span_capacity=GLOBAL.capacity,
            trace_id=GLOBAL.trace_id,
        )

    def apply(self) -> None:
        """Arm this process's global tracer to match (worker-side)."""
        GLOBAL.enabled = self.trace
        GLOBAL.capacity = self.span_capacity
        GLOBAL.trace_id = self.trace_id
