"""The documented registry of telemetry names (spans, metrics, run events).

Every span, counter, timer, histogram, and run-event type used anywhere in
the repo is declared here, once, as a dot-namespaced string.  The R7 lint
rule (``repro.lint``, telemetry hygiene) checks every
``profiling.increment(...)`` / ``profiling.timer(...)`` /
``telemetry.span(...)`` / ``runlog.emit_event(...)`` call site against this
registry, so a typo'd or undocumented name fails the build instead of
silently forking the metric namespace.  ``docs/OBSERVABILITY.md`` renders
the same registry as prose tables.

Naming convention: ``<subsystem>.<noun_or_verb>[.<qualifier>]`` --
lowercase, underscores inside segments, dots between them, at least two
segments.  Dynamic suffixes (per-kind fault counters) are declared as
wildcard prefixes (``faults.injected.*``) and must be built from an f-string
whose literal prefix ends at the wildcard boundary.

This module is deliberately dependency-free (imported by the lint rule and
by ``repro.telemetry``); keep it pure data.
"""

from __future__ import annotations

from typing import FrozenSet

#: Span names recorded by the tracer (``telemetry.span`` / ``instant``).
SPAN_NAMES: FrozenSet[str] = frozenset(
    {
        "checkpoint.load",
        "checkpoint.resume",
        "checkpoint.save",
        "cooling.evaluate_problem1",
        "cooling.evaluate_problem2",
        "flow.unit_solve",
        "linalg.factorize",
        "optimize.direction",
        "optimize.final_eval",
        "optimize.rescore",
        "optimize.round",
        "portfolio.optimizer",
        "portfolio.promote",
        "server.http",
        "server.job",
        "parallel.batch",
        "parallel.candidate",
        "parallel.degraded",
        "parallel.retry",
        "parallel.timeout",
        "parallel.worker_lost",
        "thermal.factorize",
        "thermal.rc2.solve",
        "thermal.rc4.solve",
        "thermal.solve",
    }
)

#: Counter / timer / histogram names on :mod:`repro.profiling`.
METRIC_NAMES: FrozenSet[str] = frozenset(
    {
        "checkpoint.loads",
        "checkpoint.resumes",
        "checkpoint.saves",
        "cooling.cache_hits",
        "cooling.simulations",
        "faults.injected",
        "cooling.exact_recomputes",
        "flow.unit_cache_hits",
        "flow.unit_solve",
        "flow.unit_solves",
        "linalg.factorizations",
        "linalg.factorize",
        "linalg.incremental_fallbacks",
        "linalg.incremental_rebuilds",
        "linalg.incremental_solve",
        "linalg.incremental_solves",
        "linalg.incremental_updates",
        "linalg.shift_bases",
        "optimize.batch_cache_hits",
        "optimize.candidate",
        "parallel.batch",
        "parallel.batch_size",
        "parallel.batches",
        "parallel.candidates",
        "parallel.crashed",
        "parallel.degraded",
        "parallel.infeasible",
        "parallel.pool_failures",
        "parallel.pool_starts",
        "parallel.retries",
        "parallel.serial_fallback",
        "parallel.timeouts",
        "parallel.worker_lost",
        "parallel.worker_replacements",
        "portfolio.high_evals",
        "portfolio.low_evals",
        "portfolio.promotions",
        "search.probes",
        "server.http_requests",
        "server.http_rejects",
        "server.job_duration",
        "server.jobs_completed",
        "server.jobs_failed",
        "server.jobs_quarantined",
        "server.jobs_submitted",
        "server.lease_reclaims",
        "server.orphaned_leases_cleared",
        "thermal.factorizations",
        "thermal.factorize",
        "thermal.lu_cache_hits",
        "thermal.solve",
        "thermal.solves",
    }
)

#: Typed run-event records emitted into the JSONL run log.
EVENT_TYPES: FrozenSet[str] = frozenset(
    {
        "checkpoint.resume",
        "direction.end",
        "job.claimed",
        "job.completed",
        "job.failed",
        "job.interrupted",
        "job.lease_reclaimed",
        "job.orphaned_lease_cleared",
        "job.quarantined",
        "job.resumed",
        "job.submitted",
        "pool.degraded",
        "pool.retry",
        "portfolio.optimizer.end",
        "portfolio.optimizer.start",
        "portfolio.promotion",
        "portfolio.resume",
        "portfolio.round",
        "round.end",
        "run.end",
        "run.metrics",
        "run.start",
        "sa.iteration",
        "server.drain",
        "stage.end",
        "stream.end",
    }
)

#: Point-in-time gauge samples exposed at ``GET /metrics`` (built with
#: :func:`repro.telemetry.promexpo.gauge`; the server's
#: ``JobStore.collect_gauges`` is the one collection point).
GAUGE_NAMES: FrozenSet[str] = frozenset(
    {
        "server.active_leases",
        "server.expired_leases",
        "server.oldest_pending_age_s",
        "server.queue_depth",
        "server.tenant_active_jobs",
        "server.worker_heartbeat_age_s",
    }
)

#: Dynamic name families: an f-string whose literal prefix is
#: ``"<prefix>."`` is accepted for a registered ``"<prefix>.*"`` entry.
WILDCARD_PREFIXES: FrozenSet[str] = frozenset(
    {"faults.injected.*", "linalg.backend.*"}
)

#: Every registered literal name (the R7 lookup set).
REGISTERED_NAMES: FrozenSet[str] = (
    SPAN_NAMES | METRIC_NAMES | EVENT_TYPES | GAUGE_NAMES
)


def is_registered(name: str) -> bool:
    """Whether ``name`` is declared here (exactly or under a wildcard)."""
    if name in REGISTERED_NAMES:
        return True
    return matches_wildcard(name)


def matches_wildcard(name: str) -> bool:
    """Whether a registered ``prefix.*`` wildcard covers ``name``."""
    for pattern in WILDCARD_PREFIXES:
        if name.startswith(pattern[:-1]):
            return True
    return False
