"""Offline run-log analyzer: ``python -m repro.telemetry report run.jsonl``.

Renders a human-readable summary of one JSONL run log (run configuration,
per-round acceptance rate and best-score trajectory, candidate-evaluation
latency percentiles, fault/retry annotations) and, with ``--compare``,
a side-by-side delta of two runs -- e.g. a fault-free baseline against a
chaos run, or two scheduler configurations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .runlog import read_run_log

#: Histograms whose percentiles the summary surfaces, in display order.
_LATENCY_HISTOGRAMS = ("optimize.candidate", "parallel.batch")


def summarize_run(records: List[dict]) -> Dict[str, Any]:
    """Distill a run log's records into one summary dict.

    Keys: ``start`` / ``end`` (the ``run.start`` / ``run.end`` records or
    ``None``), ``rounds`` (the ``round.end`` records in order), ``resumes``
    (``checkpoint.resume`` records), ``iterations`` (count of
    ``sa.iteration`` records), ``pool_retries`` / ``pool_degraded``
    (counts), and ``histograms`` (the ``run.end`` histogram summaries,
    ``{}`` when absent).
    """
    by_type: Dict[str, List[dict]] = {}
    for record in records:
        by_type.setdefault(record["type"], []).append(record)
    end = by_type.get("run.end", [None])[-1]
    return {
        "start": by_type.get("run.start", [None])[0],
        "end": end,
        "rounds": by_type.get("round.end", []),
        "stages": by_type.get("stage.end", []),
        "resumes": by_type.get("checkpoint.resume", []),
        "iterations": len(by_type.get("sa.iteration", [])),
        "pool_retries": len(by_type.get("pool.retry", [])),
        "pool_degraded": len(by_type.get("pool.degraded", [])),
        "histograms": (end or {}).get("histograms", {}) or {},
    }


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f} ms"


def _render_summary(label: str, summary: Dict[str, Any]) -> List[str]:
    lines = [f"== {label} =="]
    start = summary["start"]
    if start:
        config_keys = (
            "problem", "case_number", "grid_size", "seed", "directions",
            "stages", "n_workers", "batch_size", "fingerprint",
        )
        config = ", ".join(
            f"{key}={start[key]}" for key in config_keys if key in start
        )
        lines.append(f"run: {config}")
    else:
        lines.append("run: (no run.start record)")
    for resume in summary["resumes"]:
        cursor = ", ".join(
            f"{key}={resume[key]}"
            for key in (
                "d_index", "stage_index", "round_index", "sa_iteration",
                "fingerprint",
            )
            if key in resume
        )
        lines.append(f"resumed: {cursor}")

    end = summary["end"]
    if end:
        lines.append(
            f"result: score={end.get('score')} "
            f"feasible={end.get('feasible')} "
            f"simulations={end.get('total_simulations')} "
            f"seconds={end.get('seconds', 0.0):.2f}"
        )
    else:
        lines.append("result: (no run.end record -- run incomplete?)")

    rounds = summary["rounds"]
    if rounds:
        lines.append(
            f"{'direction':>9s} {'stage':>16s} {'round':>5s} "
            f"{'best_cost':>14s} {'accept%':>8s} {'iters':>6s}"
        )
        for record in rounds:
            acceptance = record.get("acceptance_rate", 0.0) * 100.0
            best = record.get("best_cost")
            best_text = f"{best:.6g}" if isinstance(best, float) else str(best)
            lines.append(
                f"{record.get('d_index', '?'):>9} "
                f"{str(record.get('stage', '?')):>16s} "
                f"{record.get('round', '?'):>5} "
                f"{best_text:>14s} {acceptance:>7.1f}% "
                f"{record.get('iterations', '?'):>6}"
            )
        trajectory = " -> ".join(
            f"{r['best_cost']:.6g}"
            for r in rounds
            if isinstance(r.get("best_cost"), (int, float))
        )
        lines.append(f"best-score trajectory: {trajectory}")
    else:
        lines.append(f"rounds: none logged ({summary['iterations']} sa.iteration records)")

    for name in _LATENCY_HISTOGRAMS:
        stats = summary["histograms"].get(name)
        if stats and stats.get("count"):
            lines.append(
                f"{name}: n={stats['count']} "
                f"p50={_fmt_ms(stats['p50'])} "
                f"p90={_fmt_ms(stats['p90'])} "
                f"p99={_fmt_ms(stats['p99'])}"
            )

    if summary["pool_retries"] or summary["pool_degraded"]:
        lines.append(
            f"pool resilience: {summary['pool_retries']} retries, "
            f"{summary['pool_degraded']} degradations to serial"
        )
    return lines


def _delta(a: Optional[float], b: Optional[float]) -> str:
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return "n/a"
    return f"{b - a:+.6g}"


def _render_compare(
    summary_a: Dict[str, Any], summary_b: Dict[str, Any]
) -> List[str]:
    lines = ["== compare (B - A) =="]
    end_a = summary_a["end"] or {}
    end_b = summary_b["end"] or {}
    lines.append(f"score delta:       {_delta(end_a.get('score'), end_b.get('score'))}")
    lines.append(
        f"seconds delta:     {_delta(end_a.get('seconds'), end_b.get('seconds'))}"
    )
    lines.append(
        f"simulations delta: "
        f"{_delta(end_a.get('total_simulations'), end_b.get('total_simulations'))}"
    )
    for name in _LATENCY_HISTOGRAMS:
        stats_a = summary_a["histograms"].get(name) or {}
        stats_b = summary_b["histograms"].get(name) or {}
        if stats_a.get("count") or stats_b.get("count"):
            lines.append(
                f"{name} p50 delta: "
                f"{_delta(stats_a.get('p50'), stats_b.get('p50'))} s, "
                f"p99 delta: {_delta(stats_a.get('p99'), stats_b.get('p99'))} s"
            )
    lines.append(
        f"pool retries: {summary_a['pool_retries']} -> {summary_b['pool_retries']}, "
        f"degradations: {summary_a['pool_degraded']} -> {summary_b['pool_degraded']}"
    )
    return lines


def render_report(
    path: Union[str, Path], compare: Optional[Union[str, Path]] = None
) -> str:
    """The full text report for one run log (optionally vs. a second)."""
    summary = summarize_run(read_run_log(path))
    lines = _render_summary(str(path), summary)
    if compare is not None:
        summary_b = summarize_run(read_run_log(compare))
        lines.append("")
        lines.extend(_render_summary(str(compare), summary_b))
        lines.append("")
        lines.extend(_render_compare(summary, summary_b))
    return "\n".join(lines)
