"""CLI entry point: ``python -m repro.telemetry report <run.jsonl>``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import TelemetryError
from .report import render_report


def main(argv=None) -> int:
    """Dispatch telemetry subcommands (currently: ``report``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Offline telemetry analysis tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="summarize a JSONL run log (optionally vs. another)"
    )
    report.add_argument("run_log", type=Path, help="run-log JSONL file")
    report.add_argument(
        "--compare", type=Path, default=None,
        help="second run log to diff against",
    )
    args = parser.parse_args(argv)

    try:
        print(render_report(args.run_log, compare=args.compare))
    except TelemetryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
