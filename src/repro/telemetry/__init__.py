"""Observability for the solver + SA stack: spans, histograms, run events.

Built *on top of* :mod:`repro.profiling` (which keeps the counters/timers
and gains fixed-bucket histograms), this package adds the three views the
flat counter bag cannot give:

- **Span tracing** (:mod:`repro.telemetry.spans`): nested context-managed
  spans with attributes and process/thread identity, exportable as Chrome
  trace-event JSON (Perfetto / ``chrome://tracing``) so pool-worker
  timelines, batch dispatch, retries, and checkpoint flushes are visible on
  one timeline.  ``telemetry.span("thermal.rc2.solve", cells=n)``.
- **Run-event streams** (:mod:`repro.telemetry.runlog`): a JSONL
  :class:`~repro.telemetry.runlog.RunLog` of typed per-iteration /
  per-round / per-stage records, appended atomically, plus the offline
  analyzer ``python -m repro.telemetry report <run.jsonl>``.
- **Cross-process plumbing**: workers accumulate spans and histograms
  locally; the evaluation pool drains them home and folds them into the
  parent, re-armed on worker respawn via
  :class:`~repro.telemetry.spans.TelemetryConfig`.

Everything is off by default and no-ops at a single-check cost when
disabled.  All names (spans, metrics, event types) are literals from the
registry in :mod:`repro.telemetry.names`, enforced by lint rule R7; see
``docs/OBSERVABILITY.md`` for conventions and the full tables.

This package's top level deliberately imports only stdlib-backed modules
(``names``, ``spans``, and :class:`Histogram` from :mod:`repro.profiling`);
file-writing pieces live in the ``runlog`` / ``export`` / ``report``
submodules and are imported explicitly by their users.
"""

from ..profiling import (
    LATENCY_BUCKET_BOUNDS,
    SIZE_BUCKET_BOUNDS,
    Histogram,
)
from . import names
from .spans import (
    DEFAULT_SPAN_CAPACITY,
    TelemetryConfig,
    Tracer,
    clear_spans,
    current_lane,
    drain_spans,
    extend_spans,
    instant,
    is_tracing,
    set_thread_lane,
    set_tracing,
    span,
    spans_snapshot,
    to_chrome_trace,
)

__all__ = [
    "DEFAULT_SPAN_CAPACITY",
    "Histogram",
    "LATENCY_BUCKET_BOUNDS",
    "SIZE_BUCKET_BOUNDS",
    "TelemetryConfig",
    "Tracer",
    "clear_spans",
    "drain_spans",
    "current_lane",
    "extend_spans",
    "instant",
    "is_tracing",
    "names",
    "set_thread_lane",
    "set_tracing",
    "span",
    "spans_snapshot",
    "to_chrome_trace",
]
