"""On-disk case format: a JSON document with bit-exact power maps.

One case is one ``.json`` file: the scalar spec fields in plain JSON (easy
to diff and inspect) and each power map as base64 of its little-endian
``float64`` bytes plus the shape -- a lossless round trip, unlike printing
floats through ``repr``.  Written atomically via
:func:`repro.checkpoint.atomic_write_json` so a crash mid-save never leaves
a torn case file.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import List, Union

import numpy as np

from ..checkpoint import atomic_write_json
from ..errors import BenchmarkError
from ..geometry.region import Rect
from ..iccad2015.cases import Case

#: Format marker + version stored in every case file.
CASE_FILE_FORMAT = "repro.cases/1"


def _encode_map(power_map: np.ndarray) -> dict:
    data = np.ascontiguousarray(power_map, dtype="<f8")
    return {
        "shape": list(data.shape),
        "float64_le_b64": base64.b64encode(data.tobytes()).decode("ascii"),
    }


def _decode_map(payload: dict) -> np.ndarray:
    raw = base64.b64decode(payload["float64_le_b64"])
    arr = np.frombuffer(raw, dtype="<f8").astype(np.float64)
    return arr.reshape(tuple(payload["shape"])).copy()


def save_case(case: Case, path: Union[str, Path]) -> Path:
    """Write ``case`` to ``path`` (atomic); returns the path written."""
    payload = {
        "format": CASE_FILE_FORMAT,
        "number": case.number,
        "n_dies": case.n_dies,
        "channel_height": case.channel_height,
        "die_power": case.die_power,
        "delta_t_star": case.delta_t_star,
        "t_max_star": case.t_max_star,
        "nrows": case.nrows,
        "ncols": case.ncols,
        "cell_width": case.cell_width,
        "full_die_power": case.full_die_power,
        "inlet_temperature": case.inlet_temperature,
        "matched_ports": case.matched_ports,
        "restricted": [
            [r.row0, r.col0, r.row1, r.col1] for r in case.restricted
        ],
        "power_maps": [_encode_map(m) for m in case.power_maps],
    }
    return atomic_write_json(Path(path), payload)


def load_case_file(path: Union[str, Path]) -> Case:
    """Read a case written by :func:`save_case`; bitwise inverse of it."""
    path = Path(path)
    if not path.exists():
        raise BenchmarkError(f"case file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"{path}: not a valid case file: {exc}") from exc
    if payload.get("format") != CASE_FILE_FORMAT:
        raise BenchmarkError(
            f"{path}: unknown case-file format {payload.get('format')!r}; "
            f"expected {CASE_FILE_FORMAT!r}"
        )
    maps: List[np.ndarray] = [_decode_map(m) for m in payload["power_maps"]]
    if len(maps) != payload["n_dies"]:
        raise BenchmarkError(
            f"{path}: {payload['n_dies']} dies but {len(maps)} power maps"
        )
    return Case(
        number=int(payload["number"]),
        n_dies=int(payload["n_dies"]),
        channel_height=float(payload["channel_height"]),
        die_power=float(payload["die_power"]),
        delta_t_star=float(payload["delta_t_star"]),
        t_max_star=float(payload["t_max_star"]),
        nrows=int(payload["nrows"]),
        ncols=int(payload["ncols"]),
        cell_width=float(payload["cell_width"]),
        restricted=tuple(
            Rect(int(r0), int(c0), int(r1), int(c1))
            for r0, c0, r1, c1 in payload["restricted"]
        ),
        matched_ports=bool(payload["matched_ports"]),
        power_maps=maps,
        full_die_power=float(payload["full_die_power"]),
        inlet_temperature=float(payload["inlet_temperature"]),
    )
