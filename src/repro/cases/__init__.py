"""``repro.cases``: the seed-deterministic procedural case generator.

The five Table-2 cases (:mod:`repro.iccad2015`) are anecdotes; this package
turns them into a *distribution*.  :func:`generate_case` draws a fully
instantiated :class:`~repro.iccad2015.cases.Case` -- randomized stack depth,
channel height, floorplan/power regime, and constraint tightness -- from one
integer seed, bitwise-reproducibly.  :func:`generate_grid` draws adversarial
cooling-network topologies (multi-inlet/multi-outlet track graphs with
low-flow connectors, the family that falsified the central advection
scheme).  Both are the shared substrate of the multi-fidelity optimizer
portfolio (:mod:`repro.optimize.portfolio`), the distribution-level
differential tests, and ``--bench portfolio``.

Determinism contract: the same seed produces a bitwise-identical case
(stack, floorplan, power maps) on every platform; distinct seeds produce
distinct :func:`case_fingerprint` values.  :func:`save_case` /
:func:`load_case_file` round-trip a case through an on-disk format without
losing a single bit of the power maps.
"""

from .generator import (
    CaseSpec,
    GENERATED_CASE_NUMBER_BASE,
    case_fingerprint,
    generate_case,
    generate_case_spec,
    generate_grid,
)
from .io import load_case_file, save_case

__all__ = [
    "CaseSpec",
    "GENERATED_CASE_NUMBER_BASE",
    "case_fingerprint",
    "generate_case",
    "generate_case_spec",
    "generate_grid",
    "load_case_file",
    "save_case",
]
