"""Seed-deterministic generation of benchmark cases and network topologies.

Every draw goes through a :class:`numpy.random.Generator` seeded from
``np.random.SeedSequence(seed, spawn_key=...)`` children, the same
discipline the staged SA runner uses: the stream consumed by each component
(spec scalars, per-die power maps, grid topology) is independent of the
others, so extending the generator never silently reshuffles existing
cases.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..constants import (
    CELL_WIDTH,
    CHANNEL_HEIGHT_200UM,
    CHANNEL_HEIGHT_400UM,
    CONTEST_GRID_SIZE,
    INLET_TEMPERATURE,
)
from ..errors import BenchmarkError
from ..geometry.grid import ChannelGrid, PortKind, Side
from ..geometry.region import Rect
from ..iccad2015.cases import Case

#: Generated cases get ``number = GENERATED_CASE_NUMBER_BASE + seed`` so they
#: can never collide with the Table-2 ids (1-5) in logs or fingerprints.
GENERATED_CASE_NUMBER_BASE = 1_000_000

#: Power-map regimes the generator draws from.
POWER_REGIMES = ("uniform", "hotspot", "gradient", "checker")

#: Footprints the generator draws from (odd, contest-style).
GRID_SIZES = (9, 11, 13, 15)


@dataclass(frozen=True)
class CaseSpec:
    """The scalar knobs of one generated case (the maps are re-drawn).

    A spec plus its ``seed`` fully determines the case: power maps and any
    restricted region come from seed-derived child streams, so
    ``generate_case(spec.seed)`` reproduces the case bitwise.
    """

    seed: int
    grid_size: int
    n_dies: int
    channel_height: float
    power_regime: str
    #: Full-size (contest-die) power in W; the per-case power scales with
    #: the footprint area like :func:`repro.iccad2015.cases.load_case`.
    full_die_power: float
    delta_t_star: float
    t_max_star: float
    has_restricted: bool


def _rng(seed: int, *spawn_key: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=spawn_key))


def generate_case_spec(seed: int, grid_size: Optional[int] = None) -> CaseSpec:
    """Draw the scalar spec of generated case ``seed``.

    Args:
        seed: Non-negative case seed.
        grid_size: Fixed footprint override; drawn from :data:`GRID_SIZES`
            when ``None``.
    """
    if seed < 0:
        raise BenchmarkError(f"case seed must be non-negative, got {seed}")
    rng = _rng(seed, 0)
    drawn_size = int(rng.choice(GRID_SIZES))
    n_dies = int(rng.choice((2, 2, 3)))  # 3-die stacks at 1/3 weight
    channel_height = float(
        rng.choice((CHANNEL_HEIGHT_200UM, CHANNEL_HEIGHT_400UM))
    )
    power_regime = str(rng.choice(POWER_REGIMES))
    full_die_power = float(rng.uniform(30.0, 150.0))
    # Constraint tightness: a multiplier on the nominal Table-2 envelope.
    tightness = float(rng.uniform(0.85, 1.4))
    delta_t_star = 15.0 * tightness
    t_max_star = float(rng.choice((358.15, 348.15)))
    has_restricted = bool(rng.random() < 0.2)
    size = int(grid_size) if grid_size is not None else drawn_size
    if size < 9:
        raise BenchmarkError(f"grid size {size} too small (need >= 9)")
    if size % 2 == 0:
        size += 1  # keep the contest's odd footprint
    return CaseSpec(
        seed=int(seed),
        grid_size=size,
        n_dies=n_dies,
        channel_height=channel_height,
        power_regime=power_regime,
        full_die_power=full_die_power,
        delta_t_star=delta_t_star,
        t_max_star=t_max_star,
        has_restricted=has_restricted,
    )


def _power_map(
    rng: np.random.Generator, regime: str, nrows: int, ncols: int
) -> np.ndarray:
    """One die's relative power-density map (positive, un-normalized)."""
    base = 0.2 + rng.random((nrows, ncols))
    if regime == "uniform":
        return base
    if regime == "hotspot":
        n_spots = int(rng.integers(1, 4))
        rr = np.arange(nrows)[:, None]
        cc = np.arange(ncols)[None, :]
        for _ in range(n_spots):
            r0 = rng.uniform(0, nrows - 1)
            c0 = rng.uniform(0, ncols - 1)
            sigma = rng.uniform(1.0, max(nrows, ncols) / 3.0)
            amp = rng.uniform(3.0, 12.0)
            base = base + amp * np.exp(
                -((rr - r0) ** 2 + (cc - c0) ** 2) / (2.0 * sigma * sigma)
            )
        return base
    if regime == "gradient":
        direction = int(rng.integers(0, 4))
        ramp = np.linspace(0.3, 3.0, ncols)[None, :] * np.ones((nrows, 1))
        ramp = np.rot90(ramp, k=direction).copy()
        if ramp.shape != (nrows, ncols):
            ramp = ramp.T
        return base * ramp
    if regime == "checker":
        block = int(rng.integers(2, 5))
        rr = (np.arange(nrows) // block)[:, None]
        cc = (np.arange(ncols) // block)[None, :]
        hot = ((rr + cc) % 2).astype(float)
        return base * (0.5 + 3.0 * hot)
    raise BenchmarkError(f"unknown power regime {regime!r}")


def generate_case(seed: int, grid_size: Optional[int] = None) -> Case:
    """Materialize generated case ``seed`` as a fully populated ``Case``.

    Bitwise deterministic: the same ``(seed, grid_size)`` always produces
    identical power-map bytes and spec scalars.
    """
    spec = generate_case_spec(seed, grid_size=grid_size)
    size = spec.grid_size
    power = spec.full_die_power * (size / CONTEST_GRID_SIZE) ** 2
    per_die = power / spec.n_dies
    maps = []
    for die in range(spec.n_dies):
        rng = _rng(spec.seed, 1, die)
        raw = _power_map(rng, spec.power_regime, size, size)
        maps.append(raw * (per_die / raw.sum()))
    restricted: Tuple[Rect, ...] = ()
    if spec.has_restricted:
        rng = _rng(spec.seed, 2)
        r0 = int(rng.integers(size // 4, size // 2))
        c0 = int(rng.integers(size // 4, size // 2))
        height = int(rng.integers(1, max(size // 5, 2)))
        width = int(rng.integers(1, max(size // 4, 2)))
        restricted = (Rect(r0, c0, r0 + height, c0 + width),)
    return Case(
        number=GENERATED_CASE_NUMBER_BASE + spec.seed,
        n_dies=spec.n_dies,
        channel_height=spec.channel_height,
        die_power=power,
        delta_t_star=spec.delta_t_star,
        t_max_star=spec.t_max_star,
        nrows=size,
        ncols=size,
        cell_width=CELL_WIDTH,
        restricted=restricted,
        matched_ports=True,
        power_maps=maps,
        full_die_power=spec.full_die_power,
        inlet_temperature=INLET_TEMPERATURE,
    )


def generate_grid(
    seed: int, nrows: Optional[int] = None, ncols: Optional[int] = None
) -> ChannelGrid:
    """Draw one adversarial cooling-network topology.

    The family that falsified the central advection scheme: a few full-width
    horizontal tracks fed by a full west inlet span (so every track mouth is
    its own inlet), drained by a full east outlet span, joined by randomly
    placed vertical connectors -- including, half the time, a connector
    hugging the west edge, which creates the low-flow branch where cell
    Peclet numbers blow past the monotonicity limit of central differencing.
    """
    rng = _rng(seed, 3)
    if nrows is None:
        nrows = int(rng.choice((9, 11, 13)))
    if ncols is None:
        ncols = int(rng.choice((9, 11, 13)))
    grid = ChannelGrid(nrows, ncols)
    track_pool = list(range(0, nrows, 2))
    n_tracks = int(rng.integers(2, max(len(track_pool) // 2, 3)))
    tracks = sorted(
        int(t) for t in rng.choice(track_pool, size=n_tracks, replace=False)
    )
    for row in tracks:
        grid.carve_horizontal(row, 0, ncols - 1)
    col_pool = list(range(0, ncols, 2))
    for _ in range(int(rng.integers(0, 4))):
        col = int(rng.choice(col_pool))
        a, b = (int(t) for t in rng.choice(tracks, size=2, replace=True))
        if a != b:
            grid.carve_vertical(col, min(a, b), max(a, b))
    if len(tracks) >= 2 and rng.random() < 0.5:
        # The adversarial west-edge connector merging two inlet mouths.
        grid.carve_vertical(0, tracks[0], tracks[1])
    grid.add_port_span(PortKind.INLET, Side.WEST, 0, nrows)
    grid.add_port_span(PortKind.OUTLET, Side.EAST, 0, nrows)
    return grid


def case_fingerprint(case: Case) -> str:
    """A stable hex digest of everything that defines a case.

    Covers the scalar spec fields *and* the exact power-map bytes, so two
    cases agree on their fingerprint iff they are bitwise the same case.
    """
    digest = hashlib.sha256()
    header = (
        f"{case.number}|{case.n_dies}|{case.channel_height!r}|"
        f"{case.die_power!r}|{case.delta_t_star!r}|{case.t_max_star!r}|"
        f"{case.nrows}|{case.ncols}|{case.cell_width!r}|"
        f"{case.full_die_power!r}|{case.inlet_temperature!r}|"
        f"{case.matched_ports}|"
        f"{[(r.row0, r.col0, r.row1, r.col1) for r in case.restricted]}"
    )
    digest.update(header.encode("utf-8"))
    for power_map in case.power_maps:
        digest.update(np.ascontiguousarray(power_map, dtype=np.float64).tobytes())
    return digest.hexdigest()
