"""The optimizer registry behind the portfolio runner.

Every search strategy the portfolio can race -- the staged SA flow and the
portfolio-native optimizers (multi-fidelity, parallel tempering, random
restart, pure-4RM SA) -- registers itself here under a stable name.  The
registry is the seam between *what* searches (an
:class:`~repro.optimize.portfolio.RoundOptimizer` subclass) and *how* runs
are orchestrated (:func:`~repro.optimize.portfolio.run_portfolio`): the
runner looks strategies up by name, so CLI flags, benchmark configs, and
checkpoints all refer to optimizers by string.

Registration is import-time and idempotent by name collision check; the
portfolio module registers the built-ins when it is imported, so
``get_optimizer`` lazily imports it on first use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..errors import SearchError


@dataclass(frozen=True)
class OptimizerEntry:
    """One registered search strategy.

    Attributes:
        name: Stable registry key (CLI / checkpoint / bench identifier).
        factory: Zero-argument callable producing a fresh optimizer
            instance (a ``RoundOptimizer``; typed loosely to keep this
            module import-light).
        description: One-line human-readable summary.
    """

    name: str
    factory: Callable[[], object]
    description: str


_REGISTRY: Dict[str, OptimizerEntry] = {}


def register_optimizer(
    name: str, description: str
) -> Callable[[Callable[[], object]], Callable[[], object]]:
    """Class/factory decorator registering an optimizer under ``name``."""

    def decorate(factory: Callable[[], object]) -> Callable[[], object]:
        if name in _REGISTRY:
            raise SearchError(f"optimizer {name!r} is already registered")
        _REGISTRY[name] = OptimizerEntry(
            name=name, factory=factory, description=description
        )
        return factory

    return decorate


def _ensure_builtins() -> None:
    """Import the portfolio module so built-in optimizers self-register."""
    if "multi_fidelity" not in _REGISTRY:
        from . import portfolio  # noqa: F401  (import-time registration)


def get_optimizer(name: str) -> OptimizerEntry:
    """Look an optimizer up by registry name.

    Raises:
        SearchError: Unknown name (the message lists what is registered).
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SearchError(
            f"unknown optimizer {name!r}; registered: "
            f"{', '.join(optimizer_names())}"
        ) from None


def optimizer_names() -> Tuple[str, ...]:
    """All registered optimizer names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))
