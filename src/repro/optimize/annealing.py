"""Generic simulated annealing engine (the outer loop of Algorithm 1).

Kept deliberately problem-agnostic: states are opaque, moves come from a
``neighbor_fn`` and costs from a ``cost_fn`` that may return ``inf`` for
infeasible candidates.  The engine handles the paper's specifics -- infinite
scores, convergence detection ("if W'_pump converges then return") and
deterministic seeding for multi-round schedules.

Both engines are *resumable*: an ``observer`` callback receives an
:class:`SACursor` after every completed iteration, and handing that cursor
back via ``cursor=`` continues the run from the exact iteration it stopped
at -- including the captured ``np.random.Generator`` bit-generator state,
so the resumed trajectory is bitwise identical to an uninterrupted one.
The staged flow's checkpoint layer (:mod:`repro.checkpoint`) persists these
cursors; the engine itself never touches the filesystem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import SearchError


@dataclass
class SAConfig:
    """Annealing schedule parameters.

    Attributes:
        iterations: Number of proposals.
        initial_temperature: Starting temperature in cost units; ``None``
            derives it from the dispersion of the first few proposal deltas.
        cooling_rate: Geometric temperature decay per iteration.
        seed: RNG seed (vary per round); an ``int`` or a
            ``np.random.SeedSequence`` (the staged flow derives per-round
            children via spawn keys).
        stall_limit: Stop early after this many iterations without improving
            the best cost (the convergence check of Algorithm 1, line 6);
            ``None`` disables.
    """

    iterations: int = 50
    initial_temperature: Optional[float] = None
    cooling_rate: float = 0.92
    seed: Union[int, np.random.SeedSequence] = 0
    stall_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise SearchError(f"need >= 1 iteration, got {self.iterations}")
        if not 0.0 < self.cooling_rate <= 1.0:
            raise SearchError(
                f"cooling rate must be in (0, 1], got {self.cooling_rate}"
            )


@dataclass
class SAHistory:
    """Trace of one annealing run."""

    costs: List[float] = field(default_factory=list)
    best_costs: List[float] = field(default_factory=list)
    accepted: int = 0
    proposed: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Share of proposals accepted."""
        return self.accepted / self.proposed if self.proposed else 0.0


@dataclass
class SACursor:
    """Resumable engine state after a completed SA iteration.

    Handing a cursor back to the engine via ``cursor=`` (with the same
    ``config``, ``cost_fn`` and ``neighbor_fn``) continues the run exactly
    where it stopped: ``rng_state`` is the captured bit-generator state, so
    every later proposal and acceptance draw replays identically.

    Attributes:
        iteration: Next iteration index to execute.
        rng_state: ``np.random.Generator.bit_generator.state`` snapshot.
        current: Incumbent state.
        current_cost: Incumbent cost.
        best: Best state so far.
        best_cost: Best cost so far.
        history: Live :class:`SAHistory` (restored, then appended to).
        temperature: Post-decay temperature (``None`` while warming up).
        stall: Iterations since the best cost last improved.
        warmup_deltas: Serial engine's warm-up |delta| samples (unused by
            the batch engine).
    """

    iteration: int
    rng_state: Dict[str, Any]
    current: Any
    current_cost: float
    best: Any
    best_cost: float
    history: SAHistory
    temperature: Optional[float]
    stall: int
    warmup_deltas: List[float] = field(default_factory=list)


#: Per-iteration resume hook: receives the cursor after each iteration.
SAObserver = Callable[[SACursor], None]


def _restored_rng(cursor: SACursor) -> np.random.Generator:
    """A generator replaying from the cursor's captured bit-generator state."""
    rng = np.random.default_rng()
    rng.bit_generator.state = cursor.rng_state
    return rng


def simulated_annealing(
    initial_state: Any,
    cost_fn: Callable[[Any], float],
    neighbor_fn: Callable[[Any, np.random.Generator], Any],
    config: SAConfig,
    observer: Optional[SAObserver] = None,
    cursor: Optional[SACursor] = None,
) -> Tuple[Any, float, SAHistory]:
    """Run one SA round; returns ``(best_state, best_cost, history)``.

    Infinite costs are handled asymmetrically: a finite incumbent never
    accepts an infinite candidate, while an infinite incumbent accepts any
    candidate (random-walking out of the infeasible region).

    Args:
        observer: Called with an :class:`SACursor` after every completed
            iteration (checkpointing hook).
        cursor: Resume from this cursor instead of starting fresh; the
            resumed trajectory is bitwise identical to the uninterrupted
            one.
    """
    if cursor is None:
        rng = np.random.default_rng(config.seed)
        current = initial_state
        current_cost = float(cost_fn(current))
        best, best_cost = current, current_cost
        history = SAHistory()
        temperature = config.initial_temperature
        warmup_deltas: List[float] = []
        stall = 0
        start_iteration = 0
    else:
        rng = _restored_rng(cursor)
        current, current_cost = cursor.current, cursor.current_cost
        best, best_cost = cursor.best, cursor.best_cost
        history = cursor.history
        temperature = cursor.temperature
        warmup_deltas = list(cursor.warmup_deltas)
        stall = cursor.stall
        start_iteration = cursor.iteration
        # Replays the convergence check the uninterrupted run would have
        # applied at the end of the last completed iteration.
        if config.stall_limit is not None and stall >= config.stall_limit:
            return best, best_cost, history

    for iteration in range(start_iteration, config.iterations):
        candidate = neighbor_fn(current, rng)
        candidate_cost = float(cost_fn(candidate))
        history.proposed += 1
        delta = candidate_cost - current_cost

        if temperature is None:
            if math.isfinite(delta) and delta != 0.0:
                warmup_deltas.append(abs(delta))
            if len(warmup_deltas) >= 3 or iteration >= 4:
                scale = (
                    float(np.mean(warmup_deltas)) if warmup_deltas else 1.0
                )
                temperature = max(scale, 1e-12)
        effective_t = (
            temperature
            if temperature is not None
            else max(abs(current_cost) if math.isfinite(current_cost) else 1.0, 1e-12)
        )

        accept = _accept(current_cost, candidate_cost, effective_t, rng)
        if accept:
            current, current_cost = candidate, candidate_cost
            history.accepted += 1
        if candidate_cost < best_cost:
            best, best_cost = candidate, candidate_cost
            stall = 0
        else:
            stall += 1
        history.costs.append(current_cost)
        history.best_costs.append(best_cost)
        if temperature is not None:
            temperature *= config.cooling_rate
        if observer is not None:
            observer(
                SACursor(
                    iteration=iteration + 1,
                    rng_state=rng.bit_generator.state,
                    current=current,
                    current_cost=current_cost,
                    best=best,
                    best_cost=best_cost,
                    history=history,
                    temperature=temperature,
                    stall=stall,
                    warmup_deltas=list(warmup_deltas),
                )
            )
        if config.stall_limit is not None and stall >= config.stall_limit:
            break
    return best, best_cost, history


def simulated_annealing_batch(
    initial_state: Any,
    batch_cost_fn: Callable[[List[Any]], List[float]],
    neighbor_fn: Callable[[Any, np.random.Generator], Any],
    config: SAConfig,
    batch_size: int,
    observer: Optional[SAObserver] = None,
    cursor: Optional[SACursor] = None,
) -> Tuple[Any, float, SAHistory]:
    """Batched SA: evaluate several neighbors per iteration, move to the best.

    Reproduces the paper's parallel neighbor evaluation ("64 neighboring N
    solutions are evaluated simultaneously in each iteration"): the batch is
    scored in one call -- hand :func:`repro.optimize.parallel.evaluate_population`
    in as ``batch_cost_fn`` to fan the work across processes -- and the best
    candidate faces the usual Metropolis acceptance.

    ``observer`` / ``cursor`` give the same per-iteration checkpoint hook and
    bitwise resume semantics as :func:`simulated_annealing`.
    """
    if batch_size < 1:
        raise SearchError(f"batch size must be >= 1, got {batch_size}")
    if cursor is None:
        rng = np.random.default_rng(config.seed)
        current = initial_state
        current_cost = float(batch_cost_fn([current])[0])
        best, best_cost = current, current_cost
        history = SAHistory()
        temperature = config.initial_temperature
        stall = 0
        start_iteration = 0
    else:
        rng = _restored_rng(cursor)
        current, current_cost = cursor.current, cursor.current_cost
        best, best_cost = cursor.best, cursor.best_cost
        history = cursor.history
        temperature = cursor.temperature
        stall = cursor.stall
        start_iteration = cursor.iteration
        if config.stall_limit is not None and stall >= config.stall_limit:
            return best, best_cost, history

    for iteration in range(start_iteration, config.iterations):
        batch = [neighbor_fn(current, rng) for _ in range(batch_size)]
        costs = [float(c) for c in batch_cost_fn(batch)]
        history.proposed += len(batch)
        pick = int(np.argmin(costs))
        candidate, candidate_cost = batch[pick], costs[pick]

        if temperature is None:
            finite = [
                abs(c - current_cost)
                for c in costs
                if math.isfinite(c) and c != current_cost
            ]
            if finite:
                temperature = max(float(np.mean(finite)), 1e-12)
        effective_t = temperature if temperature is not None else max(
            abs(current_cost) if math.isfinite(current_cost) else 1.0, 1e-12
        )
        if _accept(current_cost, candidate_cost, effective_t, rng):
            current, current_cost = candidate, candidate_cost
            history.accepted += 1
        improved = False
        for state, cost in zip(batch, costs):
            if cost < best_cost:
                best, best_cost = state, cost
                improved = True
        stall = 0 if improved else stall + 1
        history.costs.append(current_cost)
        history.best_costs.append(best_cost)
        if temperature is not None:
            temperature *= config.cooling_rate
        if observer is not None:
            observer(
                SACursor(
                    iteration=iteration + 1,
                    rng_state=rng.bit_generator.state,
                    current=current,
                    current_cost=current_cost,
                    best=best,
                    best_cost=best_cost,
                    history=history,
                    temperature=temperature,
                    stall=stall,
                )
            )
        if config.stall_limit is not None and stall >= config.stall_limit:
            break
    return best, best_cost, history


def _accept(
    current: float, candidate: float, temperature: float, rng: np.random.Generator
) -> bool:
    if candidate <= current:
        return True
    if math.isinf(candidate):
        # Both infinite: keep moving; candidate infinite alone: reject.
        return math.isinf(current)
    if math.isinf(current):
        return True
    return rng.random() < math.exp(-(candidate - current) / temperature)
