"""Problem 2: thermal gradient minimization (Section 5).

Decide the cooling network and system pressure drop minimizing ``DeltaT``
subject to ``T_max <= T_max*`` and ``W_pump <= W_pump*`` (Eq. 12).  Same
staged SA skeleton as Problem 1, with three adaptations from the paper:
the objective becomes the smallest achievable gradient under the pressure cap
(Eq. 13, solved directly or by golden-section search), iterations are grouped
so only the first of each group pays a full evaluation (the rest re-use its
optimal pressure), and the fixed-pressure warm-up stage is dropped.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..iccad2015.cases import Case
from .runner import (
    OptimizationResult,
    PROBLEM_THERMAL_GRADIENT,
    run_staged_flow,
)
from .stages import StageConfig, problem2_stages


def optimize_problem2(
    case: Case,
    stages: Optional[Sequence[StageConfig]] = None,
    directions: Sequence[int] = (0, 1),
    seed: int = 0,
    quick: bool = False,
    leaves_per_tree: int = 4,
    n_workers: int = 1,
    batch_size=None,
    initialization: str = "uniform",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: Optional[int] = None,
    interrupt_check: Optional[Callable[[], bool]] = None,
) -> OptimizationResult:
    """Run the full Problem 2 design flow on one benchmark case.

    Args mirror :func:`~repro.optimize.problem1.optimize_problem1`; the
    pumping power cap is the case's ``w_pump_star()`` (0.1% of die power,
    the Table 4 setting).
    """
    if stages is None:
        stages = problem2_stages(quick=quick)
    return run_staged_flow(
        case,
        stages,
        PROBLEM_THERMAL_GRADIENT,
        directions=directions,
        seed=seed,
        leaves_per_tree=leaves_per_tree,
        n_workers=n_workers,
        batch_size=batch_size,
        initialization=initialization,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        checkpoint_every=checkpoint_every,
        interrupt_check=interrupt_check,
    )
