"""Multi-fidelity optimizer portfolio: 2RM-as-surrogate search strategies.

The staged SA flow (:mod:`repro.optimize.runner`) is one fixed recipe.  This
module races a *portfolio* of strategies over the same tree-parameter search
space, all built on one shared idea: search with cheap 2RM surrogate scores
(fidelity ``"low"``), promote elite candidates to the 4RM reference
(fidelity ``"high"``), and correct the surrogate with a fitted per-case
offset model that recalibrates as promotions accumulate.

Strategies (see :mod:`repro.optimize.registry`):

* ``multi_fidelity`` -- batched SA on 2RM scores; after every round the
  elite candidates are promoted to 4RM and the offset model refits.
* ``tempering`` -- parallel tempering: a ladder of replicas at geometrically
  spaced temperatures, every iteration's proposals scored in one
  :func:`~repro.optimize.parallel.evaluate_population` batch (the
  persistent worker pool when ``n_workers > 1``), with adjacent-replica
  state swaps.
* ``random_restart`` -- a racer: independently seeded SA arms stepped in
  lockstep (one pooled batch per iteration); the weakest half is retired at
  each round boundary.
* ``sa_4rm`` -- the pure-4RM comparator: the same annealer as
  ``multi_fidelity`` but every candidate pays a reference evaluation.  The
  ``--bench portfolio`` speedup/quality envelope is measured against it.
* ``staged_sa`` -- an adapter around the paper's staged flow.

Orchestration (:func:`run_portfolio`) is round-based: every optimizer
advances one round at a time, emits a comparable ``portfolio.round`` /
``round.end`` event pair, and checkpoints at round boundaries --
``resume=True`` restores the exact RNG bit-generator states, memo caches,
and offset-model pairs, so a resumed portfolio run is bitwise identical to
an uninterrupted one.  With ``run_log_dir`` set, each optimizer writes its
own JSONL run log, so two strategies (or two whole runs) are directly
comparable via ``python -m repro.telemetry report A.jsonl --compare
B.jsonl``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import profiling, telemetry
from ..checkpoint import CheckpointError, fingerprint_of, read_checkpoint, write_checkpoint
from ..cooling.evaluation import (
    EvaluationResult,
    evaluate_problem1,
    evaluate_problem2,
)
from ..cooling.system import CoolingSystem
from ..errors import (
    DesignRuleError,
    FlowError,
    GeometryError,
    RunInterrupted,
    SearchError,
    ThermalError,
)
from ..iccad2015.cases import Case
from ..networks.tree import TreePlan
from ..telemetry import runlog
from .annealing import _accept
from .moves import perturb_tree_params
from .registry import get_optimizer, register_optimizer
from .runner import PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT
from .stages import (
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
    StageConfig,
)

#: The default portfolio raced by :func:`run_portfolio`.
DEFAULT_PORTFOLIO: Tuple[str, ...] = (
    "multi_fidelity",
    "tempering",
    "random_restart",
)

#: Checkpoint file name inside ``checkpoint_dir``.
PORTFOLIO_CHECKPOINT = "portfolio.ckpt"


# ---------------------------------------------------------------------------
# Offset model
# ---------------------------------------------------------------------------


@dataclass
class OffsetModel:
    """Fitted correction from 2RM surrogate scores to 4RM reference scores.

    Scores (pumping power for Problem 1, gradient for Problem 2) relate
    *multiplicatively* between the models -- W_pump spans orders of
    magnitude across candidates while the 2RM/4RM ratio stays nearly
    constant per case -- so the model fits an additive offset on
    rise-normalized log scores ``z = ln(score / scale)`` where ``scale`` is
    the case's characteristic score magnitude (``W_pump*`` or ``DeltaT*``).
    The fitted offset is the mean residual ``z_high - z_low`` over every
    (surrogate, reference) pair observed so far; it recalibrates on each
    promotion.  :meth:`tolerance` is the calibrated agreement envelope: two
    sigma of the residual dispersion, floored so an undersampled model never
    claims impossible precision.
    """

    #: Case score scale used to normalize (dimensionless residuals).
    scale: float
    #: Minimum log-space tolerance (also returned before 2 pairs exist).
    #: Calibrated against the generator distribution: per-case held-out
    #: log residuals deviate up to ~0.5 from the fitted offset even when
    #: the training residuals are tight (the 2RM/4RM ratio drifts with the
    #: pressure regime across a candidate pool).
    min_tolerance: float = 0.5
    #: Observed ``(z_low, z_high)`` pairs.
    pairs: List[Tuple[float, float]] = field(default_factory=list)

    def _z(self, score: float) -> float:
        return math.log(max(score, 1e-30 * self.scale) / self.scale)

    def observe(self, low_score: float, high_score: float) -> None:
        """Record one promotion's (surrogate, reference) score pair."""
        if not (math.isfinite(low_score) and math.isfinite(high_score)):
            return
        if low_score <= 0.0 or high_score <= 0.0:
            return
        self.pairs.append((self._z(low_score), self._z(high_score)))

    @property
    def n_pairs(self) -> int:
        """Number of calibration pairs observed."""
        return len(self.pairs)

    @property
    def log_offset(self) -> float:
        """The fitted log-space offset (0 before any pair is observed)."""
        if not self.pairs:
            return 0.0
        return float(np.mean([zh - zl for zl, zh in self.pairs]))

    def correct(self, low_score: float) -> float:
        """The 2RM score corrected toward the 4RM scale."""
        if not math.isfinite(low_score) or low_score <= 0.0:
            return low_score
        return low_score * math.exp(self.log_offset)

    def tolerance(self) -> float:
        """Calibrated agreement envelope on log scores (two sigma, floored)."""
        if len(self.pairs) < 2:
            return max(self.min_tolerance, 0.5)
        residuals = [zh - zl for zl, zh in self.pairs]
        return max(2.0 * float(np.std(residuals)), self.min_tolerance)

    def agrees(self, corrected: float, reference: float) -> bool:
        """Whether a corrected surrogate score matches a reference score
        within the calibrated envelope."""
        if math.isinf(corrected) or math.isinf(reference):
            return math.isinf(corrected) and math.isinf(reference)
        if corrected <= 0.0 or reference <= 0.0:
            return corrected == reference
        return abs(math.log(corrected / reference)) <= self.tolerance()

    def state(self) -> Dict[str, Any]:
        """Checkpointable snapshot."""
        return {
            "scale": self.scale,
            "min_tolerance": self.min_tolerance,
            "pairs": list(self.pairs),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state` snapshot."""
        self.scale = state["scale"]
        self.min_tolerance = state["min_tolerance"]
        self.pairs = list(state["pairs"])


# ---------------------------------------------------------------------------
# Multi-fidelity evaluator
# ---------------------------------------------------------------------------


def _infeasible_high() -> EvaluationResult:
    return EvaluationResult(
        score=math.inf,
        feasible=False,
        p_sys=0.0,
        w_pump=math.inf,
        t_max=math.inf,
        delta_t=math.inf,
        simulations=0,
        fidelity="high",
    )


class MultiFidelityEvaluator:
    """Fidelity-tagged candidate scoring with memoization and calibration.

    ``low`` scores come from the 2RM surrogate through
    :func:`~repro.optimize.parallel.evaluate_population` (and therefore the
    persistent worker pool when ``n_workers > 1``); ``high`` scores run the
    full 4RM reference evaluation.  Promotions feed the :class:`OffsetModel`
    so :meth:`corrected` drifts toward the reference scale as evidence
    accumulates.  ``low_evals`` / ``high_evals`` count *distinct candidate
    evaluations* per fidelity (memo hits are free), which is what the
    ``--bench portfolio`` 4RM-evaluation budget compares.
    """

    def __init__(
        self,
        case: Case,
        plan: TreePlan,
        problem: str,
        tile_size: int = 4,
        n_workers: int = 1,
    ):
        if problem not in (PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT):
            raise SearchError(f"unknown problem {problem!r}")
        self.case = case
        self.plan = plan
        self.problem = problem
        self.n_workers = n_workers
        metric = (
            METRIC_LOWEST_FEASIBLE_POWER
            if problem == PROBLEM_PUMPING_POWER
            else METRIC_MIN_GRADIENT_CAPPED
        )
        self.low_stage = StageConfig(
            "portfolio-low", 1, 1, 1, metric, "2rm", tile_size
        )
        self.offset = OffsetModel(scale=self._case_scale(case, problem))
        self.low_evals = 0
        self.high_evals = 0
        self._low_cache: Dict[bytes, float] = {}
        self._high_cache: Dict[bytes, EvaluationResult] = {}
        self._base_stack = case.base_stack()

    @staticmethod
    def _case_scale(case: Case, problem: str) -> float:
        if problem == PROBLEM_PUMPING_POWER:
            return max(case.w_pump_star(), 1e-12)
        return max(case.delta_t_star, 1e-12)

    @staticmethod
    def _key(params: np.ndarray) -> bytes:
        return np.asarray(params, dtype=int).tobytes()

    # -- low fidelity ---------------------------------------------------

    def low_batch(self, params_list: Sequence[np.ndarray]) -> List[float]:
        """Surrogate scores for a batch (one pooled dispatch for misses)."""
        from .parallel import evaluate_population

        keys = [self._key(p) for p in params_list]
        missing: List[Tuple[bytes, np.ndarray]] = []
        seen = set()
        for key, params in zip(keys, params_list):
            if key not in self._low_cache and key not in seen:
                seen.add(key)
                missing.append((key, np.asarray(params, dtype=int)))
        if missing:
            costs = evaluate_population(
                self.case,
                self.plan,
                self.low_stage,
                self.problem,
                [params for _, params in missing],
                n_workers=self.n_workers,
            )
            for (key, _), cost in zip(missing, costs):
                self._low_cache[key] = float(cost)
            self.low_evals += len(missing)
            profiling.increment("portfolio.low_evals", len(missing))
        return [self._low_cache[key] for key in keys]

    def low(self, params: np.ndarray) -> float:
        """Surrogate score of one candidate."""
        return self.low_batch([params])[0]

    def corrected(self, low_score: float) -> float:
        """The offset-corrected surrogate score (reference scale)."""
        return self.offset.correct(low_score)

    # -- high fidelity --------------------------------------------------

    def _evaluate_high(self, params: np.ndarray) -> EvaluationResult:
        try:
            grid = self.plan.with_params(np.asarray(params, dtype=int)).build()
            system = CoolingSystem.for_network(
                self._base_stack,
                grid,
                self.case.coolant,
                model="4rm",
                inlet_temperature=self.case.inlet_temperature,
            )
            if self.problem == PROBLEM_PUMPING_POWER:
                return evaluate_problem1(
                    system, self.case.delta_t_star, self.case.t_max_star
                )
            return evaluate_problem2(
                system, self.case.t_max_star, self.case.w_pump_star()
            )
        except (DesignRuleError, FlowError, GeometryError, SearchError,
                ThermalError):
            return _infeasible_high()

    def high_evaluation(self, params: np.ndarray) -> EvaluationResult:
        """The reference (4RM) evaluation of one candidate, memoized.

        Counts toward ``high_evals`` but does *not* calibrate the offset
        model -- this is the pure-4RM path (``sa_4rm``).
        """
        key = self._key(params)
        if key in self._high_cache:
            return self._high_cache[key]
        evaluation = self._evaluate_high(params)
        self._high_cache[key] = evaluation
        self.high_evals += 1
        profiling.increment("portfolio.high_evals")
        return evaluation

    def promote(self, params: np.ndarray) -> EvaluationResult:
        """Verify one elite candidate at the reference fidelity.

        Scores the candidate at both fidelities (memoized), feeds the
        (surrogate, reference) pair to the offset model, and emits a
        ``portfolio.promotion`` run event.
        """
        key = self._key(params)
        if key in self._high_cache:
            return self._high_cache[key]
        low_score = self.low(params)
        with telemetry.span("portfolio.promote"):
            evaluation = self.high_evaluation(params)
        self.offset.observe(low_score, evaluation.score)
        profiling.increment("portfolio.promotions")
        runlog.emit_event(
            "portfolio.promotion",
            low_score=low_score,
            high_score=evaluation.score,
            corrected=self.corrected(low_score),
            offset=self.offset.log_offset,
            pairs=self.offset.n_pairs,
        )
        return evaluation

    # -- checkpointing --------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Checkpointable snapshot of caches, counters, and calibration."""
        return {
            "low_cache": dict(self._low_cache),
            "high_cache": dict(self._high_cache),
            "low_evals": self.low_evals,
            "high_evals": self.high_evals,
            "offset": self.offset.state(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state` snapshot (bitwise resume support)."""
        self._low_cache = dict(state["low_cache"])
        self._high_cache = dict(state["high_cache"])
        self.low_evals = state["low_evals"]
        self.high_evals = state["high_evals"]
        self.offset.restore(state["offset"])


# ---------------------------------------------------------------------------
# Portfolio configuration / results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PortfolioConfig:
    """Shared knobs of one portfolio run (fingerprinted for checkpoints)."""

    problem: str = PROBLEM_PUMPING_POWER
    rounds: int = 3
    iterations: int = 8
    batch_size: int = 4
    step: int = 4
    cooling_rate: float = 0.92
    elite: int = 2
    replicas: int = 4
    replica_spacing: float = 2.5
    restarts: int = 4
    tile_size: int = 4
    leaves_per_tree: int = 4
    direction: int = 0
    seed: int = 0
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.problem not in (PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT):
            raise SearchError(f"unknown problem {self.problem!r}")
        if min(self.rounds, self.iterations, self.batch_size, self.step,
               self.elite, self.replicas, self.restarts) < 1:
            raise SearchError("portfolio config values must be >= 1")
        if self.replica_spacing <= 1.0:
            raise SearchError("replica_spacing must exceed 1")

    def fingerprint_fields(self) -> Tuple[Any, ...]:
        return (
            self.problem, self.rounds, self.iterations, self.batch_size,
            self.step, self.cooling_rate, self.elite, self.replicas,
            self.replica_spacing, self.restarts, self.tile_size,
            self.leaves_per_tree, self.direction, self.seed,
        )


@dataclass
class OptimizerOutcome:
    """What one portfolio strategy produced.

    ``low_evals`` / ``high_evals`` are distinct candidate evaluations per
    fidelity (the ``staged_sa`` adapter reports thermal-simulation counts
    instead, the only notion its runner exposes).  ``envelope`` is the
    offset model's calibrated log-space tolerance at the end of the run
    (``None`` when the strategy never calibrated).
    """

    name: str
    params: np.ndarray
    score: float
    evaluation: EvaluationResult
    low_evals: int
    high_evals: int
    rounds: List[Dict[str, Any]]
    envelope: Optional[float] = None
    offset_state: Optional[Dict[str, Any]] = None


@dataclass
class PortfolioResult:
    """Outcome of one full portfolio run."""

    case_number: int
    problem: str
    outcomes: Dict[str, OptimizerOutcome]

    @property
    def best(self) -> OptimizerOutcome:
        """The winning strategy (lowest verified score; name breaks ties)."""
        if not self.outcomes:
            raise SearchError("portfolio produced no outcomes")
        return min(
            self.outcomes.values(), key=lambda o: (o.score, o.name)
        )


class OptimizerContext:
    """Per-strategy execution context handed to every round."""

    def __init__(self, case: Case, config: PortfolioConfig, spawn: int):
        self.case = case
        self.config = config
        self.spawn = spawn
        self.plan = case.tree_plan(
            direction=config.direction, leaves_per_tree=config.leaves_per_tree
        )
        self.evaluator = MultiFidelityEvaluator(
            case,
            self.plan,
            config.problem,
            tile_size=config.tile_size,
            n_workers=config.n_workers,
        )

    def seed_seq(self, *key: int) -> np.random.SeedSequence:
        """An independent child stream for this strategy (spawn-keyed)."""
        return np.random.SeedSequence(
            self.config.seed, spawn_key=(self.spawn,) + key
        )

    def neighbor(
        self, params: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """The paper's tree move, clamped to the plan's legal range."""
        return self.plan.clamp_params(
            perturb_tree_params(params, self.config.step, rng)
        )


def _rng_from(state: Dict[str, Any]) -> np.random.Generator:
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


class RoundOptimizer:
    """Base class: a strategy advanced one resumable round at a time.

    Contract: ``init_state`` builds a fully picklable state dict (including
    RNG bit-generator states and the evaluator snapshot); ``run_round``
    restores the evaluator from the state, advances exactly one round, and
    writes everything back; ``finalize`` turns the state into an
    :class:`OptimizerOutcome`.  Because every round is a pure function of
    the state dict, a checkpointed state resumes bitwise.
    """

    name = "base"

    def init_state(self, ctx: OptimizerContext) -> Dict[str, Any]:
        raise NotImplementedError

    def run_round(
        self, ctx: OptimizerContext, state: Dict[str, Any], round_i: int
    ) -> None:
        raise NotImplementedError

    def finalize(
        self, ctx: OptimizerContext, state: Dict[str, Any]
    ) -> OptimizerOutcome:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------

    def _anneal_round(
        self,
        ctx: OptimizerContext,
        state: Dict[str, Any],
        cost_batch_fn,
        pool_out: Optional[List[Tuple[np.ndarray, float]]] = None,
    ) -> None:
        """One round of batched Metropolis annealing over ``state``."""
        cfg = ctx.config
        rng = _rng_from(state["rng"])
        current = np.asarray(state["current"])
        current_cost = state["current_cost"]
        best = np.asarray(state["best"])
        best_cost = state["best_cost"]
        temperature = state["temperature"]
        for _ in range(cfg.iterations):
            batch = [ctx.neighbor(current, rng) for _ in range(cfg.batch_size)]
            costs = [float(c) for c in cost_batch_fn(batch)]
            if pool_out is not None:
                pool_out.extend(zip(batch, costs))
            pick = int(np.argmin(costs))
            candidate, candidate_cost = batch[pick], costs[pick]
            if temperature is None:
                finite = [
                    abs(c - current_cost)
                    for c in costs
                    if math.isfinite(c) and c != current_cost
                ]
                if finite:
                    temperature = max(float(np.mean(finite)), 1e-12)
            effective_t = temperature if temperature is not None else max(
                abs(current_cost) if math.isfinite(current_cost) else 1.0,
                1e-12,
            )
            if _accept(current_cost, candidate_cost, effective_t, rng):
                current, current_cost = candidate, candidate_cost
            for cand, cost in zip(batch, costs):
                if cost < best_cost:
                    best, best_cost = cand, cost
            if temperature is not None:
                temperature *= cfg.cooling_rate
        state["rng"] = rng.bit_generator.state
        state["current"] = current
        state["current_cost"] = current_cost
        state["best"] = best
        state["best_cost"] = best_cost
        state["temperature"] = temperature

    def _verify(
        self,
        ctx: OptimizerContext,
        state: Dict[str, Any],
        params: np.ndarray,
    ) -> None:
        """Promote ``params``; keep the best verified candidate in state."""
        evaluation = ctx.evaluator.promote(params)
        verified = state.get("verified")
        if verified is None or evaluation.score < verified[1].score:
            state["verified"] = (np.asarray(params), evaluation)

    def _finalize_verified(
        self, ctx: OptimizerContext, state: Dict[str, Any]
    ) -> OptimizerOutcome:
        ctx.evaluator.restore(state["evaluator"])
        if state.get("verified") is None:
            self._verify(ctx, state, np.asarray(state["best"]))
            state["evaluator"] = ctx.evaluator.state()
        params, evaluation = state["verified"]
        return OptimizerOutcome(
            name=self.name,
            params=np.asarray(params),
            score=evaluation.score,
            evaluation=evaluation,
            low_evals=ctx.evaluator.low_evals,
            high_evals=ctx.evaluator.high_evals,
            rounds=list(state["rounds"]),
            envelope=ctx.evaluator.offset.tolerance(),
            offset_state=ctx.evaluator.offset.state(),
        )


@register_optimizer(
    "multi_fidelity",
    "batched SA on 2RM scores with per-round elite 4RM promotion",
)
class MultiFidelityOptimizer(RoundOptimizer):
    """The tentpole strategy: search low, verify high, correct the gap.

    The additive log-offset cannot change the *ranking* of surrogate
    scores, so the annealer runs on raw 2RM costs; the correction matters
    at the fidelity boundary -- picking which elites to promote against the
    verified incumbent, and reporting scores on the reference scale.
    """

    name = "multi_fidelity"

    def init_state(self, ctx: OptimizerContext) -> Dict[str, Any]:
        rng = np.random.default_rng(ctx.seed_seq(0))
        params = ctx.plan.params()
        cost = ctx.evaluator.low(params)
        return {
            "round": 0,
            "rng": rng.bit_generator.state,
            "current": params,
            "current_cost": cost,
            "best": params,
            "best_cost": cost,
            "temperature": None,
            "verified": None,
            "rounds": [],
            "evaluator": ctx.evaluator.state(),
        }

    def run_round(
        self, ctx: OptimizerContext, state: Dict[str, Any], round_i: int
    ) -> None:
        ctx.evaluator.restore(state["evaluator"])
        pool: List[Tuple[np.ndarray, float]] = []
        self._anneal_round(ctx, state, ctx.evaluator.low_batch, pool_out=pool)
        pool.append((np.asarray(state["best"]), state["best_cost"]))
        elites = _elite_candidates(pool, ctx.config.elite)
        for params, _ in elites:
            self._verify(ctx, state, params)
        state["rounds"].append(
            {
                "round": round_i,
                "best_low": state["best_cost"],
                "best_corrected": ctx.evaluator.corrected(state["best_cost"]),
                "verified": (
                    state["verified"][1].score
                    if state["verified"] is not None
                    else math.inf
                ),
                "promotions": len(elites),
                "low_evals": ctx.evaluator.low_evals,
                "high_evals": ctx.evaluator.high_evals,
            }
        )
        state["evaluator"] = ctx.evaluator.state()

    def finalize(
        self, ctx: OptimizerContext, state: Dict[str, Any]
    ) -> OptimizerOutcome:
        return self._finalize_verified(ctx, state)


@register_optimizer(
    "sa_4rm",
    "pure-4RM batched SA: the reference-budget comparator",
)
class Pure4RMOptimizer(RoundOptimizer):
    """Identical annealer to ``multi_fidelity`` but every candidate pays a
    4RM reference evaluation -- the baseline that defines the portfolio
    bench's "2x fewer 4RM evaluations" criterion."""

    name = "sa_4rm"

    def init_state(self, ctx: OptimizerContext) -> Dict[str, Any]:
        rng = np.random.default_rng(ctx.seed_seq(0))
        params = ctx.plan.params()
        cost = ctx.evaluator.high_evaluation(params).score
        return {
            "round": 0,
            "rng": rng.bit_generator.state,
            "current": params,
            "current_cost": cost,
            "best": params,
            "best_cost": cost,
            "temperature": None,
            "verified": None,
            "rounds": [],
            "evaluator": ctx.evaluator.state(),
        }

    def run_round(
        self, ctx: OptimizerContext, state: Dict[str, Any], round_i: int
    ) -> None:
        ctx.evaluator.restore(state["evaluator"])

        def high_batch(batch: Sequence[np.ndarray]) -> List[float]:
            return [
                ctx.evaluator.high_evaluation(params).score
                for params in batch
            ]

        self._anneal_round(ctx, state, high_batch)
        state["verified"] = (
            np.asarray(state["best"]),
            ctx.evaluator.high_evaluation(np.asarray(state["best"])),
        )
        state["rounds"].append(
            {
                "round": round_i,
                "best_low": math.nan,
                "best_corrected": state["best_cost"],
                "verified": state["best_cost"],
                "promotions": 0,
                "low_evals": ctx.evaluator.low_evals,
                "high_evals": ctx.evaluator.high_evals,
            }
        )
        state["evaluator"] = ctx.evaluator.state()

    def finalize(
        self, ctx: OptimizerContext, state: Dict[str, Any]
    ) -> OptimizerOutcome:
        outcome = self._finalize_verified(ctx, state)
        outcome.envelope = None
        outcome.offset_state = None
        return outcome


@register_optimizer(
    "tempering",
    "parallel tempering over the persistent evaluation pool",
)
class TemperingOptimizer(RoundOptimizer):
    """Replica-exchange SA: a geometric temperature ladder, pooled batch
    scoring, and adjacent swaps with the standard exchange criterion."""

    name = "tempering"

    def init_state(self, ctx: OptimizerContext) -> Dict[str, Any]:
        cfg = ctx.config
        rng = np.random.default_rng(ctx.seed_seq(0))
        base = ctx.plan.params()
        replicas = [base]
        for _ in range(cfg.replicas - 1):
            replicas.append(ctx.neighbor(base, rng))
        costs = ctx.evaluator.low_batch(replicas)
        best = int(np.argmin(costs))
        return {
            "round": 0,
            "rng": rng.bit_generator.state,
            "replicas": [np.asarray(r) for r in replicas],
            "costs": [float(c) for c in costs],
            "t_base": None,
            "sweep": 0,
            "swaps_attempted": 0,
            "swaps_accepted": 0,
            "best": np.asarray(replicas[best]),
            "best_cost": float(costs[best]),
            "verified": None,
            "rounds": [],
            "evaluator": ctx.evaluator.state(),
        }

    def _ladder(self, cfg: PortfolioConfig, t_base: float) -> List[float]:
        return [
            t_base * cfg.replica_spacing**k for k in range(cfg.replicas)
        ]

    def run_round(
        self, ctx: OptimizerContext, state: Dict[str, Any], round_i: int
    ) -> None:
        cfg = ctx.config
        ctx.evaluator.restore(state["evaluator"])
        rng = _rng_from(state["rng"])
        replicas = [np.asarray(r) for r in state["replicas"]]
        costs = [float(c) for c in state["costs"]]
        best, best_cost = np.asarray(state["best"]), state["best_cost"]
        t_base = state["t_base"]
        for _ in range(cfg.iterations):
            proposals = [ctx.neighbor(r, rng) for r in replicas]
            proposal_costs = ctx.evaluator.low_batch(proposals)
            if t_base is None:
                finite = [
                    abs(pc - c)
                    for pc, c in zip(proposal_costs, costs)
                    if math.isfinite(pc) and pc != c
                ]
                if finite:
                    t_base = max(float(np.mean(finite)), 1e-12)
            ladder = self._ladder(
                cfg, t_base if t_base is not None else 1.0
            )
            for k in range(cfg.replicas):
                effective_t = ladder[k] if t_base is not None else max(
                    abs(costs[k]) if math.isfinite(costs[k]) else 1.0, 1e-12
                )
                if _accept(costs[k], proposal_costs[k], effective_t, rng):
                    replicas[k] = proposals[k]
                    costs[k] = float(proposal_costs[k])
                if costs[k] < best_cost:
                    best, best_cost = replicas[k], costs[k]
            # Replica-exchange sweep, alternating pair parity: swap replicas
            # (k, k+1) with probability min(1, exp((b_k - b_{k+1}) *
            # (E_k - E_{k+1}))) where b = 1/T.
            if t_base is not None:
                parity = state["sweep"] % 2
                for k in range(parity, cfg.replicas - 1, 2):
                    state["swaps_attempted"] += 1
                    if _swap_accept(
                        costs[k], costs[k + 1], ladder[k], ladder[k + 1], rng
                    ):
                        replicas[k], replicas[k + 1] = (
                            replicas[k + 1], replicas[k],
                        )
                        costs[k], costs[k + 1] = costs[k + 1], costs[k]
                        state["swaps_accepted"] += 1
            state["sweep"] += 1
        self._verify(ctx, state, best)
        state["rng"] = rng.bit_generator.state
        state["replicas"] = replicas
        state["costs"] = costs
        state["t_base"] = t_base
        state["best"] = best
        state["best_cost"] = best_cost
        state["rounds"].append(
            {
                "round": round_i,
                "best_low": best_cost,
                "best_corrected": ctx.evaluator.corrected(best_cost),
                "verified": state["verified"][1].score,
                "promotions": 1,
                "low_evals": ctx.evaluator.low_evals,
                "high_evals": ctx.evaluator.high_evals,
                "swap_rate": (
                    state["swaps_accepted"] / state["swaps_attempted"]
                    if state["swaps_attempted"]
                    else 0.0
                ),
            }
        )
        state["evaluator"] = ctx.evaluator.state()

    def finalize(
        self, ctx: OptimizerContext, state: Dict[str, Any]
    ) -> OptimizerOutcome:
        return self._finalize_verified(ctx, state)


@register_optimizer(
    "random_restart",
    "independently seeded SA arms raced with halving at round boundaries",
)
class RandomRestartOptimizer(RoundOptimizer):
    """A portfolio racer: arms step in lockstep (one pooled batch per
    iteration across all live arms) and the weakest half retires at every
    round boundary, concentrating the budget on promising basins."""

    name = "random_restart"

    def init_state(self, ctx: OptimizerContext) -> Dict[str, Any]:
        cfg = ctx.config
        arms = []
        base = ctx.plan.params()
        starts: List[np.ndarray] = []
        rngs = []
        for arm_i in range(cfg.restarts):
            rng = np.random.default_rng(ctx.seed_seq(0, arm_i))
            start = base if arm_i == 0 else ctx.neighbor(base, rng)
            rngs.append(rng)
            starts.append(start)
        costs = ctx.evaluator.low_batch(starts)
        for rng, start, cost in zip(rngs, starts, costs):
            arms.append(
                {
                    "rng": rng.bit_generator.state,
                    "current": np.asarray(start),
                    "current_cost": float(cost),
                    "best": np.asarray(start),
                    "best_cost": float(cost),
                    "temperature": None,
                    "alive": True,
                }
            )
        best = int(np.argmin(costs))
        return {
            "round": 0,
            "arms": arms,
            "best": np.asarray(starts[best]),
            "best_cost": float(costs[best]),
            "verified": None,
            "rounds": [],
            "evaluator": ctx.evaluator.state(),
        }

    def run_round(
        self, ctx: OptimizerContext, state: Dict[str, Any], round_i: int
    ) -> None:
        cfg = ctx.config
        ctx.evaluator.restore(state["evaluator"])
        arms = state["arms"]
        best, best_cost = np.asarray(state["best"]), state["best_cost"]
        for _ in range(cfg.iterations):
            live = [arm for arm in arms if arm["alive"]]
            proposals = []
            for arm in live:
                rng = _rng_from(arm["rng"])
                proposals.append(ctx.neighbor(np.asarray(arm["current"]), rng))
                arm["rng"] = rng.bit_generator.state
            proposal_costs = ctx.evaluator.low_batch(proposals)
            for arm, candidate, cost in zip(live, proposals, proposal_costs):
                cost = float(cost)
                rng = _rng_from(arm["rng"])
                if arm["temperature"] is None:
                    delta = abs(cost - arm["current_cost"])
                    if math.isfinite(delta) and delta > 0.0:
                        arm["temperature"] = max(delta, 1e-12)
                effective_t = (
                    arm["temperature"]
                    if arm["temperature"] is not None
                    else max(
                        abs(arm["current_cost"])
                        if math.isfinite(arm["current_cost"])
                        else 1.0,
                        1e-12,
                    )
                )
                if _accept(arm["current_cost"], cost, effective_t, rng):
                    arm["current"], arm["current_cost"] = candidate, cost
                if cost < arm["best_cost"]:
                    arm["best"], arm["best_cost"] = candidate, cost
                if cost < best_cost:
                    best, best_cost = candidate, cost
                if arm["temperature"] is not None:
                    arm["temperature"] *= cfg.cooling_rate
                arm["rng"] = rng.bit_generator.state
        # Racing: retire the weakest half (keep at least one arm) until the
        # final round, which runs whatever survived.
        live = [arm for arm in arms if arm["alive"]]
        if round_i < cfg.rounds - 1 and len(live) > 1:
            ranked = sorted(live, key=lambda arm: arm["best_cost"])
            for arm in ranked[max(len(ranked) // 2, 1):]:
                arm["alive"] = False
        self._verify(ctx, state, best)
        state["best"], state["best_cost"] = best, best_cost
        state["rounds"].append(
            {
                "round": round_i,
                "best_low": best_cost,
                "best_corrected": ctx.evaluator.corrected(best_cost),
                "verified": state["verified"][1].score,
                "promotions": 1,
                "low_evals": ctx.evaluator.low_evals,
                "high_evals": ctx.evaluator.high_evals,
                "alive": sum(1 for arm in arms if arm["alive"]),
            }
        )
        state["evaluator"] = ctx.evaluator.state()

    def finalize(
        self, ctx: OptimizerContext, state: Dict[str, Any]
    ) -> OptimizerOutcome:
        return self._finalize_verified(ctx, state)


@register_optimizer(
    "staged_sa",
    "the paper's staged SA flow (Algorithm 1) behind the registry seam",
)
class StagedSAOptimizer(RoundOptimizer):
    """Adapter: runs :func:`~repro.optimize.runner.run_staged_flow` once
    (its own rounds/stages live inside) and reports its outcome in
    portfolio terms.  Eval counters are thermal-simulation counts, the only
    accounting the staged runner exposes."""

    name = "staged_sa"

    def init_state(self, ctx: OptimizerContext) -> Dict[str, Any]:
        return {"round": 0, "result": None, "rounds": [],
                "evaluator": ctx.evaluator.state()}

    def run_round(
        self, ctx: OptimizerContext, state: Dict[str, Any], round_i: int
    ) -> None:
        if state["result"] is not None:
            return
        from .runner import run_staged_flow
        from .stages import problem1_stages, problem2_stages

        cfg = ctx.config
        schedule = (
            problem1_stages(quick=True, tile_size=cfg.tile_size)
            if cfg.problem == PROBLEM_PUMPING_POWER
            else problem2_stages(quick=True, tile_size=cfg.tile_size)
        )
        result = run_staged_flow(
            ctx.case,
            schedule,
            cfg.problem,
            directions=(cfg.direction,),
            seed=cfg.seed,
            leaves_per_tree=cfg.leaves_per_tree,
            n_workers=cfg.n_workers,
        )
        state["result"] = result
        high_sims = sum(
            report.simulations
            for report, stage in zip(result.stage_reports, schedule)
            if stage.model == "4rm"
        )
        state["rounds"].append(
            {
                "round": round_i,
                "best_low": math.nan,
                "best_corrected": result.evaluation.score,
                "verified": result.evaluation.score,
                "promotions": 0,
                "low_evals": result.total_simulations - high_sims,
                "high_evals": high_sims,
            }
        )

    def finalize(
        self, ctx: OptimizerContext, state: Dict[str, Any]
    ) -> OptimizerOutcome:
        result = state["result"]
        if result is None:
            self.run_round(ctx, state, 0)
            result = state["result"]
        record = state["rounds"][-1]
        return OptimizerOutcome(
            name=self.name,
            params=np.asarray(result.plan.params()),
            score=result.evaluation.score,
            evaluation=result.evaluation,
            low_evals=int(record["low_evals"]),
            high_evals=int(record["high_evals"]),
            rounds=list(state["rounds"]),
        )


def _elite_candidates(
    pool: Sequence[Tuple[np.ndarray, float]], elite: int
) -> List[Tuple[np.ndarray, float]]:
    """The ``elite`` best distinct finite-cost candidates of one round."""
    seen: Dict[bytes, Tuple[np.ndarray, float]] = {}
    for params, cost in pool:
        if not math.isfinite(cost):
            continue
        key = np.asarray(params, dtype=int).tobytes()
        if key not in seen or cost < seen[key][1]:
            seen[key] = (np.asarray(params), cost)
    ranked = sorted(seen.values(), key=lambda item: (item[1], item[0].tobytes()))
    return ranked[:elite]


def _swap_accept(
    cost_a: float,
    cost_b: float,
    t_a: float,
    t_b: float,
    rng: np.random.Generator,
) -> bool:
    """Replica-exchange acceptance for configurations at ``t_a < t_b``."""
    if math.isinf(cost_a) and math.isinf(cost_b):
        return False
    if math.isinf(cost_a):
        return True  # move the feasible configuration to the colder rung
    if math.isinf(cost_b):
        return False
    log_p = (1.0 / t_a - 1.0 / t_b) * (cost_a - cost_b)
    if log_p >= 0.0:
        return True
    return rng.random() < math.exp(log_p)


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


def _portfolio_fingerprint(
    case: Case, optimizers: Sequence[str], config: PortfolioConfig
) -> str:
    return fingerprint_of(
        case=(case.number, case.nrows, case.ncols, case.cell_width),
        optimizers=tuple(optimizers),
        config=config.fingerprint_fields(),
    )


def run_portfolio(
    case: Case,
    optimizers: Sequence[str] = DEFAULT_PORTFOLIO,
    config: Optional[PortfolioConfig] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    run_log_dir: Optional[str] = None,
    interrupt_check: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> PortfolioResult:
    """Race a portfolio of registered optimizers on one case.

    Args:
        case: Benchmark case (Table 2 or :mod:`repro.cases`-generated).
        optimizers: Registry names to run, in order.
        config: Shared :class:`PortfolioConfig`; defaults are test-scale.
        checkpoint_dir: Persist a crash-safe checkpoint at every optimizer
            round boundary; ``None`` disables.
        resume: Restore the checkpoint in ``checkpoint_dir`` (missing file
            starts fresh; a mismatching fingerprint raises
            :class:`~repro.errors.CheckpointError`).  The resumed run's
            outcomes are bitwise identical to an uninterrupted run.
        run_log_dir: Write one JSONL run log per optimizer into this
            directory (``<name>.jsonl``) with standard ``run.start`` /
            ``round.end`` / ``run.end`` records plus the ``portfolio.*``
            event family, so strategies compare directly via
            ``python -m repro.telemetry report A.jsonl --compare B.jsonl``.
        interrupt_check: Polled after every round-boundary checkpoint
            write; once it returns true the run stops with
            :class:`~repro.errors.RunInterrupted` -- *after* the state that
            makes a bitwise resume possible reached disk.  Requires
            ``checkpoint_dir`` (a stop without a checkpoint would discard
            work instead of deferring it).
        progress: Receives ``(event_type, fields)`` at the run's milestone
            events (optimizer start/end, each round, run end) in addition
            to -- and with the same payloads as -- the run-log records.
            The design service points this at the job's event log so live
            ``follow=1`` streams see round/score progress; a separate
            callback (rather than a shared run log) keeps concurrent jobs'
            streams from interleaving.
    """
    config = config or PortfolioConfig()
    if not optimizers:
        raise SearchError("portfolio needs at least one optimizer")
    if interrupt_check is not None and checkpoint_dir is None:
        raise CheckpointError("interrupt_check needs checkpoint_dir")
    entries = [get_optimizer(name) for name in optimizers]
    fingerprint = _portfolio_fingerprint(case, optimizers, config)

    checkpoint_path: Optional[Path] = None
    payload: Dict[str, Any] = {"completed": {}, "active": None,
                               "active_state": None}
    if checkpoint_dir is not None:
        checkpoint_path = Path(checkpoint_dir) / PORTFOLIO_CHECKPOINT
        if resume and checkpoint_path.exists():
            payload = read_checkpoint(checkpoint_path, fingerprint)
            runlog.emit_event(
                "portfolio.resume",
                fingerprint=fingerprint,
                completed=sorted(payload["completed"]),
                active=payload["active"],
            )
    elif resume:
        raise CheckpointError("resume=True needs checkpoint_dir")

    def save() -> None:
        if checkpoint_path is not None:
            write_checkpoint(checkpoint_path, payload, fingerprint)

    def stop_point(where: str) -> None:
        # Only ever called right after save(): the interrupt defers the
        # remaining work to a later --resume, it never discards any.
        if interrupt_check is not None and interrupt_check():
            raise RunInterrupted(
                f"portfolio stopped at {where}; resume from "
                f"{checkpoint_path}"
            )

    def report(event_type: str, **fields: Any) -> None:
        if progress is not None:
            progress(event_type, fields)

    outcomes: Dict[str, OptimizerOutcome] = dict(payload["completed"])
    for spawn, entry in enumerate(entries):
        if entry.name in outcomes:
            continue
        optimizer = entry.factory()
        ctx = OptimizerContext(case, config, spawn)
        log = (
            runlog.RunLog(str(Path(run_log_dir) / f"{entry.name}.jsonl"))
            if run_log_dir is not None
            else None
        )
        previous_log = runlog.set_run_log(log) if log is not None else None
        started = runlog.Stopwatch()
        try:
            runlog.emit_event(
                "run.start",
                problem=config.problem,
                case_number=case.number,
                grid_size=case.nrows,
                seed=config.seed,
                n_workers=config.n_workers,
                batch_size=config.batch_size,
                optimizer=entry.name,
                fingerprint=fingerprint,
            )
            runlog.emit_event(
                "portfolio.optimizer.start",
                optimizer=entry.name,
                rounds=config.rounds,
                iterations=config.iterations,
            )
            report(
                "portfolio.optimizer.start",
                optimizer=entry.name,
                rounds=config.rounds,
                iterations=config.iterations,
            )
            with telemetry.span("portfolio.optimizer", optimizer=entry.name):
                if (
                    payload["active"] == entry.name
                    and payload["active_state"] is not None
                ):
                    state = payload["active_state"]
                else:
                    state = optimizer.init_state(ctx)
                    payload["active"] = entry.name
                    payload["active_state"] = state
                    save()
                for round_i in range(state["round"], config.rounds):
                    optimizer.run_round(ctx, state, round_i)
                    state["round"] = round_i + 1
                    record = state["rounds"][-1] if state["rounds"] else {}
                    runlog.emit_event(
                        "portfolio.round",
                        optimizer=entry.name,
                        **record,
                    )
                    report(
                        "portfolio.round", optimizer=entry.name, **record
                    )
                    runlog.emit_event(
                        "round.end",
                        d_index=0,
                        stage=entry.name,
                        round=round_i,
                        best_cost=record.get("verified", math.inf),
                        accepted=0,
                        proposed=record.get("low_evals", 0)
                        + record.get("high_evals", 0),
                        acceptance_rate=0.0,
                        iterations=config.iterations,
                    )
                    save()
                    if round_i + 1 < config.rounds:
                        stop_point(
                            f"{entry.name} round {round_i + 1}/"
                            f"{config.rounds}"
                        )
                outcome = optimizer.finalize(ctx, state)
            outcomes[entry.name] = outcome
            payload["completed"] = dict(outcomes)
            payload["active"] = None
            payload["active_state"] = None
            save()
            runlog.emit_event(
                "portfolio.optimizer.end",
                optimizer=entry.name,
                score=outcome.score,
                feasible=outcome.evaluation.feasible,
                low_evals=outcome.low_evals,
                high_evals=outcome.high_evals,
            )
            report(
                "portfolio.optimizer.end",
                optimizer=entry.name,
                score=outcome.score,
                feasible=outcome.evaluation.feasible,
                low_evals=outcome.low_evals,
                high_evals=outcome.high_evals,
            )
            runlog.emit_event(
                "run.end",
                score=outcome.score,
                feasible=outcome.evaluation.feasible,
                total_simulations=outcome.low_evals + outcome.high_evals,
                seconds=started.elapsed(),
                histograms=profiling.histogram_summaries(),
            )
            report(
                "run.end",
                optimizer=entry.name,
                score=outcome.score,
                feasible=outcome.evaluation.feasible,
                total_simulations=outcome.low_evals + outcome.high_evals,
                seconds=started.elapsed(),
            )
        finally:
            if log is not None:
                runlog.set_run_log(previous_log)
        if len(outcomes) < len(entries):
            stop_point(f"completion of {entry.name}")
    return PortfolioResult(
        case_number=case.number,
        problem=config.problem,
        outcomes=outcomes,
    )
