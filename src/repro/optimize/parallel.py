"""Parallel candidate evaluation (the paper's 64-way neighbor evaluation).

The paper's server evaluates 64 neighboring network solutions simultaneously
in each SA iteration.  :func:`evaluate_population` reproduces that pattern:
score a batch of tree-parameter vectors, optionally across worker processes.

Workers are *persistent*: a :class:`PersistentEvaluationPool` ships the full
evaluation context (case, plan, stage, problem) to each worker exactly once
via the pool initializer, and every subsequent candidate costs only a tiny
``(n_trees, 2)`` int array on the wire.  Pools are kept alive in a small
module-level cache keyed by that context, so consecutive SA iterations --
and rounds, which share a stage -- reuse the same warm workers instead of
paying pool spin-up plus context re-pickling per batch.  Each worker's
:class:`~repro.optimize.runner._CandidateEvaluator` also keeps its
per-params cost cache across batches.

Error discipline (shared by the serial and parallel paths): a
:class:`~repro.errors.ReproError` means the candidate network is illegal or
infeasible and scores ``inf``; any other exception is a genuine bug and
surfaces as :class:`CandidateCrashError` carrying the offending parameters.
The ``parallel.infeasible`` / ``parallel.crashed`` profiling counters keep
the two populations distinguishable.

The grouped Problem-2 metric is inherently sequential (later candidates
re-use the group leader's optimal pressure), so it always evaluates serially;
the Problem-1 metrics parallelize freely.
"""

from __future__ import annotations

import atexit
import math
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from .. import profiling
from ..constants import quantize_key
from ..errors import (
    CandidateCrashError,
    ReproError,
    SearchError,
    crash_boundary,
)
from ..iccad2015.cases import Case
from ..networks.tree import TreePlan
from .stages import METRIC_MIN_GRADIENT_CAPPED, StageConfig

__all__ = [
    "CandidateCrashError",
    "PersistentEvaluationPool",
    "evaluate_population",
    "shutdown_pools",
]


# ---------------------------------------------------------------------------
# Worker-side machinery
# ---------------------------------------------------------------------------

#: The evaluator owned by this worker process, installed once by
#: :func:`_init_worker`.  ``None`` in the parent process.
_WORKER_EVALUATOR = None


def _init_worker(case, plan, stage, problem, fixed_pressure) -> None:
    """Pool initializer: build this worker's evaluator exactly once."""
    global _WORKER_EVALUATOR
    from .runner import _CandidateEvaluator

    _WORKER_EVALUATOR = _CandidateEvaluator(
        case, plan, stage, problem, fixed_pressure
    )


def _score_candidate(evaluator, params: np.ndarray) -> float:
    """Score one candidate with the shared error discipline.

    Library errors (illegal geometry, infeasible constraints, stalled
    searches) mean "this candidate is bad" and return ``inf``; anything else
    is a programming error and is re-raised with the candidate parameters in
    the message so a crashing point is reproducible.
    """
    params = np.asarray(params, dtype=int)
    try:
        with crash_boundary(f"candidate params {params.tolist()}"):
            return float(evaluator(params))
    except ReproError:
        return math.inf


def _score_in_worker(params: np.ndarray):
    """Worker entry point: score one candidate, return (cost, counters).

    The worker's profiling counters are reset around each candidate so the
    returned snapshot is a per-candidate delta the parent can merge into its
    own profiler -- solver-reuse statistics survive the process boundary.
    """
    profiling.reset()
    cost = _score_candidate(_WORKER_EVALUATOR, params)
    return cost, profiling.snapshot()


# ---------------------------------------------------------------------------
# Persistent pool
# ---------------------------------------------------------------------------


class PersistentEvaluationPool:
    """A reusable worker pool bound to one evaluation context.

    Args:
        case / plan / stage / problem / fixed_pressure: As in the staged
            flow (:mod:`repro.optimize.runner`); pickled to each worker once.
        n_workers: Worker process count (>= 1).

    Use as a context manager or call :meth:`close` explicitly; pools cached
    by :func:`evaluate_population` are closed on eviction and at exit.
    """

    def __init__(
        self,
        case: Case,
        plan: TreePlan,
        stage: StageConfig,
        problem: str,
        fixed_pressure: Optional[float] = None,
        n_workers: int = 2,
    ):
        if n_workers < 1:
            raise SearchError(f"n_workers must be >= 1, got {n_workers}")
        #: Strong references keep ``id()``-based cache keys valid.
        self.context = (case, plan, stage, problem, fixed_pressure)
        self.n_workers = int(n_workers)
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_worker,
            initargs=self.context,
        )
        self._closed = False
        profiling.increment("parallel.pool_starts")

    def evaluate(self, params_list: Sequence[np.ndarray]) -> List[float]:
        """Score a batch of candidates; one cost per candidate, in order."""
        if self._closed:
            raise SearchError("persistent evaluation pool is closed")
        payloads = [np.asarray(p, dtype=int) for p in params_list]
        if not payloads:
            return []
        with profiling.timer("parallel.batch"):
            try:
                outcomes = list(self._executor.map(_score_in_worker, payloads))
            except CandidateCrashError:
                profiling.increment("parallel.crashed")
                raise
        costs = []
        for cost, worker_snapshot in outcomes:
            costs.append(float(cost))
            profiling.merge(worker_snapshot)
        profiling.increment("parallel.batches")
        profiling.increment("parallel.candidates", len(costs))
        profiling.increment(
            "parallel.infeasible", sum(1 for c in costs if math.isinf(c))
        )
        return costs

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed

    def __enter__(self) -> "PersistentEvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Live pools kept warm across :func:`evaluate_population` calls.  Two slots
#: cover the common shape of the staged flow (current stage plus the
#: next-stage re-scorer) without hoarding idle processes.
_POOL_CACHE_SIZE = 2
_pool_cache: "OrderedDict[tuple, PersistentEvaluationPool]" = OrderedDict()


def _cached_pool(
    case: Case,
    plan: TreePlan,
    stage: StageConfig,
    problem: str,
    fixed_pressure: Optional[float],
    n_workers: int,
) -> PersistentEvaluationPool:
    # Identity-based keys are safe because each cached pool holds strong
    # references to its context objects, pinning their ids.  The pressure is
    # quantized like every other float cache key in the repo, so an
    # epsilon-perturbed context reuses the warm pool.
    quantized_pressure = (
        None if fixed_pressure is None else quantize_key(fixed_pressure)
    )
    key = (id(case), id(plan), stage, problem, quantized_pressure, n_workers)
    pool = _pool_cache.get(key)
    if pool is not None and not pool.closed:
        _pool_cache.move_to_end(key)
        return pool
    pool = PersistentEvaluationPool(
        case, plan, stage, problem, fixed_pressure, n_workers=n_workers
    )
    _pool_cache[key] = pool
    while len(_pool_cache) > _POOL_CACHE_SIZE:
        _, evicted = _pool_cache.popitem(last=False)
        evicted.close()
    return pool


def shutdown_pools() -> None:
    """Close every cached worker pool (also registered at interpreter exit)."""
    while _pool_cache:
        _, pool = _pool_cache.popitem(last=False)
        pool.close()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def evaluate_population(
    case: Case,
    plan: TreePlan,
    stage: StageConfig,
    problem: str,
    params_list: Sequence[np.ndarray],
    fixed_pressure: Optional[float] = None,
    n_workers: int = 1,
    pool: Optional[PersistentEvaluationPool] = None,
) -> List[float]:
    """Score a batch of candidate parameter vectors.

    Args:
        case / plan / stage / problem / fixed_pressure: As in the staged
            flow (:mod:`repro.optimize.runner`).
        params_list: Candidate (n_trees, 2) arrays.
        n_workers: Worker processes; 1 evaluates serially in-process.
        pool: An explicit :class:`PersistentEvaluationPool` to dispatch to
            (its context must match the other arguments); by default a
            module-cached pool for this context is created or reused.

    Returns:
        One cost per candidate (``inf`` for illegal/infeasible networks).
        Unexpected worker exceptions propagate as
        :class:`CandidateCrashError` -- they are bugs, not infeasibility.
    """
    if n_workers < 1:
        raise SearchError(f"n_workers must be >= 1, got {n_workers}")
    if not params_list:
        return []
    # The grouped metric is stateful across candidates and must stay serial
    # no matter what was requested; otherwise go parallel when a pool was
    # handed in or more than one worker was asked for.
    if stage.metric == METRIC_MIN_GRADIENT_CAPPED or (
        pool is None and n_workers == 1
    ):
        from .runner import _CandidateEvaluator

        evaluator = _CandidateEvaluator(
            case, plan, stage, problem, fixed_pressure
        )
        costs = [_score_candidate(evaluator, params) for params in params_list]
        profiling.increment("parallel.candidates", len(costs))
        profiling.increment(
            "parallel.infeasible", sum(1 for c in costs if math.isinf(c))
        )
        return costs

    if pool is None:
        pool = _cached_pool(
            case, plan, stage, problem, fixed_pressure, n_workers
        )
    return pool.evaluate(params_list)
