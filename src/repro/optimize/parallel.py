"""Parallel candidate evaluation (the paper's 64-way neighbor evaluation).

The paper's server evaluates 64 neighboring network solutions simultaneously
in each SA iteration.  :func:`evaluate_population` reproduces that pattern:
score a batch of tree-parameter vectors, optionally across worker processes.

Workers are *persistent*: a :class:`PersistentEvaluationPool` ships the full
evaluation context (case, plan, stage, problem) to each worker exactly once
via the pool initializer, and every subsequent candidate costs only a tiny
``(n_trees, 2)`` int array on the wire.  Pools are kept alive in a small
module-level cache keyed by that context, so consecutive SA iterations --
and rounds, which share a stage -- reuse the same warm workers instead of
paying pool spin-up plus context re-pickling per batch.  Each worker's
:class:`~repro.optimize.runner._CandidateEvaluator` also keeps its
per-params cost cache across batches.

Error discipline (shared by the serial and parallel paths): a
:class:`~repro.errors.ReproError` means the candidate network is illegal or
infeasible and scores ``inf``; any other exception is a genuine bug and
surfaces as :class:`CandidateCrashError` carrying the offending parameters.
The ``parallel.infeasible`` / ``parallel.crashed`` profiling counters keep
the two populations distinguishable.

The grouped Problem-2 metric is inherently sequential (later candidates
re-use the group leader's optimal pressure), so it always evaluates serially;
the Problem-1 metrics parallelize freely.

Resilience (see ``docs/ROBUSTNESS.md``): batches run with a no-progress
timeout, bounded exponential-backoff retries that replace dead or hung
worker processes, and -- after enough consecutive pool failures -- a
permanent degradation to serial in-process evaluation.  Pool-level failures
surface as :class:`~repro.errors.PoolError` subclasses; per-candidate
results already collected before a failure are kept, so retries only redo
the missing work.
"""

from __future__ import annotations

import atexit
import math
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import faults, profiling, telemetry
from ..constants import (
    CANDIDATE_TIMEOUT,
    POOL_BACKOFF_BASE,
    POOL_BACKOFF_MAX,
    POOL_DEGRADE_AFTER,
    POOL_MAX_RETRIES,
    quantize_key,
)
from ..errors import (
    CandidateCrashError,
    PoolError,
    ReproError,
    SearchError,
    WorkerLostError,
    WorkerTimeoutError,
    crash_boundary,
)
from ..faults import SITE_PARALLEL_DISPATCH, SITE_PARALLEL_WORKER
from ..iccad2015.cases import Case
from ..linalg import LinalgConfig
from ..networks.tree import TreePlan
from ..telemetry import SIZE_BUCKET_BOUNDS, TelemetryConfig, runlog
from .stages import METRIC_MIN_GRADIENT_CAPPED, StageConfig

__all__ = [
    "CandidateCrashError",
    "PersistentEvaluationPool",
    "PoolError",
    "WorkerLostError",
    "WorkerTimeoutError",
    "evaluate_population",
    "shutdown_pools",
]


# ---------------------------------------------------------------------------
# Worker-side machinery
# ---------------------------------------------------------------------------

#: The evaluator owned by this worker process, installed once by
#: :func:`_init_worker`.  ``None`` in the parent process.
_WORKER_EVALUATOR = None


def _init_worker(
    case,
    plan,
    stage,
    problem,
    fixed_pressure,
    fault_plan=None,
    telemetry_config=None,
    linalg_config=None,
) -> None:
    """Pool initializer: build this worker's evaluator exactly once.

    Also re-arms the ambient fault plan, the parent's telemetry
    configuration (tracing on/off, span capacity), and the parent's solver
    configuration (backend choice, incremental updates), so respawned
    workers behave identically to the ones they replaced.
    """
    global _WORKER_EVALUATOR
    from .runner import _CandidateEvaluator

    if fault_plan is not None:
        faults.set_active_plan(fault_plan)
    if telemetry_config is not None:
        telemetry_config.apply()
    # Under the fork start method this process inherits the spawning
    # thread's lane (the service worker thread's); drop it so exported
    # spans group as a distinct pool-worker row, not the parent's.
    telemetry.set_thread_lane(None)
    if linalg_config is not None:
        linalg_config.apply()
    _WORKER_EVALUATOR = _CandidateEvaluator(
        case, plan, stage, problem, fixed_pressure
    )


def _score_candidate(evaluator, params: np.ndarray) -> float:
    """Score one candidate with the shared error discipline.

    Library errors (illegal geometry, infeasible constraints, stalled
    searches) mean "this candidate is bad" and return ``inf``; anything else
    is a programming error and is re-raised with the candidate parameters in
    the message so a crashing point is reproducible.
    """
    params = np.asarray(params, dtype=int)
    try:
        with crash_boundary(f"candidate params {params.tolist()}"):
            return float(evaluator(params))
    except ReproError:
        return math.inf


def _score_in_worker(params: np.ndarray):
    """Worker entry point: score one candidate.

    Returns ``(cost, counters, spans)``: the worker's profiling counters
    are reset around each candidate so the returned snapshot is a
    per-candidate delta the parent can merge into its own profiler, and the
    worker's span buffer is drained the same way -- solver-reuse statistics
    and trace timelines both survive the process boundary.  ``spans`` is
    empty (and free) when tracing is off.

    The ``parallel.worker`` injection site lives here -- and only here, so
    worker-death faults can never fire in the parent's serial-degradation
    path.  An injected :class:`~repro.errors.ReproError` scores ``inf``
    like any infeasible candidate; an injected untyped crash is translated
    by :func:`~repro.errors.crash_boundary` and propagates.
    """
    profiling.reset()
    telemetry.clear_spans()
    try:
        with crash_boundary(f"fault injection at {SITE_PARALLEL_WORKER}"):
            faults.inject(SITE_PARALLEL_WORKER)
    except ReproError:
        return math.inf, profiling.snapshot(), telemetry.drain_spans()
    with telemetry.span("parallel.candidate"):
        cost = _score_candidate(_WORKER_EVALUATOR, params)
    return cost, profiling.snapshot(), telemetry.drain_spans()


# ---------------------------------------------------------------------------
# Persistent pool
# ---------------------------------------------------------------------------


class PersistentEvaluationPool:
    """A reusable worker pool bound to one evaluation context.

    Args:
        case / plan / stage / problem / fixed_pressure: As in the staged
            flow (:mod:`repro.optimize.runner`); pickled to each worker once.
        n_workers: Worker process count (>= 1).
        timeout: No-progress timeout per batch in seconds: the batch fails
            with :class:`~repro.errors.WorkerTimeoutError` when no candidate
            completes for this long (each completion resets the clock).
        max_retries: Batch retries (after the first attempt) before a pool
            failure propagates to the caller.
        backoff_base: First retry backoff in seconds; doubles per retry up
            to :data:`~repro.constants.POOL_BACKOFF_MAX`.
        degrade_after: Consecutive failed batches after which the pool
            permanently falls back to serial in-process evaluation.
        fault_plan: Optional :class:`~repro.faults.FaultPlan` shipped to
            every worker (chaos testing); workers re-arm it on (re)spawn.

    Use as a context manager or call :meth:`close` explicitly; pools cached
    by :func:`evaluate_population` are closed on eviction and at exit.
    """

    def __init__(
        self,
        case: Case,
        plan: TreePlan,
        stage: StageConfig,
        problem: str,
        fixed_pressure: Optional[float] = None,
        n_workers: int = 2,
        timeout: float = CANDIDATE_TIMEOUT,
        max_retries: int = POOL_MAX_RETRIES,
        backoff_base: float = POOL_BACKOFF_BASE,
        degrade_after: int = POOL_DEGRADE_AFTER,
        fault_plan=None,
    ):
        if n_workers < 1:
            raise SearchError(f"n_workers must be >= 1, got {n_workers}")
        if timeout <= 0:
            raise SearchError(f"timeout must be > 0, got {timeout}")
        if max_retries < 0:
            raise SearchError(f"max_retries must be >= 0, got {max_retries}")
        if degrade_after < 1:
            raise SearchError(
                f"degrade_after must be >= 1, got {degrade_after}"
            )
        #: Strong references keep ``id()``-based cache keys valid.
        self.context = (case, plan, stage, problem, fixed_pressure)
        self.fault_plan = fault_plan
        #: Captured once at construction and shipped to every worker
        #: (including respawns), like the fault plan.  Flipping tracing in
        #: the parent therefore requires a new pool -- which the module
        #: cache key guarantees.
        self.telemetry_config = TelemetryConfig.current()
        #: Solver configuration, captured and shipped the same way so worker
        #: evaluations use the parent's backend/incremental settings.
        self.linalg_config = LinalgConfig.current()
        self.n_workers = int(n_workers)
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.degrade_after = int(degrade_after)
        self._consecutive_failures = 0
        self._degraded = False
        self._serial_evaluator = None
        self._spawn_executor()
        self._closed = False
        profiling.increment("parallel.pool_starts")

    def _spawn_executor(self) -> None:
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_worker,
            initargs=self.context
            + (self.fault_plan, self.telemetry_config, self.linalg_config),
        )

    def evaluate(self, params_list: Sequence[np.ndarray]) -> List[float]:
        """Score a batch of candidates; one cost per candidate, in order.

        Pool-level failures (hang, worker death) are retried with backoff
        and worker replacement; after ``degrade_after`` consecutive failures
        the batch -- and every later one -- completes serially in-process.
        A :class:`~repro.errors.PoolError` escapes only when retries are
        exhausted before degradation kicks in.
        """
        if self._closed:
            raise SearchError("persistent evaluation pool is closed")
        payloads = [np.asarray(p, dtype=int) for p in params_list]
        if not payloads:
            return []
        faults.inject(SITE_PARALLEL_DISPATCH)
        profiling.observe(
            "parallel.batch_size", len(payloads), bounds=SIZE_BUCKET_BOUNDS
        )
        with telemetry.span("parallel.batch", candidates=len(payloads)):
            with profiling.timer("parallel.batch"):
                costs = self._evaluate_resilient(payloads)
        profiling.increment("parallel.batches")
        profiling.increment("parallel.candidates", len(costs))
        profiling.increment(
            "parallel.infeasible", sum(1 for c in costs if math.isinf(c))
        )
        return costs

    # -- resilience ----------------------------------------------------

    def _evaluate_resilient(
        self, payloads: List[np.ndarray]
    ) -> List[float]:
        results: Dict[int, float] = {}
        retries = 0
        while len(results) < len(payloads):
            pending = [i for i in range(len(payloads)) if i not in results]
            if self._degraded:
                self._evaluate_serial(payloads, pending, results)
                continue
            try:
                self._collect_parallel(payloads, pending, results)
                self._consecutive_failures = 0
            except PoolError:
                self._consecutive_failures += 1
                profiling.increment("parallel.pool_failures")
                if self._consecutive_failures >= self.degrade_after:
                    self._degrade()
                elif retries >= self.max_retries:
                    # Leave the pool usable for the next batch: replace the
                    # (dead or hung) workers before propagating.
                    self._restart_executor()
                    raise
                else:
                    profiling.increment("parallel.retries")
                    telemetry.instant(
                        "parallel.retry",
                        attempt=retries + 1,
                        pending=len(payloads) - len(results),
                    )
                    runlog.emit_event(
                        "pool.retry",
                        attempt=retries + 1,
                        pending=len(payloads) - len(results),
                        consecutive_failures=self._consecutive_failures,
                    )
                    time.sleep(
                        min(
                            self.backoff_base * (2.0 ** retries),
                            POOL_BACKOFF_MAX,
                        )
                    )
                    retries += 1
                    self._restart_executor()
        return [results[i] for i in range(len(payloads))]

    def _collect_parallel(
        self,
        payloads: List[np.ndarray],
        pending: List[int],
        results: Dict[int, float],
    ) -> None:
        """One parallel attempt at the ``pending`` candidates.

        Completed candidates land in ``results`` even when the attempt
        fails part-way, so a retry only redoes the missing ones.
        """
        futures = {
            self._executor.submit(_score_in_worker, payloads[i]): i
            for i in pending
        }
        try:
            remaining = set(futures)
            while remaining:
                done, _ = wait(
                    remaining,
                    timeout=self.timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    profiling.increment("parallel.timeouts")
                    telemetry.instant(
                        "parallel.timeout", pending=len(remaining)
                    )
                    raise WorkerTimeoutError(
                        f"no candidate completed within {self.timeout:g} s "
                        f"({len(remaining)} of {len(futures)} still pending)"
                    )
                for future in done:
                    remaining.discard(future)
                    index = futures[future]
                    try:
                        cost, worker_snapshot, worker_spans = future.result()
                    except BrokenProcessPool as exc:
                        profiling.increment("parallel.worker_lost")
                        telemetry.instant(
                            "parallel.worker_lost", candidate=index
                        )
                        raise WorkerLostError(
                            f"worker process died while scoring candidate "
                            f"{index}"
                        ) from exc
                    except CandidateCrashError:
                        profiling.increment("parallel.crashed")
                        raise
                    results[index] = float(cost)
                    profiling.merge(worker_snapshot)
                    telemetry.extend_spans(worker_spans)
        finally:
            for future in futures:
                future.cancel()

    def _evaluate_serial(
        self,
        payloads: List[np.ndarray],
        pending: List[int],
        results: Dict[int, float],
    ) -> None:
        """Degraded path: score the pending candidates in-process."""
        if self._serial_evaluator is None:
            from .runner import _CandidateEvaluator

            case, plan, stage, problem, fixed_pressure = self.context
            self._serial_evaluator = _CandidateEvaluator(
                case, plan, stage, problem, fixed_pressure
            )
        for index in pending:
            results[index] = _score_candidate(
                self._serial_evaluator, payloads[index]
            )
            profiling.increment("parallel.serial_fallback")

    def _degrade(self) -> None:
        """Permanently switch to serial evaluation (correctness first)."""
        if self._degraded:
            return
        self._degraded = True
        profiling.increment("parallel.degraded")
        telemetry.instant(
            "parallel.degraded",
            consecutive_failures=self._consecutive_failures,
        )
        runlog.emit_event(
            "pool.degraded",
            consecutive_failures=self._consecutive_failures,
            n_workers=self.n_workers,
        )
        self._terminate_workers()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def _restart_executor(self) -> None:
        """Replace every worker process with a fresh one."""
        self._terminate_workers()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._spawn_executor()
        profiling.increment("parallel.worker_replacements")

    def _terminate_workers(self) -> None:
        """Forcibly kill worker processes (hung workers ignore shutdown)."""
        processes = getattr(self._executor, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()

    @property
    def degraded(self) -> bool:
        """Whether the pool has fallen back to serial evaluation."""
        return self._degraded

    def close(self) -> None:
        """Shut the worker processes down (idempotent).

        Workers are terminated, not joined: a hung worker must not be able
        to stall interpreter exit.
        """
        if not self._closed:
            self._closed = True
            self._terminate_workers()
            self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return self._closed

    def __enter__(self) -> "PersistentEvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Live pools kept warm across :func:`evaluate_population` calls.  Two slots
#: cover the common shape of the staged flow (current stage plus the
#: next-stage re-scorer) without hoarding idle processes.
_POOL_CACHE_SIZE = 2
_pool_cache: "OrderedDict[tuple, PersistentEvaluationPool]" = OrderedDict()


class _IdentityKey:
    """Cache-key component comparing by object identity.

    Replaces raw ``id(...)`` in the pool-cache key: an integer id can be
    recycled by a *different* object once the original dies, and ids leak
    run-to-run nondeterminism into anything the key reaches.  The wrapper
    pins its referent (so no recycling) and equals only a wrapper around
    the very same object; the hash is the interpreter's identity hash,
    which only ever needs to be stable within the owning process.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: object) -> None:
        self.obj = obj

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _IdentityKey) and self.obj is other.obj

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return object.__hash__(self.obj)


def _cached_pool(
    case: Case,
    plan: TreePlan,
    stage: StageConfig,
    problem: str,
    fixed_pressure: Optional[float],
    n_workers: int,
) -> PersistentEvaluationPool:
    # Identity-based keys are safe because each cached pool holds strong
    # references to its context objects (via the key's _IdentityKey
    # wrappers), pinning them alive.  The pressure is quantized like every
    # other float cache key in the repo, so an epsilon-perturbed context
    # reuses the warm pool.  The ambient fault plan (chaos runs), telemetry
    # configuration and solver configuration join the key so a plan change
    # -- or flipping tracing or incremental updates on/off -- never reuses
    # workers armed with a stale setup.
    fault_plan = faults.active_plan()
    quantized_pressure = (
        None if fixed_pressure is None else quantize_key(fixed_pressure)
    )
    key = (
        _IdentityKey(case),
        _IdentityKey(plan),
        stage,
        problem,
        quantized_pressure,
        n_workers,
        None if fault_plan is None else _IdentityKey(fault_plan),
        TelemetryConfig.current(),
        LinalgConfig.current(),
    )
    pool = _pool_cache.get(key)
    if pool is not None and not pool.closed:
        _pool_cache.move_to_end(key)
        return pool
    pool = PersistentEvaluationPool(
        case,
        plan,
        stage,
        problem,
        fixed_pressure,
        n_workers=n_workers,
        fault_plan=fault_plan,
    )
    _pool_cache[key] = pool
    while len(_pool_cache) > _POOL_CACHE_SIZE:
        _, evicted = _pool_cache.popitem(last=False)
        evicted.close()
    return pool


def shutdown_pools() -> None:
    """Close every cached worker pool (also registered at interpreter exit)."""
    while _pool_cache:
        _, pool = _pool_cache.popitem(last=False)
        pool.close()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def evaluate_population(
    case: Case,
    plan: TreePlan,
    stage: StageConfig,
    problem: str,
    params_list: Sequence[np.ndarray],
    fixed_pressure: Optional[float] = None,
    n_workers: int = 1,
    pool: Optional[PersistentEvaluationPool] = None,
) -> List[float]:
    """Score a batch of candidate parameter vectors.

    Args:
        case / plan / stage / problem / fixed_pressure: As in the staged
            flow (:mod:`repro.optimize.runner`).
        params_list: Candidate (n_trees, 2) arrays.
        n_workers: Worker processes; 1 evaluates serially in-process.
        pool: An explicit :class:`PersistentEvaluationPool` to dispatch to
            (its context must match the other arguments); by default a
            module-cached pool for this context is created or reused.

    Returns:
        One cost per candidate (``inf`` for illegal/infeasible networks).
        Unexpected worker exceptions propagate as
        :class:`CandidateCrashError` -- they are bugs, not infeasibility.
    """
    if n_workers < 1:
        raise SearchError(f"n_workers must be >= 1, got {n_workers}")
    if not params_list:
        return []
    # The grouped metric is stateful across candidates and must stay serial
    # no matter what was requested; otherwise go parallel when a pool was
    # handed in or more than one worker was asked for.
    if stage.metric == METRIC_MIN_GRADIENT_CAPPED or (
        pool is None and n_workers == 1
    ):
        from .runner import _CandidateEvaluator

        evaluator = _CandidateEvaluator(
            case, plan, stage, problem, fixed_pressure
        )
        costs = [_score_candidate(evaluator, params) for params in params_list]
        profiling.increment("parallel.candidates", len(costs))
        profiling.increment(
            "parallel.infeasible", sum(1 for c in costs if math.isinf(c))
        )
        return costs

    if pool is None:
        pool = _cached_pool(
            case, plan, stage, problem, fixed_pressure, n_workers
        )
    return pool.evaluate(params_list)
