"""Parallel candidate evaluation (the paper's 64-way neighbor evaluation).

The paper's server evaluates 64 neighboring network solutions simultaneously
in each SA iteration.  :func:`evaluate_population` reproduces that pattern:
score a batch of tree-parameter vectors, optionally across worker processes.
Each worker rebuilds the candidate's cooling system from picklable inputs
(case, plan, stage), so no shared state is needed.

The grouped Problem-2 metric is inherently sequential (later candidates
re-use the group leader's optimal pressure), so it always evaluates serially;
the Problem-1 metrics parallelize freely.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from ..errors import SearchError
from ..iccad2015.cases import Case
from ..networks.tree import TreePlan
from .stages import METRIC_MIN_GRADIENT_CAPPED, StageConfig


def evaluate_population(
    case: Case,
    plan: TreePlan,
    stage: StageConfig,
    problem: str,
    params_list: Sequence[np.ndarray],
    fixed_pressure: Optional[float] = None,
    n_workers: int = 1,
) -> List[float]:
    """Score a batch of candidate parameter vectors.

    Args:
        case / plan / stage / problem / fixed_pressure: As in the staged
            flow (:mod:`repro.optimize.runner`).
        params_list: Candidate (n_trees, 2) arrays.
        n_workers: Worker processes; 1 evaluates serially in-process.

    Returns:
        One cost per candidate (``inf`` for illegal/infeasible networks).
    """
    if n_workers < 1:
        raise SearchError(f"n_workers must be >= 1, got {n_workers}")
    if not params_list:
        return []
    if n_workers == 1 or stage.metric == METRIC_MIN_GRADIENT_CAPPED:
        from .runner import _CandidateEvaluator

        evaluator = _CandidateEvaluator(
            case, plan, stage, problem, fixed_pressure
        )
        return [float(evaluator(params)) for params in params_list]

    payloads = [
        (case, plan, stage, problem, fixed_pressure, np.asarray(p, dtype=int))
        for p in params_list
    ]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_score_one, payloads))


def _score_one(payload) -> float:
    """Worker entry point: build a fresh evaluator and score one candidate."""
    case, plan, stage, problem, fixed_pressure, params = payload
    from .runner import _CandidateEvaluator

    evaluator = _CandidateEvaluator(case, plan, stage, problem, fixed_pressure)
    try:
        return float(evaluator(params))
    except Exception:  # worker crashes must not kill the search
        return math.inf
