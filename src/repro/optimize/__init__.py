"""Design optimization: the outer level of Algorithm 1.

Simulated annealing searches the tree-network parameter space (two branch
positions per tree), staged from rough/cheap to fine/accurate (Table 1):
early stages run many short rounds on the fast 2RM simulator with a
fixed-pressure gradient cost, later stages evaluate the true objective
(lowest feasible pumping power, or minimum capped gradient) and the final
stage switches to the 4RM reference model.

* :mod:`~repro.optimize.annealing` -- generic SA engine.
* :mod:`~repro.optimize.moves` -- the paper's tree-parameter move.
* :mod:`~repro.optimize.stages` -- stage schedules for both problems.
* :mod:`~repro.optimize.problem1` -- pumping power minimization (Problem 1).
* :mod:`~repro.optimize.problem2` -- thermal gradient minimization (Problem 2).
* :mod:`~repro.optimize.baseline` -- straight-channel baselines and the
  manual-design comparator.
* :mod:`~repro.optimize.registry` / :mod:`~repro.optimize.portfolio` --
  the optimizer registry and the multi-fidelity portfolio (2RM-surrogate
  search with elite 4RM promotion, parallel tempering, random-restart
  racing) raced by :func:`~repro.optimize.portfolio.run_portfolio`.
"""

from .annealing import SAConfig, SAHistory, simulated_annealing
from .baseline import BaselineResult, best_manual_design, best_straight_baseline
from .moves import perturb_tree_params
from .portfolio import (
    DEFAULT_PORTFOLIO,
    MultiFidelityEvaluator,
    OffsetModel,
    OptimizerOutcome,
    PortfolioConfig,
    PortfolioResult,
    run_portfolio,
)
from .problem1 import OptimizationResult, optimize_problem1
from .problem2 import optimize_problem2
from .registry import OptimizerEntry, get_optimizer, optimizer_names, register_optimizer
from .stages import StageConfig, problem1_stages, problem2_stages

__all__ = [
    "BaselineResult",
    "DEFAULT_PORTFOLIO",
    "MultiFidelityEvaluator",
    "OffsetModel",
    "OptimizationResult",
    "OptimizerEntry",
    "OptimizerOutcome",
    "PortfolioConfig",
    "PortfolioResult",
    "SAConfig",
    "SAHistory",
    "StageConfig",
    "best_manual_design",
    "best_straight_baseline",
    "get_optimizer",
    "optimize_problem1",
    "optimize_problem2",
    "optimizer_names",
    "perturb_tree_params",
    "problem1_stages",
    "problem2_stages",
    "register_optimizer",
    "run_portfolio",
    "simulated_annealing",
]
