"""Design optimization: the outer level of Algorithm 1.

Simulated annealing searches the tree-network parameter space (two branch
positions per tree), staged from rough/cheap to fine/accurate (Table 1):
early stages run many short rounds on the fast 2RM simulator with a
fixed-pressure gradient cost, later stages evaluate the true objective
(lowest feasible pumping power, or minimum capped gradient) and the final
stage switches to the 4RM reference model.

* :mod:`~repro.optimize.annealing` -- generic SA engine.
* :mod:`~repro.optimize.moves` -- the paper's tree-parameter move.
* :mod:`~repro.optimize.stages` -- stage schedules for both problems.
* :mod:`~repro.optimize.problem1` -- pumping power minimization (Problem 1).
* :mod:`~repro.optimize.problem2` -- thermal gradient minimization (Problem 2).
* :mod:`~repro.optimize.baseline` -- straight-channel baselines and the
  manual-design comparator.
"""

from .annealing import SAConfig, SAHistory, simulated_annealing
from .baseline import BaselineResult, best_manual_design, best_straight_baseline
from .moves import perturb_tree_params
from .problem1 import OptimizationResult, optimize_problem1
from .problem2 import optimize_problem2
from .stages import StageConfig, problem1_stages, problem2_stages

__all__ = [
    "BaselineResult",
    "OptimizationResult",
    "SAConfig",
    "SAHistory",
    "StageConfig",
    "best_manual_design",
    "best_straight_baseline",
    "optimize_problem1",
    "optimize_problem2",
    "perturb_tree_params",
    "problem1_stages",
    "problem2_stages",
    "simulated_annealing",
]
