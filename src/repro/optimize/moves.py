"""Neighborhood moves on tree-network parameters (Section 4.4).

"In each iteration, every tree parameter may be changed by a large step size
or remains unchanged (with equal possibility)."  A parameter that moves goes
up or down by the stage's step; clamping and the ``b1 <= b2`` ordering are
handled by :meth:`~repro.networks.tree.TreePlan.clamp_params`.
"""

from __future__ import annotations

import numpy as np

from ..errors import SearchError


def perturb_tree_params(
    params: np.ndarray, step: int, rng: np.random.Generator
) -> np.ndarray:
    """One SA move: each parameter stays or jumps +-``step`` columns.

    Args:
        params: (n_trees, 2) branch-position array.
        step: Move magnitude in basic-cell columns (kept even by the caller's
            clamp; must be positive).
        rng: Source of randomness.

    Returns:
        A new (unclamped) parameter array; at least one entry is changed so
        the move is never a no-op.
    """
    if step <= 0:
        raise SearchError(f"move step must be positive, got {step}")
    params = np.asarray(params, dtype=int)
    while True:
        moves = rng.integers(0, 2, size=params.shape).astype(bool)
        if moves.any():
            break
    signs = rng.choice((-1, 1), size=params.shape)
    return params + moves * signs * int(step)
