"""Shared orchestration of the staged SA design flows (Algorithm 1).

Both problems run the same skeleton: per global flow direction, initialize a
uniform tree plan, then per stage run several SA rounds (same settings,
different seeds), re-score the per-round bests with the *next* stage's metric
and carry the winner forward; the final network is evaluated with the 4RM
reference model.  The problems differ only in the cost metric and the final
evaluator, both injected here.

Two run-level disciplines live here:

* **Seeding** -- every (direction, stage, round) derives its own
  ``np.random.SeedSequence`` child via spawn keys (:func:`_round_seed`), so
  rounds are statistically independent and the engine RNG state that
  checkpoints capture is well-defined.
* **Checkpoint/resume** -- with ``checkpoint_dir`` set, the flow persists a
  crash-safe checkpoint (see :mod:`repro.checkpoint`) after every direction,
  stage, and round, plus every few SA iterations inside a round; with
  ``resume=True`` it restores the checkpoint and finishes the run with
  *bitwise identical* results (final score, selected plan, and simulation
  count) to an uninterrupted run -- evaluator caches, grouped-evaluation
  state, and the SA bit-generator state all ride along.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import profiling, telemetry
from ..checkpoint import (
    CheckpointManager,
    DirectionCursor,
    DirectionRecord,
    EvaluatorState,
    RunState,
    StageCursor,
    fingerprint_of,
)
from ..cooling.evaluation import (
    EvaluationResult,
    evaluate_problem1,
    evaluate_problem2,
)
from ..cooling.system import CoolingSystem
from ..errors import (
    DesignRuleError,
    FlowError,
    GeometryError,
    SearchError,
    ThermalError,
)
from ..geometry.grid import ChannelGrid
from ..iccad2015.cases import Case
from ..networks.tree import TreePlan
from ..telemetry import runlog
from .annealing import (
    SAConfig,
    SACursor,
    SAObserver,
    simulated_annealing,
    simulated_annealing_batch,
)
from .moves import perturb_tree_params
from .stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
    StageConfig,
)

#: Problem identifiers.
PROBLEM_PUMPING_POWER = "problem1"
PROBLEM_THERMAL_GRADIENT = "problem2"


@dataclass
class StageReport:
    """What one stage did."""

    stage: str
    round_best_costs: List[float]
    selected_cost: float
    simulations: int
    #: Per-round SA traces (best-so-far cost per iteration).
    histories: List[object] = field(default_factory=list)


@dataclass
class OptimizationResult:
    """Outcome of one staged design flow.

    Attributes:
        plan: The winning tree plan (build() reproduces the network).
        network: The winning cooling network.
        evaluation: Final 4RM evaluation (Algorithm 2 or its P2 variant).
        direction: Winning global flow direction index.
        stage_reports: Per-stage traces for the winning direction.
        total_simulations: Thermal simulations spent across all directions.
    """

    plan: TreePlan
    network: ChannelGrid
    evaluation: EvaluationResult
    direction: int
    stage_reports: List[StageReport]
    total_simulations: int


class _CandidateEvaluator:
    """Builds and scores cooling systems for parameter vectors, with caching."""

    def __init__(
        self,
        case: Case,
        plan: TreePlan,
        stage: StageConfig,
        problem: str,
        fixed_pressure: Optional[float] = None,
    ):
        self.case = case
        self.plan = plan
        self.stage = stage
        self.problem = problem
        self.fixed_pressure = fixed_pressure
        self.simulations = 0
        self._cache: Dict[bytes, float] = {}
        self._group_counter = 0
        self._group_pressure: Optional[float] = None
        self._base_stack = case.base_stack()

    # ------------------------------------------------------------------

    def state_snapshot(self) -> EvaluatorState:
        """A checkpointable copy of the memo cache and scoring counters."""
        return EvaluatorState(
            cache=dict(self._cache),
            simulations=self.simulations,
            group_counter=self._group_counter,
            group_pressure=self._group_pressure,
        )

    def restore_state(self, state: EvaluatorState) -> None:
        """Restore a :meth:`state_snapshot`; resumed scoring replays bitwise."""
        self._cache = dict(state.cache)
        self.simulations = state.simulations
        self._group_counter = state.group_counter
        self._group_pressure = state.group_pressure

    # ------------------------------------------------------------------

    def system_for(self, params: np.ndarray) -> Optional[CoolingSystem]:
        """A cooling system for one candidate, or None when illegal."""
        try:
            grid = self.plan.with_params(params).build()
            return CoolingSystem.for_network(
                self._base_stack,
                grid,
                self.case.coolant,
                model=self.stage.model,
                tile_size=self.stage.tile_size,
                inlet_temperature=self.case.inlet_temperature,
            )
        except (DesignRuleError, FlowError, GeometryError, ThermalError):
            return None

    def __call__(self, params: np.ndarray) -> float:
        key = np.asarray(params, dtype=int).tobytes()
        if key in self._cache:
            return self._cache[key]
        # Cache misses only: the histogram measures real scoring work, so a
        # warm cache shows up as fewer observations, not faster ones.
        with profiling.timer("optimize.candidate"):
            cost = self._score(np.asarray(params, dtype=int))
        self._cache[key] = cost
        return cost

    # ------------------------------------------------------------------

    def _score(self, params: np.ndarray) -> float:
        system = self.system_for(params)
        if system is None:
            return math.inf
        try:
            cost = self._score_system(system)
        except (SearchError, ThermalError, FlowError):
            cost = math.inf
        self.simulations += system.n_simulations
        return cost

    def _score_system(self, system: CoolingSystem) -> float:
        metric = self.stage.metric
        if metric == METRIC_FIXED_PRESSURE_GRADIENT:
            if self.fixed_pressure is None:
                raise SearchError(
                    "fixed-pressure stage needs a reference pressure"
                )
            return system.delta_t(self.fixed_pressure)
        if metric == METRIC_LOWEST_FEASIBLE_POWER:
            return evaluate_problem1(
                system, self.case.delta_t_star, self.case.t_max_star
            ).score
        if metric == METRIC_MIN_GRADIENT_CAPPED:
            return self._score_grouped_gradient(system)
        raise SearchError(f"unknown metric {metric!r}")

    def _score_grouped_gradient(self, system: CoolingSystem) -> float:
        """Problem 2's grouped evaluation (Section 5, adaptation 2).

        The first candidate of every group pays the full evaluation and
        donates its optimal pressure; the rest are scored by one simulation
        at that pressure (capped by their own power limit).  Slightly
        pessimistic, but neighboring networks have near-identical optima.
        """
        w_star = self.case.w_pump_star()
        full = (
            self._group_counter % self.stage.group_size == 0
            or self._group_pressure is None
        )
        self._group_counter += 1
        if full:
            evaluation = evaluate_problem2(
                system, self.case.t_max_star, w_star
            )
            if evaluation.feasible:
                self._group_pressure = evaluation.p_sys
            return evaluation.score
        p_cap = system.p_sys_for_power(w_star)
        p_used = min(self._group_pressure, p_cap)
        result = system.evaluate(p_used)
        if result.t_max > self.case.t_max_star:
            return math.inf
        return result.delta_t


def _round_seed(
    seed: int, d_index: int, s_index: int, round_i: int
) -> np.random.SeedSequence:
    """The (direction, stage, round) child seed, via SeedSequence spawning.

    A ``SeedSequence`` constructed with ``spawn_key=(d, s, r)`` is exactly
    the ``r``-th spawn of the ``s``-th spawn of the ``d``-th spawn of
    ``SeedSequence(seed)`` -- nested ``.spawn()`` without the statefulness,
    so a resumed run reconstructs the identical child without replaying the
    parent's spawn counter.  Children are statistically independent streams
    (unlike the additive ``seed + 17 * stage + round`` arithmetic this
    replaced, which could collide across stages and rounds).
    """
    return np.random.SeedSequence(
        seed, spawn_key=(d_index, s_index, round_i)
    )


def _run_fingerprint(
    case: Case,
    stages: Sequence[StageConfig],
    problem: str,
    directions: Sequence[int],
    seed: int,
    leaves_per_tree: int,
    effective_batch: int,
    initialization: str,
) -> str:
    """Fingerprint of everything that shapes the search trajectory.

    Worker count is deliberately absent: given a fixed batch size the
    trajectory does not depend on how many processes score a batch, so a
    checkpoint may be resumed with different parallelism.
    """
    return fingerprint_of(
        case=(case.number, case.nrows, case.ncols, case.cell_width),
        stages=tuple(stages),
        problem=problem,
        directions=tuple(int(d) for d in directions),
        seed=int(seed),
        leaves_per_tree=int(leaves_per_tree),
        effective_batch=int(effective_batch),
        initialization=initialization,
    )


def run_staged_flow(
    case: Case,
    stages: Sequence[StageConfig],
    problem: str,
    directions: Sequence[int] = (0,),
    seed: int = 0,
    leaves_per_tree: int = 4,
    n_workers: int = 1,
    batch_size: Optional[int] = None,
    initialization: str = "uniform",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: Optional[int] = None,
    interrupt_check: Optional[Callable[[], bool]] = None,
) -> OptimizationResult:
    """Run the full staged SA flow and return the best design found.

    Args:
        case: Benchmark case.
        stages: Stage schedule (see :mod:`~repro.optimize.stages`).
        problem: :data:`PROBLEM_PUMPING_POWER` or
            :data:`PROBLEM_THERMAL_GRADIENT`.
        directions: Global flow direction indices to attempt (the paper tries
            all eight and keeps the best).
        seed: Base RNG seed; directions, stages and rounds derive
            independent ``SeedSequence`` children (see :func:`_round_seed`).
        leaves_per_tree: Band size of the tree plan.
        n_workers: Worker processes for neighbor evaluation (the paper used
            64); 1 evaluates in-process.
        batch_size: Neighbors proposed and scored per SA iteration; defaults
            to ``n_workers`` when parallel, else 1 (classic single-neighbor
            SA).  In batch mode ``StageReport.simulations`` counts candidate
            evaluations rather than linear solves.
        initialization: ``"uniform"`` (the paper's pre-search init) or
            ``"power_aware"`` (branch positions seeded from per-band power;
            see :func:`repro.networks.tree.power_aware_initialization`).
        checkpoint_dir: Directory for crash-safe run checkpoints; ``None``
            disables checkpointing entirely.
        resume: Restore the checkpoint in ``checkpoint_dir`` when one
            exists; a checkpoint from a different setup raises
            :class:`~repro.errors.CheckpointError`.  The resumed run's final
            result is bitwise identical to an uninterrupted run.
        checkpoint_every: SA iterations between mid-round checkpoints
            (default :data:`~repro.constants.CHECKPOINT_EVERY_ITERATIONS`);
            round/stage/direction boundaries always checkpoint.
        interrupt_check: Polled after every checkpoint write; returning True
            stops the run with :class:`~repro.errors.RunInterrupted` *after*
            the latest state is flushed (the CLI supervisor wires its
            SIGINT/SIGTERM flag in here).
    """
    if problem not in (PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT):
        raise SearchError(f"unknown problem {problem!r}")
    if not directions:
        raise SearchError("need at least one direction")
    effective_batch = (
        batch_size
        if batch_size is not None
        else (n_workers if n_workers > 1 else 1)
    )
    fingerprint = _run_fingerprint(
        case, stages, problem, directions, seed, leaves_per_tree,
        effective_batch, initialization,
    )
    run_started = runlog.Stopwatch()
    runlog.emit_event(
        "run.start",
        problem=problem,
        case_number=case.number,
        grid_size=case.nrows,
        directions=[int(d) for d in directions],
        seed=int(seed),
        stages=[s.name for s in stages],
        n_workers=int(n_workers),
        batch_size=int(effective_batch),
        initialization=initialization,
        fingerprint=fingerprint,
    )

    manager: Optional[CheckpointManager] = None
    state: Optional[RunState] = None
    if checkpoint_dir is not None:
        manager = CheckpointManager(
            checkpoint_dir,
            fingerprint,
            every_iterations=checkpoint_every,
            interrupt_check=interrupt_check,
        )
        if resume:
            state = manager.load()
    if state is not None:
        profiling.merge(state.profiling)
        profiling.increment("checkpoint.resumes")
        resume_cursor = _resume_cursor_fields(state)
        telemetry.instant(
            "checkpoint.resume", fingerprint=fingerprint, **resume_cursor
        )
        runlog.emit_event(
            "checkpoint.resume", fingerprint=fingerprint, **resume_cursor
        )
    else:
        state = RunState()

    results: Dict[int, OptimizationResult] = {
        record.d_index: record.result for record in state.completed
    }
    for d_index, direction in enumerate(directions):
        if d_index in results:
            continue
        plan = case.tree_plan(
            direction=direction, leaves_per_tree=leaves_per_tree
        )
        if initialization == "power_aware":
            from ..networks.tree import power_aware_initialization

            total_power = sum(case.power_maps)
            plan = power_aware_initialization(plan, total_power)
        elif initialization != "uniform":
            raise SearchError(
                f"unknown initialization {initialization!r}; "
                "use 'uniform' or 'power_aware'"
            )
        cursor = None
        if state.direction is not None and state.direction.d_index == d_index:
            cursor = state.direction
        with telemetry.span(
            "optimize.direction", d_index=d_index, direction=int(direction)
        ):
            result = _run_one_direction(
                case,
                plan,
                stages,
                problem,
                seed=seed,
                d_index=d_index,
                n_workers=n_workers,
                effective_batch=effective_batch,
                manager=manager,
                run_state=state,
                cursor=cursor,
            )
        runlog.emit_event(
            "direction.end",
            d_index=d_index,
            direction=int(direction),
            score=result.evaluation.score,
            feasible=result.evaluation.feasible,
            simulations=result.total_simulations,
        )
        results[d_index] = result
        state.completed.append(DirectionRecord(d_index=d_index, result=result))
        state.direction = None
        if manager is not None:
            state.profiling = profiling.snapshot()
            manager.save(state)

    total_sims = sum(
        results[d_index].total_simulations
        for d_index in range(len(directions))
    )
    best: Optional[OptimizationResult] = None
    for d_index in range(len(directions)):
        result = results[d_index]
        if best is None or result.evaluation.score < best.evaluation.score:
            best = result
    assert best is not None
    best.total_simulations = total_sims
    runlog.emit_event(
        "run.end",
        score=best.evaluation.score,
        feasible=best.evaluation.feasible,
        direction=best.direction,
        total_simulations=total_sims,
        seconds=run_started.elapsed(),
        histograms=profiling.histogram_summaries(),
    )
    return best


def _resume_cursor_fields(state: RunState) -> Dict[str, object]:
    """Where a restored checkpoint picks up, flattened for events/traces."""
    fields: Dict[str, object] = {
        "completed_directions": len(state.completed)
    }
    if state.direction is not None:
        fields["d_index"] = state.direction.d_index
        fields["stage_index"] = state.direction.stage_index
        stage_cursor = state.direction.stage
        if stage_cursor is not None:
            fields["round_index"] = stage_cursor.round_index
            if stage_cursor.sa is not None:
                fields["sa_iteration"] = stage_cursor.sa.iteration
    return fields


def _run_one_direction(
    case: Case,
    plan: TreePlan,
    stages: Sequence[StageConfig],
    problem: str,
    seed: int,
    d_index: int,
    n_workers: int = 1,
    effective_batch: int = 1,
    manager: Optional[CheckpointManager] = None,
    run_state: Optional[RunState] = None,
    cursor: Optional[DirectionCursor] = None,
) -> OptimizationResult:
    if run_state is None:
        run_state = RunState()
    if cursor is None:
        params = plan.params()
        fixed_pressure: Optional[float] = None
        pre_sims = 0
        if any(s.metric == METRIC_FIXED_PRESSURE_GRADIENT for s in stages):
            fixed_pressure, pre_sims = _reference_pressure(
                case, plan, stages[0], problem
            )
        cursor = DirectionCursor(
            d_index=d_index,
            fixed_pressure=fixed_pressure,
            params=params,
            sims_so_far=pre_sims,
        )
        run_state.direction = cursor
        _save_boundary(manager, run_state)
    else:
        run_state.direction = cursor

    fixed_pressure = cursor.fixed_pressure
    reports: List[StageReport] = cursor.reports
    params = np.asarray(cursor.params)

    for s_index in range(cursor.stage_index, len(stages)):
        stage = stages[s_index]
        stage_cursor = cursor.stage
        if stage_cursor is None or stage_cursor.stage_index != s_index:
            stage_cursor = StageCursor(stage_index=s_index, entry_params=params)
            cursor.stage = stage_cursor
        params = np.asarray(stage_cursor.entry_params)
        evaluator = _CandidateEvaluator(
            case, plan, stage, problem, fixed_pressure
        )
        evaluator.restore_state(stage_cursor.evaluator)

        def neighbor(state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
            return plan.clamp_params(
                perturb_tree_params(state, stage.step, rng)
            )

        for round_i in range(stage_cursor.round_index, stage.rounds):
            sa_cursor: Optional[SACursor] = stage_cursor.sa
            config = SAConfig(
                iterations=stage.iterations,
                seed=_round_seed(seed, d_index, s_index, round_i),
                stall_limit=max(stage.iterations // 2, 8),
            )
            labels = {
                "d_index": d_index,
                "stage": stage.name,
                "round": round_i,
            }
            with telemetry.span("optimize.round", **labels):
                if effective_batch > 1:
                    batch_cost = _BatchCost(
                        case,
                        plan,
                        stage,
                        problem,
                        fixed_pressure,
                        n_workers,
                        cache=(
                            stage_cursor.active_batch_cache
                            if sa_cursor is not None
                            else None
                        ),
                        evals=(
                            stage_cursor.active_batch_evals
                            if sa_cursor is not None
                            else 0
                        ),
                    )
                    observer = _make_observer(
                        manager, run_state, stage_cursor, evaluator,
                        batch_cost, labels,
                    )
                    best_state, cost, history = simulated_annealing_batch(
                        params,
                        batch_cost,
                        neighbor,
                        config,
                        effective_batch,
                        observer=observer,
                        cursor=sa_cursor,
                    )
                    stage_cursor.batch_evals += batch_cost.evals
                else:
                    observer = _make_observer(
                        manager, run_state, stage_cursor, evaluator,
                        None, labels,
                    )
                    best_state, cost, history = simulated_annealing(
                        params, evaluator, neighbor, config,
                        observer=observer, cursor=sa_cursor,
                    )
            runlog.emit_event(
                "round.end",
                **labels,
                best_cost=cost,
                accepted=history.accepted,
                proposed=history.proposed,
                acceptance_rate=history.acceptance_rate,
                iterations=len(history.best_costs),
            )
            stage_cursor.round_states.append(best_state)
            stage_cursor.round_costs.append(cost)
            stage_cursor.round_histories.append(history)
            stage_cursor.round_index = round_i + 1
            stage_cursor.sa = None
            stage_cursor.active_batch_cache = None
            stage_cursor.active_batch_evals = 0
            stage_cursor.evaluator = evaluator.state_snapshot()
            _save_boundary(manager, run_state)

        round_bests: List[Tuple[np.ndarray, float]] = list(
            zip(stage_cursor.round_states, stage_cursor.round_costs)
        )
        # Re-score per-round bests with the next stage's metric when it
        # differs, then carry the winner into the next stage.
        next_stage = stages[s_index + 1] if s_index + 1 < len(stages) else stage
        rescore_sims = 0
        if (next_stage.metric, next_stage.model) != (stage.metric, stage.model):
            rescorer = _CandidateEvaluator(
                case, plan, next_stage, problem, fixed_pressure
            )
            with telemetry.span(
                "optimize.rescore",
                d_index=d_index,
                stage=stage.name,
                candidates=len(round_bests),
            ):
                scored = [
                    (state, rescorer(state)) for state, _ in round_bests
                ]
            rescore_sims = rescorer.simulations
        else:
            scored = round_bests
        scored.sort(key=lambda item: item[1])
        params = scored[0][0]
        stage_sims = evaluator.simulations + stage_cursor.batch_evals
        reports.append(
            StageReport(
                stage=stage.name,
                round_best_costs=list(stage_cursor.round_costs),
                selected_cost=scored[0][1],
                simulations=stage_sims,
                histories=list(stage_cursor.round_histories),
            )
        )
        runlog.emit_event(
            "stage.end",
            d_index=d_index,
            stage=stage.name,
            selected_cost=scored[0][1],
            simulations=stage_sims,
            rescore_sims=rescore_sims,
        )
        cursor.sims_so_far += stage_sims + rescore_sims
        cursor.stage_index = s_index + 1
        cursor.params = params
        cursor.stage = None
        _save_boundary(manager, run_state)

    params = np.asarray(cursor.params)
    final_plan = plan.with_params(params)
    network = final_plan.build()
    with telemetry.span("optimize.final_eval", d_index=d_index):
        system = CoolingSystem.for_network(
            case.base_stack(),
            network,
            case.coolant,
            model="4rm",
            inlet_temperature=case.inlet_temperature,
        )
        if problem == PROBLEM_PUMPING_POWER:
            evaluation = evaluate_problem1(
                system, case.delta_t_star, case.t_max_star
            )
        else:
            evaluation = evaluate_problem2(
                system, case.t_max_star, case.w_pump_star()
            )
    return OptimizationResult(
        plan=final_plan,
        network=network,
        evaluation=evaluation,
        direction=final_plan.direction,
        stage_reports=reports,
        total_simulations=cursor.sims_so_far + system.n_simulations,
    )


def _save_boundary(
    manager: Optional[CheckpointManager], run_state: RunState
) -> None:
    """Unconditional boundary checkpoint (round / stage / direction edges)."""
    if manager is None:
        return
    run_state.profiling = profiling.snapshot()
    manager.save(run_state)


def _make_observer(
    manager: Optional[CheckpointManager],
    run_state: RunState,
    stage_cursor: StageCursor,
    evaluator: _CandidateEvaluator,
    batch_cost: Optional["_BatchCost"],
    labels: Optional[Dict[str, object]] = None,
) -> Optional[SAObserver]:
    """The per-iteration hook handed to the SA engine.

    Serves two consumers from one callback: the checkpoint cadence (when a
    ``manager`` is present) and the run-event stream (when a run log is
    active), which gets one typed ``sa.iteration`` record per iteration
    carrying ``labels`` (direction/stage/round) plus the engine state.  The
    checkpoint snapshot (evaluator cache copy, batch cache copy, profiling)
    is still built lazily, so iterations that do not hit the cadence pay
    only a counter increment.
    """
    log = runlog.active_run_log()
    if manager is None and log is None:
        return None

    def observe(sa_cursor: SACursor) -> None:
        if log is not None:
            log.emit(
                "sa.iteration",
                **(labels or {}),
                iteration=sa_cursor.iteration,
                current_cost=sa_cursor.current_cost,
                best_cost=sa_cursor.best_cost,
                temperature=sa_cursor.temperature,
                stall=sa_cursor.stall,
                accepted=sa_cursor.history.accepted,
                proposed=sa_cursor.history.proposed,
            )
        if manager is None:
            return

        def build() -> RunState:
            stage_cursor.sa = sa_cursor
            stage_cursor.evaluator = evaluator.state_snapshot()
            if batch_cost is not None:
                stage_cursor.active_batch_cache = dict(batch_cost.cache)
                stage_cursor.active_batch_evals = batch_cost.evals
            run_state.profiling = profiling.snapshot()
            return run_state

        manager.maybe_save(build)

    return observe


def _reference_pressure(
    case: Case, plan: TreePlan, stage: StageConfig, problem: str
) -> Tuple[float, int]:
    """The fixed pressure for stage-1 costs: the initial network's optimum."""
    system = CoolingSystem.for_network(
        case.base_stack(),
        plan.build(),
        case.coolant,
        model=stage.model,
        tile_size=stage.tile_size,
        inlet_temperature=case.inlet_temperature,
    )
    if problem == PROBLEM_PUMPING_POWER:
        evaluation = evaluate_problem1(
            system, case.delta_t_star, case.t_max_star
        )
    else:
        evaluation = evaluate_problem2(
            system, case.t_max_star, case.w_pump_star()
        )
    return evaluation.p_sys, system.n_simulations


class _BatchCost:
    """A caching batch evaluator over :func:`evaluate_population`.

    One instance per SA round.  Parallel dispatch goes through the
    module-level persistent-pool cache of :mod:`repro.optimize.parallel`:
    every batch of the same stage (across SA iterations and rounds) reuses
    one warm worker pool.  The memo ``cache`` and the ``evals`` counter are
    checkpointable (and restorable) so a mid-round resume replays the same
    cache hits -- and therefore the same evaluation counts -- as the
    uninterrupted run.
    """

    def __init__(
        self,
        case: Case,
        plan: TreePlan,
        stage: StageConfig,
        problem: str,
        fixed_pressure: Optional[float],
        n_workers: int,
        cache: Optional[Dict[bytes, float]] = None,
        evals: int = 0,
    ):
        self.case = case
        self.plan = plan
        self.stage = stage
        self.problem = problem
        self.fixed_pressure = fixed_pressure
        self.n_workers = n_workers
        self.cache: Dict[bytes, float] = dict(cache) if cache else {}
        self.evals = int(evals)

    def __call__(self, states: Sequence[np.ndarray]) -> List[float]:
        from .parallel import evaluate_population

        missing = []
        for state in states:
            key = np.asarray(state, dtype=int).tobytes()
            if key not in self.cache:
                missing.append((key, state))
        profiling.increment(
            "optimize.batch_cache_hits", len(states) - len(missing)
        )
        if missing:
            costs = evaluate_population(
                self.case,
                self.plan,
                self.stage,
                self.problem,
                [state for _, state in missing],
                fixed_pressure=self.fixed_pressure,
                n_workers=self.n_workers,
            )
            for (key, _), cost in zip(missing, costs):
                self.cache[key] = cost
            self.evals += len(missing)
        return [
            self.cache[np.asarray(s, dtype=int).tobytes()] for s in states
        ]
