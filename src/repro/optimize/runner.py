"""Shared orchestration of the staged SA design flows (Algorithm 1).

Both problems run the same skeleton: per global flow direction, initialize a
uniform tree plan, then per stage run several SA rounds (same settings,
different seeds), re-score the per-round bests with the *next* stage's metric
and carry the winner forward; the final network is evaluated with the 4RM
reference model.  The problems differ only in the cost metric and the final
evaluator, both injected here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cooling.evaluation import (
    EvaluationResult,
    evaluate_problem1,
    evaluate_problem2,
)
from ..cooling.system import CoolingSystem
from ..errors import (
    DesignRuleError,
    FlowError,
    GeometryError,
    SearchError,
    ThermalError,
)
from ..geometry.grid import ChannelGrid
from ..iccad2015.cases import Case
from ..networks.tree import TreePlan
from .annealing import SAConfig, simulated_annealing, simulated_annealing_batch
from .moves import perturb_tree_params
from .stages import (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
    StageConfig,
)

#: Problem identifiers.
PROBLEM_PUMPING_POWER = "problem1"
PROBLEM_THERMAL_GRADIENT = "problem2"


@dataclass
class StageReport:
    """What one stage did."""

    stage: str
    round_best_costs: List[float]
    selected_cost: float
    simulations: int
    #: Per-round SA traces (best-so-far cost per iteration).
    histories: List[object] = field(default_factory=list)


@dataclass
class OptimizationResult:
    """Outcome of one staged design flow.

    Attributes:
        plan: The winning tree plan (build() reproduces the network).
        network: The winning cooling network.
        evaluation: Final 4RM evaluation (Algorithm 2 or its P2 variant).
        direction: Winning global flow direction index.
        stage_reports: Per-stage traces for the winning direction.
        total_simulations: Thermal simulations spent across all directions.
    """

    plan: TreePlan
    network: ChannelGrid
    evaluation: EvaluationResult
    direction: int
    stage_reports: List[StageReport]
    total_simulations: int


class _CandidateEvaluator:
    """Builds and scores cooling systems for parameter vectors, with caching."""

    def __init__(
        self,
        case: Case,
        plan: TreePlan,
        stage: StageConfig,
        problem: str,
        fixed_pressure: Optional[float] = None,
    ):
        self.case = case
        self.plan = plan
        self.stage = stage
        self.problem = problem
        self.fixed_pressure = fixed_pressure
        self.simulations = 0
        self._cache: Dict[bytes, float] = {}
        self._group_counter = 0
        self._group_pressure: Optional[float] = None
        self._base_stack = case.base_stack()

    # ------------------------------------------------------------------

    def system_for(self, params: np.ndarray) -> Optional[CoolingSystem]:
        """A cooling system for one candidate, or None when illegal."""
        try:
            grid = self.plan.with_params(params).build()
            return CoolingSystem.for_network(
                self._base_stack,
                grid,
                self.case.coolant,
                model=self.stage.model,
                tile_size=self.stage.tile_size,
                inlet_temperature=self.case.inlet_temperature,
            )
        except (DesignRuleError, FlowError, GeometryError, ThermalError):
            return None

    def __call__(self, params: np.ndarray) -> float:
        key = np.asarray(params, dtype=int).tobytes()
        if key in self._cache:
            return self._cache[key]
        cost = self._score(np.asarray(params, dtype=int))
        self._cache[key] = cost
        return cost

    # ------------------------------------------------------------------

    def _score(self, params: np.ndarray) -> float:
        system = self.system_for(params)
        if system is None:
            return math.inf
        try:
            cost = self._score_system(system)
        except (SearchError, ThermalError, FlowError):
            cost = math.inf
        self.simulations += system.n_simulations
        return cost

    def _score_system(self, system: CoolingSystem) -> float:
        metric = self.stage.metric
        if metric == METRIC_FIXED_PRESSURE_GRADIENT:
            if self.fixed_pressure is None:
                raise SearchError(
                    "fixed-pressure stage needs a reference pressure"
                )
            return system.delta_t(self.fixed_pressure)
        if metric == METRIC_LOWEST_FEASIBLE_POWER:
            return evaluate_problem1(
                system, self.case.delta_t_star, self.case.t_max_star
            ).score
        if metric == METRIC_MIN_GRADIENT_CAPPED:
            return self._score_grouped_gradient(system)
        raise SearchError(f"unknown metric {metric!r}")

    def _score_grouped_gradient(self, system: CoolingSystem) -> float:
        """Problem 2's grouped evaluation (Section 5, adaptation 2).

        The first candidate of every group pays the full evaluation and
        donates its optimal pressure; the rest are scored by one simulation
        at that pressure (capped by their own power limit).  Slightly
        pessimistic, but neighboring networks have near-identical optima.
        """
        w_star = self.case.w_pump_star()
        full = (
            self._group_counter % self.stage.group_size == 0
            or self._group_pressure is None
        )
        self._group_counter += 1
        if full:
            evaluation = evaluate_problem2(
                system, self.case.t_max_star, w_star
            )
            if evaluation.feasible:
                self._group_pressure = evaluation.p_sys
            return evaluation.score
        p_cap = system.p_sys_for_power(w_star)
        p_used = min(self._group_pressure, p_cap)
        result = system.evaluate(p_used)
        if result.t_max > self.case.t_max_star:
            return math.inf
        return result.delta_t


def run_staged_flow(
    case: Case,
    stages: Sequence[StageConfig],
    problem: str,
    directions: Sequence[int] = (0,),
    seed: int = 0,
    leaves_per_tree: int = 4,
    n_workers: int = 1,
    batch_size: Optional[int] = None,
    initialization: str = "uniform",
) -> OptimizationResult:
    """Run the full staged SA flow and return the best design found.

    Args:
        case: Benchmark case.
        stages: Stage schedule (see :mod:`~repro.optimize.stages`).
        problem: :data:`PROBLEM_PUMPING_POWER` or
            :data:`PROBLEM_THERMAL_GRADIENT`.
        directions: Global flow direction indices to attempt (the paper tries
            all eight and keeps the best).
        seed: Base RNG seed; rounds and directions derive distinct streams.
        leaves_per_tree: Band size of the tree plan.
        n_workers: Worker processes for neighbor evaluation (the paper used
            64); 1 evaluates in-process.
        batch_size: Neighbors proposed and scored per SA iteration; defaults
            to ``n_workers`` when parallel, else 1 (classic single-neighbor
            SA).  In batch mode ``StageReport.simulations`` counts candidate
            evaluations rather than linear solves.
        initialization: ``"uniform"`` (the paper's pre-search init) or
            ``"power_aware"`` (branch positions seeded from per-band power;
            see :func:`repro.networks.tree.power_aware_initialization`).
    """
    if problem not in (PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT):
        raise SearchError(f"unknown problem {problem!r}")
    if not directions:
        raise SearchError("need at least one direction")
    best: Optional[OptimizationResult] = None
    total_sims = 0
    for d_index, direction in enumerate(directions):
        plan = case.tree_plan(
            direction=direction, leaves_per_tree=leaves_per_tree
        )
        if initialization == "power_aware":
            from ..networks.tree import power_aware_initialization

            total_power = sum(case.power_maps)
            plan = power_aware_initialization(plan, total_power)
        elif initialization != "uniform":
            raise SearchError(
                f"unknown initialization {initialization!r}; "
                "use 'uniform' or 'power_aware'"
            )
        result = _run_one_direction(
            case,
            plan,
            stages,
            problem,
            seed + 1000 * d_index,
            n_workers=n_workers,
            batch_size=batch_size,
        )
        total_sims += result.total_simulations
        if best is None or result.evaluation.score < best.evaluation.score:
            best = result
    assert best is not None
    best.total_simulations = total_sims
    return best


def _run_one_direction(
    case: Case,
    plan: TreePlan,
    stages: Sequence[StageConfig],
    problem: str,
    seed: int,
    n_workers: int = 1,
    batch_size: Optional[int] = None,
) -> OptimizationResult:
    effective_batch = (
        batch_size
        if batch_size is not None
        else (n_workers if n_workers > 1 else 1)
    )
    params = plan.params()
    reports: List[StageReport] = []
    total_sims = 0

    fixed_pressure = None
    if any(s.metric == METRIC_FIXED_PRESSURE_GRADIENT for s in stages):
        fixed_pressure, sims = _reference_pressure(case, plan, stages[0], problem)
        total_sims += sims

    for s_index, stage in enumerate(stages):
        evaluator = _CandidateEvaluator(
            case, plan, stage, problem, fixed_pressure
        )

        def neighbor(state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
            return plan.clamp_params(
                perturb_tree_params(state, stage.step, rng)
            )

        round_bests: List[Tuple[np.ndarray, float]] = []
        round_histories: List[object] = []
        batch_evals = [0]
        for round_i in range(stage.rounds):
            config = SAConfig(
                iterations=stage.iterations,
                seed=seed + 17 * s_index + round_i,
                stall_limit=max(stage.iterations // 2, 8),
            )
            if effective_batch > 1:
                batch_cost = _make_batch_cost(
                    case, plan, stage, problem, fixed_pressure,
                    n_workers, batch_evals,
                )
                state, cost, history = simulated_annealing_batch(
                    params, batch_cost, neighbor, config, effective_batch
                )
            else:
                state, cost, history = simulated_annealing(
                    params, evaluator, neighbor, config
                )
            round_bests.append((state, cost))
            round_histories.append(history)
        total_sims += evaluator.simulations + batch_evals[0]

        # Re-score per-round bests with the next stage's metric when it
        # differs, then carry the winner into the next stage.
        next_stage = stages[s_index + 1] if s_index + 1 < len(stages) else stage
        if (next_stage.metric, next_stage.model) != (stage.metric, stage.model):
            rescorer = _CandidateEvaluator(
                case, plan, next_stage, problem, fixed_pressure
            )
            scored = [(state, rescorer(state)) for state, _ in round_bests]
            total_sims += rescorer.simulations
        else:
            scored = round_bests
        scored.sort(key=lambda item: item[1])
        params = scored[0][0]
        reports.append(
            StageReport(
                stage=stage.name,
                round_best_costs=[cost for _, cost in round_bests],
                selected_cost=scored[0][1],
                simulations=evaluator.simulations + batch_evals[0],
                histories=round_histories,
            )
        )

    final_plan = plan.with_params(params)
    network = final_plan.build()
    system = CoolingSystem.for_network(
        case.base_stack(),
        network,
        case.coolant,
        model="4rm",
        inlet_temperature=case.inlet_temperature,
    )
    if problem == PROBLEM_PUMPING_POWER:
        evaluation = evaluate_problem1(
            system, case.delta_t_star, case.t_max_star
        )
    else:
        evaluation = evaluate_problem2(
            system, case.t_max_star, case.w_pump_star()
        )
    total_sims += system.n_simulations
    return OptimizationResult(
        plan=final_plan,
        network=network,
        evaluation=evaluation,
        direction=final_plan.direction,
        stage_reports=reports,
        total_simulations=total_sims,
    )


def _reference_pressure(
    case: Case, plan: TreePlan, stage: StageConfig, problem: str
) -> Tuple[float, int]:
    """The fixed pressure for stage-1 costs: the initial network's optimum."""
    system = CoolingSystem.for_network(
        case.base_stack(),
        plan.build(),
        case.coolant,
        model=stage.model,
        tile_size=stage.tile_size,
        inlet_temperature=case.inlet_temperature,
    )
    if problem == PROBLEM_PUMPING_POWER:
        evaluation = evaluate_problem1(
            system, case.delta_t_star, case.t_max_star
        )
    else:
        evaluation = evaluate_problem2(
            system, case.t_max_star, case.w_pump_star()
        )
    return evaluation.p_sys, system.n_simulations


def _make_batch_cost(
    case: Case,
    plan: TreePlan,
    stage: StageConfig,
    problem: str,
    fixed_pressure: Optional[float],
    n_workers: int,
    counter: list,
):
    """A caching batch evaluator over :func:`evaluate_population`.

    Parallel dispatch goes through the module-level persistent-pool cache of
    :mod:`repro.optimize.parallel`: every batch of the same stage (across SA
    iterations and rounds) reuses one warm worker pool.
    """
    from .. import profiling
    from .parallel import evaluate_population

    cache: Dict[bytes, float] = {}

    def batch_cost(states):
        missing = []
        for state in states:
            key = np.asarray(state, dtype=int).tobytes()
            if key not in cache:
                missing.append((key, state))
        profiling.increment(
            "optimize.batch_cache_hits", len(states) - len(missing)
        )
        if missing:
            costs = evaluate_population(
                case,
                plan,
                stage,
                problem,
                [state for _, state in missing],
                fixed_pressure=fixed_pressure,
                n_workers=n_workers,
            )
            for (key, _), cost in zip(missing, costs):
                cache[key] = cost
            counter[0] += len(missing)
        return [cache[np.asarray(s, dtype=int).tobytes()] for s in states]

    return batch_cost
