"""Problem 1: pumping power minimization (Section 4 / ICCAD 2015 contest).

Decide the cooling network and system pressure drop minimizing
``W_pump = P_sys^2 / R_sys`` subject to ``T_max <= T_max*`` and
``DeltaT <= DeltaT*`` (Eq. 9).  The network family is the hierarchical tree
structure; the search is the staged SA flow of Algorithm 1 with network
evaluation by lowest feasible pumping power (Algorithm 2).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..iccad2015.cases import Case
from .runner import (
    OptimizationResult,
    PROBLEM_PUMPING_POWER,
    run_staged_flow,
)
from .stages import StageConfig, problem1_stages


def optimize_problem1(
    case: Case,
    stages: Optional[Sequence[StageConfig]] = None,
    directions: Sequence[int] = (0, 1),
    seed: int = 0,
    quick: bool = False,
    leaves_per_tree: int = 4,
    n_workers: int = 1,
    batch_size=None,
    initialization: str = "uniform",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: Optional[int] = None,
    interrupt_check: Optional[Callable[[], bool]] = None,
) -> OptimizationResult:
    """Run the full Problem 1 design flow on one benchmark case.

    Args:
        case: Benchmark case (see :func:`repro.iccad2015.load_case`).
        stages: Custom stage schedule; defaults to the paper's Table 1
            settings (or the quick variant).
        directions: Global flow directions to attempt; the paper tries all
            eight (``range(8)``).
        seed: Base RNG seed.
        quick: Use the reduced laptop-scale schedule.
        leaves_per_tree: Tree band size.
        checkpoint_dir / resume / checkpoint_every / interrupt_check:
            Crash-safe checkpointing controls, forwarded to
            :func:`~repro.optimize.runner.run_staged_flow`.

    Returns:
        The best design found, with its final 4RM evaluation.
    """
    if stages is None:
        stages = problem1_stages(quick=quick)
    return run_staged_flow(
        case,
        stages,
        PROBLEM_PUMPING_POWER,
        directions=directions,
        seed=seed,
        leaves_per_tree=leaves_per_tree,
        n_workers=n_workers,
        batch_size=batch_size,
        initialization=initialization,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        checkpoint_every=checkpoint_every,
        interrupt_check=interrupt_check,
    )
