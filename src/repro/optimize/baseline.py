"""Baselines and comparators for Tables 3 and 4.

* :func:`best_straight_baseline` -- "for each test case, straight channels of
  diverse global directions are evaluated by the network evaluation process
  and the best is the baseline" (Section 6).
* :func:`best_manual_design` -- a stand-in for the ICCAD 2015 contest
  winner's hand-crafted networks: the manual styles of the exploration set
  (serpentines, ladders, coils, variable pitch), each evaluated and the best
  kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cooling.evaluation import (
    EvaluationResult,
    evaluate_problem1,
    evaluate_problem2,
)
from ..cooling.system import CoolingSystem
from ..errors import (
    DesignRuleError,
    FlowError,
    GeometryError,
    SearchError,
    ThermalError,
)
from ..geometry.grid import ChannelGrid
from ..iccad2015.cases import Case
from ..networks.serpentine import (
    coiled_network,
    ladder_network,
    serpentine_network,
    variable_pitch_network,
)
from .runner import PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT


@dataclass
class BaselineResult:
    """The best network of a comparator family."""

    name: str
    network: ChannelGrid
    evaluation: EvaluationResult

    @property
    def feasible(self) -> bool:
        """Whether the best network meets every constraint."""
        return self.evaluation.feasible


def best_straight_baseline(
    case: Case,
    problem: str = PROBLEM_PUMPING_POWER,
    directions: Sequence[int] = (0, 1, 2, 3),
    pitches: Sequence[int] = (2,),
    model: str = "4rm",
    tile_size: int = 4,
) -> BaselineResult:
    """Evaluate straight channels over directions/pitches; keep the best.

    Returns an infeasible :class:`BaselineResult` (score ``inf``) when no
    straight network meets the constraints -- the paper's case 5 outcome for
    Problem 1.
    """
    candidates = []
    for pitch in pitches:
        for direction in directions:
            name = f"straight_d{direction}_p{pitch}"
            try:
                grid = case.baseline_network(direction=direction, pitch=pitch)
            except (DesignRuleError, GeometryError):
                continue
            candidates.append((name, grid))
    return _best_of(case, problem, candidates, model, tile_size)


def best_manual_design(
    case: Case,
    problem: str = PROBLEM_PUMPING_POWER,
    model: str = "4rm",
    tile_size: int = 4,
) -> BaselineResult:
    """Evaluate the manual exploration styles; keep the best.

    Stands in for the contest winner row of Table 3 (those networks "rely
    heavily on manual search" and were never published).  Styles with
    restricted-area conflicts are skipped automatically.
    """
    nrows, ncols, w = case.nrows, case.ncols, case.cell_width
    builders = [
        ("serpentine_p4", lambda: serpentine_network(nrows, ncols, 0, 4, w)),
        ("serpentine_p6", lambda: serpentine_network(nrows, ncols, 0, 6, w)),
        ("ladder_p2", lambda: ladder_network(nrows, ncols, 0, 2, w)),
        ("ladder_p4", lambda: ladder_network(nrows, ncols, 0, 4, w)),
        ("ladder_d1", lambda: ladder_network(nrows, ncols, 1, 2, w)),
        ("coiled_p4", lambda: coiled_network(nrows, ncols, 0, 4, w)),
        ("varpitch", lambda: variable_pitch_network(nrows, ncols, 0, 0.5, w)),
    ]
    # The contest winner hand-searched flexible topologies; emulate that with
    # a few uniform tree configurations picked by rule of thumb.
    tree_settings = [
        ("tree_early", ncols // 6, ncols // 3),
        ("tree_mid", ncols // 3, 2 * ncols // 3),
        ("tree_late", ncols // 2, 3 * ncols // 4),
    ]
    for name, b1, b2 in tree_settings:
        for direction in (0, 1):

            def build_tree(b1=b1, b2=b2, direction=direction):
                plan = case.tree_plan(direction=direction)
                params = plan.params()
                params[:, 0] = b1
                params[:, 1] = b2
                return plan.with_params(params).build()

            builders.append((f"{name}_d{direction}", build_tree))
    forbidden = None
    if case.restricted:
        import numpy as np

        forbidden = np.zeros((nrows, ncols), dtype=bool)
        for rect in case.restricted:
            forbidden |= rect.mask(nrows, ncols)
    candidates = []
    for name, builder in builders:
        try:
            grid = builder()
        except (DesignRuleError, GeometryError):
            continue
        if forbidden is not None and bool((grid.liquid & forbidden).any()):
            continue
        candidates.append((name, grid))
    if not candidates:
        # Every free-form style conflicts with the restricted area (case 3);
        # a manual designer would fall back to routing straight channels
        # around the obstacle at various pitches.
        for pitch in (2, 4):
            for direction in (0, 1):
                candidates.append(
                    (
                        f"manual_straight_d{direction}_p{pitch}",
                        case.baseline_network(direction=direction, pitch=pitch),
                    )
                )
    return _best_of(case, problem, candidates, model, tile_size)


def _best_of(
    case: Case,
    problem: str,
    candidates: Sequence,
    model: str,
    tile_size: int,
) -> BaselineResult:
    if problem not in (PROBLEM_PUMPING_POWER, PROBLEM_THERMAL_GRADIENT):
        raise SearchError(f"unknown problem {problem!r}")
    if not candidates:
        raise SearchError("no legal candidate networks to evaluate")
    best: Optional[BaselineResult] = None
    for name, grid in candidates:
        try:
            system = CoolingSystem.for_network(
                case.base_stack(),
                grid,
                case.coolant,
                model=model,
                tile_size=tile_size,
                inlet_temperature=case.inlet_temperature,
            )
            if problem == PROBLEM_PUMPING_POWER:
                evaluation = evaluate_problem1(
                    system, case.delta_t_star, case.t_max_star
                )
            else:
                evaluation = evaluate_problem2(
                    system, case.t_max_star, case.w_pump_star()
                )
        except (FlowError, ThermalError, SearchError):
            continue
        result = BaselineResult(name=name, network=grid, evaluation=evaluation)
        if best is None or result.evaluation.score < best.evaluation.score:
            best = result
    if best is None:
        raise SearchError("every candidate network failed to evaluate")
    return best
