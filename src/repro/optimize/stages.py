"""Stage schedules for the two design flows (Table 1 / Section 6).

Problem 1 runs four stages -- rough and quick first, accurate last:

| stage | iterations | rounds | step | cost metric                | model |
|-------|------------|--------|------|----------------------------|-------|
| 1     | 60         | 8      | 8    | DeltaT at fixed P_sys      | 2RM   |
| 2     | 40         | 4      | 8    | lowest feasible W_pump     | 2RM   |
| 3     | 40         | 2      | 4    | lowest feasible W_pump     | 2RM   |
| 4     | 30         | 1      | 2    | lowest feasible W_pump     | 4RM   |

Problem 2 drops the fixed-pressure stage (the grouped-evaluation speed-up of
Section 5 makes full evaluation cheap) and affords 4RM already in its last
stage: 80/20/20 iterations with 8/2/1 rounds.

``quick`` schedules shrink iteration/round counts for laptop-scale runs and
tests; the shape of the flow (metric progression, model switch, step decay)
is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SearchError

#: Cost metric names.
METRIC_FIXED_PRESSURE_GRADIENT = "gradient_at_fixed_p"
METRIC_LOWEST_FEASIBLE_POWER = "lowest_feasible_power"
METRIC_MIN_GRADIENT_CAPPED = "min_gradient_capped"

_METRICS = (
    METRIC_FIXED_PRESSURE_GRADIENT,
    METRIC_LOWEST_FEASIBLE_POWER,
    METRIC_MIN_GRADIENT_CAPPED,
)


@dataclass(frozen=True)
class StageConfig:
    """One stage of the staged SA flow.

    Attributes:
        name: Stage label for reports.
        iterations: SA proposals per round.
        rounds: Independent SA rounds (same settings, different seeds); the
            per-round bests are re-scored with the next stage's metric and
            the winner seeds the next stage.
        step: Move magnitude in columns.
        metric: One of the three cost metrics.
        model: ``"2rm"`` or ``"4rm"``.
        tile_size: 2RM thermal-cell size in basic cells.
        group_size: For Problem 2's grouped evaluation: one full network
            evaluation per this many iterations, the rest re-use its optimal
            pressure (Section 5, adaptation 2).
    """

    name: str
    iterations: int
    rounds: int
    step: int
    metric: str
    model: str
    tile_size: int = 4
    group_size: int = 1

    def __post_init__(self) -> None:
        if self.metric not in _METRICS:
            raise SearchError(
                f"unknown metric {self.metric!r}; known: {_METRICS}"
            )
        if self.model not in ("2rm", "4rm"):
            raise SearchError(f"model must be '2rm' or '4rm', got {self.model}")
        if min(self.iterations, self.rounds, self.step) < 1:
            raise SearchError(
                f"iterations/rounds/step must be >= 1 in stage {self.name!r}"
            )
        if self.group_size < 1:
            raise SearchError(f"group_size must be >= 1, got {self.group_size}")


def problem1_stages(quick: bool = False, tile_size: int = 4) -> List[StageConfig]:
    """The four-stage Problem 1 schedule (paper settings, or a quick variant)."""
    if quick:
        counts = ((12, 2), (8, 2), (6, 1), (4, 1))
    else:
        counts = ((60, 8), (40, 4), (40, 2), (30, 1))
    (i1, r1), (i2, r2), (i3, r3), (i4, r4) = counts
    return [
        StageConfig(
            "stage1-rough", i1, r1, 8, METRIC_FIXED_PRESSURE_GRADIENT, "2rm", tile_size
        ),
        StageConfig(
            "stage2-power", i2, r2, 8, METRIC_LOWEST_FEASIBLE_POWER, "2rm", tile_size
        ),
        StageConfig(
            "stage3-refine", i3, r3, 4, METRIC_LOWEST_FEASIBLE_POWER, "2rm", tile_size
        ),
        StageConfig(
            "stage4-accurate", i4, r4, 2, METRIC_LOWEST_FEASIBLE_POWER, "4rm", tile_size
        ),
    ]


def problem2_stages(quick: bool = False, tile_size: int = 4) -> List[StageConfig]:
    """The three-stage Problem 2 schedule with grouped evaluation."""
    if quick:
        counts = ((16, 2), (6, 1), (4, 1))
    else:
        counts = ((80, 8), (20, 2), (20, 1))
    (i1, r1), (i2, r2), (i3, r3) = counts
    return [
        StageConfig(
            "stage1-grouped",
            i1,
            r1,
            8,
            METRIC_MIN_GRADIENT_CAPPED,
            "2rm",
            tile_size,
            group_size=5,
        ),
        StageConfig(
            "stage2-refine",
            i2,
            r2,
            4,
            METRIC_MIN_GRADIENT_CAPPED,
            "2rm",
            tile_size,
            group_size=5,
        ),
        StageConfig(
            "stage3-accurate",
            i3,
            r3,
            2,
            METRIC_MIN_GRADIENT_CAPPED,
            "4rm",
            tile_size,
            group_size=5,
        ),
    ]
