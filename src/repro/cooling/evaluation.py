"""Network evaluation (Algorithm 2 and its Problem-2 counterpart).

Problem 1 scores a candidate network by its *lowest feasible pumping power*:
the smallest ``P_sys`` meeting both the gradient constraint (via Algorithm 3)
and the peak-temperature constraint (via binary search on the monotone
``h``), converted to power through ``W_pump = P_sys^2 / R_sys`` (Eq. 10).
Infeasible networks score ``+inf``.

Problem 2 scores a network by the *smallest achievable thermal gradient*
under a pumping-power cap: the cap converts to a pressure cap
``P* = sqrt(W* R_sys)``; if the gradient curve is still falling at ``P*``
that point is optimal, otherwise a golden-section search finds the interior
minimum (Section 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..constants import (
    PRESSURE_INIT,
    PRESSURE_INIT_STEP_RATIO,
    PRESSURE_MAX,
    PRESSURE_MIN,
    PRESSURE_SEARCH_RTOL,
)
from .. import telemetry
from ..faults import SITE_COOLING_PROBLEM1, SITE_COOLING_PROBLEM2, inject
from .pressure_search import (
    golden_section_minimize,
    min_pressure_for_peak,
    minimize_pressure_for_gradient,
)
from .system import CoolingSystem


@dataclass
class EvaluationResult:
    """Score of one candidate network.

    Attributes:
        score: The problem objective: ``W_pump`` (W) for Problem 1, ``DeltaT``
            (K) for Problem 2; ``inf`` when the network is infeasible.
        feasible: Whether all constraints can be met.
        p_sys: Operating pressure chosen (best found even when infeasible).
        w_pump / t_max / delta_t: Metrics at ``p_sys``.
        simulations: Distinct thermal simulations spent on this network.
        fidelity: Model fidelity the score came from: ``"low"`` (2RM
            surrogate) or ``"high"`` (4RM reference).  The multi-fidelity
            portfolio uses this tag to keep surrogate and verified scores
            apart.
    """

    score: float
    feasible: bool
    p_sys: float
    w_pump: float
    t_max: float
    delta_t: float
    simulations: int
    fidelity: str = ""

    @property
    def is_infeasible(self) -> bool:
        """Inverse of ``feasible``."""
        return not self.feasible

    def raise_if_infeasible(self, what: str = "network") -> "EvaluationResult":
        """Raise :class:`~repro.errors.InfeasibleError` unless feasible.

        Returns ``self`` so calls can be chained fluently::

            score = evaluate_problem1(...).raise_if_infeasible().score
        """
        if not self.feasible:
            from ..errors import InfeasibleError

            raise InfeasibleError(
                f"{what} cannot meet the constraints "
                f"(best point: P_sys={self.p_sys / 1e3:.2f} kPa, "
                f"T_max={self.t_max:.2f} K, DeltaT={self.delta_t:.2f} K)",
                best_value=self.delta_t,
            )
        return self


def evaluate_problem1(
    system: CoolingSystem,
    delta_t_star: float,
    t_max_star: float,
    p_init: float = PRESSURE_INIT,
    r_init: float = PRESSURE_INIT_STEP_RATIO,
    rtol: float = PRESSURE_SEARCH_RTOL,
    p_max: float = PRESSURE_MAX,
) -> EvaluationResult:
    """Algorithm 2: the lowest feasible pumping power of one network.

    Step 1 solves the gradient-constrained pressure minimization (Eq. 11,
    Algorithm 3).  If no pressure meets ``DeltaT*``, the network is
    infeasible (score ``+inf``).  Step 2 raises the pressure further when the
    peak-temperature constraint is still violated (``h`` is monotone, so a
    binary search suffices), and re-checks both constraints at the new point.

    Args:
        system: The cooling network under evaluation.
        delta_t_star: Thermal-gradient constraint ``DeltaT*``.  [unit: K]
        t_max_star: Peak-temperature constraint ``T_max*``.  [unit: K]
        p_init: Starting pressure for the search.  [unit: Pa]
        r_init: Dimensionless initial step ratio.  [unit: 1]
        rtol: Dimensionless relative tolerance.  [unit: 1]
        p_max: Upper pressure bound.  [unit: Pa]
    """
    inject(SITE_COOLING_PROBLEM1)
    with telemetry.span("cooling.evaluate_problem1"):
        before = system.n_simulations
        search = minimize_pressure_for_gradient(
            system.delta_t,
            delta_t_star,
            p_init=p_init,
            r_init=r_init,
            rtol=rtol,
            p_max=p_max,
        )
        p_sys = search.p_sys
        if system.delta_t(p_sys) > delta_t_star * (1.0 + rtol):
            return _result(system, p_sys, math.inf, False, before)

        if system.t_max(p_sys) > t_max_star:
            peak = min_pressure_for_peak(
                system.t_max, t_max_star, p_sys, rtol=rtol, p_max=p_max
            )
            p_sys = peak.p_sys
            # Raising the pressure may have crossed the gradient minimum onto
            # the rising side; both constraints must hold at the final point.
            if (
                system.delta_t(p_sys) > delta_t_star * (1.0 + rtol)
                or system.t_max(p_sys) > t_max_star * (1.0 + rtol)
            ):
                return _result(system, p_sys, math.inf, False, before)

        return _result(system, p_sys, system.w_pump(p_sys), True, before)


def evaluate_problem2(
    system: CoolingSystem,
    t_max_star: float,
    w_pump_star: float,
    rtol: float = PRESSURE_SEARCH_RTOL,
    p_min: float = PRESSURE_MIN,
) -> EvaluationResult:
    """Problem-2 network evaluation: smallest gradient under a power cap.

    The cap ``W_pump*`` maps to ``P* = sqrt(W* R_sys)`` (Eq. 13).  If
    ``T_max(P*) > T_max*`` the network is infeasible (no higher pressure is
    allowed and lower pressures only get hotter).  Otherwise the admissible
    pressure window is ``[P_peak, P*]`` where ``P_peak`` is the smallest
    pressure meeting ``T_max*``; the gradient is minimized there -- directly
    at ``P*`` when ``f`` is still falling, else by golden-section search.

    Args:
        system: The cooling network under evaluation.
        t_max_star: Peak-temperature constraint ``T_max*``.  [unit: K]
        w_pump_star: Pumping-power cap ``W_pump*``.  [unit: W]
        rtol: Dimensionless relative tolerance.  [unit: 1]
        p_min: Lower pressure bound.  [unit: Pa]
    """
    inject(SITE_COOLING_PROBLEM2)
    with telemetry.span("cooling.evaluate_problem2"):
        before = system.n_simulations
        p_cap = system.p_sys_for_power(w_pump_star)
        if p_cap <= p_min:
            return _result(system, p_min, math.inf, False, before)
        if system.t_max(p_cap) > t_max_star:
            return _result(system, p_cap, math.inf, False, before)

        peak = min_pressure_for_peak(
            system.t_max, t_max_star, p_min, rtol=rtol, p_max=p_cap
        )
        p_lo = min(peak.p_sys, p_cap) if peak.feasible else p_cap

        # Probe whether f is still falling at the cap.
        p_probe = max(p_lo, p_cap * (1.0 - 4.0 * rtol))
        falling = (
            p_probe >= p_cap
            or system.delta_t(p_cap) <= system.delta_t(p_probe)
        )
        if falling:
            p_best = p_cap
        else:
            search = golden_section_minimize(
                system.delta_t, max(p_lo, p_min), p_cap, rtol=rtol
            )
            p_best = search.p_sys
            # Never exceed the cap; never go below the peak-feasible floor.
            p_best = min(max(p_best, p_lo), p_cap)
        return _result(system, p_best, None, True, before)


def _result(
    system: CoolingSystem,
    p_sys: float,
    score: Optional[float],
    feasible: bool,
    sims_before: int,
) -> EvaluationResult:
    # Finalize with an exact solve: search probes may come from the
    # incremental solver, but reported metrics (and Problem-2 scores, where
    # ``score is None`` requests the exact gradient) never do.
    result = system.evaluate(p_sys, exact=True)
    return EvaluationResult(
        score=result.delta_t if score is None else score,
        feasible=feasible,
        p_sys=p_sys,
        w_pump=system.w_pump(p_sys),
        t_max=result.t_max,
        delta_t=result.delta_t,
        simulations=system.n_simulations - sims_before,
        fidelity=system.fidelity,
    )
