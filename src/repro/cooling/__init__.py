"""Cooling-system evaluation: the inner level of the design flow.

A *cooling system* is a cooling network plus a system pressure drop
(Section 2.1).  This package evaluates candidate networks:

* :mod:`~repro.cooling.system` caches thermal simulations of one network
  across pressures and exposes ``f(P_sys) = DeltaT`` and
  ``h(P_sys) = T_max``;
* :mod:`~repro.cooling.pressure_search` implements Algorithm 3 (the
  three-point probe that minimizes ``P_sys`` subject to
  ``f(P_sys) <= DeltaT*``), the golden-section search used by Problem 2 and
  the binary search on the monotone ``h``;
* :mod:`~repro.cooling.evaluation` implements Algorithm 2 (network
  evaluation by lowest feasible pumping power) and its thermal-gradient
  counterpart.
"""

from .system import CoolingSystem
from .pressure_search import (
    PressureSearchResult,
    golden_section_minimize,
    min_pressure_for_peak,
    minimize_pressure_for_gradient,
)
from .evaluation import (
    EvaluationResult,
    evaluate_problem1,
    evaluate_problem2,
)

__all__ = [
    "CoolingSystem",
    "EvaluationResult",
    "PressureSearchResult",
    "evaluate_problem1",
    "evaluate_problem2",
    "golden_section_minimize",
    "min_pressure_for_peak",
    "minimize_pressure_for_gradient",
]
