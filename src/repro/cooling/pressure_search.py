"""Pressure searches over the thermal curves (Section 4.1 / Algorithm 3).

As ``P_sys`` grows, every node temperature decreases monotonically toward an
asymptote, each with its own *turning point* (upstream regions turn earlier).
Consequently ``h(P_sys) = T_max`` is monotonically decreasing while
``f(P_sys) = DeltaT`` is either uni-modal (a minimum exists) or monotonically
decreasing (Fig. 6).  Three searches exploit those shapes:

* :func:`minimize_pressure_for_gradient` -- Algorithm 3: the smallest
  ``P_sys`` with ``f(P_sys) <= DeltaT*``, or the minimizer of ``f`` when no
  feasible pressure exists (which certifies infeasibility);
* :func:`golden_section_minimize` -- the minimum of uni-modal ``f`` on an
  interval (the Problem 2 inner search);
* :func:`min_pressure_for_peak` -- binary search on the monotone ``h`` for
  the smallest ``P_sys`` with ``T_max <= T_max*``.

Every search memoizes probes, so the expensive simulator is called once per
distinct pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .. import profiling
from ..constants import (
    PRESSURE_INIT,
    PRESSURE_INIT_STEP_RATIO,
    PRESSURE_MAX,
    PRESSURE_MIN,
    PRESSURE_SEARCH_RTOL,
    quantize_key,
)
from ..errors import SearchError

#: Consecutive flat right-moves before Algorithm 3 declares a plateau.
_PLATEAU_MOVES = 3  #: [unit: 1]

#: Golden ratio section constant.
_INV_PHI = 0.6180339887498949  #: [unit: 1]


@dataclass
class PressureSearchResult:
    """Outcome of a pressure search.

    Attributes:
        p_sys: The returned pressure drop, Pa.
        value: Objective value at ``p_sys`` (``f`` or ``h``).
        feasible: Whether the constraint is met at ``p_sys``.
        at_minimum: True when the search returned the curve's minimizer
            because no pressure satisfies the constraint.
        evaluations: Number of distinct simulator probes spent.
    """

    p_sys: float
    value: float
    feasible: bool
    at_minimum: bool
    evaluations: int


class _Memo:
    """Counting memoizer around the probe function.

    Pressures are quantized (1e-6 Pa) before keying, matching the result
    cache of :class:`~repro.cooling.system.CoolingSystem`: two probes that
    differ by floating-point noise are one simulation, not two.
    """

    def __init__(self, fn: Callable[[float], float]):
        self._fn = fn
        self._cache: Dict[float, float] = {}

    def __call__(self, p: float) -> float:
        key = quantize_key(p)
        if key not in self._cache:
            profiling.increment("search.probes")
            self._cache[key] = float(self._fn(key))
        return self._cache[key]

    @property
    def evaluations(self) -> int:
        return len(self._cache)

    def items(self):
        """All (pressure, value) probes made so far."""
        return self._cache.items()


def minimize_pressure_for_gradient(
    f: Callable[[float], float],
    target: float,
    p_init: float = PRESSURE_INIT,
    r_init: float = PRESSURE_INIT_STEP_RATIO,
    rtol: float = PRESSURE_SEARCH_RTOL,
    p_min: float = PRESSURE_MIN,
    p_max: float = PRESSURE_MAX,
    max_evaluations: int = 200,
) -> PressureSearchResult:
    """Algorithm 3: minimize ``P_sys`` subject to ``f(P_sys) <= target``.

    Moves three probing points to find either the smaller crossing of
    ``f(P_sys) = target`` or, when the constraint is unachievable, the
    pressure minimizing ``f`` (whose value then certifies infeasibility).

    Args:
        f: The gradient curve ``DeltaT(P_sys)``; uni-modal or monotonically
            decreasing per Section 4.1.
        target: The gradient constraint ``DeltaT*``.  [unit: K]
        p_init: First probed pressure (``P_init`` in the paper).  [unit: Pa]
        r_init: Initial step ratio (``r_init``).  [unit: 1]
        rtol: Relative convergence tolerance on pressures.  [unit: 1]
        p_min: Lower physical pressure bound.  [unit: Pa]
        p_max: Upper physical pressure bound.  [unit: Pa]
        max_evaluations: Probe budget; exceeding it raises
            :class:`~repro.errors.SearchError`.
    """
    probe = _Memo(f)

    def check_budget() -> None:
        if probe.evaluations > max_evaluations:
            raise SearchError(
                f"Algorithm 3 exceeded {max_evaluations} probe evaluations"
            )

    # Lines 1-4: place P0 on the high-gradient left side with f decreasing.
    p0 = float(p_init)
    while True:
        while probe(p0) < target:
            check_budget()
            p0 /= 2.0
            if p0 < p_min:
                # Feasible all the way down: the smallest physical pressure
                # already satisfies the constraint.
                return PressureSearchResult(
                    p_sys=p_min,
                    value=probe(p_min),
                    feasible=probe(p_min) <= target,
                    at_minimum=False,
                    evaluations=probe.evaluations,
                )
        step = p0 * r_init
        p1 = p0 + step
        check_budget()
        if probe(p0) < probe(p1):
            # Rising already: the minimum sits at or left of P0; back off.
            p0 /= 2.0
            if p0 < p_min:
                return PressureSearchResult(
                    p_sys=p_min,
                    value=probe(p_min),
                    feasible=probe(p_min) <= target,
                    at_minimum=True,
                    evaluations=probe.evaluations,
                )
            continue
        break

    # Lines 5-11: expand right looking for f <= target, shrinking onto the
    # minimum whenever the curve turns upward.
    flat_moves = 0
    while probe(p1) > target:
        check_budget()
        step *= 2.0
        p2 = p1 + step
        if p2 > p_max:
            return PressureSearchResult(
                p_sys=p1,
                value=probe(p1),
                feasible=False,
                at_minimum=False,
                evaluations=probe.evaluations,
            )
        while probe(p1) < probe(p2):
            check_budget()
            if (
                abs(1.0 - p0 / p1) < rtol
                and abs(1.0 - p2 / p1) < rtol
            ):
                value = probe(p1)
                return PressureSearchResult(
                    p_sys=p1,
                    value=value,
                    feasible=value <= target,
                    at_minimum=True,
                    evaluations=probe.evaluations,
                )
            p2 = p1
            p1 = 0.5 * (p0 + p2)
            step = p2 - p1
        rel_change = abs(1.0 - probe(p0) / probe(p1)) if probe(p1) else 0.0
        p0, p1 = p1, p2
        if rel_change < rtol:
            flat_moves += 1
            if flat_moves >= _PLATEAU_MOVES:
                value = probe(p1)
                return PressureSearchResult(
                    p_sys=p1,
                    value=value,
                    feasible=value <= target,
                    at_minimum=True,
                    evaluations=probe.evaluations,
                )
        else:
            flat_moves = 0

    # Lines 12-13: bisect to the crossing.  The paper brackets with
    # [P0, P1], but the shrink-right phase can move P0 past the *left*
    # crossing onto feasible ground (a gap in the pseudocode, found by
    # property-based testing); bracketing from all memoized probes -- the
    # smallest feasible pressure and the largest infeasible pressure below
    # it -- restores minimality at no extra simulation cost.
    feasible_probes = [p for p, v in probe.items() if v <= target]
    hi = min(feasible_probes)
    infeasible_below = [
        p for p, v in probe.items() if v > target and p < hi
    ]
    lo = max(infeasible_below) if infeasible_below else max(hi / 2.0, p_min)
    while abs(1.0 - lo / hi) > rtol:
        check_budget()
        mid = 0.5 * (lo + hi)
        if probe(mid) > target:
            lo = mid
        else:
            hi = mid
    return PressureSearchResult(
        p_sys=hi,
        value=probe(hi),
        feasible=True,
        at_minimum=False,
        evaluations=probe.evaluations,
    )


def golden_section_minimize(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    rtol: float = PRESSURE_SEARCH_RTOL,
    max_evaluations: int = 200,
) -> PressureSearchResult:
    """Golden-section search for the minimum of uni-modal ``f`` on [lo, hi].

    Used by the Problem 2 network evaluation when the pressure cap lands on
    the rising side of the gradient curve (Section 5).

    Args:
        f: The curve to minimize (gradient vs. pressure).
        lo: Lower bracket pressure.  [unit: Pa]
        hi: Upper bracket pressure.  [unit: Pa]
        rtol: Relative convergence tolerance on pressures.  [unit: 1]
        max_evaluations: Probe budget.
    """
    if not 0 < lo < hi:
        raise SearchError(f"need 0 < lo < hi, got [{lo}, {hi}]")
    probe = _Memo(f)
    a, b = lo, hi
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    while abs(1.0 - a / b) > rtol:
        if probe.evaluations > max_evaluations:
            raise SearchError(
                f"golden-section search exceeded {max_evaluations} evaluations"
            )
        if probe(c) < probe(d):
            b, d = d, c
            c = b - _INV_PHI * (b - a)
        else:
            a, c = c, d
            d = a + _INV_PHI * (b - a)
    best = 0.5 * (a + b)
    return PressureSearchResult(
        p_sys=best,
        value=probe(best),
        feasible=True,
        at_minimum=True,
        evaluations=probe.evaluations,
    )


def min_pressure_for_peak(
    h: Callable[[float], float],
    t_max_star: float,
    p_lo: float,
    rtol: float = PRESSURE_SEARCH_RTOL,
    p_max: float = PRESSURE_MAX,
    max_evaluations: int = 200,
) -> PressureSearchResult:
    """Binary search on monotone ``h(P_sys) = T_max`` (Algorithm 2, line 4).

    Finds the smallest pressure at or above ``p_lo`` whose peak temperature
    satisfies ``T_max <= T_max*``.  Because ``h`` decreases monotonically and
    saturates, infeasibility is declared when even ``p_max`` stays hot.

    Args:
        h: The peak-temperature curve ``T_max(P_sys)``.
        t_max_star: Peak-temperature constraint ``T_max*``.  [unit: K]
        p_lo: Starting (lower-bound) pressure.  [unit: Pa]
        rtol: Relative convergence tolerance on pressures.  [unit: 1]
        p_max: Upper physical pressure bound.  [unit: Pa]
        max_evaluations: Probe budget.
    """
    probe = _Memo(h)
    if probe(p_lo) <= t_max_star:
        return PressureSearchResult(
            p_sys=p_lo,
            value=probe(p_lo),
            feasible=True,
            at_minimum=False,
            evaluations=probe.evaluations,
        )
    lo = p_lo
    hi = max(2.0 * p_lo, 2.0 * PRESSURE_MIN)
    while probe(hi) > t_max_star:
        if probe.evaluations > max_evaluations:
            raise SearchError(
                f"peak-temperature search exceeded {max_evaluations} evaluations"
            )
        lo = hi
        hi *= 2.0
        if hi > p_max:
            return PressureSearchResult(
                p_sys=p_max,
                value=probe(p_max),
                feasible=probe(p_max) <= t_max_star,
                at_minimum=False,
                evaluations=probe.evaluations,
            )
    while abs(1.0 - lo / hi) > rtol:
        if probe.evaluations > max_evaluations:
            raise SearchError(
                f"peak-temperature search exceeded {max_evaluations} evaluations"
            )
        mid = 0.5 * (lo + hi)
        if probe(mid) > t_max_star:
            lo = mid
        else:
            hi = mid
    return PressureSearchResult(
        p_sys=hi,
        value=probe(hi),
        feasible=True,
        at_minimum=False,
        evaluations=probe.evaluations,
    )
