"""A cooling system: one network simulated across pressures, with caching.

Both optimization problems repeatedly probe the same network at different
system pressure drops (Algorithms 2/3 and the golden-section search).
:class:`CoolingSystem` builds the thermal simulator once per network and
memoizes :class:`~repro.thermal.result.ThermalResult` objects per pressure,
so the searches only pay for the linear solves they genuinely need.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Union

from .. import linalg, profiling
from ..constants import (
    EDGE_CONDUCTANCE_FACTOR,
    INLET_TEMPERATURE,
    quantize_key,
)
from ..errors import ThermalError
from ..geometry.grid import ChannelGrid
from ..geometry.stack import Stack
from ..materials import Coolant
from ..thermal.common import ADVECTION_SCHEME_DEFAULT
from ..thermal.rc2 import RC2Simulator
from ..thermal.rc4 import RC4Simulator
from ..thermal.result import ThermalResult


class CoolingSystem:
    """Evaluation wrapper around one stack + cooling network.

    Args:
        stack: Stack with the candidate network(s) already installed (use
            ``stack.with_channel_grids`` to swap networks).
        coolant: Working fluid.
        model: ``"2rm"`` (fast, inner loops) or ``"4rm"`` (reference).
        tile_size: 2RM thermal-cell size in basic cells (ignored for 4RM).
        edge_factor / inlet_temperature / advection_scheme: Forwarded to the
            simulator.
    """

    #: Fidelity tags by model: the multi-fidelity portfolio searches with
    #: ``"low"`` (2RM surrogate) scores and verifies elites at ``"high"``.
    FIDELITY_BY_MODEL = {"2rm": "low", "4rm": "high"}

    def __init__(
        self,
        stack: Stack,
        coolant: Coolant,
        model: str = "2rm",
        tile_size: int = 4,
        edge_factor: float = EDGE_CONDUCTANCE_FACTOR,
        inlet_temperature: float = INLET_TEMPERATURE,
        advection_scheme: str = ADVECTION_SCHEME_DEFAULT,
    ):
        model = model.lower()
        if model == "2rm":
            self.simulator: Union[RC2Simulator, RC4Simulator] = RC2Simulator(
                stack,
                coolant,
                tile_size=tile_size,
                edge_factor=edge_factor,
                inlet_temperature=inlet_temperature,
                advection_scheme=advection_scheme,
            )
        elif model == "4rm":
            self.simulator = RC4Simulator(
                stack,
                coolant,
                edge_factor=edge_factor,
                inlet_temperature=inlet_temperature,
                advection_scheme=advection_scheme,
            )
        else:
            raise ThermalError(f"unknown model {model!r}; use '2rm' or '4rm'")
        self.stack = stack
        self.coolant = coolant
        self.model = model
        self._cache: Dict[float, ThermalResult] = {}
        self._exact_keys: Set[float] = set()
        self.n_simulations = 0

    # ------------------------------------------------------------------

    @classmethod
    def for_network(
        cls,
        base_stack: Stack,
        network: "ChannelGrid | Sequence[ChannelGrid]",
        coolant: Coolant,
        **kwargs,
    ) -> "CoolingSystem":
        """Install ``network`` into every channel layer and wrap the result.

        A single grid is replicated (copied) across all channel layers --
        the matched-ports convention; a sequence supplies one grid per layer.
        """
        n_channels = len(base_stack.channel_layer_indices())
        if isinstance(network, ChannelGrid):
            grids = [network.copy() for _ in range(n_channels)]
        else:
            grids = list(network)
        return cls(base_stack.with_channel_grids(grids), coolant, **kwargs)

    # ------------------------------------------------------------------

    @property
    def fidelity(self) -> str:
        """``"low"`` (2RM surrogate) or ``"high"`` (4RM reference)."""
        return self.FIDELITY_BY_MODEL[self.model]

    @property
    def r_sys(self) -> float:
        """Total system fluid resistance (channel layers in parallel)."""
        q_unit = sum(f.q_sys(1.0) for f in self.simulator.flow_fields)
        return 1.0 / q_unit

    def w_pump(self, p_sys: float) -> float:
        """Pumping power at ``p_sys`` (Eq. 10); no simulation needed."""
        return p_sys * p_sys / self.r_sys

    def p_sys_for_power(self, w_pump: float) -> float:
        """The pressure drop that spends exactly ``w_pump``."""
        return (w_pump * self.r_sys) ** 0.5

    def evaluate(self, p_sys: float, exact: bool = False) -> ThermalResult:
        """Simulate (or fetch the cached result) at one pressure drop.

        Pressures are quantized to :data:`~repro.constants.
        PRESSURE_KEY_DECIMALS` decimal places (1e-6 Pa) before keying and
        solving, so an epsilon-perturbed re-probe of a pressure the searches
        already visited is a cache hit instead of a fresh simulation.

        ``exact=True`` guarantees the returned result came from an exact
        factorization: a cached entry produced by the incremental solver
        path is recomputed exactly (and replaces the approximate entry), so
        final scores never depend on whether incremental updates were on.
        The recompute does not count as a new simulation -- it revisits a
        pressure already paid for.
        """
        key = quantize_key(p_sys)
        cached = self._cache.get(key)
        if cached is not None and (not exact or key in self._exact_keys):
            profiling.increment("cooling.cache_hits")
            return cached
        result = self.simulator.solve(key, exact=exact)
        if cached is None:
            self.n_simulations += 1
            profiling.increment("cooling.simulations")
        else:
            profiling.increment("cooling.exact_recomputes")
        self._cache[key] = result
        if exact or not linalg.current_config().incremental:
            self._exact_keys.add(key)
        return result

    def delta_t(self, p_sys: float) -> float:
        """``f(P_sys)``: the thermal gradient at one pressure drop."""
        return self.evaluate(p_sys).delta_t

    def t_max(self, p_sys: float) -> float:
        """``h(P_sys)``: the peak temperature at one pressure drop."""
        return self.evaluate(p_sys).t_max

    def clear_cache(self) -> None:
        """Drop memoized thermal results."""
        self._cache.clear()
        self._exact_keys.clear()
