"""TTL leases: the mutual-exclusion primitive of the job scheduler.

A lease is a small JSON file next to the job record.  Ownership semantics:

* **Acquire** creates the file with ``O_CREAT | O_EXCL`` -- the filesystem
  guarantees exactly one of any number of racing workers wins, with no
  coordination service.
* **Renew** re-reads the file, verifies the caller's ownership token, and
  rewrites it with an extended expiry via the same rename-verify protocol
  as steal/release (rename away, check the bytes, re-create with
  ``O_EXCL``).  A missing file, a foreign token, or losing the
  rename race raises :class:`~repro.errors.LeaseLostError`: the holder
  must stop touching the job immediately.  A plain ``os.replace`` would
  be wrong here: a holder renewing just past its TTL (GC pause, VM
  suspend) could clobber the fresh lease a reaper reclaimed and a
  successor re-acquired in the meantime.
* **Steal** (the reaper's reclaim path, only legal on an *expired* lease)
  renames the lease file to a caller-unique name, then verifies the
  renamed bytes are exactly the expired lease it examined.  ``os.rename``
  succeeds for exactly one of any number of racing reapers -- the losers
  get ``ENOENT`` -- and the content check closes the remaining window: a
  reaper whose view went stale (the winner already reclaimed *and* a
  successor re-acquired) would otherwise rename away the successor's
  fresh lease.  A mismatched steal is rolled back with ``os.link``
  (atomic, refuses to clobber), so an expired lease is reclaimed exactly
  once and a fresh acquire can never be destroyed by a stale reaper.
  Release uses the same rename-verify protocol instead of a bare
  ``unlink`` for the same reason: a holder releasing just past its TTL
  must not delete a lease that was reclaimed and re-acquired meanwhile.

Expiry is wall-clock based because leases coordinate *across processes and
restarts*; a monotonic clock does not survive either.  Correctness therefore
needs ``ttl`` to dominate both clock skew between cooperating processes on
the same host (zero) and the heartbeat interval (enforced by
:class:`repro.server.worker.Worker` renewing at ``ttl / 3``).

``repro-lint-scope: determinism-boundary, atomic-io`` -- lease files are
wall-clock state by definition, and the ``O_EXCL`` create path must write
the file it just exclusively created (an atomic-rename write would destroy
the exclusivity that makes acquisition race-free).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .. import profiling
from ..errors import LeaseError, LeaseLostError
from ..faults import SITE_SERVER_LEASE_RENEW, inject

__all__ = ["Lease", "LeaseFile"]

#: Lease file name inside a job directory.
LEASE_FILENAME = "lease.json"


@dataclass(frozen=True)
class Lease:
    """One granted lease: who owns the job and until when.

    Attributes:
        owner: The worker id that acquired the lease.
        token: Per-acquisition secret; renewal and release verify it, so a
            worker that lost its lease can never clobber the new owner's.
        expires_at: Wall-clock expiry [unit: s].
        acquired_at: Wall-clock acquisition time [unit: s].
        renewals: Successful heartbeat renewals so far.
    """

    owner: str
    token: str
    expires_at: float
    acquired_at: float
    renewals: int = 0

    @property
    def expired(self) -> bool:
        """Whether the lease's TTL has elapsed."""
        return time.time() >= self.expires_at


class LeaseFile:
    """The lease file of one job directory.

    Args:
        directory: The job directory the lease guards.
        ttl: Lease time-to-live [unit: s]; a holder that fails to renew
            within it is presumed dead and loses the job.
    """

    def __init__(self, directory: Union[str, Path], ttl: float = 30.0):
        if ttl <= 0:
            raise LeaseError(f"lease ttl must be positive, got {ttl}")
        self.directory = Path(directory)
        self.path = self.directory / LEASE_FILENAME
        self.ttl = float(ttl)

    # -- reading -------------------------------------------------------

    def read(self) -> Optional[Lease]:
        """The current lease, or ``None`` when the job is unleased.

        A lease file that cannot be parsed is treated as *held and expired*
        -- it blocks fresh acquisition but is reclaimable via
        :meth:`steal_expired`, so a torn lease write can delay but never
        wedge a job.
        """
        raw = self._read_raw()
        return None if raw is None else self._decode(raw)

    # -- acquisition ---------------------------------------------------

    def try_acquire(self, owner: str) -> Optional[Lease]:
        """Attempt to claim the job for ``owner``.

        Returns the granted :class:`Lease`, or ``None`` when another holder
        (live *or* expired -- expired leases are reclaimed explicitly by the
        reaper, not stolen implicitly on claim) owns the file.
        """
        now = time.time()
        lease = Lease(
            owner=owner,
            token=uuid.uuid4().hex,
            expires_at=now + self.ttl,
            acquired_at=now,
        )
        data = self._encode(lease)
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return None
        except OSError as exc:
            raise LeaseError(
                f"cannot create lease {self.path}: {exc}"
            ) from exc
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        return lease

    # -- heartbeat -----------------------------------------------------

    def renew(self, lease: Lease) -> Lease:
        """Extend ``lease`` by one TTL; returns the renewed lease.

        Renewal follows the rename-verify protocol of steal/release: the
        current file is renamed away (``os.rename`` picks one winner among
        any racers), its bytes are checked to still carry the caller's
        token, and the extended lease is re-created with ``O_EXCL``.  A
        holder whose renewal runs just past its TTL therefore loses
        cleanly to a concurrent reclaim instead of replacing the
        successor's fresh lease.

        Raises:
            LeaseLostError: The file is gone, carries a different token,
                or was reclaimed mid-renewal (the reaper requeued the job,
                or another worker owns it).
        """
        inject(SITE_SERVER_LEASE_RENEW)
        raw = self._read_raw()
        current = None if raw is None else self._decode(raw)
        if current is None or current.token != lease.token:
            raise LeaseLostError(
                f"lease on {self.directory.name} lost by {lease.owner}: "
                f"held by {current.owner if current else 'nobody'}"
            )
        if not self._remove_exact(raw, "renew"):
            # Between read and rename the lease was reclaimed -- and
            # possibly re-issued; _remove_exact already restored any
            # successor's fresh lease.
            raise LeaseLostError(
                f"lease on {self.directory.name} lost by {lease.owner}: "
                f"reclaimed mid-renewal"
            )
        renewed = Lease(
            owner=lease.owner,
            token=lease.token,
            expires_at=time.time() + self.ttl,
            acquired_at=lease.acquired_at,
            renewals=lease.renewals + 1,
        )
        data = self._encode(renewed)
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            # Someone acquired in the rename-to-recreate gap (a reaper saw
            # the record with no lease file); the job is theirs now.
            raise LeaseLostError(
                f"lease on {self.directory.name} lost by {lease.owner}: "
                f"re-acquired mid-renewal"
            ) from None
        except OSError as exc:
            raise LeaseError(
                f"cannot renew lease {self.path}: {exc}"
            ) from exc
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        return renewed

    def verify(self, lease: Lease) -> None:
        """Assert ``lease`` is still the one on disk (pre-commit check).

        Raises:
            LeaseLostError: It is not; the caller no longer owns the job.
        """
        current = self.read()
        if current is None or current.token != lease.token:
            raise LeaseLostError(
                f"lease on {self.directory.name} no longer held by "
                f"{lease.owner}"
            )

    # -- release / reclaim ---------------------------------------------

    def release(self, lease: Lease) -> None:
        """Drop an owned lease (idempotent; a lost lease is left alone)."""
        raw = self._read_raw()
        if raw is None or self._decode(raw).token != lease.token:
            return  # someone else owns it now; never delete their lease
        self._remove_exact(raw, "released")

    def steal_expired(self, thief: str) -> Optional[Lease]:
        """Reclaim an *expired* lease; returns a fresh lease for ``thief``.

        Returns ``None`` when there is nothing to steal: the lease is live,
        absent, or another reaper won the race.  The rename-then-verify
        protocol guarantees at most one winner per expired lease, even
        when a racer's view is stale.
        """
        raw = self._read_raw()
        if raw is None or not self._decode(raw).expired:
            return None
        if not self._remove_exact(raw, "expired"):
            return None  # a racing reaper (or the owner's release) won
        profiling.increment("server.lease_reclaims")
        return self.try_acquire(thief)

    def _remove_exact(self, raw: bytes, label: str) -> bool:
        """Remove the lease file iff it still holds exactly ``raw``.

        The rename is what wins the race (one winner among any number of
        racers); the byte comparison closes the read-to-rename window --
        without it, a racer whose read went stale could rename away a
        *successor's* fresh lease.  A mismatch is rolled back with
        ``os.link``, which is atomic and refuses to clobber a third
        party's even-fresher lease (that third party is protected either
        way: token verification catches a vanished file at renew time).
        """
        grave = self.path.with_name(
            f"{LEASE_FILENAME}.{label}-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(self.path, grave)
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise LeaseError(
                f"cannot remove lease {self.path}: {exc}"
            ) from exc
        try:
            taken = grave.read_bytes()
        except OSError:
            taken = None
        removed = taken == raw
        if not removed:
            try:
                os.link(grave, self.path)  # put the fresh lease back
            except OSError:
                pass
        try:
            grave.unlink()
        except OSError:
            pass  # tombstone cleanup is best-effort
        return removed

    # -- helpers -------------------------------------------------------

    def _read_raw(self) -> Optional[bytes]:
        try:
            return self.path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise LeaseError(f"cannot read lease {self.path}: {exc}") from exc

    @staticmethod
    def _decode(raw: bytes) -> Lease:
        try:
            fields = json.loads(raw.decode("utf-8"))
            return Lease(**fields)
        except (UnicodeDecodeError, json.JSONDecodeError, TypeError):
            return Lease(
                owner="<corrupt>", token="", expires_at=0.0, acquired_at=0.0
            )

    @staticmethod
    def _encode(lease: Lease) -> bytes:
        payload = {
            "owner": lease.owner,
            "token": lease.token,
            "expires_at": lease.expires_at,
            "acquired_at": lease.acquired_at,
            "renewals": lease.renewals,
        }
        return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
