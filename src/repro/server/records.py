"""The durable job record: header + CRC-validated JSON body, one per job.

A job record file mirrors the :mod:`repro.checkpoint` format discipline --
one ASCII JSON header line followed by the payload, here a UTF-8 JSON
document instead of a pickle::

    {"body_bytes": ..., "crc32": ..., "magic": "repro-job", "version": 1}\\n
    { ...the JobRecord fields, indented JSON... }

The header rejects a file before a single body byte is interpreted: bad
magic (not a job record at all), schema version skew (a newer/older build's
layout), byte-length mismatch (partial write), CRC mismatch (corruption).
Every rejection raises a typed :class:`~repro.errors.JobRecordError`; the
store never half-parses a record.

Writes serialize fully in memory, pass the bytes through the
``server.jobstore.record`` fault hook (the ``torn-write`` chaos kind
truncates them here), and land via
:func:`repro.checkpoint.atomic.atomic_write_bytes` -- so outside injected
corruption, a reader sees either the previous complete record or the new
one, never a tear.

This module is a nondeterminism boundary (``repro-lint-scope:
determinism-boundary``): job ids draw entropy and records carry wall-clock
submission/update timestamps -- queue state, not algorithm state.  The
*work* a record describes stays deterministic: the spec seeds every RNG.
"""

from __future__ import annotations

import json
import time
import uuid
import zlib
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..errors import JobRecordError
from ..checkpoint.atomic import atomic_write_bytes
from ..faults import SITE_SERVER_RECORD, corrupt

__all__ = [
    "JOB_RECORD_MAGIC",
    "JOB_RECORD_VERSION",
    "JOB_STATES",
    "JobRecord",
    "STATE_COMPLETED",
    "STATE_PENDING",
    "STATE_QUARANTINED",
    "STATE_RUNNING",
    "TERMINAL_STATES",
    "new_job_id",
    "read_record",
    "write_record",
]

#: File-type marker of the header line.
JOB_RECORD_MAGIC = "repro-job"

#: Schema version of the JSON body (bump on any layout change).
JOB_RECORD_VERSION = 1

#: Waiting for a worker (fresh submission, retry backoff, or reclaimed).
STATE_PENDING = "pending"
#: Claimed by a worker holding a live lease.
STATE_RUNNING = "running"
#: Finished; ``result.json`` holds the outcome.
STATE_COMPLETED = "completed"
#: Poisoned: failed ``max_attempts`` times and will not be retried.
STATE_QUARANTINED = "quarantined"

#: Every legal record state.
JOB_STATES = frozenset(
    {STATE_PENDING, STATE_RUNNING, STATE_COMPLETED, STATE_QUARANTINED}
)

#: States a job never leaves.
TERMINAL_STATES = frozenset({STATE_COMPLETED, STATE_QUARANTINED})


def new_job_id() -> str:
    """A fresh collision-free job id, sortable by submission time."""
    return f"j{time.time_ns():016x}-{uuid.uuid4().hex[:10]}"


@dataclass(frozen=True)
class JobRecord:
    """One job's durable queue state (everything but the result payload).

    Attributes:
        job_id: Store-unique id (:func:`new_job_id`).
        tenant: Submitting tenant (per-tenant queue caps key off this).
        state: One of :data:`JOB_STATES`.
        spec: The validated submission payload
            (:func:`repro.server.validation.validate_submission`); fully
            determines the deterministic work the job runs.
        attempts: Completed execution attempts that failed or were
            reclaimed after a crash (graceful interrupts do not count).
        max_attempts: Quarantine threshold.
        submitted_at: Wall-clock submission time [unit: s].
        updated_at: Wall-clock time of the last record write [unit: s].
        not_before: Earliest wall-clock time a worker may claim the job
            [unit: s] (retry backoff; 0 means immediately).
        worker: Id of the worker holding/last holding the job.
        error: Last failure message (quarantine diagnosis).
        trace_id: Correlation id minted at submission; every span the job
            produces (API, worker, pool workers) is stitched under it in
            the per-job Chrome trace export.  Optional so records written
            by older builds still parse under the same schema version.
    """

    job_id: str
    tenant: str
    state: str
    spec: Dict[str, Any]
    attempts: int = 0
    max_attempts: int = 3
    submitted_at: float = 0.0
    updated_at: float = 0.0
    not_before: float = 0.0
    worker: Optional[str] = None
    error: Optional[str] = None
    trace_id: Optional[str] = None

    def with_state(self, state: str, **changes: Any) -> "JobRecord":
        """A copy in ``state`` with ``updated_at`` restamped."""
        if state not in JOB_STATES:
            raise JobRecordError(f"unknown job state {state!r}")
        return replace(self, state=state, updated_at=time.time(), **changes)

    @property
    def terminal(self) -> bool:
        """Whether the job can never run again."""
        return self.state in TERMINAL_STATES


def write_record(path: Union[str, Path], record: JobRecord) -> Path:
    """Serialize ``record`` and atomically persist it; returns the path."""
    if record.state not in JOB_STATES:
        raise JobRecordError(
            f"refusing to persist record {record.job_id} with unknown "
            f"state {record.state!r}"
        )
    body = json.dumps(asdict(record), indent=2, sort_keys=True).encode("utf-8")
    header = json.dumps(
        {
            "magic": JOB_RECORD_MAGIC,
            "version": JOB_RECORD_VERSION,
            "body_bytes": len(body),
            "crc32": zlib.crc32(body),
        },
        sort_keys=True,
    ).encode("ascii")
    data = corrupt(SITE_SERVER_RECORD, header + b"\n" + body)
    return atomic_write_bytes(path, data)


def _parse_header(path: Path, raw: bytes) -> Tuple[Mapping[str, Any], bytes]:
    header_line, separator, body = raw.partition(b"\n")
    if not separator:
        raise JobRecordError(
            f"{path}: not a job record (no header/body separator)"
        )
    try:
        header = json.loads(header_line.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JobRecordError(
            f"{path}: not a job record (unparsable header)"
        ) from exc
    if not isinstance(header, dict) or header.get("magic") != JOB_RECORD_MAGIC:
        raise JobRecordError(f"{path}: not a repro job record")
    return header, body


def read_record(path: Union[str, Path]) -> JobRecord:
    """Validate and deserialize a record written by :func:`write_record`.

    Raises:
        JobRecordError: missing/unreadable file, bad magic, schema version
            skew, body length mismatch (torn write), CRC mismatch
            (corruption), or a body that is not a well-formed record.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise JobRecordError(f"cannot read job record {path}: {exc}") from exc
    header, body = _parse_header(path, raw)
    version = header.get("version")
    if version != JOB_RECORD_VERSION:
        raise JobRecordError(
            f"{path}: record schema version {version!r} does not match this "
            f"build's version {JOB_RECORD_VERSION}"
        )
    if header.get("body_bytes") != len(body):
        raise JobRecordError(
            f"{path}: body is {len(body)} bytes but the header recorded "
            f"{header.get('body_bytes')!r} (torn or truncated write)"
        )
    if header.get("crc32") != zlib.crc32(body):
        raise JobRecordError(f"{path}: body CRC mismatch (corrupted record)")
    try:
        fields = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JobRecordError(
            f"{path}: body passed CRC but is not valid JSON: {exc}"
        ) from exc
    if not isinstance(fields, dict):
        raise JobRecordError(f"{path}: record body must be a JSON object")
    try:
        record = JobRecord(**fields)
    except TypeError as exc:
        raise JobRecordError(
            f"{path}: record body has wrong fields: {exc}"
        ) from exc
    if record.state not in JOB_STATES:
        raise JobRecordError(
            f"{path}: record carries unknown state {record.state!r}"
        )
    return record
