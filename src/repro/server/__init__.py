"""Crash-safe design-as-a-service: durable queue, leases, HTTP API.

The service turns the optimizer portfolio into a long-running process that
survives being killed at any instant:

* :mod:`repro.server.records` -- CRC-validated durable job records,
* :mod:`repro.server.leases` -- TTL lease files (exactly-one-owner),
* :mod:`repro.server.jobstore` -- the one-directory-per-job queue,
* :mod:`repro.server.validation` -- submissions rejected at the door,
* :mod:`repro.server.executor` -- spec -> deterministic portfolio run,
* :mod:`repro.server.worker` -- claim/heartbeat workers + the reaper,
* :mod:`repro.server.api` -- stdlib HTTP routes, health/readiness,
  ``/metrics`` exposition, and chunked ``follow=1`` event streams,
* :mod:`repro.server.service` -- process composition + graceful drain,
* :mod:`repro.server.client` -- the urllib client behind ``repro submit``,
* :mod:`repro.server.dashboard` -- the ``repro top`` terminal dashboard.

See ``docs/SERVICE.md`` for the API reference and recovery semantics.
"""

from ..errors import (
    JobError,
    JobNotFoundError,
    JobQueueFullError,
    JobRecordError,
    JobStateError,
    JobValidationError,
    LeaseError,
    LeaseLostError,
)
from .api import ApiServer
from .client import ServiceClient
from .dashboard import TopMonitor, render, run_top
from .executor import Executor, SimulationExecutor
from .jobstore import JobStore
from .leases import Lease, LeaseFile
from .records import (
    JOB_STATES,
    JobRecord,
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_QUARANTINED,
    STATE_RUNNING,
    TERMINAL_STATES,
    read_record,
    write_record,
)
from .service import DesignService
from .validation import validate_submission
from .worker import Reaper, Worker

__all__ = [
    "ApiServer",
    "DesignService",
    "Executor",
    "JOB_STATES",
    "JobError",
    "JobNotFoundError",
    "JobQueueFullError",
    "JobRecord",
    "JobRecordError",
    "JobStateError",
    "JobStore",
    "JobValidationError",
    "Lease",
    "LeaseError",
    "LeaseFile",
    "LeaseLostError",
    "Reaper",
    "STATE_COMPLETED",
    "STATE_PENDING",
    "STATE_QUARANTINED",
    "STATE_RUNNING",
    "ServiceClient",
    "SimulationExecutor",
    "TERMINAL_STATES",
    "TopMonitor",
    "Worker",
    "read_record",
    "render",
    "run_top",
    "validate_submission",
    "write_record",
]
